//! # qwm — transistor-level static timing analysis by piecewise
//! # quadratic waveform matching
//!
//! A from-scratch Rust reproduction of *"Transistor-Level Static Timing
//! Analysis by Piecewise Quadratic Waveform Matching"* (Wang & Zhu,
//! DATE 2003), including every substrate the paper depends on:
//!
//! | Crate | Role |
//! |---|---|
//! | [`num`] | LU / Thomas / Sherman–Morrison / Newton / fitting / interpolation |
//! | [`device`] | analytic + tabular MOSFET models, parasitic caps (Definition 2) |
//! | [`circuit`] | logic stages (Definition 1), netlists, partitioning, waveforms, workloads |
//! | [`spice`] | the HSPICE stand-in: fixed-step MNA transient (NR / successive chords) |
//! | [`interconnect`] | RC trees, moments, Elmore/D2M, AWE, π macromodels |
//! | [`core`] | **QWM itself**: critical points, per-region algebraic solves, O(K) updates |
//! | [`sta`] | static timing analysis over stage graphs with pluggable evaluators |
//! | [`exec`] | zero-dependency parallelism: work-stealing pool, DAG scheduler (`QWM_THREADS`) |
//! | [`obs`] | zero-dependency telemetry: spans, counters, histograms, events (`QWM_OBS`) |
//! | [`fault`] | deterministic fault injection at named sites (`QWM_FAULTS`) |
//! | [`server`] | persistent timing-query server: sessions, admission control (`qwm serve`) |
//! | [`store`] | durable design store: checksummed record log, crash-safe snapshots, warm restarts |
//!
//! # Quickstart
//!
//! Compare QWM against the SPICE baseline on a NAND3 discharge:
//!
//! ```
//! use qwm::circuit::cells;
//! use qwm::circuit::waveform::{TransitionKind, Waveform};
//! use qwm::core::evaluate::{evaluate, QwmConfig};
//! use qwm::device::{analytic_models, Technology};
//! use qwm::spice::engine::{initial_uniform, simulate, TransientConfig};
//!
//! # fn main() -> Result<(), qwm::num::NumError> {
//! let tech = Technology::cmosp35();
//! let models = analytic_models(&tech);
//! let gate = cells::nand(&tech, 3, cells::DEFAULT_LOAD)?;
//! let out = gate.node_by_name("out").expect("output");
//! let inputs: Vec<Waveform> =
//!     (0..3).map(|_| Waveform::step(0.0, 0.0, tech.vdd)).collect();
//! let init = initial_uniform(&gate, &models, tech.vdd);
//!
//! // QWM: a handful of algebraic solves.
//! let qwm = evaluate(&gate, &models, &inputs, &init, out,
//!                    TransitionKind::Fall, &QwmConfig::default())?;
//! let d_qwm = qwm.delay_50(tech.vdd, 0.0).expect("delay");
//!
//! // SPICE: Newton at every 1 ps step.
//! let sp = simulate(&gate, &models, &inputs, &init,
//!                   &TransientConfig::hspice_1ps(2e-9))?;
//! let d_sp = sp.waveform(out)?.crossing(tech.vdd / 2.0, false).expect("delay");
//!
//! let err = (d_qwm - d_sp).abs() / d_sp;
//! assert!(err < 0.10, "engines agree: qwm {d_qwm} vs spice {d_sp}");
//! # Ok(())
//! # }
//! ```

pub use qwm_circuit as circuit;
pub use qwm_core as core;
pub use qwm_device as device;
pub use qwm_exec as exec;
pub use qwm_fault as fault;
pub use qwm_interconnect as interconnect;
pub use qwm_num as num;
pub use qwm_obs as obs;
pub use qwm_server as server;
pub use qwm_spice as spice;
pub use qwm_sta as sta;
pub use qwm_store as store;
