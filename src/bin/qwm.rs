//! `qwm` — command-line transistor-level static timing analysis.
//!
//! ```text
//! qwm <deck.sp> [--evaluator qwm|elmore|spice] [--direction fall|rise]
//!               [--slew <ps>] [--required <ps>] [--stages] [--threads <n>]
//! ```
//!
//! Reads a SPICE-subset deck (see `qwm::circuit::parser`), partitions it
//! into channel-connected logic stages, propagates arrival times with
//! the chosen per-stage evaluator (QWM by default) and prints the
//! critical-path report. With `--slew` the analysis is slew-aware:
//! measured output slews feed downstream stages.
//!
//! Independent stages are evaluated in parallel on a work-stealing
//! scheduler; `--threads <n>` (or the `QWM_THREADS` environment
//! variable) sets the worker count. Reports are bitwise-identical for
//! any value — the knob only changes speed.
//!
//! `--obs [summary|json]` (or the `QWM_OBS` environment variable)
//! appends a telemetry report — spans, counters, solver histograms and
//! buffered warn/error events — after the timing report.
//!
//! `--fallback` selects the graceful-degradation evaluator (QWM →
//! damped retry → adaptive transient → fixed-step transient → Elmore
//! bound); degraded arcs are listed with full rung provenance after the
//! critical-path table. `--fault-plan <spec>` (or the `QWM_FAULTS`
//! environment variable) installs a deterministic fault-injection plan,
//! e.g. `seed=1;qwm.region=noconv:0.5` — see `qwm::fault`.
//!
//! `--corners <list>` runs a batched multi-corner sweep (e.g.
//! `--corners ss,tt,ff` or `--corners tt,mc:7:8` for seeded Monte
//! Carlo samples): one levelized pass times every corner's device
//! models per arc, then prints a per-corner worst-arrival summary, the
//! dominating corner, and the worst corner's critical-path report.
//! Combined with `--edits` the what-if re-times only the dirty fanout
//! cone *across all corners* and prints per-corner deltas.
//!
//! `qwm serve` starts the persistent timing-query server instead of a
//! one-shot analysis (see `qwm::server`): sessions keep parsed
//! netlists and warm incremental engines across queries, heavy
//! requests pass through admission control, and `SIGTERM`/`shutdown`
//! drain gracefully. It prints `listening on <addr>` once bound.
//! With `--store <dir>` sessions are durable: committed runs snapshot
//! to an append-only checksummed log (cadence via `--snapshot-every`),
//! and a killed-and-restarted server restores every session warm.

use qwm::circuit::parser::parse_netlist;
use qwm::circuit::waveform::TransitionKind;
use qwm::device::{analytic_models, tabular_models, Technology};
use qwm::sta::engine::StaEngine;
use qwm::sta::evaluator::{
    ElmoreEvaluator, FallbackEvaluator, QwmEvaluator, SpiceEvaluator, StageEvaluator,
};
use qwm::sta::report::format_report;
use std::process::ExitCode;

struct Options {
    deck: String,
    evaluator: String,
    direction: TransitionKind,
    slew: Option<f64>,
    required: Option<f64>,
    show_stages: bool,
    obs: Option<qwm::obs::ObsMode>,
    threads: Option<usize>,
    fault_plan: Option<String>,
    edits: Option<String>,
    corners: Vec<qwm::device::Corner>,
}

fn usage() -> &'static str {
    "usage: qwm <deck.sp> [--evaluator qwm|elmore|spice|fallback] [--fallback]\n\
     \u{20}          [--direction fall|rise] [--slew <ps>] [--required <ps>]\n\
     \u{20}          [--stages] [--threads <n>] [--obs [summary|json]]\n\
     \u{20}          [--fault-plan <spec>] [--edits <file>] [--corners <list>]\n\
     \u{20}      qwm serve [--addr <host:port>] [--max-inflight <n>]\n\
     \u{20}          [--session-ttl <secs>] [--engine-threads <n>] [--obs [summary|json]]\n\
     \u{20}          [--store <dir>] [--snapshot-every <n>]\n\
     \u{20}      qwm obs-report <dump.jsonl> [--out <report.html>] [--title <text>]\n\
     \u{20}          [--check-only]\n\
     \u{20}      qwm capacity-report <BENCH_capacity_server.json> [--out <report.html>]\n\
     \u{20}          [--title <text>]"
}

/// `qwm capacity-report ...`: turn a `BENCH_capacity_server.json`
/// capacity-discovery artifact (written by the `server_capacity` bench
/// driver) into a self-contained HTML report.
fn capacity_report(args: &[String]) -> Result<(), String> {
    let mut input: Option<String> = None;
    let mut out: Option<String> = None;
    let mut title = "qwm server capacity".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
            "--title" => title = it.next().ok_or("--title needs text")?.clone(),
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with("--") => {
                return Err(format!(
                    "unexpected capacity-report argument {other:?}\n{}",
                    usage()
                ));
            }
            path => {
                if input.replace(path.to_string()).is_some() {
                    return Err("capacity-report takes exactly one input file".to_string());
                }
            }
        }
    }
    let input = input.ok_or_else(|| format!("capacity-report needs an input file\n{}", usage()))?;
    let text = std::fs::read_to_string(&input).map_err(|e| format!("read {input}: {e}"))?;
    let html =
        qwm::obs::report::capacity_html(&title, &text).map_err(|e| format!("{input}: {e}"))?;
    let out = out.unwrap_or_else(|| format!("{input}.html"));
    std::fs::write(&out, html).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// `qwm obs-report ...`: turn a line-oriented JSON telemetry dump
/// (`QWM_OBS=json` output, `metrics` payloads, `trace <sid> last json`
/// bodies — concatenated freely) into a self-contained HTML report.
/// `--check-only` just validates that every line parses as JSON.
fn obs_report(args: &[String]) -> Result<(), String> {
    let mut input: Option<String> = None;
    let mut out: Option<String> = None;
    let mut title = "qwm telemetry".to_string();
    let mut check_only = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
            "--title" => title = it.next().ok_or("--title needs text")?.clone(),
            "--check-only" => check_only = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with("--") => {
                return Err(format!(
                    "unexpected obs-report argument {other:?}\n{}",
                    usage()
                ));
            }
            path => {
                if input.replace(path.to_string()).is_some() {
                    return Err("obs-report takes exactly one input file".to_string());
                }
            }
        }
    }
    let input = input.ok_or_else(|| format!("obs-report needs an input file\n{}", usage()))?;
    let text = std::fs::read_to_string(&input).map_err(|e| format!("read {input}: {e}"))?;
    let lines =
        qwm::obs::report::validate_json_lines(&text).map_err(|e| format!("{input}: {e}"))?;
    if check_only {
        println!("{input}: {lines} JSON lines ok");
        return Ok(());
    }
    let html = qwm::obs::report::html_report(&title, &text).map_err(|e| format!("{input}: {e}"))?;
    let out = out.unwrap_or_else(|| format!("{input}.html"));
    std::fs::write(&out, html).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out} ({lines} telemetry lines)");
    Ok(())
}

/// `qwm serve ...`: parse the serve flags and run the server until it
/// drains (`shutdown` command or SIGTERM).
fn serve(args: &[String]) -> Result<(), String> {
    let mut cfg = qwm::server::ServerConfig {
        handle_sigterm: true,
        ..Default::default()
    };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                cfg.addr = it.next().ok_or("--addr needs host:port")?.clone();
            }
            "--max-inflight" => {
                let v: usize = it
                    .next()
                    .ok_or("--max-inflight needs a count")?
                    .parse()
                    .map_err(|e| format!("bad --max-inflight: {e}"))?;
                if v == 0 {
                    return Err("--max-inflight must be at least 1".to_string());
                }
                cfg.max_inflight = v;
            }
            "--session-ttl" => {
                let v: f64 = it
                    .next()
                    .ok_or("--session-ttl needs seconds")?
                    .parse()
                    .map_err(|e| format!("bad --session-ttl: {e}"))?;
                if !v.is_finite() || v < 0.0 {
                    return Err("--session-ttl must be finite and >= 0".to_string());
                }
                cfg.session_ttl = if v == 0.0 {
                    None
                } else {
                    Some(std::time::Duration::from_secs_f64(v))
                };
            }
            "--engine-threads" => {
                let v: usize = it
                    .next()
                    .ok_or("--engine-threads needs a count")?
                    .parse()
                    .map_err(|e| format!("bad --engine-threads: {e}"))?;
                if v == 0 {
                    return Err("--engine-threads must be at least 1".to_string());
                }
                cfg.engine_threads = v;
            }
            "--store" => {
                cfg.store_dir = Some(std::path::PathBuf::from(
                    it.next().ok_or("--store needs a directory")?,
                ));
            }
            "--snapshot-every" => {
                let v: usize = it
                    .next()
                    .ok_or("--snapshot-every needs an edit-batch count")?
                    .parse()
                    .map_err(|e| format!("bad --snapshot-every: {e}"))?;
                if v == 0 {
                    return Err("--snapshot-every must be at least 1".to_string());
                }
                cfg.snapshot_every = v;
            }
            "--obs" => {
                let mode = match it.peek().map(|s| s.as_str()) {
                    Some("summary") => {
                        it.next();
                        qwm::obs::ObsMode::Summary
                    }
                    Some("json") => {
                        it.next();
                        qwm::obs::ObsMode::Json
                    }
                    _ => qwm::obs::ObsMode::Summary,
                };
                qwm::obs::set_mode(mode);
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unexpected serve argument {other:?}\n{}", usage())),
        }
    }
    let server = qwm::server::Server::bind(cfg).map_err(|e| format!("bind: {e}"))?;
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| format!("serve: {e}"))?;
    println!("drained");
    qwm::obs::emit();
    Ok(())
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut deck = None;
    let mut evaluator = "qwm".to_string();
    let mut direction = TransitionKind::Fall;
    let mut slew = None;
    let mut required = None;
    let mut show_stages = false;
    let mut obs = None;
    let mut threads = None;
    let mut fault_plan = None;
    let mut edits = None;
    let mut corners = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--evaluator" => {
                evaluator = it.next().ok_or("--evaluator needs a value")?.clone();
                if !["qwm", "elmore", "spice", "fallback"].contains(&evaluator.as_str()) {
                    return Err(format!("unknown evaluator {evaluator:?}"));
                }
            }
            "--fallback" => evaluator = "fallback".to_string(),
            "--fault-plan" => {
                let spec = it.next().ok_or("--fault-plan needs a spec")?.clone();
                // Validate eagerly so a typo fails before any analysis.
                qwm::fault::FaultPlan::parse(&spec)
                    .map_err(|e| format!("bad --fault-plan: {e}"))?;
                fault_plan = Some(spec);
            }
            "--direction" => {
                direction = match it.next().ok_or("--direction needs a value")?.as_str() {
                    "fall" => TransitionKind::Fall,
                    "rise" => TransitionKind::Rise,
                    other => return Err(format!("unknown direction {other:?}")),
                };
            }
            "--slew" => {
                let v: f64 = it
                    .next()
                    .ok_or("--slew needs a value in ps")?
                    .parse()
                    .map_err(|e| format!("bad --slew: {e}"))?;
                slew = Some(v * 1e-12);
            }
            "--required" => {
                let v: f64 = it
                    .next()
                    .ok_or("--required needs a value in ps")?
                    .parse()
                    .map_err(|e| format!("bad --required: {e}"))?;
                required = Some(v * 1e-12);
            }
            "--edits" => {
                edits = Some(it.next().ok_or("--edits needs a file")?.clone());
            }
            "--corners" => {
                let spec = it.next().ok_or("--corners needs a comma-separated list")?;
                corners = qwm::device::parse_corner_list(spec)
                    .map_err(|e| format!("bad --corners: {e}"))?;
            }
            "--stages" => show_stages = true,
            "--threads" => {
                let v: usize = it
                    .next()
                    .ok_or("--threads needs a worker count")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if v == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                threads = Some(v);
            }
            "--obs" => {
                // Optional value: `--obs json` or bare `--obs` (summary).
                obs = Some(match it.peek().map(|s| s.as_str()) {
                    Some("summary") => {
                        it.next();
                        qwm::obs::ObsMode::Summary
                    }
                    Some("json") => {
                        it.next();
                        qwm::obs::ObsMode::Json
                    }
                    _ => qwm::obs::ObsMode::Summary,
                });
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other if deck.is_none() && !other.starts_with('-') => {
                deck = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }
    Ok(Options {
        deck: deck.ok_or_else(|| usage().to_string())?,
        evaluator,
        direction,
        slew,
        required,
        show_stages,
        obs,
        threads,
        fault_plan,
        edits,
        corners,
    })
}

/// Prints a per-corner worst-arrival summary, names the dominating
/// corner, then renders the dominating corner's critical-path report.
fn print_corner_summary(
    cr: &qwm::sta::CornerReport,
    graph: &qwm::sta::StageGraph,
    netlist: &qwm::circuit::netlist::Netlist,
    required: Option<f64>,
) {
    for (name, rep) in cr.corners.iter().zip(&cr.reports) {
        match rep.worst {
            Some((net, arr)) => println!(
                "corner {name:<10} worst {:>9.2} ps at {:<14} ({} evaluations)",
                arr * 1e12,
                netlist.net_name(net),
                rep.evaluations
            ),
            None => println!("corner {name:<10} worst -"),
        }
    }
    if let Some((c, net, arr)) = cr.worst {
        println!(
            "worst corner {} ({:.2} ps at {})",
            cr.corners[c],
            arr * 1e12,
            netlist.net_name(net)
        );
        println!();
        print!(
            "{}",
            format_report(&cr.reports[c], graph, netlist, required)
        );
    }
}

fn run(opts: &Options) -> Result<(), String> {
    // `--obs` overrides the QWM_OBS environment variable; either must be
    // in force *before* any instrumented work runs.
    if let Some(mode) = opts.obs {
        qwm::obs::set_mode(mode);
    }
    // `--fault-plan` overrides QWM_FAULTS; install before any
    // instrumented site runs.
    if let Some(spec) = &opts.fault_plan {
        let plan =
            qwm::fault::FaultPlan::parse(spec).map_err(|e| format!("bad fault plan: {e}"))?;
        qwm::fault::install(plan);
    }
    let text = std::fs::read_to_string(&opts.deck)
        .map_err(|e| format!("cannot read {}: {e}", opts.deck))?;
    let netlist = parse_netlist(&text).map_err(|e| e.to_string())?;
    let tech = Technology::cmosp35();
    let models = if opts.evaluator == "qwm" || opts.evaluator == "fallback" {
        tabular_models(&tech).map_err(|e| e.to_string())?
    } else {
        analytic_models(&tech)
    };
    let mut engine = StaEngine::new(netlist, &models, opts.direction).map_err(|e| e.to_string())?;
    if let Some(t) = opts.threads {
        engine.set_threads(t);
    }

    println!(
        "{}: {} devices, {} stages, evaluator = {}, threads = {}",
        opts.deck,
        engine.netlist().devices().len(),
        engine.graph().len(),
        opts.evaluator,
        engine.threads()
    );
    if opts.show_stages {
        for (i, p) in engine.graph().partitions().iter().enumerate() {
            let ins: Vec<&str> = p
                .input_nets
                .iter()
                .map(|&n| engine.netlist().net_name(n))
                .collect();
            let outs: Vec<&str> = p
                .output_nets
                .iter()
                .map(|&n| engine.netlist().net_name(n))
                .collect();
            println!(
                "  stage {i}: {} elements  {:?} -> {:?}",
                p.stage.edge_count(),
                ins,
                outs
            );
        }
    }

    let make_evaluator = || -> Box<dyn StageEvaluator> {
        match opts.evaluator.as_str() {
            "elmore" => Box::new(ElmoreEvaluator),
            "spice" => Box::new(SpiceEvaluator::default()),
            "fallback" => Box::new(FallbackEvaluator::default()),
            _ => Box::new(QwmEvaluator::default()),
        }
    };
    // Batched multi-corner sweep: every corner's device models are
    // timed in one levelized pass over the stage DAG. Each corner gets
    // its own evaluator instance so fallback degradations pool per
    // corner, exactly as N independent runs would.
    if !opts.corners.is_empty() {
        let corner_models = if opts.evaluator == "qwm" || opts.evaluator == "fallback" {
            qwm::device::CornerModels::tabular(&tech, &opts.corners).map_err(|e| e.to_string())?
        } else {
            qwm::device::CornerModels::analytic(&tech, &opts.corners)
        };
        let evaluators: Vec<Box<dyn StageEvaluator>> =
            (0..corner_models.len()).map(|_| make_evaluator()).collect();
        let runs: Vec<qwm::sta::CornerRun> = corner_models
            .corners()
            .iter()
            .enumerate()
            .map(|(i, c)| qwm::sta::CornerRun {
                name: c.interned_name(),
                models: corner_models.set(i),
                evaluator: evaluators[i].as_ref(),
            })
            .collect();
        // What-if mode across corners: baseline sweep, apply edits,
        // re-time only the dirty fanout cone in every corner.
        if let Some(path) = &opts.edits {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let edits = qwm::sta::parse_edit_script(&text, engine.netlist())?;
            if let Some(s) = opts.slew {
                engine.set_input_slew(s).map_err(|e| e.to_string())?;
            }
            let baseline = engine
                .run_incremental_corners(&runs)
                .map_err(|e| e.to_string())?;
            println!();
            println!("=== baseline ===");
            print_corner_summary(&baseline, engine.graph(), engine.netlist(), opts.required);
            engine.apply_edits(&edits).map_err(|e| e.to_string())?;
            let t0 = std::time::Instant::now();
            let whatif = engine
                .run_incremental_corners(&runs)
                .map_err(|e| e.to_string())?;
            let elapsed = t0.elapsed();
            let stats = engine.incremental_stats();
            println!();
            println!("=== what-if ({} edits) ===", edits.len());
            print_corner_summary(&whatif, engine.graph(), engine.netlist(), opts.required);
            for (i, name) in whatif.corners.iter().enumerate() {
                if let (Some((_, b)), Some((_, w))) =
                    (baseline.reports[i].worst, whatif.reports[i].worst)
                {
                    println!("delta {name} {:+.2} ps", (w - b) * 1e12);
                }
            }
            println!(
                "incremental: {} dirty / {} evaluated stage-corners, {} arcs reused, \
                 {} early-stop nets, {:.1} ms",
                stats.dirty_stages,
                stats.evaluated_stages,
                stats.reused_arcs,
                stats.early_stop_nets,
                elapsed.as_secs_f64() * 1e3
            );
            qwm::obs::emit();
            return Ok(());
        }
        let cr = engine
            .run_corners(&runs, opts.slew.unwrap_or(0.0))
            .map_err(|e| e.to_string())?;
        println!();
        print_corner_summary(&cr, engine.graph(), engine.netlist(), opts.required);
        qwm::obs::emit();
        return Ok(());
    }

    let evaluator: Box<dyn StageEvaluator> = make_evaluator();
    // What-if mode: baseline incremental run, apply the edits file,
    // re-time only the dirty fanout cone, report both.
    if let Some(path) = &opts.edits {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let edits = qwm::sta::parse_edit_script(&text, engine.netlist())?;
        if let Some(s) = opts.slew {
            engine.set_input_slew(s).map_err(|e| e.to_string())?;
        }
        let baseline = engine
            .run_incremental(evaluator.as_ref())
            .map_err(|e| e.to_string())?;
        println!();
        println!("=== baseline ===");
        print!(
            "{}",
            format_report(&baseline, engine.graph(), engine.netlist(), opts.required)
        );
        engine.apply_edits(&edits).map_err(|e| e.to_string())?;
        let t0 = std::time::Instant::now();
        let whatif = engine
            .run_incremental(evaluator.as_ref())
            .map_err(|e| e.to_string())?;
        let elapsed = t0.elapsed();
        let stats = engine.incremental_stats();
        println!();
        println!("=== what-if ({} edits) ===", edits.len());
        print!(
            "{}",
            format_report(&whatif, engine.graph(), engine.netlist(), opts.required)
        );
        if let (Some((_, b)), Some((_, w))) = (baseline.worst, whatif.worst) {
            println!("delta {:+.2} ps", (w - b) * 1e12);
        }
        println!(
            "incremental: {} dirty / {} evaluated of {} stages, {} arcs reused, \
             {} early-stop nets, {:.1} ms",
            stats.dirty_stages,
            stats.evaluated_stages,
            engine.graph().len(),
            stats.reused_arcs,
            stats.early_stop_nets,
            elapsed.as_secs_f64() * 1e3
        );
        qwm::obs::emit();
        return Ok(());
    }

    let report = match opts.slew {
        Some(s) => engine
            .run_with_slew(evaluator.as_ref(), s)
            .map_err(|e| e.to_string())?,
        None => engine.run(evaluator.as_ref()).map_err(|e| e.to_string())?,
    };
    println!();
    print!(
        "{}",
        format_report(&report, engine.graph(), engine.netlist(), opts.required)
    );
    if let Some((net, _)) = report.worst {
        if let Some(&slew) = report.slews.get(&net) {
            println!(
                "output slew {:.2} ps at {}",
                slew * 1e12,
                engine.netlist().net_name(net)
            );
        }
    }
    qwm::obs::emit();
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        return match serve(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("obs-report") {
        return match obs_report(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("capacity-report") {
        return match capacity_report(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match parse_args(&args) {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
