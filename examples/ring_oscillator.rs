//! Whole-circuit simulation: a 5-stage ring oscillator, flattened so
//! every gate is driven by another stage's output node, simulated with
//! the full MNA transient — something stage-at-a-time analysis cannot do
//! — and cross-checked against the dual-polarity slew-aware STA estimate
//! of the loop delay.
//!
//! ```text
//! cargo run --release --example ring_oscillator
//! ```

use qwm::circuit::flatten::{flatten_netlist, ring_oscillator};
use qwm::device::{analytic_models, Technology};
use qwm::num::NumError;
use qwm::spice::engine::{simulate, TransientConfig};

fn main() -> Result<(), NumError> {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let stages = 5;
    let netlist = ring_oscillator(&tech, stages, 5e-15)?;
    let flat = flatten_netlist(&netlist)?;
    println!(
        "{}-stage ring: {} transistors, every gate node-driven (no external inputs)",
        stages,
        flat.stage.edge_count()
    );

    // Kick the ring out of its metastable point.
    let mut init = vec![0.0; flat.stage.node_count()];
    init[flat.stage.source().0] = tech.vdd;
    for i in 0..stages {
        let n = flat
            .stage
            .node_by_name(&format!("r{i}"))
            .expect("ring node");
        init[n.0] = if i % 2 == 0 { 0.2 } else { tech.vdd - 0.2 };
    }

    let r = simulate(
        &flat.stage,
        &models,
        &[],
        &init,
        &TransientConfig::hspice_1ps(4e-9),
    )?;
    let out = flat.stage.node_by_name("r0").expect("ring node");
    let w = r.waveform(out)?;

    // Extract the oscillation period from rising 50% crossings.
    let half = tech.vdd / 2.0;
    let mut crossings = Vec::new();
    for pair in w.samples().windows(2) {
        if pair[0].1 <= half && pair[1].1 > half {
            crossings.push(pair[0].0);
        }
    }
    let periods: Vec<f64> = crossings.windows(2).map(|c| c[1] - c[0]).collect();
    let period = periods.iter().sum::<f64>() / periods.len().max(1) as f64;
    println!(
        "observed {} rising crossings; period {:.1} ps  (f = {:.2} GHz)",
        crossings.len(),
        period * 1e12,
        1e-9 / period
    );

    // Waveform snapshot of one full period for plotting.
    if let (Some(&t0), true) = (crossings.first(), crossings.len() >= 2) {
        print!("one period of r0 (V at 10 samples): ");
        for i in 0..10 {
            let t = t0 + period * i as f64 / 10.0;
            print!("{:.2} ", w.value(t));
        }
        println!();
    }
    println!(
        "simulated {} steps with {} Newton iterations in {:?}",
        r.times.len() - 1,
        r.iterations,
        r.elapsed
    );
    Ok(())
}
