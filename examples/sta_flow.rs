//! Full static-timing flow: parse a SPICE-subset deck, partition it into
//! channel-connected logic stages, propagate arrivals with QWM stage
//! delays, report the critical path — then resize a transistor and
//! re-analyze incrementally.
//!
//! ```text
//! cargo run --release --example sta_flow
//! ```

use qwm::circuit::parser::parse_netlist;
use qwm::circuit::waveform::TransitionKind;
use qwm::device::{analytic_models, Technology};
use qwm::num::NumError;
use qwm::sta::engine::StaEngine;
use qwm::sta::evaluator::{ElmoreEvaluator, QwmEvaluator, StageEvaluator};

/// A 3-stage path: NAND2 → inverter → NAND2-with-pass-transistor (the
/// last two gates are channel-connected through MPASS, so they fuse into
/// one stage — the paper's Figure 1 point).
const DECK: &str = "\
* three-stage example path
MN1a x   a   mid1 0   nmos W=1u   L=0.35u
MN1b mid1 b  0    0   nmos W=1u   L=0.35u
MP1a x   a   vdd  vdd pmos W=1u   L=0.35u
MP1b x   b   vdd  vdd pmos W=1u   L=0.35u
MN2  y   x   0    0   nmos W=0.5u L=0.35u
MP2  y   x   vdd  vdd pmos W=1u   L=0.35u
MN3a z0  y   mid3 0   nmos W=1u   L=0.35u
MN3b mid3 c  0    0   nmos W=1u   L=0.35u
MP3a z0  y   vdd  vdd pmos W=1u   L=0.35u
MP3b z0  c   vdd  vdd pmos W=1u   L=0.35u
MPASS z0 en  z    0   nmos W=1u   L=0.35u
Cz   z  0   15f
.input a b c en
.output z
.end
";

fn main() -> Result<(), NumError> {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let netlist = parse_netlist(DECK)?;
    println!(
        "parsed {} devices over {} nets",
        netlist.devices().len(),
        netlist.net_count()
    );

    let mut engine = StaEngine::new(netlist, &models, TransitionKind::Fall)?;
    println!("partitioned into {} logic stages:", engine.graph().len());
    for (i, p) in engine.graph().partitions().iter().enumerate() {
        println!(
            "  stage {i}: {} elements, inputs {:?} -> outputs {:?}",
            p.stage.edge_count(),
            p.input_nets
                .iter()
                .map(|&n| engine.netlist().net_name(n).to_string())
                .collect::<Vec<_>>(),
            p.output_nets
                .iter()
                .map(|&n| engine.netlist().net_name(n).to_string())
                .collect::<Vec<_>>()
        );
    }

    // Compare the crude switch-level estimate with QWM.
    for evaluator in [
        &ElmoreEvaluator as &dyn StageEvaluator,
        &QwmEvaluator::default(),
    ] {
        let report = engine.run(evaluator)?;
        let (net, arrival) = report.worst.expect("worst output");
        println!(
            "\n[{}] worst arrival {:.1} ps at net {:?} through {} stages ({} evaluations)",
            evaluator.name(),
            arrival * 1e12,
            engine.netlist().net_name(net),
            report.critical_path.len(),
            report.evaluations
        );
    }

    // Incremental: upsize the pass transistor, re-run.
    let pass_index = engine
        .netlist()
        .devices()
        .iter()
        .position(|d| d.name == "MPASS")
        .expect("MPASS exists");
    engine.resize_device(pass_index, 3e-6)?;
    let incr = engine.run(&QwmEvaluator::default())?;
    println!(
        "\nafter 3x-upsizing MPASS: worst arrival {:.1} ps ({} stage re-evaluations only)",
        incr.worst.expect("worst").1 * 1e12,
        incr.evaluations
    );
    Ok(())
}
