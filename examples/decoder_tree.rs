//! The memory decoder tree (paper Fig. 3): transistors channel-connected
//! through wires whose length doubles at every level. The wires are
//! reduced to AWE π macromodels before QWM analyzes the chain; the SPICE
//! golden keeps them fully distributed.
//!
//! ```text
//! cargo run --release --example decoder_tree
//! ```

use qwm::circuit::cells;
use qwm::circuit::waveform::{TransitionKind, Waveform};
use qwm::core::evaluate::{evaluate, QwmConfig};
use qwm::device::{analytic_models, tabular_models, Technology};
use qwm::interconnect::wire_pi_model;
use qwm::num::NumError;
use qwm::spice::engine::{initial_uniform, simulate, TransientConfig};

fn main() -> Result<(), NumError> {
    let tech = Technology::cmosp35();
    let spice_models = analytic_models(&tech);
    let qwm_models = tabular_models(&tech)?;
    let levels = 3;
    let base_len = 200e-6;

    // Show the per-level AWE reductions.
    println!("wire macromodels (O'Brien/Savarino π from 16-section ladders):");
    for level in 0..levels {
        let len = base_len * (1u64 << level) as f64;
        let pi = wire_pi_model(&tech, 0.6e-6, len, 16)?;
        println!(
            "  level {level}: {:>4.0} um -> R = {:7.1} ohm, C_near = {:6.2} fF, C_far = {:6.2} fF",
            len * 1e6,
            pi.r,
            pi.c_near * 1e15,
            pi.c_far * 1e15
        );
    }

    // QWM over the π-reduced path.
    let awe = cells::decoder_path_awe(&tech, levels, base_len, cells::DEFAULT_LOAD, 16)?;
    let out = awe.node_by_name("out").expect("leaf output");
    let inputs: Vec<Waveform> = (0..awe.inputs().len())
        .map(|_| Waveform::step(0.0, 0.0, tech.vdd))
        .collect();
    let init = initial_uniform(&awe, &spice_models, tech.vdd);
    let qwm = evaluate(
        &awe,
        &qwm_models,
        &inputs,
        &init,
        out,
        TransitionKind::Fall,
        &QwmConfig::default(),
    )?;
    let d_q = qwm.delay_50(tech.vdd, 0.0).expect("delay");

    // SPICE over the distributed-ladder path.
    let dist = cells::decoder_path_distributed(&tech, levels, base_len, cells::DEFAULT_LOAD, 16)?;
    let out_d = dist.node_by_name("out").expect("leaf output");
    let inputs_d: Vec<Waveform> = (0..dist.inputs().len())
        .map(|_| Waveform::step(0.0, 0.0, tech.vdd))
        .collect();
    let init_d = initial_uniform(&dist, &spice_models, tech.vdd);
    let spice = simulate(
        &dist,
        &spice_models,
        &inputs_d,
        &init_d,
        &TransientConfig::hspice_1ps(3.0 * d_q),
    )?;
    let d_s = spice
        .waveform(out_d)?
        .crossing(tech.vdd / 2.0, false)
        .expect("spice falls");

    println!(
        "\nleaf discharge delay: qwm+AWE {:.1} ps vs spice(distributed) {:.1} ps",
        d_q * 1e12,
        d_s * 1e12
    );
    println!(
        "accuracy {:.2}%, speedup {:.1}x ({} QWM regions vs {} SPICE steps)",
        100.0 - 100.0 * (d_q - d_s).abs() / d_s,
        spice.elapsed.as_secs_f64() / qwm.elapsed.as_secs_f64(),
        qwm.regions,
        spice.times.len() - 1
    );
    Ok(())
}
