//! The Manchester carry chain (paper Fig. 2): build the full
//! bit-sliced dynamic chain, extract its longest discharge path (the
//! 6-NMOS stack of Figs. 7 and 9) and evaluate it with QWM.
//!
//! ```text
//! cargo run --release --example manchester_carry
//! ```

use qwm::circuit::cells;
use qwm::circuit::waveform::{TransitionKind, Waveform};
use qwm::core::chain::Chain;
use qwm::core::evaluate::{evaluate, QwmConfig};
use qwm::device::{analytic_models, tabular_models, Technology};
use qwm::num::NumError;
use qwm::spice::engine::{initial_uniform, simulate, TransientConfig};

fn main() -> Result<(), NumError> {
    let tech = Technology::cmosp35();
    let spice_models = analytic_models(&tech);
    let qwm_models = tabular_models(&tech)?;
    let bits = 4;

    // The full chain, as laid out: per-bit propagate pass transistors,
    // generate pull-downs, precharge PMOS and the evaluation foot.
    let full = cells::manchester_carry_chain(&tech, bits, cells::DEFAULT_LOAD)?;
    println!(
        "Manchester carry chain, {bits} bits: {} devices, {} nodes, {} inputs, outputs {:?}",
        full.edge_count(),
        full.node_count(),
        full.inputs().len(),
        full.outputs()
            .iter()
            .map(|&o| full.node(o).name.clone())
            .collect::<Vec<_>>()
    );

    // Worst case: carry ripples from the generate at bit 0 all the way
    // to c4 — the evaluation foot + g_in + four propagate transistors.
    // `manchester_longest_path` materializes exactly that stack.
    let path = cells::manchester_longest_path(&tech, bits, cells::DEFAULT_LOAD)?;
    let out = path.node_by_name("out").expect("top carry node");
    let chain = Chain::extract(&path, out, TransitionKind::Fall)?;
    println!(
        "longest path: {} series NMOS (the paper's 6-stack for 4 bits)",
        chain.transistor_count()
    );

    let inputs: Vec<Waveform> = (0..path.inputs().len())
        .map(|_| Waveform::step(0.0, 0.0, tech.vdd))
        .collect();
    let init = initial_uniform(&path, &spice_models, tech.vdd);

    let qwm = evaluate(
        &path,
        &qwm_models,
        &inputs,
        &init,
        out,
        TransitionKind::Fall,
        &QwmConfig::default(),
    )?;
    let d_q = qwm.delay_50(tech.vdd, 0.0).expect("delay");

    let spice = simulate(
        &path,
        &spice_models,
        &inputs,
        &init,
        &TransientConfig::hspice_1ps(3.0 * d_q),
    )?;
    let d_s = spice
        .waveform(out)?
        .crossing(tech.vdd / 2.0, false)
        .expect("spice falls");

    println!("\nper-node 50% fall times along the chain (QWM):");
    for (k, w) in qwm.waveforms.iter().enumerate() {
        if let Some(t) = w.crossing(tech.vdd / 2.0) {
            println!("  node {}: {:.2} ps", k + 1, t * 1e12);
        }
    }
    println!(
        "\ncarry-out delay: qwm {:.2} ps vs spice {:.2} ps ({:.2}% error), speedup {:.1}x",
        d_q * 1e12,
        d_s * 1e12,
        100.0 * (d_q - d_s).abs() / d_s,
        spice.elapsed.as_secs_f64() / qwm.elapsed.as_secs_f64()
    );
    Ok(())
}
