//! Quickstart: time a NAND3 gate with QWM and check it against the
//! SPICE-class baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qwm::circuit::cells;
use qwm::circuit::waveform::{measure_transition, TransitionKind, Waveform};
use qwm::core::evaluate::{evaluate, QwmConfig};
use qwm::device::{analytic_models, tabular_models, Technology};
use qwm::num::NumError;
use qwm::spice::engine::{initial_uniform, simulate, TransientConfig};

fn main() -> Result<(), NumError> {
    // 1. Technology and device models. The SPICE baseline integrates the
    //    analytic physics; QWM queries the compressed tabular model
    //    characterized from it (the paper's §V-A pipeline).
    let tech = Technology::cmosp35();
    let spice_models = analytic_models(&tech);
    let qwm_models = tabular_models(&tech)?;

    // 2. A logic stage: minimum-size NAND3 driving 10 fF.
    let gate = cells::nand(&tech, 3, cells::DEFAULT_LOAD)?;
    let out = gate.node_by_name("out").expect("output node");

    // 3. Worst-case falling-output stimulus: all inputs step high at
    //    t = 0 from a precharged-high internal state.
    let inputs: Vec<Waveform> = (0..3).map(|_| Waveform::step(0.0, 0.0, tech.vdd)).collect();
    let init = initial_uniform(&gate, &spice_models, tech.vdd);

    // 4. QWM: a handful of per-critical-point algebraic solves.
    let qwm = evaluate(
        &gate,
        &qwm_models,
        &inputs,
        &init,
        out,
        TransitionKind::Fall,
        &QwmConfig::default(),
    )?;
    let d_qwm = qwm.delay_50(tech.vdd, 0.0).expect("50% crossing");
    println!(
        "QWM:   delay = {:.2} ps, slew = {:.2} ps, {} regions, {} Newton iterations, {:?}",
        d_qwm * 1e12,
        qwm.slew(tech.vdd).expect("slew") * 1e12,
        qwm.regions,
        qwm.iterations,
        qwm.elapsed
    );
    println!("       critical points:");
    for cp in &qwm.critical_points {
        println!("         t = {:7.2} ps  {:?}", cp.t * 1e12, cp.kind);
    }

    // 5. The baseline: Newton–Raphson at every 1 ps step.
    let spice = simulate(
        &gate,
        &spice_models,
        &inputs,
        &init,
        &TransientConfig::hspice_1ps(3.0 * d_qwm),
    )?;
    let w = spice.waveform(out)?;
    let m = measure_transition(&w, TransitionKind::Fall, 0.0, tech.vdd)?;
    println!(
        "SPICE: delay = {:.2} ps, slew = {:.2} ps, {} steps worth of NR ({} iterations), {:?}",
        m.delay * 1e12,
        m.slew * 1e12,
        spice.times.len() - 1,
        spice.iterations,
        spice.elapsed
    );

    let err = 100.0 * (d_qwm - m.delay).abs() / m.delay;
    let speedup = spice.elapsed.as_secs_f64() / qwm.elapsed.as_secs_f64();
    println!("\ndelay error {err:.2}%  |  speedup {speedup:.1}x");
    Ok(())
}
