//! Cell characterization: build an NLDM-style delay/slew table for a
//! NAND3 with QWM, query it off-grid, and then demonstrate the paper's
//! core motivation — pre-characterized tables break down when the load
//! is not a lumped capacitor (a pass transistor hanging off the output),
//! while on-the-fly QWM handles the composed stage directly.
//!
//! ```text
//! cargo run --release --example characterization
//! ```

use qwm::circuit::cells;
use qwm::circuit::stage::DeviceKind;
use qwm::circuit::waveform::TransitionKind;
use qwm::core::evaluate::QwmConfig;
use qwm::device::{analytic_models, Geometry, Technology};
use qwm::num::NumError;
use qwm::sta::evaluator::{QwmEvaluator, SpiceEvaluator, StageEvaluator};
use qwm::sta::liberty::{characterize_cell, write_liberty};
use qwm::sta::nldm::NldmTable;

fn main() -> Result<(), NumError> {
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);

    // 1. Characterize a NAND3's falling arc over a slew × load grid.
    let gate = cells::nand(&tech, 3, 2e-15)?;
    let out = gate.node_by_name("out").expect("output");
    let table = NldmTable::characterize(
        &gate,
        &models,
        out,
        TransitionKind::Fall,
        vec![5e-12, 20e-12, 60e-12],
        vec![2e-15, 10e-15, 30e-15],
        &QwmConfig::default(),
    )?;
    println!("NAND3 falling-arc NLDM (delay in ps, rows = input slew, cols = load):");
    print!("{:>10}", "");
    for &l in &table.loads {
        print!("{:>9.0}fF", l * 1e15);
    }
    println!();
    for (i, &sl) in table.slews.iter().enumerate() {
        print!("{:>8.0}ps", sl * 1e12);
        for j in 0..table.loads.len() {
            print!("{:>11.2}", table.delay[i][j] * 1e12);
        }
        println!();
    }

    // 2. Off-grid query vs direct evaluation.
    let (sl, cl) = (12e-12, 18e-15);
    let m = table.query(sl, cl);
    let mut loaded = gate.clone();
    let node = loaded.node_by_name("out").unwrap();
    loaded.add_load(node, cl);
    let direct =
        QwmEvaluator::default().timing(&loaded, &models, node, TransitionKind::Fall, sl)?;
    println!(
        "\noff-grid query (slew 12 ps, load 18 fF): table {:.2} ps vs direct QWM {:.2} ps ({:+.1}%)",
        m.delay * 1e12,
        direct.delay * 1e12,
        100.0 * (m.delay - direct.delay) / direct.delay
    );

    // 3. The paper's point: hang a pass transistor + far capacitance off
    //    the output. The table, which only knows lumped loads, must be
    //    fed *some* equivalent cap; QWM analyzes the real composed stage.
    let far_cap = 25e-15;
    // Build the composed stage (NAND3 + pass device) from scratch.
    let mut b = qwm::circuit::LogicStage::builder("nand3_pass");
    let (vdd, gnd) = (b.vdd(), b.gnd());
    let x = b.node("out"); // the NAND output node, also our observed output
    let far = b.node("far");
    let wn = tech.w_min * 3.0;
    let mut below = gnd;
    for k in 0..3 {
        let above = if k == 2 { x } else { b.node(&format!("n{k}")) };
        let input = b.input(&format!("a{k}"));
        b.transistor(
            DeviceKind::Nmos,
            input,
            above,
            below,
            Geometry::new(wn, tech.l_min),
        );
        b.transistor(
            DeviceKind::Pmos,
            input,
            vdd,
            x,
            Geometry::new(2.0 * tech.w_min, tech.l_min),
        );
        below = above;
    }
    let en = b.input("en");
    b.transistor(
        DeviceKind::Nmos,
        en,
        far,
        x,
        Geometry::new(2.0 * tech.w_min, tech.l_min),
    );
    b.load(far, far_cap);
    b.load(x, 2e-15);
    b.output(x);
    let composed = b.build()?;

    let node = composed.node_by_name("out").unwrap();
    let spice = SpiceEvaluator::default().delay(&composed, &models, node, TransitionKind::Fall)?;
    let qwm = QwmEvaluator::default().delay(&composed, &models, node, TransitionKind::Fall)?;
    // The naive table user lumps the far cap directly onto the output.
    let table_guess = table.query(1e-12, 2e-15 + far_cap);
    println!("\nNAND3 + pass transistor to a 25 fF far node (the paper's Figure 1 situation):");
    println!("  golden SPICE           : {:.2} ps", spice * 1e12);
    println!(
        "  on-the-fly QWM         : {:.2} ps ({:+.1}%)",
        qwm * 1e12,
        100.0 * (qwm - spice) / spice
    );
    println!(
        "  NLDM table, lumped load: {:.2} ps ({:+.1}%)  <- resistive shielding ignored",
        table_guess.delay * 1e12,
        100.0 * (table_guess.delay - spice) / spice
    );

    // 4. Ship the characterization as a Liberty library.
    let cell = characterize_cell(
        "NAND3X1",
        "Y",
        "A",
        &gate,
        &models,
        out,
        vec![5e-12, 20e-12, 60e-12],
        vec![2e-15, 10e-15, 30e-15],
        &QwmConfig::default(),
    )?;
    let lib = write_liberty("qwm_cells", &[cell])?;
    let lib_path = std::env::temp_dir().join("qwm_cells.lib");
    std::fs::write(&lib_path, &lib).expect("write .lib");
    println!(
        "\nLiberty library ({} lines, fall + rise arcs) -> {}",
        lib.lines().count(),
        lib_path.display()
    );
    Ok(())
}
