#![allow(clippy::items_after_test_module)] // workload generators were grown incrementally

//! Cell and workload generators for the paper's experiments.
//!
//! * minimum-size logic gates (inverter, NAND2–4, NOR2) — Table I;
//! * randomly sized NMOS transistor stacks of length 5–10 — Table II;
//! * the Manchester carry chain of Fig. 2, whose longest path is the
//!   6-NMOS stack of Figs. 7 and 9;
//! * the memory decoder tree of Fig. 3, with wire lengths growing
//!   exponentially with tree level — Fig. 10.

use crate::stage::{DeviceKind, LogicStage};
use qwm_device::model::Geometry;
use qwm_device::tech::Technology;
use qwm_num::rng::Rng64;
use qwm_num::{NumError, Result};

/// Default external load for gate-level experiments: a couple of
/// minimum-size gate inputs' worth \[F\].
pub const DEFAULT_LOAD: f64 = 10e-15;

fn nmos_geom(tech: &Technology, w: f64) -> Geometry {
    Geometry::new(w, tech.l_min)
}

/// A minimum-size static CMOS inverter. Input `a`, output `out`.
///
/// ```
/// use qwm_circuit::cells;
/// use qwm_device::tech::Technology;
/// let inv = cells::inverter(&Technology::cmosp35(), cells::DEFAULT_LOAD).unwrap();
/// assert_eq!(inv.inputs().len(), 1);
/// ```
///
/// # Errors
///
/// Propagates builder validation failures (none for valid `tech`).
pub fn inverter(tech: &Technology, load: f64) -> Result<LogicStage> {
    let mut b = LogicStage::builder("inv");
    let (vdd, gnd) = (b.vdd(), b.gnd());
    let out = b.node("out");
    let a = b.input("a");
    b.transistor(DeviceKind::Nmos, a, out, gnd, nmos_geom(tech, tech.w_min));
    b.transistor(
        DeviceKind::Pmos,
        a,
        vdd,
        out,
        nmos_geom(tech, 2.0 * tech.w_min),
    );
    b.output(out);
    b.load(out, load);
    b.build()
}

/// An `n`-input static CMOS NAND (series NMOS stack, parallel PMOS).
/// Inputs `a0 … a{n-1}` with `a0` gating the transistor nearest ground;
/// output `out`. NMOS are up-sized by the stack depth, the usual
/// equal-drive convention.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for `n == 0`.
pub fn nand(tech: &Technology, n: usize, load: f64) -> Result<LogicStage> {
    if n == 0 {
        return Err(NumError::InvalidInput {
            context: "cells::nand",
            detail: "zero inputs".to_string(),
        });
    }
    let mut b = LogicStage::builder(format!("nand{n}"));
    let (vdd, gnd) = (b.vdd(), b.gnd());
    let out = b.node("out");
    let wn = tech.w_min * n as f64;
    let wp = 2.0 * tech.w_min;
    let mut below = gnd;
    for k in 0..n {
        let above = if k + 1 == n {
            out
        } else {
            b.node(&format!("n{}", k + 1))
        };
        let input = b.input(&format!("a{k}"));
        b.transistor(DeviceKind::Nmos, input, above, below, nmos_geom(tech, wn));
        b.transistor(DeviceKind::Pmos, input, vdd, out, nmos_geom(tech, wp));
        below = above;
    }
    b.output(out);
    b.load(out, load);
    b.build()
}

/// An `n`-input static CMOS NOR (parallel NMOS, series PMOS stack).
/// Output `out`; input `a0` gates the PMOS nearest the output.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for `n == 0`.
pub fn nor(tech: &Technology, n: usize, load: f64) -> Result<LogicStage> {
    if n == 0 {
        return Err(NumError::InvalidInput {
            context: "cells::nor",
            detail: "zero inputs".to_string(),
        });
    }
    let mut b = LogicStage::builder(format!("nor{n}"));
    let (vdd, gnd) = (b.vdd(), b.gnd());
    let out = b.node("out");
    let wn = tech.w_min;
    let wp = 2.0 * tech.w_min * n as f64;
    let mut above = vdd;
    for k in 0..n {
        let belowp = if k + 1 == n {
            out
        } else {
            b.node(&format!("p{}", k + 1))
        };
        let input = b.input(&format!("a{k}"));
        b.transistor(DeviceKind::Pmos, input, above, belowp, nmos_geom(tech, wp));
        b.transistor(DeviceKind::Nmos, input, out, gnd, nmos_geom(tech, wn));
        above = belowp;
    }
    b.output(out);
    b.load(out, load);
    b.build()
}

/// A discharge stack of `widths.len()` NMOS transistors: transistor `k`
/// connects node `k+1` to node `k`, node 0 is ground, the top node is the
/// output (paper Fig. 6). Inputs are `g1 … gK` bottom-up.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on an empty width list.
pub fn nmos_stack(tech: &Technology, widths: &[f64], load: f64) -> Result<LogicStage> {
    if widths.is_empty() {
        return Err(NumError::InvalidInput {
            context: "cells::nmos_stack",
            detail: "empty stack".to_string(),
        });
    }
    let k = widths.len();
    let mut b = LogicStage::builder(format!("nstack{k}"));
    let gnd = b.gnd();
    let mut below = gnd;
    for (i, &w) in widths.iter().enumerate() {
        let above = if i + 1 == k {
            b.node("out")
        } else {
            b.node(&format!("n{}", i + 1))
        };
        let input = b.input(&format!("g{}", i + 1));
        b.transistor(DeviceKind::Nmos, input, above, below, nmos_geom(tech, w));
        below = above;
    }
    b.output(below);
    b.load(below, load);
    b.build()
}

/// A charge (pull-up) stack of PMOS transistors from the supply down to
/// the output — the dual of [`nmos_stack`]. Inputs `g1 … gK` top-down
/// (g1 nearest Vdd).
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on an empty width list.
pub fn pmos_stack(tech: &Technology, widths: &[f64], load: f64) -> Result<LogicStage> {
    if widths.is_empty() {
        return Err(NumError::InvalidInput {
            context: "cells::pmos_stack",
            detail: "empty stack".to_string(),
        });
    }
    let k = widths.len();
    let mut b = LogicStage::builder(format!("pstack{k}"));
    let vdd = b.vdd();
    let mut above = vdd;
    for (i, &w) in widths.iter().enumerate() {
        let below = if i + 1 == k {
            b.node("out")
        } else {
            b.node(&format!("p{}", i + 1))
        };
        let input = b.input(&format!("g{}", i + 1));
        b.transistor(DeviceKind::Pmos, input, above, below, nmos_geom(tech, w));
        above = below;
    }
    b.output(above);
    b.load(above, load);
    b.build()
}

/// Random transistor widths for the Table II workload: `k` widths drawn
/// uniformly from 1× to 4× minimum width.
pub fn random_widths(rng: &mut Rng64, tech: &Technology, k: usize) -> Vec<f64> {
    (0..k).map(|_| tech.w_min * rng.range(1.0, 4.0)).collect()
}

/// The Manchester carry chain of Fig. 2 with `bits` bit slices:
/// per-carry-node precharge PMOS gated by `phi`, propagate pass
/// transistors `p0 … p{bits-1}` along the chain, generate pull-downs
/// `g0 … g{bits-1}`, and a `phi`-gated evaluation foot. Outputs are every
/// carry node `c1 … c{bits}`.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for `bits == 0`.
pub fn manchester_carry_chain(tech: &Technology, bits: usize, load: f64) -> Result<LogicStage> {
    if bits == 0 {
        return Err(NumError::InvalidInput {
            context: "cells::manchester_carry_chain",
            detail: "zero bits".to_string(),
        });
    }
    let mut b = LogicStage::builder(format!("manchester{bits}"));
    let (vdd, gnd) = (b.vdd(), b.gnd());
    let phi = b.input("phi");
    let w = 2.0 * tech.w_min;
    // Evaluation foot.
    let ev = b.node("ev");
    b.transistor(DeviceKind::Nmos, phi, ev, gnd, nmos_geom(tech, 2.0 * w));
    // Carry-in node, dischargeable through the foot via g-in ("cin" slice).
    let cin = b.node("c0");
    let gin = b.input("g_in");
    b.transistor(DeviceKind::Nmos, gin, cin, ev, nmos_geom(tech, w));
    b.transistor(DeviceKind::Pmos, phi, vdd, cin, nmos_geom(tech, w));
    let mut prev = cin;
    for k in 0..bits {
        let c = b.node(&format!("c{}", k + 1));
        let p = b.input(&format!("p{k}"));
        let g = b.input(&format!("g{k}"));
        // Propagate pass transistor along the chain.
        b.transistor(DeviceKind::Nmos, p, c, prev, nmos_geom(tech, w));
        // Generate pull-down for this carry node.
        b.transistor(DeviceKind::Nmos, g, c, ev, nmos_geom(tech, w));
        // Precharge.
        b.transistor(DeviceKind::Pmos, phi, vdd, c, nmos_geom(tech, w));
        b.output(c);
        b.load(c, load);
        prev = c;
    }
    b.build()
}

/// The worst-case discharge path of a `bits`-bit Manchester carry chain
/// as a standalone NMOS stack: evaluation foot + carry-in generate +
/// `bits` propagate transistors. For `bits = 4` this is the paper's
/// 6-NMOS stack (Figs. 7 and 9).
///
/// # Errors
///
/// Propagates stack construction failures.
pub fn manchester_longest_path(tech: &Technology, bits: usize, load: f64) -> Result<LogicStage> {
    let w = 2.0 * tech.w_min;
    let mut widths = vec![2.0 * w, w];
    widths.extend(std::iter::repeat_n(w, bits));
    nmos_stack(tech, &widths, load)
}

/// One root-to-leaf path of the memory decoder tree of Fig. 3 with
/// `levels` levels: alternating NMOS pass transistors (gated by `phi`
/// then the address inputs `a1 … a{levels-1}`) and wire segments whose
/// length **doubles** with each level, mimicking the layout. The leaf is
/// the output.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for `levels == 0`.
pub fn decoder_path(
    tech: &Technology,
    levels: usize,
    base_wire_len: f64,
    load: f64,
) -> Result<LogicStage> {
    if levels == 0 {
        return Err(NumError::InvalidInput {
            context: "cells::decoder_path",
            detail: "zero levels".to_string(),
        });
    }
    let mut b = LogicStage::builder(format!("decoder{levels}"));
    let gnd = b.gnd();
    let w = 2.0 * tech.w_min;
    let wire_w = 0.6e-6;
    let mut below = gnd;
    for level in 0..levels {
        // Transistor of this level.
        let t_top = b.node(&format!("t{level}"));
        let input = if level == 0 {
            b.input("phi")
        } else {
            b.input(&format!("a{level}"))
        };
        b.transistor(DeviceKind::Nmos, input, t_top, below, nmos_geom(tech, w));
        // Wire segment to the next level, doubling in length.
        let wire_len = base_wire_len * (1u64 << level) as f64;
        let w_top = if level + 1 == levels {
            b.node("out")
        } else {
            b.node(&format!("w{level}"))
        };
        b.wire(w_top, t_top, wire_w, wire_len);
        below = w_top;
    }
    b.output(below);
    b.load(below, load);
    b.build()
}

/// Geometry of a wire segment that realizes a given resistance and total
/// capacitance under `tech` (used when folding AWE π macromodels back
/// into stage edges).
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for non-positive targets.
pub fn wire_geometry_for(tech: &Technology, r: f64, c_total: f64) -> Result<Geometry> {
    if r <= 0.0 || c_total <= 0.0 {
        return Err(NumError::InvalidInput {
            context: "cells::wire_geometry_for",
            detail: format!("r={r} c={c_total}"),
        });
    }
    // l = r·w/r_sq;  c_area·w·l + 2·c_fringe·l = c_total
    // ⇒ (c_area·r/r_sq)·w² + (2·c_fringe·r/r_sq)·w − c_total = 0.
    let a = tech.wire_c_area * r / tech.wire_r_sq;
    let b = 2.0 * tech.wire_c_fringe * r / tech.wire_r_sq;
    let disc = b * b + 4.0 * a * c_total;
    let w = (-b + disc.sqrt()) / (2.0 * a);
    if w.is_nan() || w <= 0.0 {
        return Err(NumError::InvalidInput {
            context: "cells::wire_geometry_for",
            detail: format!("no positive width for r={r} c={c_total}"),
        });
    }
    let l = r * w / tech.wire_r_sq;
    Ok(Geometry::new(w, l))
}

/// The decoder path of [`decoder_path`] with each long wire replaced by
/// its **AWE π macromodel** (paper §V-C: "We first used AWE approach to
/// build a macro π model for the wire"): the wire's distributed RC
/// ladder is reduced by three-moment matching, the matched resistance
/// and symmetric capacitance become the wire edge, and the asymmetric
/// capacitance remainders are attached as explicit node loads.
///
/// # Errors
///
/// Propagates ladder/reduction failures.
pub fn decoder_path_awe(
    tech: &Technology,
    levels: usize,
    base_wire_len: f64,
    load: f64,
    ladder_segments: usize,
) -> Result<LogicStage> {
    if levels == 0 {
        return Err(NumError::InvalidInput {
            context: "cells::decoder_path_awe",
            detail: "zero levels".to_string(),
        });
    }
    let mut b = LogicStage::builder(format!("decoder{levels}_awe"));
    let gnd = b.gnd();
    let w = 2.0 * tech.w_min;
    let wire_w = 0.6e-6;
    let mut below = gnd;
    for level in 0..levels {
        let t_top = b.node(&format!("t{level}"));
        let input = if level == 0 {
            b.input("phi")
        } else {
            b.input(&format!("a{level}"))
        };
        b.transistor(DeviceKind::Nmos, input, t_top, below, nmos_geom(tech, w));
        let wire_len = base_wire_len * (1u64 << level) as f64;
        let pi = qwm_interconnect::wire_pi_model(tech, wire_w, wire_len, ladder_segments)?;
        let w_top = if level + 1 == levels {
            b.node("out")
        } else {
            b.node(&format!("w{level}"))
        };
        // Edge carries R plus the symmetric part of the π caps; the
        // asymmetric remainders become explicit loads (driver side is
        // t_top — the wire is driven from below in this layout).
        let cmin = pi.c_near.min(pi.c_far);
        let geom = wire_geometry_for(tech, pi.r, (2.0 * cmin).max(1e-18))?;
        let e = b.wire(w_top, t_top, geom.w, geom.l);
        let _ = e;
        b.load(t_top, (pi.c_near - cmin).max(0.0));
        b.load(w_top, (pi.c_far - cmin).max(0.0));
        below = w_top;
    }
    b.output(below);
    b.load(below, load);
    b.build()
}

/// The decoder path with each wire expanded into a `segments`-section
/// distributed RC ladder of short wire edges — the golden model the AWE
/// reduction is judged against (Fig. 10's HSPICE side).
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for zero levels or segments.
pub fn decoder_path_distributed(
    tech: &Technology,
    levels: usize,
    base_wire_len: f64,
    load: f64,
    segments: usize,
) -> Result<LogicStage> {
    if levels == 0 || segments == 0 {
        return Err(NumError::InvalidInput {
            context: "cells::decoder_path_distributed",
            detail: format!("levels={levels} segments={segments}"),
        });
    }
    let mut b = LogicStage::builder(format!("decoder{levels}_dist"));
    let gnd = b.gnd();
    let w = 2.0 * tech.w_min;
    let wire_w = 0.6e-6;
    let mut below = gnd;
    for level in 0..levels {
        let t_top = b.node(&format!("t{level}"));
        let input = if level == 0 {
            b.input("phi")
        } else {
            b.input(&format!("a{level}"))
        };
        b.transistor(DeviceKind::Nmos, input, t_top, below, nmos_geom(tech, w));
        let wire_len = base_wire_len * (1u64 << level) as f64;
        let seg_len = wire_len / segments as f64;
        let mut at = t_top;
        for s in 0..segments {
            let next = if level + 1 == levels && s + 1 == segments {
                b.node("out")
            } else if s + 1 == segments {
                b.node(&format!("w{level}"))
            } else {
                b.node(&format!("w{level}_{s}"))
            };
            b.wire(next, at, wire_w, seg_len);
            at = next;
        }
        below = at;
    }
    b.output(below);
    b.load(below, load);
    b.build()
}

/// An AOI21 (AND-OR-INVERT) complex gate: `out = !(a·b + c)`. The
/// pull-down network is the series pair a–b in parallel with c; the
/// pull-up is (a ∥ b) in series with c. Exercises stages whose
/// conduction networks are neither pure chains nor simple gates.
///
/// # Errors
///
/// Propagates builder validation failures.
pub fn aoi21(tech: &Technology, load: f64) -> Result<LogicStage> {
    let mut b = LogicStage::builder("aoi21");
    let (vdd, gnd) = (b.vdd(), b.gnd());
    let out = b.node("out");
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let wn = 2.0 * tech.w_min;
    let wp = 2.0 * tech.w_min;
    // Pull-down: out -> n1 -> gnd via a,b; out -> gnd via c.
    let n1 = b.node("n1");
    b.transistor(DeviceKind::Nmos, a, out, n1, nmos_geom(tech, wn));
    b.transistor(DeviceKind::Nmos, bb, n1, gnd, nmos_geom(tech, wn));
    b.transistor(DeviceKind::Nmos, c, out, gnd, nmos_geom(tech, tech.w_min));
    // Pull-up: vdd -> p1 via a and via b (parallel), p1 -> out via c.
    let p1 = b.node("p1");
    b.transistor(DeviceKind::Pmos, a, vdd, p1, nmos_geom(tech, wp));
    b.transistor(DeviceKind::Pmos, bb, vdd, p1, nmos_geom(tech, wp));
    b.transistor(DeviceKind::Pmos, c, p1, out, nmos_geom(tech, 2.0 * wp));
    b.output(out);
    b.load(out, load);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::NodeKind;

    fn tech() -> Technology {
        Technology::cmosp35()
    }

    #[test]
    fn inverter_shape() {
        let inv = inverter(&tech(), DEFAULT_LOAD).unwrap();
        assert_eq!(inv.edge_count(), 2);
        assert_eq!(inv.inputs().len(), 1);
        assert_eq!(inv.internal_nodes().len(), 1);
    }

    #[test]
    fn nand_shapes() {
        for n in 1..=4 {
            let g = nand(&tech(), n, DEFAULT_LOAD).unwrap();
            assert_eq!(g.edge_count(), 2 * n, "nand{n}");
            assert_eq!(g.inputs().len(), n);
            // n-1 internal stack nodes plus the output.
            assert_eq!(g.internal_nodes().len(), n);
        }
        assert!(nand(&tech(), 0, DEFAULT_LOAD).is_err());
    }

    #[test]
    fn nand_pulldown_is_a_series_chain() {
        let g = nand(&tech(), 3, DEFAULT_LOAD).unwrap();
        // Walk from out to gnd via NMOS edges only.
        let mut at = g.node_by_name("out").unwrap();
        let mut steps = 0;
        'walk: while at != g.sink() {
            for &(e, other) in g.incident(at) {
                if g.edge(e).kind == DeviceKind::Nmos && other != at && other.0 != at.0 {
                    // Move strictly "down" (toward smaller names / gnd).
                    if other == g.sink() || g.node(other).name.starts_with('n') {
                        at = other;
                        steps += 1;
                        if steps > 10 {
                            break 'walk;
                        }
                        continue 'walk;
                    }
                }
            }
            panic!("pull-down chain broken at {}", g.node(at).name);
        }
        assert_eq!(steps, 3);
    }

    #[test]
    fn nor_shape() {
        let g = nor(&tech(), 2, DEFAULT_LOAD).unwrap();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.inputs().len(), 2);
        assert!(nor(&tech(), 0, DEFAULT_LOAD).is_err());
    }

    #[test]
    fn stack_indexing_matches_figure6() {
        let widths = vec![1e-6, 2e-6, 3e-6];
        let s = nmos_stack(&tech(), &widths, DEFAULT_LOAD).unwrap();
        assert_eq!(s.edge_count(), 3);
        // Edge k connects node k+1 (src) to node k (snk).
        let e0 = s.edge(crate::stage::EdgeId(0));
        assert_eq!(e0.snk, s.sink());
        assert_eq!(e0.geom.w, 1e-6);
        let out = s.node_by_name("out").unwrap();
        let e2 = s.edge(crate::stage::EdgeId(2));
        assert_eq!(e2.src, out);
        assert!(nmos_stack(&tech(), &[], DEFAULT_LOAD).is_err());
    }

    #[test]
    fn pmos_stack_hangs_from_supply() {
        let s = pmos_stack(&tech(), &[1e-6, 1e-6], DEFAULT_LOAD).unwrap();
        let e0 = s.edge(crate::stage::EdgeId(0));
        assert_eq!(e0.src, s.source());
        assert_eq!(s.outputs().len(), 1);
        assert!(pmos_stack(&tech(), &[], DEFAULT_LOAD).is_err());
    }

    #[test]
    fn random_widths_are_seeded_and_bounded() {
        let t = tech();
        let mut rng = Rng64::seed_from_u64(42);
        let a = random_widths(&mut rng, &t, 8);
        let mut rng = Rng64::seed_from_u64(42);
        let b = random_widths(&mut rng, &t, 8);
        assert_eq!(a, b, "deterministic under a fixed seed");
        for w in &a {
            assert!(*w >= t.w_min && *w < 4.0 * t.w_min);
        }
    }

    #[test]
    fn manchester_chain_shape() {
        let m = manchester_carry_chain(&tech(), 4, DEFAULT_LOAD).unwrap();
        // foot + cin(G+P precharge) + 4 × (pass + generate + precharge).
        assert_eq!(m.edge_count(), 1 + 2 + 3 * 4);
        assert_eq!(m.outputs().len(), 4);
        // phi gates the foot and all 5 precharge PMOS.
        let phi = m.input_by_name("phi").unwrap();
        assert_eq!(m.input(phi).edges.len(), 6);
        assert!(manchester_carry_chain(&tech(), 0, DEFAULT_LOAD).is_err());
    }

    #[test]
    fn manchester_longest_path_is_six_for_four_bits() {
        let p = manchester_longest_path(&tech(), 4, DEFAULT_LOAD).unwrap();
        assert_eq!(p.edge_count(), 6, "paper's 6-NMOS stack");
    }

    #[test]
    fn decoder_path_wires_double() {
        let d = decoder_path(&tech(), 3, 20e-6, DEFAULT_LOAD).unwrap();
        let wires: Vec<f64> = d
            .edges()
            .iter()
            .filter(|e| e.kind == DeviceKind::Wire)
            .map(|e| e.geom.l)
            .collect();
        assert_eq!(wires, vec![20e-6, 40e-6, 80e-6]);
        assert_eq!(
            d.edges()
                .iter()
                .filter(|e| e.kind == DeviceKind::Nmos)
                .count(),
            3
        );
        assert!(decoder_path(&tech(), 0, 20e-6, DEFAULT_LOAD).is_err());
    }

    #[test]
    fn aoi21_shape() {
        let g = aoi21(&tech(), DEFAULT_LOAD).unwrap();
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.inputs().len(), 3);
        // Pull-down worst path: out -> n1 -> gnd (two series NMOS).
        let out = g.node_by_name("out").unwrap();
        assert!(g.node(out).load_cap >= DEFAULT_LOAD);
    }

    #[test]
    fn mux2_pass_shape() {
        let g = mux2_pass(&tech(), DEFAULT_LOAD).unwrap();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.inputs().len(), 3);
        assert!(g.node_by_name("d0").is_some());
    }

    #[test]
    fn domino_nand_shape() {
        let g = domino_nand(&tech(), 3, DEFAULT_LOAD).unwrap();
        // precharge + foot + 3 evaluate.
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.inputs().len(), 4);
        assert!(domino_nand(&tech(), 0, DEFAULT_LOAD).is_err());
    }

    #[test]
    fn decoder_tree_netlist_shape() {
        let nl = decoder_tree_netlist(&tech(), 3, 50e-6, DEFAULT_LOAD).unwrap();
        // foot + (2 + 4 + 8) transistors, 14 wires.
        let transistors = nl
            .devices()
            .iter()
            .filter(|d| d.kind != DeviceKind::Wire)
            .count();
        assert_eq!(transistors, 15);
        assert_eq!(nl.devices().len() - transistors, 14);
        assert_eq!(nl.primary_outputs().len(), 8);
        // 1 clock + 3 address pairs.
        assert_eq!(nl.primary_inputs().len(), 7);
        assert!(decoder_tree_netlist(&tech(), 0, 50e-6, DEFAULT_LOAD).is_err());
    }

    #[test]
    fn all_cells_have_rails() {
        for s in [
            inverter(&tech(), DEFAULT_LOAD).unwrap(),
            nand(&tech(), 3, DEFAULT_LOAD).unwrap(),
            nor(&tech(), 2, DEFAULT_LOAD).unwrap(),
            manchester_carry_chain(&tech(), 2, DEFAULT_LOAD).unwrap(),
        ] {
            assert_eq!(s.node(s.source()).kind, NodeKind::Supply);
            assert_eq!(s.node(s.sink()).kind, NodeKind::Ground);
        }
    }
}

/// A 2:1 pass-transistor multiplexer with NMOS-only switches: output
/// follows `d0` when `s` is low via `sn`-gated device, `d1` when `s` is
/// high. Inputs `d0`/`d1` are the pass-transistor *channel* sides, so
/// they are modeled as stage-internal nodes driven by ideal rails
/// through strong always-on devices; select lines `s`/`sn` are the stage
/// inputs. Exercises pass-transistor topologies (paper Example 1).
///
/// # Errors
///
/// Propagates builder validation failures.
pub fn mux2_pass(tech: &Technology, load: f64) -> Result<LogicStage> {
    let mut b = LogicStage::builder("mux2");
    let (vdd, gnd) = (b.vdd(), b.gnd());
    let out = b.node("out");
    let s = b.input("s");
    let sn = b.input("sn");
    let drive = b.input("drive");
    let w = 2.0 * tech.w_min;
    // Data rails: d0 tied low, d1 tied high through strong drivers
    // (always-on via `drive`).
    let d0 = b.node("d0");
    let d1 = b.node("d1");
    b.transistor(DeviceKind::Nmos, drive, d0, gnd, nmos_geom(tech, 4.0 * w));
    b.transistor(DeviceKind::Pmos, drive, vdd, d1, nmos_geom(tech, 4.0 * w));
    // Pass switches.
    b.transistor(DeviceKind::Nmos, sn, out, d0, nmos_geom(tech, w));
    b.transistor(DeviceKind::Nmos, s, out, d1, nmos_geom(tech, w));
    b.output(out);
    b.load(out, load);
    b.build()
}

/// A dynamic (domino-style) NAND`n`: clocked precharge PMOS, `n` series
/// NMOS evaluate transistors and a clocked foot. During evaluation
/// (`phi` high, all inputs high) the output discharges through an
/// `(n+1)`-deep stack — the dynamic-logic workload class the Manchester
/// chain belongs to.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for `n == 0`.
pub fn domino_nand(tech: &Technology, n: usize, load: f64) -> Result<LogicStage> {
    if n == 0 {
        return Err(NumError::InvalidInput {
            context: "cells::domino_nand",
            detail: "zero inputs".to_string(),
        });
    }
    let mut b = LogicStage::builder(format!("domino_nand{n}"));
    let (vdd, gnd) = (b.vdd(), b.gnd());
    let out = b.node("out");
    let phi = b.input("phi");
    let w = 2.0 * tech.w_min;
    // Precharge.
    b.transistor(DeviceKind::Pmos, phi, vdd, out, nmos_geom(tech, w));
    // Foot.
    let foot = b.node("foot");
    b.transistor(DeviceKind::Nmos, phi, foot, gnd, nmos_geom(tech, 2.0 * w));
    // Evaluate stack from foot up to out.
    let mut below = foot;
    for k in 0..n {
        let above = if k + 1 == n {
            out
        } else {
            b.node(&format!("e{}", k + 1))
        };
        let input = b.input(&format!("a{k}"));
        b.transistor(
            DeviceKind::Nmos,
            input,
            above,
            below,
            nmos_geom(tech, w * n as f64),
        );
        below = above;
    }
    b.output(out);
    b.load(out, load);
    b.build()
}

/// The complete memory decoder tree of Fig. 3 as a flat netlist: a
/// `phi`-gated foot, then `levels` levels of NMOS pass transistors
/// branching binary-tree-style (level `l` gated by address bit `a{l}` on
/// one branch and its complement `a{l}b` on the other), each followed by
/// a wire whose length doubles with the level. All 2^levels leaves carry
/// `leaf_load` and are primary outputs named `leaf0 …`.
///
/// The whole tree is one channel-connected component — the stress case
/// for per-leaf worst-path extraction.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for `levels == 0`.
pub fn decoder_tree_netlist(
    tech: &Technology,
    levels: usize,
    base_wire_len: f64,
    leaf_load: f64,
) -> Result<crate::netlist::Netlist> {
    if levels == 0 {
        return Err(NumError::InvalidInput {
            context: "cells::decoder_tree_netlist",
            detail: "zero levels".to_string(),
        });
    }
    let mut nl = crate::netlist::Netlist::new();
    let gnd = nl.gnd();
    let w = 2.0 * tech.w_min;
    let wire_w = 0.6e-6;
    let phi = nl.net("phi");
    nl.add_primary_input(phi);
    let root = nl.net("root");
    nl.add_transistor(
        "Mfoot",
        DeviceKind::Nmos,
        phi,
        root,
        gnd,
        Geometry::new(2.0 * w, tech.l_min),
    );
    // Address bits (true and complement) as primary inputs.
    let mut addr = Vec::new();
    for l in 0..levels {
        let a = nl.net(&format!("a{l}"));
        let ab = nl.net(&format!("a{l}b"));
        nl.add_primary_input(a);
        nl.add_primary_input(ab);
        addr.push((a, ab));
    }
    // Breadth-first expansion.
    let mut frontier = vec![root];
    let mut leaf_counter = 0usize;
    for (l, &(a, ab)) in addr.iter().enumerate() {
        let wire_len = base_wire_len * (1u64 << l) as f64;
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for (pi, &parent) in frontier.iter().enumerate() {
            for (side, gate) in [(0usize, a), (1usize, ab)] {
                let is_leaf_level = l + 1 == levels;
                let t_net = nl.net(&format!("t{l}_{pi}_{side}"));
                nl.add_transistor(
                    format!("M{l}_{pi}_{side}"),
                    DeviceKind::Nmos,
                    gate,
                    t_net,
                    parent,
                    Geometry::new(w, tech.l_min),
                );
                let end = if is_leaf_level {
                    let leaf = nl.net(&format!("leaf{leaf_counter}"));
                    leaf_counter += 1;
                    leaf
                } else {
                    nl.net(&format!("w{l}_{pi}_{side}"))
                };
                nl.add_wire(format!("W{l}_{pi}_{side}"), end, t_net, wire_w, wire_len);
                if is_leaf_level {
                    nl.add_cap(end, leaf_load);
                    nl.add_primary_output(end);
                }
                next.push(end);
            }
        }
        frontier = next;
    }
    Ok(nl)
}
