//! The CMOS logic stage as a polar directed graph (paper Definition 1).
//!
//! A logic stage is the unit of transistor-level timing analysis: a set
//! of channel-connected transistors and wire segments between the supply
//! (the graph *source*) and ground (the graph *sink*), with a set of
//! inputs (gate nets) and outputs (nodes observed by downstream stages).
//!
//! ```text
//! Definition 1: ⟨N, E, s, t, I, O⟩
//!   Node = { incoming: 2^Edge, outgoing: 2^Edge }
//!   Edge = { kind: Device, src, snk: Node, w, l: ℝ }
//!   Device = { nmos, pmos, wire }
//! ```

use qwm_device::model::{Geometry, ModelSet, Polarity, TermVoltage};
use qwm_num::{NumError, Result};
use std::collections::HashMap;

/// Index of a node within a [`LogicStage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Index of an edge (circuit element) within a [`LogicStage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub usize);

/// Index of an input (gate net) within a [`LogicStage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InputId(pub usize);

/// The three circuit-element kinds of Definition 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// N-channel transistor.
    Nmos,
    /// P-channel transistor.
    Pmos,
    /// Wire segment (linear element, no gate).
    Wire,
}

impl DeviceKind {
    /// The transistor polarity, or `None` for wires.
    pub fn polarity(self) -> Option<Polarity> {
        match self {
            DeviceKind::Nmos => Some(Polarity::Nmos),
            DeviceKind::Pmos => Some(Polarity::Pmos),
            DeviceKind::Wire => None,
        }
    }
}

/// What a node is electrically tied to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The graph source `s`: the supply rail (fixed at Vdd).
    Supply,
    /// The graph sink `t`: the ground rail (fixed at 0).
    Ground,
    /// An ordinary circuit node with a state variable.
    Internal,
}

/// A node of the stage graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Human-readable name (unique within the stage).
    pub name: String,
    /// Electrical role.
    pub kind: NodeKind,
    /// Edges whose `snk` is this node.
    pub incoming: Vec<EdgeId>,
    /// Edges whose `src` is this node.
    pub outgoing: Vec<EdgeId>,
    /// External load capacitance attached at this node \[F\].
    pub load_cap: f64,
}

/// An edge of the stage graph: one circuit element.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Element kind.
    pub kind: DeviceKind,
    /// Source node.
    pub src: NodeId,
    /// Sink node.
    pub snk: NodeId,
    /// Geometry (w, l and optional junction data).
    pub geom: Geometry,
    /// The gate input driving this element (`None` for wires and for
    /// node-gated transistors).
    pub input: Option<InputId>,
    /// A stage node driving this element's gate instead of an external
    /// input — feedback devices (keepers, latches) and fully flattened
    /// circuits (ring oscillators) use this.
    pub gate_node: Option<NodeId>,
}

/// A named input (gate net).
#[derive(Debug, Clone)]
pub struct Input {
    /// Input name (unique within the stage).
    pub name: String,
    /// Edges gated by this input.
    pub edges: Vec<EdgeId>,
}

/// A CMOS logic stage: the polar directed graph ⟨N, E, s, t, I, O⟩.
#[derive(Debug, Clone)]
pub struct LogicStage {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    inputs: Vec<Input>,
    outputs: Vec<NodeId>,
    source: NodeId,
    sink: NodeId,
    node_names: HashMap<String, NodeId>,
    input_names: HashMap<String, InputId>,
    /// Per-node incident adjacency `(edge, neighbour)` — outgoing then
    /// incoming — frozen at [`StageBuilder::build`]. Topology is
    /// immutable after build (only geometry and loads may change), so
    /// the hot paths borrow these slices instead of re-deriving
    /// adjacency per query.
    incident: Vec<Vec<(EdgeId, NodeId)>>,
    /// Per-node edges whose *gate* is tied to the node, in edge order —
    /// node-gated loading without an O(edges) scan per `node_cap` call.
    gate_loads: Vec<Vec<EdgeId>>,
}

impl LogicStage {
    /// Starts building a stage with the given name. The supply (`vdd`)
    /// and ground (`gnd`) rails are created automatically.
    pub fn builder(name: impl Into<String>) -> StageBuilder {
        StageBuilder::new(name)
    }

    /// Stage name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges, indexable by [`EdgeId`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// All inputs, indexable by [`InputId`].
    pub fn inputs(&self) -> &[Input] {
        &self.inputs
    }

    /// The declared output nodes `O`.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The supply node `s`.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The ground node `t`.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// Node lookup by id.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Edge lookup by id.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// Input lookup by id.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn input(&self, id: InputId) -> &Input {
        &self.inputs[id.0]
    }

    /// Resolves a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.node_names.get(name).copied()
    }

    /// Resolves an input by name.
    pub fn input_by_name(&self, name: &str) -> Option<InputId> {
        self.input_names.get(name).copied()
    }

    /// Ids of all internal (state-carrying) nodes.
    pub fn internal_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .map(NodeId)
            .filter(|&id| self.nodes[id.0].kind == NodeKind::Internal)
            .collect()
    }

    /// Edges incident to `id` (either direction), with the neighbour
    /// node — outgoing then incoming. A borrow of the adjacency frozen
    /// at build time, not a fresh allocation.
    pub fn incident(&self, id: NodeId) -> &[(EdgeId, NodeId)] {
        &self.incident[id.0]
    }

    /// Total capacitance to ground at a node (paper Eq. (1)): the sum of
    /// every incident element's terminal contribution at node voltage `v`
    /// plus the external load.
    pub fn node_cap(&self, id: NodeId, models: &ModelSet, v: f64) -> f64 {
        let mut c = self.nodes[id.0].load_cap;
        // Gate loading from node-gated transistors (precomputed list,
        // same edge order as a full scan).
        for &e in &self.gate_loads[id.0] {
            let edge = &self.edges[e.0];
            if let Some(p) = edge.kind.polarity() {
                c += models.for_polarity(p).input_cap(&edge.geom);
            }
        }
        for &(e, _) in self.incident(id).iter() {
            let edge = &self.edges[e.0];
            let model: &dyn qwm_device::DeviceModel = match edge.kind {
                DeviceKind::Nmos => models.for_polarity(Polarity::Nmos),
                DeviceKind::Pmos => models.for_polarity(Polarity::Pmos),
                DeviceKind::Wire => {
                    // π-lumped wire: half the total cap at each terminal,
                    // voltage independent.
                    c += 0.5 * qwm_device::caps::wire_cap(models.tech(), edge.geom.w, edge.geom.l);
                    continue;
                }
            };
            if edge.src == id {
                c += model.src_cap(&edge.geom, v);
            } else {
                c += model.snk_cap(&edge.geom, v);
            }
        }
        c
    }

    /// The gate-capacitance load this stage presents on one of its
    /// inputs — what a *driving* stage sees (`inputcap` totals).
    pub fn input_cap(&self, id: InputId, models: &ModelSet) -> f64 {
        self.inputs[id.0]
            .edges
            .iter()
            .map(|&e| {
                let edge = &self.edges[e.0];
                match edge.kind.polarity() {
                    Some(p) => models.for_polarity(p).input_cap(&edge.geom),
                    None => 0.0,
                }
            })
            .sum()
    }

    /// Evaluates the terminal-voltage tuple of an edge given per-node
    /// voltages and per-input gate voltages.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are shorter than the node/input counts.
    pub fn edge_voltages(&self, e: EdgeId, node_v: &[f64], input_v: &[f64]) -> TermVoltage {
        let edge = &self.edges[e.0];
        let input = match (edge.input, edge.gate_node) {
            (Some(i), _) => input_v[i.0],
            (None, Some(n)) => node_v[n.0],
            (None, None) => 0.0,
        };
        TermVoltage {
            input,
            src: node_v[edge.src.0],
            snk: node_v[edge.snk.0],
        }
    }

    /// Replaces the geometry of an edge (incremental transistor
    /// resizing).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range edge id.
    pub fn set_edge_geometry(&mut self, e: EdgeId, geom: Geometry) {
        self.edges[e.0].geom = geom;
    }

    /// Adds external load capacitance at a node after construction
    /// (load sweeps during cell characterization).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node id.
    pub fn add_load(&mut self, node: NodeId, cap: f64) {
        self.nodes[node.0].load_cap += cap;
    }

    /// Number of nodes (including the two rails).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

/// Incremental builder for [`LogicStage`] (the graph shape makes a plain
/// constructor unwieldy).
#[derive(Debug)]
pub struct StageBuilder {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    inputs: Vec<Input>,
    outputs: Vec<NodeId>,
    node_names: HashMap<String, NodeId>,
    input_names: HashMap<String, InputId>,
}

impl StageBuilder {
    fn new(name: impl Into<String>) -> Self {
        let mut b = StageBuilder {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            node_names: HashMap::new(),
            input_names: HashMap::new(),
        };
        b.push_node("vdd", NodeKind::Supply);
        b.push_node("gnd", NodeKind::Ground);
        b
    }

    fn push_node(&mut self, name: &str, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.to_string(),
            kind,
            incoming: Vec::new(),
            outgoing: Vec::new(),
            load_cap: 0.0,
        });
        self.node_names.insert(name.to_string(), id);
        id
    }

    /// The supply node (always present).
    pub fn vdd(&self) -> NodeId {
        NodeId(0)
    }

    /// The ground node (always present).
    pub fn gnd(&self) -> NodeId {
        NodeId(1)
    }

    /// Adds (or returns) an internal node by name.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_names.get(name) {
            return id;
        }
        self.push_node(name, NodeKind::Internal)
    }

    /// Adds (or returns) an input by name.
    pub fn input(&mut self, name: &str) -> InputId {
        if let Some(&id) = self.input_names.get(name) {
            return id;
        }
        let id = InputId(self.inputs.len());
        self.inputs.push(Input {
            name: name.to_string(),
            edges: Vec::new(),
        });
        self.input_names.insert(name.to_string(), id);
        id
    }

    /// Adds a transistor edge from `src` to `snk`, gated by `input`.
    pub fn transistor(
        &mut self,
        kind: DeviceKind,
        input: InputId,
        src: NodeId,
        snk: NodeId,
        geom: Geometry,
    ) -> EdgeId {
        debug_assert!(kind != DeviceKind::Wire, "use wire() for wires");
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            kind,
            src,
            snk,
            geom,
            input: Some(input),
            gate_node: None,
        });
        self.nodes[src.0].outgoing.push(id);
        self.nodes[snk.0].incoming.push(id);
        self.inputs[input.0].edges.push(id);
        id
    }

    /// Adds a transistor whose gate is driven by another **stage node**
    /// (feedback devices, flattened multi-stage circuits).
    pub fn transistor_gated_by_node(
        &mut self,
        kind: DeviceKind,
        gate: NodeId,
        src: NodeId,
        snk: NodeId,
        geom: Geometry,
    ) -> EdgeId {
        debug_assert!(kind != DeviceKind::Wire, "use wire() for wires");
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            kind,
            src,
            snk,
            geom,
            input: None,
            gate_node: Some(gate),
        });
        self.nodes[src.0].outgoing.push(id);
        self.nodes[snk.0].incoming.push(id);
        id
    }

    /// Adds a wire edge from `src` to `snk` with the given `w × l`.
    pub fn wire(&mut self, src: NodeId, snk: NodeId, w: f64, l: f64) -> EdgeId {
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            kind: DeviceKind::Wire,
            src,
            snk,
            geom: Geometry::new(w, l),
            input: None,
            gate_node: None,
        });
        self.nodes[src.0].outgoing.push(id);
        self.nodes[snk.0].incoming.push(id);
        id
    }

    /// Declares `node` as a stage output.
    pub fn output(&mut self, node: NodeId) -> &mut Self {
        if !self.outputs.contains(&node) {
            self.outputs.push(node);
        }
        self
    }

    /// Attaches external load capacitance at `node` \[F\].
    pub fn load(&mut self, node: NodeId, cap: f64) -> &mut Self {
        self.nodes[node.0].load_cap += cap;
        self
    }

    /// Finalizes the stage.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] if the stage has no edges, no
    /// outputs, or an edge with a non-positive geometry.
    pub fn build(self) -> Result<LogicStage> {
        if self.edges.is_empty() {
            return Err(NumError::InvalidInput {
                context: "StageBuilder::build",
                detail: "stage has no circuit elements".to_string(),
            });
        }
        if self.outputs.is_empty() {
            return Err(NumError::InvalidInput {
                context: "StageBuilder::build",
                detail: "stage declares no outputs".to_string(),
            });
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.geom.w <= 0.0 || e.geom.l <= 0.0 {
                return Err(NumError::InvalidInput {
                    context: "StageBuilder::build",
                    detail: format!("edge {i} has non-positive geometry"),
                });
            }
        }
        // Freeze the adjacency caches: topology cannot change after
        // build (only geometry and loads), so the per-node incident and
        // node-gated lists are derived once here.
        let incident: Vec<Vec<(EdgeId, NodeId)>> = self
            .nodes
            .iter()
            .map(|n| {
                let mut out = Vec::with_capacity(n.incoming.len() + n.outgoing.len());
                for &e in &n.outgoing {
                    out.push((e, self.edges[e.0].snk));
                }
                for &e in &n.incoming {
                    out.push((e, self.edges[e.0].src));
                }
                out
            })
            .collect();
        let gate_loads: Vec<Vec<EdgeId>> = (0..self.nodes.len())
            .map(|i| {
                self.edges
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.gate_node == Some(NodeId(i)))
                    .map(|(j, _)| EdgeId(j))
                    .collect()
            })
            .collect();
        Ok(LogicStage {
            name: self.name,
            nodes: self.nodes,
            edges: self.edges,
            inputs: self.inputs,
            outputs: self.outputs,
            source: NodeId(0),
            sink: NodeId(1),
            node_names: self.node_names,
            input_names: self.input_names,
            incident,
            gate_loads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qwm_device::{analytic_models, Technology};

    /// Builds the paper's Example 4-style stage: a 2-input NAND feeding a
    /// pass transistor through a wire (Figure 1 / Figure 4).
    fn example_stage() -> LogicStage {
        let tech = Technology::cmosp35();
        let g = Geometry::new(1e-6, tech.l_min);
        let mut b = LogicStage::builder("example4");
        let (vdd, gnd) = (b.vdd(), b.gnd());
        let n1 = b.node("n1");
        let n3 = b.node("n3");
        let n4 = b.node("n4");
        let a = b.input("a");
        let c = b.input("c");
        let pass = b.input("pass");
        // Pull-down path: n3 -> n1 -> gnd.
        b.transistor(DeviceKind::Nmos, a, n1, gnd, g);
        b.transistor(DeviceKind::Nmos, c, n3, n1, g);
        // Pull-ups in parallel: vdd -> n3.
        b.transistor(DeviceKind::Pmos, a, vdd, n3, g);
        b.transistor(DeviceKind::Pmos, c, vdd, n3, g);
        // Pass transistor then wire to the output.
        let n5 = b.node("n5");
        b.transistor(DeviceKind::Nmos, pass, n3, n5, g);
        b.wire(n5, n4, 0.6e-6, 20e-6);
        b.output(n4);
        b.load(n4, 5e-15);
        b.build().unwrap()
    }

    #[test]
    fn graph_shape_matches_definition() {
        let s = example_stage();
        assert_eq!(s.node(s.source()).kind, NodeKind::Supply);
        assert_eq!(s.node(s.sink()).kind, NodeKind::Ground);
        assert_eq!(s.edge_count(), 6);
        assert_eq!(s.inputs().len(), 3);
        assert_eq!(s.outputs().len(), 1);
        assert_eq!(s.internal_nodes().len(), 4);
        assert_eq!(s.name(), "example4");
    }

    #[test]
    fn name_lookups() {
        let s = example_stage();
        let n3 = s.node_by_name("n3").unwrap();
        assert_eq!(s.node(n3).name, "n3");
        assert!(s.node_by_name("nope").is_none());
        let a = s.input_by_name("a").unwrap();
        assert_eq!(s.input(a).name, "a");
        assert_eq!(s.input(a).edges.len(), 2, "input a gates one N and one P");
    }

    #[test]
    fn incidence_is_symmetric() {
        let s = example_stage();
        for (ei, e) in s.edges().iter().enumerate() {
            let id = EdgeId(ei);
            assert!(s.incident(e.src).iter().any(|&(x, _)| x == id));
            assert!(s.incident(e.snk).iter().any(|&(x, _)| x == id));
        }
    }

    #[test]
    fn node_cap_includes_load_junctions_and_wires() {
        let s = example_stage();
        let models = analytic_models(&Technology::cmosp35());
        let n4 = s.node_by_name("n4").unwrap();
        let c = s.node_cap(n4, &models, 3.3);
        // At least the explicit 5 fF load plus half the wire cap.
        assert!(c > 5e-15);
        // Voltage dependence: NMOS junction caps shrink with reverse
        // bias (n1 touches only NMOS junctions; n3 mixes N and P whose
        // biases move oppositely, so it is not monotone).
        let n1 = s.node_by_name("n1").unwrap();
        assert!(s.node_cap(n1, &models, 3.3) < s.node_cap(n1, &models, 0.0));
    }

    #[test]
    fn input_cap_sums_gate_loads() {
        let s = example_stage();
        let models = analytic_models(&Technology::cmosp35());
        let a = s.input_by_name("a").unwrap();
        let pass = s.input_by_name("pass").unwrap();
        // Input a gates two devices, pass gates one.
        assert!(s.input_cap(a, &models) > s.input_cap(pass, &models));
    }

    #[test]
    fn edge_voltage_resolution() {
        let s = example_stage();
        let node_v = vec![3.3, 0.0, 1.0, 2.0, 2.5, 2.2];
        let input_v = vec![3.3, 0.0, 1.5];
        let tv = s.edge_voltages(EdgeId(0), &node_v, &input_v);
        assert_eq!(tv.input, 3.3);
        // Wire edge has no input: reads 0.
        let tvw = s.edge_voltages(EdgeId(5), &node_v, &input_v);
        assert_eq!(tvw.input, 0.0);
    }

    #[test]
    fn builder_validation() {
        let b = LogicStage::builder("empty");
        assert!(b.build().is_err());

        let mut b = LogicStage::builder("no-output");
        let gnd = b.gnd();
        let n = b.node("n");
        let i = b.input("i");
        b.transistor(DeviceKind::Nmos, i, n, gnd, Geometry::new(1e-6, 0.35e-6));
        assert!(b.build().is_err());

        let mut b = LogicStage::builder("bad-geom");
        let gnd = b.gnd();
        let n = b.node("n");
        let i = b.input("i");
        b.transistor(DeviceKind::Nmos, i, n, gnd, Geometry::new(-1.0, 0.35e-6));
        b.output(n);
        assert!(b.build().is_err());
    }

    #[test]
    fn duplicate_names_are_reused() {
        let mut b = LogicStage::builder("dup");
        let n1 = b.node("x");
        let n2 = b.node("x");
        assert_eq!(n1, n2);
        let i1 = b.input("a");
        let i2 = b.input("a");
        assert_eq!(i1, i2);
    }
}
