//! Voltage waveforms: inputs, outputs and timing metrics.
//!
//! Waveform evaluation (paper Definition 3) maps input waveforms
//! `G : I → T → ℝ` and load capacitances to output waveforms
//! `V : O → T → ℝ`. Both engines in this workspace produce and consume
//! piecewise-linear sampled waveforms; QWM's native piecewise-quadratic
//! pieces are sampled into the same representation for comparison and
//! plotting. Timing metrics (50 % delay, 10–90 % slew) are computed here
//! so every experiment measures them identically.

use qwm_num::{NumError, Result};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Interned ramp cache capacity per thread. STA runs see a handful of
/// distinct `(t0, rise, v0, v1)` combinations (one per input slew ×
/// rail pair), so this is generous; a full cache is cleared rather than
/// evicted — it only holds cheap `Arc` handles.
const INTERN_CAP: usize = 4096;

thread_local! {
    /// Per-thread intern table for [`Waveform::ramp_interned`] /
    /// [`Waveform::constant_interned`], keyed by a shape tag plus the
    /// `to_bits` of the constructor arguments.
    static RAMP_INTERN: RefCell<HashMap<(u8, [u64; 4]), Waveform>> = RefCell::new(HashMap::new());
}

/// A piecewise-linear waveform: time-sorted `(t, v)` samples, held flat
/// before the first and after the last sample.
///
/// Samples are held behind an [`Arc`], so cloning a waveform — which the
/// STA evaluators do once per arc per input — is a reference-count bump,
/// and interned ramps share one allocation across every identical-slew
/// arc. Waveforms are immutable after construction, which is what makes
/// the sharing sound.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    points: Arc<[(f64, f64)]>,
}

impl Waveform {
    /// A constant waveform.
    ///
    /// ```
    /// let w = qwm_circuit::waveform::Waveform::constant(3.3);
    /// assert_eq!(w.value(1e-9), 3.3);
    /// ```
    pub fn constant(v: f64) -> Self {
        Waveform {
            points: Arc::from(vec![(0.0, v)]),
        }
    }

    /// An idealized step from `v0` to `v1` at time `t0` (implemented as a
    /// 1 ps ramp so both engines see a finite slope).
    pub fn step(t0: f64, v0: f64, v1: f64) -> Self {
        Self::ramp(t0, 1e-12, v0, v1)
    }

    /// A linear ramp from `v0` to `v1` starting at `t0` with the given
    /// rise time.
    pub fn ramp(t0: f64, rise: f64, v0: f64, v1: f64) -> Self {
        let rise = rise.max(1e-15);
        Waveform {
            points: Arc::from(vec![(t0, v0), (t0 + rise, v1)]),
        }
    }

    /// [`Waveform::ramp`], interned: identical argument quadruples
    /// (compared by `to_bits`, so `-0.0` and `0.0` intern separately and
    /// NaN never matches a cache entry) share one sample allocation per
    /// thread. The returned waveform is value-identical to the
    /// un-interned constructor — interning changes where the samples
    /// live, never what they are.
    pub fn ramp_interned(t0: f64, rise: f64, v0: f64, v1: f64) -> Self {
        let key = (
            0u8,
            [t0.to_bits(), rise.to_bits(), v0.to_bits(), v1.to_bits()],
        );
        RAMP_INTERN.with(|cell| {
            let mut map = cell.borrow_mut();
            if map.len() >= INTERN_CAP {
                map.clear();
            }
            map.entry(key)
                .or_insert_with(|| Self::ramp(t0, rise, v0, v1))
                .clone()
        })
    }

    /// [`Waveform::step`], interned (see [`Waveform::ramp_interned`]).
    pub fn step_interned(t0: f64, v0: f64, v1: f64) -> Self {
        Self::ramp_interned(t0, 1e-12, v0, v1)
    }

    /// [`Waveform::constant`], interned (see
    /// [`Waveform::ramp_interned`]). Constants share the ramp table
    /// under a distinct shape tag so no ramp key can collide.
    pub fn constant_interned(v: f64) -> Self {
        let key = (1u8, [v.to_bits(), 0, 0, 0]);
        RAMP_INTERN.with(|cell| {
            let mut map = cell.borrow_mut();
            if map.len() >= INTERN_CAP {
                map.clear();
            }
            map.entry(key).or_insert_with(|| Self::constant(v)).clone()
        })
    }

    /// Builds a waveform from arbitrary samples.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] on empty input, non-finite
    /// values or non-increasing times.
    pub fn from_samples(points: Vec<(f64, f64)>) -> Result<Self> {
        if points.is_empty() {
            return Err(NumError::InvalidInput {
                context: "Waveform::from_samples",
                detail: "no samples".to_string(),
            });
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(NumError::InvalidInput {
                    context: "Waveform::from_samples",
                    detail: format!("non-increasing time at t={}", w[1].0),
                });
            }
        }
        if points.iter().any(|p| !p.0.is_finite() || !p.1.is_finite()) {
            return Err(NumError::InvalidInput {
                context: "Waveform::from_samples",
                detail: "non-finite sample".to_string(),
            });
        }
        Ok(Waveform {
            points: Arc::from(points),
        })
    }

    /// The underlying samples.
    #[inline]
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Value at time `t` (linear interpolation, flat extension).
    #[inline]
    pub fn value(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        if t >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the containing segment.
        let idx = pts.partition_point(|p| p.0 <= t);
        let (t0, v0) = pts[idx - 1];
        let (t1, v1) = pts[idx];
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Time derivative at `t` (the slope of the containing segment; zero
    /// outside the sampled span).
    #[inline]
    pub fn slope(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t < pts[0].0 || t >= pts[pts.len() - 1].0 || pts.len() < 2 {
            return 0.0;
        }
        let idx = pts.partition_point(|p| p.0 <= t).max(1);
        let (t0, v0) = pts[idx - 1];
        let (t1, v1) = pts[idx];
        (v1 - v0) / (t1 - t0)
    }

    /// Final (settled) value.
    #[inline]
    pub fn final_value(&self) -> f64 {
        self.points[self.points.len() - 1].1
    }

    /// Initial value.
    #[inline]
    pub fn initial_value(&self) -> f64 {
        self.points[0].1
    }

    /// First time the waveform crosses `level` in the given direction
    /// (`rising = true` for upward crossings), or `None`.
    pub fn crossing(&self, level: f64, rising: bool) -> Option<f64> {
        let pts = &self.points;
        for w in pts.windows(2) {
            let (t0, v0) = w[0];
            let (t1, v1) = w[1];
            let crosses = if rising {
                v0 <= level && v1 > level
            } else {
                v0 >= level && v1 < level
            };
            if crosses {
                if (v1 - v0).abs() < f64::MIN_POSITIVE {
                    return Some(t0);
                }
                return Some(t0 + (level - v0) * (t1 - t0) / (v1 - v0));
            }
        }
        None
    }

    /// Shifts the waveform in time by `dt`.
    pub fn shifted(&self, dt: f64) -> Self {
        Waveform {
            points: self.points.iter().map(|&(t, v)| (t + dt, v)).collect(),
        }
    }

    /// Adds an interning test hook: number of entries currently interned
    /// on this thread (test/diagnostic use).
    pub fn interned_count() -> usize {
        RAMP_INTERN.with(|cell| cell.borrow().len())
    }

    /// Resamples onto a uniform grid of `n ≥ 2` points spanning
    /// `[t0, t1]` — used when comparing waveforms from different engines.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for `n < 2` or a reversed span.
    pub fn resample(&self, t0: f64, t1: f64, n: usize) -> Result<Vec<(f64, f64)>> {
        if n < 2 || t1.is_nan() || t0.is_nan() || t1 <= t0 {
            return Err(NumError::InvalidInput {
                context: "Waveform::resample",
                detail: format!("n={n} span=[{t0}, {t1}]"),
            });
        }
        Ok((0..n)
            .map(|i| {
                let t = t0 + (t1 - t0) * i as f64 / (n - 1) as f64;
                (t, self.value(t))
            })
            .collect())
    }
}

/// Direction of an output transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionKind {
    /// Output falls (pull-down / discharge).
    Fall,
    /// Output rises (pull-up / charge).
    Rise,
}

/// Timing metrics of one transition, measured against Vdd fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingMetrics {
    /// 50 %-to-50 % propagation delay from the reference instant \[s\].
    pub delay: f64,
    /// 10–90 % (or 90–10 %) transition time \[s\].
    pub slew: f64,
}

/// 50 %-to-50 % propagation delay between an input transition and the
/// output transition it causes (opposite polarity for inverting stages,
/// controlled by `output_kind`).
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] if either waveform misses its 50 %
/// crossing.
pub fn delay_between(
    input: &Waveform,
    output: &Waveform,
    output_kind: TransitionKind,
    vdd: f64,
) -> Result<f64> {
    let half = 0.5 * vdd;
    let input_rising = input.final_value() > input.initial_value();
    let t_in = input
        .crossing(half, input_rising)
        .ok_or_else(|| NumError::InvalidInput {
            context: "delay_between",
            detail: "input never crosses 50%".to_string(),
        })?;
    let t_out = output
        .crossing(half, output_kind == TransitionKind::Rise)
        .ok_or_else(|| NumError::InvalidInput {
            context: "delay_between",
            detail: "output never crosses 50%".to_string(),
        })?;
    Ok(t_out - t_in)
}

/// Measures propagation delay and slew of `output` for a transition in
/// `kind` direction, referenced to `t_ref` (typically the input's 50 %
/// crossing), under supply `vdd`.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] if the output never crosses the
/// required levels.
pub fn measure_transition(
    output: &Waveform,
    kind: TransitionKind,
    t_ref: f64,
    vdd: f64,
) -> Result<TimingMetrics> {
    let half = 0.5 * vdd;
    let (lo, hi) = (0.1 * vdd, 0.9 * vdd);
    let missing = |what: &str| NumError::InvalidInput {
        context: "measure_transition",
        detail: format!("output never crosses {what}"),
    };
    match kind {
        TransitionKind::Fall => {
            let t50 = output.crossing(half, false).ok_or_else(|| missing("50%"))?;
            let t90 = output.crossing(hi, false).ok_or_else(|| missing("90%"))?;
            let t10 = output.crossing(lo, false).ok_or_else(|| missing("10%"))?;
            Ok(TimingMetrics {
                delay: t50 - t_ref,
                slew: t10 - t90,
            })
        }
        TransitionKind::Rise => {
            let t50 = output.crossing(half, true).ok_or_else(|| missing("50%"))?;
            let t10 = output.crossing(lo, true).ok_or_else(|| missing("10%"))?;
            let t90 = output.crossing(hi, true).ok_or_else(|| missing("90%"))?;
            Ok(TimingMetrics {
                delay: t50 - t_ref,
                slew: t90 - t10,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_and_step_shapes() {
        let c = Waveform::constant(1.5);
        assert_eq!(c.value(-1.0), 1.5);
        assert_eq!(c.value(1.0), 1.5);
        assert_eq!(c.final_value(), 1.5);

        let s = Waveform::step(1e-9, 0.0, 3.3);
        assert_eq!(s.value(0.0), 0.0);
        assert_eq!(s.value(2e-9), 3.3);
        assert_eq!(s.initial_value(), 0.0);
    }

    #[test]
    fn ramp_interpolates_linearly() {
        let r = Waveform::ramp(0.0, 1e-9, 0.0, 3.3);
        assert!((r.value(0.5e-9) - 1.65).abs() < 1e-12);
        assert!((r.slope(0.5e-9) - 3.3e9).abs() < 1.0);
        assert_eq!(r.slope(2e-9), 0.0);
    }

    #[test]
    fn crossings_both_directions() {
        let r = Waveform::ramp(0.0, 1e-9, 0.0, 3.3);
        let t = r.crossing(1.65, true).unwrap();
        assert!((t - 0.5e-9).abs() < 1e-15);
        assert!(r.crossing(1.65, false).is_none());

        let f = Waveform::ramp(0.0, 1e-9, 3.3, 0.0);
        let t = f.crossing(1.65, false).unwrap();
        assert!((t - 0.5e-9).abs() < 1e-15);
        assert!(f.crossing(5.0, true).is_none());
    }

    #[test]
    fn interned_constructors_share_storage_and_match_plain() {
        let a = Waveform::ramp_interned(0.0, 30e-12, 3.3, 0.0);
        let b = Waveform::ramp_interned(0.0, 30e-12, 3.3, 0.0);
        assert!(Arc::ptr_eq(&a.points, &b.points), "same allocation");
        assert_eq!(a, Waveform::ramp(0.0, 30e-12, 3.3, 0.0));
        let c = Waveform::constant_interned(3.3);
        let d = Waveform::constant_interned(3.3);
        assert!(Arc::ptr_eq(&c.points, &d.points));
        assert_eq!(c, Waveform::constant(3.3));
        // Distinct arguments intern separately.
        let e = Waveform::ramp_interned(0.0, 31e-12, 3.3, 0.0);
        assert!(!Arc::ptr_eq(&a.points, &e.points));
        assert!(Waveform::interned_count() >= 3);
        // Steps reuse the ramp key space (1 ps rise).
        let s = Waveform::step_interned(0.0, 0.0, 3.3);
        assert_eq!(s, Waveform::step(0.0, 0.0, 3.3));
    }

    #[test]
    fn from_samples_validation() {
        assert!(Waveform::from_samples(vec![]).is_err());
        assert!(Waveform::from_samples(vec![(0.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(Waveform::from_samples(vec![(0.0, f64::NAN)]).is_err());
        assert!(Waveform::from_samples(vec![(0.0, 1.0), (1.0, 2.0)]).is_ok());
    }

    #[test]
    fn value_uses_binary_search_consistently() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, (i * i) as f64)).collect();
        let w = Waveform::from_samples(pts).unwrap();
        assert_eq!(w.value(50.0), 2500.0);
        assert!((w.value(50.5) - 0.5 * (2500.0 + 2601.0)).abs() < 1e-9);
        assert_eq!(w.value(1e9), 99.0 * 99.0);
    }

    #[test]
    fn shifted_and_resampled() {
        let r = Waveform::ramp(0.0, 1e-9, 0.0, 1.0).shifted(1e-9);
        assert_eq!(r.value(1e-9), 0.0);
        assert_eq!(r.value(2e-9), 1.0);
        let s = r.resample(0.0, 3e-9, 4).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0], (0.0, 0.0));
        assert_eq!(s[3].1, 1.0);
        assert!(r.resample(0.0, 1e-9, 1).is_err());
        assert!(r.resample(1e-9, 0.0, 4).is_err());
    }

    #[test]
    fn fall_metrics() {
        // Linear fall from 3.3 to 0 over 1 ns starting at t = 1 ns.
        let f = Waveform::ramp(1e-9, 1e-9, 3.3, 0.0);
        let m = measure_transition(&f, TransitionKind::Fall, 1e-9, 3.3).unwrap();
        assert!((m.delay - 0.5e-9).abs() < 1e-15);
        assert!((m.slew - 0.8e-9).abs() < 1e-15);
    }

    #[test]
    fn rise_metrics() {
        let r = Waveform::ramp(0.0, 2e-9, 0.0, 3.3);
        let m = measure_transition(&r, TransitionKind::Rise, 0.0, 3.3).unwrap();
        assert!((m.delay - 1e-9).abs() < 1e-15);
        assert!((m.slew - 1.6e-9).abs() < 1e-15);
    }

    #[test]
    fn delay_between_waveforms() {
        let input = Waveform::ramp(0.0, 2e-12, 0.0, 3.3); // 50% at 1 ps
        let output = Waveform::ramp(10e-12, 4e-12, 3.3, 0.0); // 50% at 12 ps
        let d = delay_between(&input, &output, TransitionKind::Fall, 3.3).unwrap();
        assert!((d - 11e-12).abs() < 1e-15);
        // Missing crossings error out.
        let flat = Waveform::constant(3.3);
        assert!(delay_between(&flat, &output, TransitionKind::Fall, 3.3).is_err());
        assert!(delay_between(&input, &flat, TransitionKind::Fall, 3.3).is_err());
    }

    #[test]
    fn metrics_error_when_level_unreached() {
        let f = Waveform::ramp(0.0, 1e-9, 3.3, 2.0); // never reaches 50%
        assert!(measure_transition(&f, TransitionKind::Fall, 0.0, 3.3).is_err());
    }
}
