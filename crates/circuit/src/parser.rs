//! A SPICE-subset netlist parser.
//!
//! Enough of the classic deck syntax to describe the paper's circuits in
//! text form:
//!
//! ```text
//! * comment
//! M<name> <drain> <gate> <source> <body> <nmos|pmos> W=1u L=0.35u
//! W<name> <a> <b> W=0.6u L=40u          ; wire segment (w × l geometry)
//! C<name> <node> 0 10f                  ; grounded capacitor
//! .input  a b
//! .output z
//! .end
//! ```
//!
//! Values accept the usual engineering suffixes
//! (`f p n u m k meg g`). Net `0` aliases ground.
//!
//! The parser is total over arbitrary input: any malformed deck — bad
//! card, bad value, non-finite or non-positive geometry, duplicate
//! device name, self-shorted device — comes back as
//! [`NumError::InvalidInput`] carrying the 1-based line *and column* of
//! the offending token, never a panic. This is the contract the serving
//! layer relies on to turn bad `load` payloads into protocol `400`
//! replies.

use crate::netlist::Netlist;
use crate::stage::DeviceKind;
use qwm_device::model::Geometry;
use qwm_num::{NumError, Result};

/// Parses an engineering-notation value like `0.35u` or `10f`.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on malformed or non-finite
/// numbers (overflowing literals like `1e999` are rejected, not mapped
/// to infinity).
pub fn parse_value(s: &str) -> Result<f64> {
    let lower = s.to_ascii_lowercase();
    let (num, mult) = if let Some(stripped) = lower.strip_suffix("meg") {
        (stripped, 1e6)
    } else if let Some(stripped) = lower.strip_suffix('f') {
        (stripped, 1e-15)
    } else if let Some(stripped) = lower.strip_suffix('p') {
        (stripped, 1e-12)
    } else if let Some(stripped) = lower.strip_suffix('n') {
        (stripped, 1e-9)
    } else if let Some(stripped) = lower.strip_suffix('u') {
        (stripped, 1e-6)
    } else if let Some(stripped) = lower.strip_suffix('m') {
        (stripped, 1e-3)
    } else if let Some(stripped) = lower.strip_suffix('k') {
        (stripped, 1e3)
    } else if let Some(stripped) = lower.strip_suffix('g') {
        (stripped, 1e9)
    } else {
        (lower.as_str(), 1.0)
    };
    match num.parse::<f64>() {
        Ok(v) if (v * mult).is_finite() => Ok(v * mult),
        _ => Err(NumError::InvalidInput {
            context: "parse_value",
            detail: format!("malformed value {s:?}"),
        }),
    }
}

/// A token plus its 1-based byte column within the source line.
#[derive(Clone, Copy)]
struct Tok<'a> {
    text: &'a str,
    col: usize,
}

/// Splits the code portion of a line into whitespace-separated tokens,
/// remembering where each starts.
fn tokenize(code: &str) -> Vec<Tok<'_>> {
    let mut toks = Vec::new();
    let mut start: Option<usize> = None;
    for (i, c) in code.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = start.take() {
                toks.push(Tok {
                    text: &code[s..i],
                    col: s + 1,
                });
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        toks.push(Tok {
            text: &code[s..],
            col: s + 1,
        });
    }
    toks
}

fn parse_kv(token: &str, key: &str) -> Option<Result<f64>> {
    let lower = token.to_ascii_lowercase();
    lower.strip_prefix(&format!("{key}=")).map(parse_value)
}

/// Parses a deck into a [`Netlist`].
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on any malformed input, with the
/// 1-based line and column of the offending token in the message.
pub fn parse_netlist(text: &str) -> Result<Netlist> {
    let mut nl = Netlist::new();
    let mut seen_names: std::collections::HashSet<String> = std::collections::HashSet::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let bad = |col: usize, why: &str| NumError::InvalidInput {
            context: "parse_netlist",
            detail: format!("line {line_no}, col {col}: {why}"),
        };
        let code = raw.split(';').next().unwrap_or("");
        let tokens = tokenize(code);
        let head = match tokens.first() {
            None => continue,
            Some(t) if t.text.starts_with('*') => continue,
            Some(t) => *t,
        };
        // A `?` on a value token should carry that token's location.
        let at = |tok: Tok<'_>, r: Result<f64>| -> Result<f64> {
            r.map_err(|e| bad(tok.col, &e.to_string()))
        };
        // W/L geometry must be a positive, finite length.
        let geom_kv = |tok: Tok<'_>, key: &str| -> Option<Result<f64>> {
            parse_kv(tok.text, key).map(|r| match at(tok, r) {
                Ok(v) if v > 0.0 => Ok(v),
                Ok(v) => Err(bad(
                    tok.col,
                    &format!("{} must be positive, got {v:e}", key.to_uppercase()),
                )),
                Err(e) => Err(e),
            })
        };
        let upper = head.text.to_ascii_uppercase();
        if upper == ".END" {
            break;
        }
        if upper == ".INPUT" {
            for t in &tokens[1..] {
                let id = nl.net(t.text);
                nl.add_primary_input(id);
            }
            continue;
        }
        if upper == ".OUTPUT" {
            for t in &tokens[1..] {
                let id = nl.net(t.text);
                nl.add_primary_output(id);
            }
            continue;
        }
        let is_device = matches!(upper.chars().next(), Some('M' | 'W' | 'C'));
        if is_device && !seen_names.insert(upper.clone()) {
            return Err(bad(
                head.col,
                &format!("duplicate device name {:?}", head.text),
            ));
        }
        match upper.chars().next() {
            Some('M') => {
                // M<name> d g s b <nmos|pmos> W=.. L=..
                if tokens.len() < 8 {
                    return Err(bad(head.col, "transistor needs 8 fields"));
                }
                let d = nl.net(tokens[1].text);
                let g = nl.net(tokens[2].text);
                let s = nl.net(tokens[3].text);
                // tokens[4] = body, recorded implicitly by polarity.
                if d == s {
                    return Err(bad(
                        tokens[3].col,
                        &format!("transistor {:?} shorts drain to source", head.text),
                    ));
                }
                let kind = match tokens[5].text.to_ascii_lowercase().as_str() {
                    "nmos" | "n" => DeviceKind::Nmos,
                    "pmos" | "p" => DeviceKind::Pmos,
                    other => return Err(bad(tokens[5].col, &format!("unknown model {other:?}"))),
                };
                let mut w = None;
                let mut l = None;
                for t in &tokens[6..] {
                    if let Some(v) = geom_kv(*t, "w") {
                        w = Some(v?);
                    } else if let Some(v) = geom_kv(*t, "l") {
                        l = Some(v?);
                    }
                }
                let (w, l) = match (w, l) {
                    (Some(w), Some(l)) => (w, l),
                    _ => return Err(bad(head.col, "transistor needs W= and L=")),
                };
                nl.add_transistor(head.text, kind, g, d, s, Geometry::new(w, l));
            }
            Some('W') => {
                // W<name> a b W=.. L=..
                if tokens.len() < 5 {
                    return Err(bad(head.col, "wire needs 5 fields"));
                }
                let a = nl.net(tokens[1].text);
                let b = nl.net(tokens[2].text);
                if a == b {
                    return Err(bad(
                        tokens[2].col,
                        &format!("wire {:?} shorts a net to itself", head.text),
                    ));
                }
                let mut w = None;
                let mut l = None;
                for t in &tokens[3..] {
                    if let Some(v) = geom_kv(*t, "w") {
                        w = Some(v?);
                    } else if let Some(v) = geom_kv(*t, "l") {
                        l = Some(v?);
                    }
                }
                let (w, l) = match (w, l) {
                    (Some(w), Some(l)) => (w, l),
                    _ => return Err(bad(head.col, "wire needs W= and L=")),
                };
                nl.add_wire(head.text, a, b, w, l);
            }
            Some('C') => {
                // C<name> node 0 value
                if tokens.len() < 4 {
                    return Err(bad(head.col, "capacitor needs 4 fields"));
                }
                let a = nl.net(tokens[1].text);
                let b = nl.net(tokens[2].text);
                let v = at(tokens[3], parse_value(tokens[3].text))?;
                if v < 0.0 {
                    return Err(bad(
                        tokens[3].col,
                        &format!("capacitance must be non-negative, got {v:e}"),
                    ));
                }
                let node = if b == nl.gnd() {
                    a
                } else if a == nl.gnd() {
                    b
                } else {
                    return Err(bad(head.col, "only grounded capacitors are supported"));
                };
                nl.add_cap(node, v);
            }
            _ => return Err(bad(head.col, &format!("unrecognized card {:?}", head.text))),
        }
    }
    nl.validate()?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_suffixes() {
        assert!((parse_value("10f").unwrap() - 10e-15).abs() < 1e-22);
        assert!((parse_value("0.35u").unwrap() - 0.35e-6).abs() < 1e-14);
        assert_eq!(parse_value("1MEG").unwrap(), 1e6);
        assert_eq!(parse_value("2k").unwrap(), 2e3);
        assert_eq!(parse_value("3").unwrap(), 3.0);
        assert!(parse_value("oops").is_err());
    }

    #[test]
    fn overflowing_values_are_rejected_not_infinite() {
        assert!(parse_value("1e999").is_err());
        assert!(parse_value("inf").is_err());
        assert!(parse_value("nan").is_err());
        assert!(parse_value("1e308k").is_err()); // finite literal, infinite after scaling
    }

    #[test]
    fn parses_an_inverter_deck() {
        let deck = "\
* simple inverter
MN1 out a 0 0 nmos W=0.5u L=0.35u
MP1 out a vdd vdd pmos W=1u L=0.35u
Cload out 0 10f
.input a
.output out
.end
ignored after end
";
        let nl = parse_netlist(deck).unwrap();
        assert_eq!(nl.devices().len(), 2);
        let out = nl.find_net("out").unwrap();
        assert!((nl.cap(out) - 10e-15).abs() < 1e-24);
        assert_eq!(nl.primary_inputs().len(), 1);
        assert_eq!(nl.primary_outputs(), &[out]);
    }

    #[test]
    fn parses_wires_and_comments() {
        let deck = "\
W1 a b W=0.6u L=40u ; long wire
C1 0 b 5f
";
        let nl = parse_netlist(deck).unwrap();
        assert_eq!(nl.devices().len(), 1);
        let b = nl.find_net("b").unwrap();
        assert!((nl.cap(b) - 5e-15).abs() < 1e-22);
    }

    #[test]
    fn error_reporting_includes_line_numbers() {
        let e = parse_netlist("M1 a b\n").unwrap_err();
        assert!(e.to_string().contains("line 1"));
        let e = parse_netlist("MN1 out a 0 0 nmos W=1u AD=1p\n").unwrap_err();
        assert!(e.to_string().contains("W= and L="));
        let e = parse_netlist("X1 whatever\n").unwrap_err();
        assert!(e.to_string().contains("unrecognized"));
        let e = parse_netlist("MN1 out a 0 0 bjt W=1u L=1u\n").unwrap_err();
        assert!(e.to_string().contains("unknown model"));
        let e = parse_netlist("C1 a b 1f\n").unwrap_err();
        assert!(e.to_string().contains("grounded"));
    }

    #[test]
    fn error_reporting_includes_columns() {
        // The bad model token starts at byte 15 → col 15.
        let e = parse_netlist("MN1 out a 0 0 bjt W=1u L=1u\n").unwrap_err();
        assert!(e.to_string().contains("line 1, col 15"), "{e}");
        // Second line, malformed capacitor value token at col 10.
        let e = parse_netlist("* ok\nC1 out 0 bogus\n").unwrap_err();
        assert!(e.to_string().contains("line 2, col 10"), "{e}");
        // Indented card: the column tracks the token, not the line start.
        let e = parse_netlist("   X1 whatever\n").unwrap_err();
        assert!(e.to_string().contains("line 1, col 4"), "{e}");
    }

    #[test]
    fn geometry_must_be_positive_and_finite() {
        for bad in [
            "MN1 out a 0 0 nmos W=0 L=0.35u\n",
            "MN1 out a 0 0 nmos W=-1u L=0.35u\n",
            "MN1 out a 0 0 nmos W=1u L=1e999\n",
            "W1 a b W=0.6u L=0\n",
        ] {
            let e = parse_netlist(bad).unwrap_err();
            let msg = e.to_string();
            assert!(msg.contains("col"), "{bad:?} -> {msg}");
        }
        let e = parse_netlist("C1 out 0 -5f\n").unwrap_err();
        assert!(e.to_string().contains("non-negative"), "{e}");
    }

    #[test]
    fn structural_errors_carry_locations() {
        let e = parse_netlist("MN1 out a out 0 nmos W=1u L=1u\n").unwrap_err();
        assert!(e.to_string().contains("shorts drain to source"), "{e}");
        assert!(e.to_string().contains("line 1"), "{e}");
        let e = parse_netlist("W1 a a W=0.6u L=40u\n").unwrap_err();
        assert!(e.to_string().contains("shorts a net to itself"), "{e}");
        let deck = "\
MN1 out a 0 0 nmos W=1u L=1u
mn1 z out 0 0 nmos W=1u L=1u
";
        let e = parse_netlist(deck).unwrap_err();
        assert!(e.to_string().contains("duplicate device name"), "{e}");
        assert!(e.to_string().contains("line 2"), "{e}");
    }

    #[test]
    fn arbitrary_garbage_never_panics() {
        for deck in [
            "",
            "\n\n\n",
            "M\n",
            "M1\n",
            "C1\n",
            "W1 a\n",
            ".input\n.output\n.end\n",
            "\u{7f}\u{1b}[31m\n",
            "M1 \t a\tb  c d nmos\n",
            "C1 0 0 1f\n",
            "πβγ δ ε\n",
        ] {
            let _ = parse_netlist(deck);
        }
    }

    #[test]
    fn roundtrip_through_partition() {
        let deck = "\
MN1 x a 0 0 nmos W=0.5u L=0.35u
MP1 x a vdd vdd pmos W=1u L=0.35u
MN2 z x 0 0 nmos W=0.5u L=0.35u
MP2 z x vdd vdd pmos W=1u L=0.35u
.input a
.output z
";
        let nl = parse_netlist(deck).unwrap();
        let parts = crate::partition::partition(&nl).unwrap();
        assert_eq!(parts.len(), 2);
    }
}
