//! A SPICE-subset netlist parser.
//!
//! Enough of the classic deck syntax to describe the paper's circuits in
//! text form:
//!
//! ```text
//! * comment
//! M<name> <drain> <gate> <source> <body> <nmos|pmos> W=1u L=0.35u
//! W<name> <a> <b> W=0.6u L=40u          ; wire segment (w × l geometry)
//! C<name> <node> 0 10f                  ; grounded capacitor
//! .input  a b
//! .output z
//! .end
//! ```
//!
//! Values accept the usual engineering suffixes
//! (`f p n u m k meg g`). Net `0` aliases ground.

use crate::netlist::Netlist;
use crate::stage::DeviceKind;
use qwm_device::model::Geometry;
use qwm_num::{NumError, Result};

/// Parses an engineering-notation value like `0.35u` or `10f`.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on malformed numbers.
pub fn parse_value(s: &str) -> Result<f64> {
    let lower = s.to_ascii_lowercase();
    let (num, mult) = if let Some(stripped) = lower.strip_suffix("meg") {
        (stripped, 1e6)
    } else if let Some(stripped) = lower.strip_suffix('f') {
        (stripped, 1e-15)
    } else if let Some(stripped) = lower.strip_suffix('p') {
        (stripped, 1e-12)
    } else if let Some(stripped) = lower.strip_suffix('n') {
        (stripped, 1e-9)
    } else if let Some(stripped) = lower.strip_suffix('u') {
        (stripped, 1e-6)
    } else if let Some(stripped) = lower.strip_suffix('m') {
        (stripped, 1e-3)
    } else if let Some(stripped) = lower.strip_suffix('k') {
        (stripped, 1e3)
    } else if let Some(stripped) = lower.strip_suffix('g') {
        (stripped, 1e9)
    } else {
        (lower.as_str(), 1.0)
    };
    num.parse::<f64>()
        .map(|v| v * mult)
        .map_err(|_| NumError::InvalidInput {
            context: "parse_value",
            detail: format!("malformed value {s:?}"),
        })
}

fn parse_kv(token: &str, key: &str) -> Option<Result<f64>> {
    let lower = token.to_ascii_lowercase();
    lower.strip_prefix(&format!("{key}=")).map(parse_value)
}

/// Parses a deck into a [`Netlist`].
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on any malformed line, with the
/// 1-based line number in the message.
pub fn parse_netlist(text: &str) -> Result<Netlist> {
    let mut nl = Netlist::new();
    let bad = |line_no: usize, why: &str| NumError::InvalidInput {
        context: "parse_netlist",
        detail: format!("line {line_no}: {why}"),
    };
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let head = tokens[0];
        let upper = head.to_ascii_uppercase();
        if upper == ".END" {
            break;
        }
        if upper == ".INPUT" {
            for t in &tokens[1..] {
                let id = nl.net(t);
                nl.add_primary_input(id);
            }
            continue;
        }
        if upper == ".OUTPUT" {
            for t in &tokens[1..] {
                let id = nl.net(t);
                nl.add_primary_output(id);
            }
            continue;
        }
        match upper.chars().next() {
            Some('M') => {
                // M<name> d g s b <nmos|pmos> W=.. L=..
                if tokens.len() < 8 {
                    return Err(bad(line_no, "transistor needs 8 fields"));
                }
                let d = nl.net(tokens[1]);
                let g = nl.net(tokens[2]);
                let s = nl.net(tokens[3]);
                // tokens[4] = body, recorded implicitly by polarity.
                let kind = match tokens[5].to_ascii_lowercase().as_str() {
                    "nmos" | "n" => DeviceKind::Nmos,
                    "pmos" | "p" => DeviceKind::Pmos,
                    other => return Err(bad(line_no, &format!("unknown model {other:?}"))),
                };
                let mut w = None;
                let mut l = None;
                for t in &tokens[6..] {
                    if let Some(v) = parse_kv(t, "w") {
                        w = Some(v?);
                    } else if let Some(v) = parse_kv(t, "l") {
                        l = Some(v?);
                    }
                }
                let (w, l) = match (w, l) {
                    (Some(w), Some(l)) => (w, l),
                    _ => return Err(bad(line_no, "transistor needs W= and L=")),
                };
                nl.add_transistor(head, kind, g, d, s, Geometry::new(w, l));
            }
            Some('W') => {
                // W<name> a b W=.. L=..
                if tokens.len() < 5 {
                    return Err(bad(line_no, "wire needs 5 fields"));
                }
                let a = nl.net(tokens[1]);
                let b = nl.net(tokens[2]);
                let mut w = None;
                let mut l = None;
                for t in &tokens[3..] {
                    if let Some(v) = parse_kv(t, "w") {
                        w = Some(v?);
                    } else if let Some(v) = parse_kv(t, "l") {
                        l = Some(v?);
                    }
                }
                let (w, l) = match (w, l) {
                    (Some(w), Some(l)) => (w, l),
                    _ => return Err(bad(line_no, "wire needs W= and L=")),
                };
                nl.add_wire(head, a, b, w, l);
            }
            Some('C') => {
                // C<name> node 0 value
                if tokens.len() < 4 {
                    return Err(bad(line_no, "capacitor needs 4 fields"));
                }
                let a = nl.net(tokens[1]);
                let b = nl.net(tokens[2]);
                let v = parse_value(tokens[3])?;
                let node = if b == nl.gnd() {
                    a
                } else if a == nl.gnd() {
                    b
                } else {
                    return Err(bad(line_no, "only grounded capacitors are supported"));
                };
                nl.add_cap(node, v);
            }
            _ => return Err(bad(line_no, &format!("unrecognized card {head:?}"))),
        }
    }
    nl.validate()?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_suffixes() {
        assert!((parse_value("10f").unwrap() - 10e-15).abs() < 1e-22);
        assert!((parse_value("0.35u").unwrap() - 0.35e-6).abs() < 1e-14);
        assert_eq!(parse_value("1MEG").unwrap(), 1e6);
        assert_eq!(parse_value("2k").unwrap(), 2e3);
        assert_eq!(parse_value("3").unwrap(), 3.0);
        assert!(parse_value("oops").is_err());
    }

    #[test]
    fn parses_an_inverter_deck() {
        let deck = "\
* simple inverter
MN1 out a 0 0 nmos W=0.5u L=0.35u
MP1 out a vdd vdd pmos W=1u L=0.35u
Cload out 0 10f
.input a
.output out
.end
ignored after end
";
        let nl = parse_netlist(deck).unwrap();
        assert_eq!(nl.devices().len(), 2);
        let out = nl.find_net("out").unwrap();
        assert!((nl.cap(out) - 10e-15).abs() < 1e-24);
        assert_eq!(nl.primary_inputs().len(), 1);
        assert_eq!(nl.primary_outputs(), &[out]);
    }

    #[test]
    fn parses_wires_and_comments() {
        let deck = "\
W1 a b W=0.6u L=40u ; long wire
C1 0 b 5f
";
        let nl = parse_netlist(deck).unwrap();
        assert_eq!(nl.devices().len(), 1);
        let b = nl.find_net("b").unwrap();
        assert!((nl.cap(b) - 5e-15).abs() < 1e-22);
    }

    #[test]
    fn error_reporting_includes_line_numbers() {
        let e = parse_netlist("M1 a b\n").unwrap_err();
        assert!(e.to_string().contains("line 1"));
        let e = parse_netlist("MN1 out a 0 0 nmos W=1u AD=1p\n").unwrap_err();
        assert!(e.to_string().contains("W= and L="));
        let e = parse_netlist("X1 whatever\n").unwrap_err();
        assert!(e.to_string().contains("unrecognized"));
        let e = parse_netlist("MN1 out a 0 0 bjt W=1u L=1u\n").unwrap_err();
        assert!(e.to_string().contains("unknown model"));
        let e = parse_netlist("C1 a b 1f\n").unwrap_err();
        assert!(e.to_string().contains("grounded"));
    }

    #[test]
    fn roundtrip_through_partition() {
        let deck = "\
MN1 x a 0 0 nmos W=0.5u L=0.35u
MP1 x a vdd vdd pmos W=1u L=0.35u
MN2 z x 0 0 nmos W=0.5u L=0.35u
MP2 z x vdd vdd pmos W=1u L=0.35u
.input a
.output z
";
        let nl = parse_netlist(deck).unwrap();
        let parts = crate::partition::partition(&nl).unwrap();
        assert_eq!(parts.len(), 2);
    }
}
