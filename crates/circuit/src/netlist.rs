//! Flat transistor-level netlists.
//!
//! Full circuits (the decoder tree, carry chains, multi-gate paths) are
//! captured as a flat netlist of transistors, wires and capacitors over
//! named nets. The STA front end partitions a netlist into logic stages
//! (channel-connected components — see [`crate::partition`]) because "not
//! every design cell created by designers maps naturally to a logic
//! stage" (paper §I): stages must be constructed dynamically from the
//! connectivity.

use crate::stage::DeviceKind;
use qwm_device::model::Geometry;
use qwm_num::{NumError, Result};
use std::collections::HashMap;

/// Index of a net within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub usize);

/// A transistor or wire instance.
#[derive(Debug, Clone)]
pub struct NetDevice {
    /// Instance name (e.g. `M1`).
    pub name: String,
    /// Element kind.
    pub kind: DeviceKind,
    /// Gate net (`None` for wires).
    pub gate: Option<NetId>,
    /// First channel terminal.
    pub src: NetId,
    /// Second channel terminal.
    pub snk: NetId,
    /// Geometry.
    pub geom: Geometry,
}

/// A flat circuit: named nets, devices, explicit capacitors and
/// primary-I/O declarations.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    names: Vec<String>,
    by_name: HashMap<String, NetId>,
    devices: Vec<NetDevice>,
    caps: HashMap<NetId, f64>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
}

impl Netlist {
    /// An empty netlist with `vdd` and `gnd` nets pre-created.
    pub fn new() -> Self {
        let mut n = Netlist::default();
        n.net("vdd");
        n.net("gnd");
        n
    }

    /// The supply net.
    pub fn vdd(&self) -> NetId {
        NetId(0)
    }

    /// The ground net.
    pub fn gnd(&self) -> NetId {
        NetId(1)
    }

    /// Whether `id` is one of the two rails.
    pub fn is_rail(&self, id: NetId) -> bool {
        id == self.vdd() || id == self.gnd()
    }

    /// Gets or creates a net by name (`"0"` aliases `gnd`, `"vdd!"` /
    /// `"vcc"` alias `vdd`).
    pub fn net(&mut self, name: &str) -> NetId {
        let canonical = match name {
            "0" | "GND" | "gnd!" => "gnd",
            "vdd!" | "VDD" | "vcc" => "vdd",
            other => other,
        };
        if let Some(&id) = self.by_name.get(canonical) {
            return id;
        }
        let id = NetId(self.names.len());
        self.names.push(canonical.to_string());
        self.by_name.insert(canonical.to_string(), id);
        id
    }

    /// Looks a net up without creating it.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// Net name by id.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.names[id.0]
    }

    /// Adds a transistor.
    pub fn add_transistor(
        &mut self,
        name: impl Into<String>,
        kind: DeviceKind,
        gate: NetId,
        src: NetId,
        snk: NetId,
        geom: Geometry,
    ) -> usize {
        debug_assert!(kind != DeviceKind::Wire);
        self.devices.push(NetDevice {
            name: name.into(),
            kind,
            gate: Some(gate),
            src,
            snk,
            geom,
        });
        self.devices.len() - 1
    }

    /// Adds a wire segment of the given `w × l`.
    pub fn add_wire(
        &mut self,
        name: impl Into<String>,
        a: NetId,
        b: NetId,
        w: f64,
        l: f64,
    ) -> usize {
        self.devices.push(NetDevice {
            name: name.into(),
            kind: DeviceKind::Wire,
            gate: None,
            src: a,
            snk: b,
            geom: Geometry::new(w, l),
        });
        self.devices.len() - 1
    }

    /// Adds grounded capacitance at a net (accumulates).
    pub fn add_cap(&mut self, net: NetId, value: f64) {
        *self.caps.entry(net).or_insert(0.0) += value;
    }

    /// Sets the explicit grounded capacitance at a net to an absolute
    /// value (what-if load edits), replacing any accumulated value.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for a negative or non-finite
    /// value or an out-of-range net.
    pub fn set_cap(&mut self, net: NetId, value: f64) -> Result<()> {
        if !value.is_finite() || value < 0.0 {
            return Err(NumError::InvalidInput {
                context: "Netlist::set_cap",
                detail: format!("capacitance {value}"),
            });
        }
        if net.0 >= self.names.len() {
            return Err(NumError::InvalidInput {
                context: "Netlist::set_cap",
                detail: format!("net {} out of range", net.0),
            });
        }
        self.caps.insert(net, value);
        Ok(())
    }

    /// Renames a net (ECO-style edits). The old name stops resolving.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for a rail, an out-of-range
    /// net, or a name that already exists.
    pub fn rename_net(&mut self, net: NetId, name: &str) -> Result<()> {
        if self.is_rail(net) {
            return Err(NumError::InvalidInput {
                context: "Netlist::rename_net",
                detail: "cannot rename a supply rail".to_string(),
            });
        }
        if net.0 >= self.names.len() {
            return Err(NumError::InvalidInput {
                context: "Netlist::rename_net",
                detail: format!("net {} out of range", net.0),
            });
        }
        if self.by_name.contains_key(name) {
            return Err(NumError::InvalidInput {
                context: "Netlist::rename_net",
                detail: format!("net name {name:?} already exists"),
            });
        }
        let old = std::mem::replace(&mut self.names[net.0], name.to_string());
        self.by_name.remove(&old);
        self.by_name.insert(name.to_string(), net);
        Ok(())
    }

    /// Resolves a device index by instance name (linear scan; edit
    /// files and CLIs address devices by name).
    pub fn find_device(&self, name: &str) -> Option<usize> {
        self.devices.iter().position(|d| d.name == name)
    }

    /// Declares a primary input net.
    pub fn add_primary_input(&mut self, net: NetId) {
        if !self.primary_inputs.contains(&net) {
            self.primary_inputs.push(net);
        }
    }

    /// Declares a primary output net.
    pub fn add_primary_output(&mut self, net: NetId) {
        if !self.primary_outputs.contains(&net) {
            self.primary_outputs.push(net);
        }
    }

    /// All devices.
    pub fn devices(&self) -> &[NetDevice] {
        &self.devices
    }

    /// Replaces the geometry of device `index` (transistor sizing).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for an unknown device or
    /// non-positive dimensions.
    pub fn set_device_geometry(&mut self, index: usize, geom: Geometry) -> Result<()> {
        if geom.w <= 0.0 || geom.l <= 0.0 {
            return Err(NumError::InvalidInput {
                context: "Netlist::set_device_geometry",
                detail: format!("w={} l={}", geom.w, geom.l),
            });
        }
        match self.devices.get_mut(index) {
            Some(d) => {
                d.geom = geom;
                Ok(())
            }
            None => Err(NumError::InvalidInput {
                context: "Netlist::set_device_geometry",
                detail: format!("device {index} out of range"),
            }),
        }
    }

    /// Explicit grounded capacitance at `net`.
    pub fn cap(&self, net: NetId) -> f64 {
        self.caps.get(&net).copied().unwrap_or(0.0)
    }

    /// Declared primary inputs.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Declared primary outputs.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// Number of nets (including the rails).
    pub fn net_count(&self) -> usize {
        self.names.len()
    }

    /// Basic sanity validation: every declared primary I/O exists and
    /// every device has distinct channel terminals.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] on violations.
    pub fn validate(&self) -> Result<()> {
        for d in &self.devices {
            if d.src == d.snk {
                return Err(NumError::InvalidInput {
                    context: "Netlist::validate",
                    detail: format!("device {} shorts a net to itself", d.name),
                });
            }
            if d.geom.w <= 0.0 || d.geom.l <= 0.0 {
                return Err(NumError::InvalidInput {
                    context: "Netlist::validate",
                    detail: format!("device {} has non-positive geometry", d.name),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qwm_device::tech::Technology;

    #[test]
    fn rails_and_aliases() {
        let mut n = Netlist::new();
        assert_eq!(n.net("0"), n.gnd());
        assert_eq!(n.net("GND"), n.gnd());
        assert_eq!(n.net("vdd!"), n.vdd());
        assert!(n.is_rail(n.vdd()));
        let x = n.net("x");
        assert!(!n.is_rail(x));
        assert_eq!(n.net_name(n.gnd()), "gnd");
    }

    #[test]
    fn nets_are_interned() {
        let mut n = Netlist::new();
        let a = n.net("a");
        assert_eq!(n.net("a"), a);
        assert_eq!(n.find_net("a"), Some(a));
        assert_eq!(n.find_net("b"), None);
        assert_eq!(n.net_count(), 3);
    }

    #[test]
    fn caps_accumulate() {
        let mut n = Netlist::new();
        let a = n.net("a");
        n.add_cap(a, 1e-15);
        n.add_cap(a, 2e-15);
        assert!((n.cap(a) - 3e-15).abs() < 1e-24);
        assert_eq!(n.cap(n.gnd()), 0.0);
    }

    #[test]
    fn io_declarations_dedupe() {
        let mut n = Netlist::new();
        let a = n.net("a");
        n.add_primary_input(a);
        n.add_primary_input(a);
        assert_eq!(n.primary_inputs(), &[a]);
        n.add_primary_output(a);
        assert_eq!(n.primary_outputs(), &[a]);
    }

    #[test]
    fn validation_catches_shorts_and_bad_geometry() {
        let t = Technology::cmosp35();
        let mut n = Netlist::new();
        let a = n.net("a");
        let g = n.net("g");
        n.add_transistor(
            "M1",
            DeviceKind::Nmos,
            g,
            a,
            a,
            Geometry::new(t.w_min, t.l_min),
        );
        assert!(n.validate().is_err());

        let mut n = Netlist::new();
        let a = n.net("a");
        let b = n.net("b");
        n.add_wire("W1", a, b, 0.0, 1e-6);
        assert!(n.validate().is_err());
    }
}
