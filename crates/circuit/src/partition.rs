//! Channel-connected-component partitioning.
//!
//! "Circuit partitioning is used so that differential equation solving is
//! confined within small circuit partitions, called logic stages.
//! Typically, a logic stage is a set of channel-connected transistors and
//! wire segments" (paper §I). Two nets belong to the same stage when a
//! transistor channel or a wire connects them; gates do **not** connect
//! (they form the stage boundary), and the rails belong to every stage.
//!
//! Each component is lowered to a [`LogicStage`]: its gate nets become
//! stage inputs, and nets that either drive downstream gates or are
//! primary outputs become stage outputs.

use crate::netlist::{NetId, Netlist};
use crate::stage::{DeviceKind, LogicStage};
use qwm_num::{NumError, Result};
use std::collections::{HashMap, HashSet};

/// One extracted stage plus its connectivity back to the netlist.
#[derive(Debug)]
pub struct StagePartition {
    /// The lowered logic stage (node/input names are net names).
    pub stage: LogicStage,
    /// Nets driving this stage's inputs, aligned with `stage.inputs()`.
    pub input_nets: Vec<NetId>,
    /// Nets exposed as stage outputs, aligned with `stage.outputs()`.
    pub output_nets: Vec<NetId>,
    /// Netlist device indices included in this stage.
    pub device_indices: Vec<usize>,
}

/// Union-find over net indices.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Partitions a netlist into channel-connected logic stages.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] if the netlist fails validation or
/// a component contains no devices (unreachable by construction).
pub fn partition(netlist: &Netlist) -> Result<Vec<StagePartition>> {
    netlist.validate()?;
    let n = netlist.net_count();
    let mut dsu = Dsu::new(n);
    for d in netlist.devices() {
        // Rails never merge components.
        if !netlist.is_rail(d.src) && !netlist.is_rail(d.snk) {
            dsu.union(d.src.0, d.snk.0);
        }
    }

    // Group devices by the component of their non-rail terminal.
    let mut comp_devices: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, d) in netlist.devices().iter().enumerate() {
        let anchor = if !netlist.is_rail(d.src) {
            d.src.0
        } else if !netlist.is_rail(d.snk) {
            d.snk.0
        } else {
            // A device strung rail-to-rail: its own singleton component,
            // keyed by a sentinel (device index offset past all nets).
            comp_devices.entry(n + i).or_default().push(i);
            continue;
        };
        let root = dsu.find(anchor);
        comp_devices.entry(root).or_default().push(i);
    }

    // Which nets drive gates anywhere (stage outputs must include them).
    let mut gate_nets: HashSet<NetId> = HashSet::new();
    for d in netlist.devices() {
        if let Some(g) = d.gate {
            gate_nets.insert(g);
        }
    }
    let primary_outputs: HashSet<NetId> = netlist.primary_outputs().iter().copied().collect();

    let mut roots: Vec<usize> = comp_devices.keys().copied().collect();
    roots.sort_unstable();

    let mut result = Vec::new();
    for root in roots {
        let device_indices = &comp_devices[&root];
        if device_indices.is_empty() {
            return Err(NumError::InvalidInput {
                context: "partition",
                detail: "empty component".to_string(),
            });
        }
        let mut b = LogicStage::builder(format!("stage_{}", result.len()));
        let mut input_nets = Vec::new();
        let mut output_nets = Vec::new();
        let mut member_nets: Vec<NetId> = Vec::new();
        let map_node = |b: &mut crate::stage::StageBuilder, nl: &Netlist, id: NetId| {
            if id == nl.vdd() {
                b.vdd()
            } else if id == nl.gnd() {
                b.gnd()
            } else {
                b.node(nl.net_name(id))
            }
        };
        for &di in device_indices {
            let d = &netlist.devices()[di];
            let src = map_node(&mut b, netlist, d.src);
            let snk = map_node(&mut b, netlist, d.snk);
            for t in [d.src, d.snk] {
                if !netlist.is_rail(t) && !member_nets.contains(&t) {
                    member_nets.push(t);
                }
            }
            match d.kind {
                DeviceKind::Wire => {
                    b.wire(src, snk, d.geom.w, d.geom.l);
                }
                kind => {
                    let gate = d.gate.expect("transistor has a gate");
                    let input = b.input(netlist.net_name(gate));
                    if !input_nets.contains(&gate) {
                        input_nets.push(gate);
                    }
                    let mut e_geom = d.geom;
                    // Preserve explicit junction data if present.
                    e_geom.w = d.geom.w;
                    b.transistor(kind, input, src, snk, e_geom);
                }
            }
        }
        // Attach explicit caps and declare outputs.
        for &net in &member_nets {
            let node = map_node(&mut b, netlist, net);
            let c = netlist.cap(net);
            if c > 0.0 {
                b.load(node, c);
            }
            if gate_nets.contains(&net) || primary_outputs.contains(&net) {
                b.output(node);
                output_nets.push(net);
            }
        }
        // A stage with no natural output exposes every member net (it is
        // observable only internally, e.g. a test fixture).
        if output_nets.is_empty() {
            for &net in &member_nets {
                let node = map_node(&mut b, netlist, net);
                b.output(node);
                output_nets.push(net);
            }
        }
        let stage = b.build()?;
        result.push(StagePartition {
            stage,
            input_nets,
            output_nets,
            device_indices: device_indices.clone(),
        });
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qwm_device::model::Geometry;
    use qwm_device::tech::Technology;

    /// Two inverters in series: inv1 drives net `x`, inv2 drives `z`.
    fn two_inverters() -> Netlist {
        let t = Technology::cmosp35();
        let g = Geometry::new(t.w_min, t.l_min);
        let gp = Geometry::new(2.0 * t.w_min, t.l_min);
        let mut n = Netlist::new();
        let (vdd, gnd) = (n.vdd(), n.gnd());
        let a = n.net("a");
        let x = n.net("x");
        let z = n.net("z");
        n.add_transistor("MN1", DeviceKind::Nmos, a, x, gnd, g);
        n.add_transistor("MP1", DeviceKind::Pmos, a, vdd, x, gp);
        n.add_transistor("MN2", DeviceKind::Nmos, x, z, gnd, g);
        n.add_transistor("MP2", DeviceKind::Pmos, x, vdd, z, gp);
        n.add_primary_input(a);
        n.add_primary_output(z);
        n
    }

    #[test]
    fn two_inverters_make_two_stages() {
        let nl = two_inverters();
        let parts = partition(&nl).unwrap();
        assert_eq!(parts.len(), 2);
        for p in &parts {
            assert_eq!(p.stage.edge_count(), 2);
            assert_eq!(p.input_nets.len(), 1);
            assert_eq!(p.output_nets.len(), 1);
        }
        // Stage driven by `a` outputs `x`; stage driven by `x` outputs `z`.
        let x = nl.find_net("x").unwrap();
        let a = nl.find_net("a").unwrap();
        let by_input: Vec<_> = parts.iter().map(|p| p.input_nets[0]).collect();
        assert!(by_input.contains(&a));
        assert!(by_input.contains(&x));
    }

    #[test]
    fn pass_transistor_merges_stages() {
        // NAND output channel-connected to a pass transistor: one stage
        // (the paper's Figure 1 point).
        let t = Technology::cmosp35();
        let g = Geometry::new(t.w_min, t.l_min);
        let mut n = Netlist::new();
        let (vdd, gnd) = (n.vdd(), n.gnd());
        let a = n.net("a");
        let bn = n.net("b");
        let mid = n.net("mid");
        let y = n.net("y");
        let z = n.net("z");
        let en = n.net("en");
        n.add_transistor("MN1", DeviceKind::Nmos, a, mid, gnd, g);
        n.add_transistor("MN2", DeviceKind::Nmos, bn, y, mid, g);
        n.add_transistor("MP1", DeviceKind::Pmos, a, vdd, y, g);
        n.add_transistor("MP2", DeviceKind::Pmos, bn, vdd, y, g);
        // Pass transistor from y to z (channel-connected!).
        n.add_transistor("MPASS", DeviceKind::Nmos, en, y, z, g);
        n.add_primary_output(z);
        let parts = partition(&n).unwrap();
        assert_eq!(parts.len(), 1, "channel connection keeps one stage");
        assert_eq!(parts[0].stage.edge_count(), 5);
        assert_eq!(parts[0].input_nets.len(), 3);
    }

    #[test]
    fn wires_merge_components() {
        let t = Technology::cmosp35();
        let g = Geometry::new(t.w_min, t.l_min);
        let mut n = Netlist::new();
        let gnd = n.gnd();
        let a = n.net("a");
        let x = n.net("x");
        let y = n.net("y");
        n.add_transistor("MN1", DeviceKind::Nmos, a, x, gnd, g);
        n.add_wire("W1", x, y, 0.6e-6, 50e-6);
        n.add_primary_output(y);
        let parts = partition(&n).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].stage.edge_count(), 2);
    }

    #[test]
    fn explicit_caps_carry_over() {
        let mut nl = two_inverters();
        let x = nl.find_net("x").unwrap();
        nl.add_cap(x, 7e-15);
        let parts = partition(&nl).unwrap();
        let p = parts
            .iter()
            .find(|p| p.output_nets.contains(&x))
            .expect("stage driving x");
        let node = p.stage.node_by_name("x").unwrap();
        assert!((p.stage.node(node).load_cap - 7e-15).abs() < 1e-24);
    }

    #[test]
    fn outputs_are_gate_drivers_or_primaries() {
        let nl = two_inverters();
        let parts = partition(&nl).unwrap();
        let x = nl.find_net("x").unwrap();
        let z = nl.find_net("z").unwrap();
        let mut outs: Vec<NetId> = parts.iter().flat_map(|p| p.output_nets.clone()).collect();
        outs.sort();
        assert_eq!(outs, vec![x, z]);
    }
}
