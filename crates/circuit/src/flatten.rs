//! Whole-netlist flattening: one `LogicStage` for the entire circuit.
//!
//! Channel-connected partitioning (the paper's approach) confines each
//! solve to a small stage, but some analyses need the *whole* circuit in
//! one system: ring oscillators (every gate driven by another stage's
//! output), latches and keepers (feedback inside a component), or simply
//! validating the stage-by-stage STA against a flat full-circuit
//! transient. Flattening maps every net to a stage node and drives gates
//! from **nodes** (`Edge::gate_node`) unless the gate net is a declared
//! primary input, which stays an external stage input.

use crate::netlist::Netlist;
use crate::stage::{DeviceKind, LogicStage, NodeId};
use qwm_num::Result;
use std::collections::HashMap;

/// The flattened circuit plus net↔node bookkeeping.
#[derive(Debug)]
pub struct FlatCircuit {
    /// The whole netlist as one stage.
    pub stage: LogicStage,
    /// Stage node for each netlist net (rails included).
    pub node_of_net: HashMap<crate::netlist::NetId, NodeId>,
}

/// Flattens a netlist into a single stage. Primary inputs become stage
/// inputs; every other gate is node-driven. Primary outputs become stage
/// outputs (all non-rail nets if none are declared).
///
/// # Errors
///
/// Propagates netlist validation and stage construction failures.
pub fn flatten_netlist(netlist: &Netlist) -> Result<FlatCircuit> {
    netlist.validate()?;
    let mut b = LogicStage::builder("flat");
    let mut node_of_net: HashMap<crate::netlist::NetId, NodeId> = HashMap::new();
    let map = |b: &mut crate::stage::StageBuilder,
               map: &mut HashMap<crate::netlist::NetId, NodeId>,
               net: crate::netlist::NetId|
     -> NodeId {
        if let Some(&n) = map.get(&net) {
            return n;
        }
        let n = if net == netlist.vdd() {
            b.vdd()
        } else if net == netlist.gnd() {
            b.gnd()
        } else {
            b.node(netlist.net_name(net))
        };
        map.insert(net, n);
        n
    };

    let primary: Vec<crate::netlist::NetId> = netlist.primary_inputs().to_vec();
    for d in netlist.devices() {
        let src = map(&mut b, &mut node_of_net, d.src);
        let snk = map(&mut b, &mut node_of_net, d.snk);
        match d.kind {
            DeviceKind::Wire => {
                b.wire(src, snk, d.geom.w, d.geom.l);
            }
            kind => {
                let gate = d.gate.expect("transistor has a gate");
                if primary.contains(&gate) {
                    let input = b.input(netlist.net_name(gate));
                    b.transistor(kind, input, src, snk, d.geom);
                } else {
                    let gate_node = map(&mut b, &mut node_of_net, gate);
                    b.transistor_gated_by_node(kind, gate_node, src, snk, d.geom);
                }
            }
        }
    }
    // Loads and outputs.
    let nets: Vec<crate::netlist::NetId> = node_of_net.keys().copied().collect();
    for net in nets {
        let c = netlist.cap(net);
        if c > 0.0 {
            let n = node_of_net[&net];
            b.load(n, c);
        }
    }
    let outs: Vec<crate::netlist::NetId> = if netlist.primary_outputs().is_empty() {
        node_of_net
            .keys()
            .copied()
            .filter(|&n| !netlist.is_rail(n))
            .collect()
    } else {
        netlist.primary_outputs().to_vec()
    };
    for net in outs {
        let n = map(&mut b, &mut node_of_net, net);
        b.output(n);
    }
    Ok(FlatCircuit {
        stage: b.build()?,
        node_of_net,
    })
}

/// Builds a ring oscillator netlist: `stages` (odd) inverters in a loop,
/// each output loaded with `load`. Net names are `r0 … r{stages-1}`;
/// every net is a primary output (there are no primary inputs).
///
/// # Errors
///
/// Returns an error for an even or zero stage count (a ring must invert).
pub fn ring_oscillator(tech: &qwm_device::Technology, stages: usize, load: f64) -> Result<Netlist> {
    if stages == 0 || stages.is_multiple_of(2) {
        return Err(qwm_num::NumError::InvalidInput {
            context: "ring_oscillator",
            detail: format!("{stages} stages (must be odd)"),
        });
    }
    use qwm_device::model::Geometry;
    let mut nl = Netlist::new();
    let (vdd, gnd) = (nl.vdd(), nl.gnd());
    let gn = Geometry::new(tech.w_min, tech.l_min);
    let gp = Geometry::new(2.0 * tech.w_min, tech.l_min);
    let nets: Vec<_> = (0..stages).map(|i| nl.net(&format!("r{i}"))).collect();
    for i in 0..stages {
        let inp = nets[(i + stages - 1) % stages];
        let out = nets[i];
        nl.add_transistor(format!("MN{i}"), DeviceKind::Nmos, inp, out, gnd, gn);
        nl.add_transistor(format!("MP{i}"), DeviceKind::Pmos, inp, vdd, out, gp);
        nl.add_cap(out, load);
        nl.add_primary_output(out);
    }
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qwm_device::Technology;

    #[test]
    fn flatten_maps_gates_correctly() {
        let tech = Technology::cmosp35();
        // Two inverters in series: `a` primary, `x` internal.
        let deck = "\
MN1 x a 0 0 nmos W=0.5u L=0.35u
MP1 x a vdd vdd pmos W=1u L=0.35u
MN2 z x 0 0 nmos W=0.5u L=0.35u
MP2 z x vdd vdd pmos W=1u L=0.35u
Cz z 0 10f
.input a
.output z
";
        let nl = crate::parser::parse_netlist(deck).unwrap();
        let flat = flatten_netlist(&nl).unwrap();
        assert_eq!(flat.stage.inputs().len(), 1, "only `a` is external");
        // MN2/MP2 are node-gated by x.
        let x = flat.stage.node_by_name("x").unwrap();
        let node_gated = flat
            .stage
            .edges()
            .iter()
            .filter(|e| e.gate_node == Some(x))
            .count();
        assert_eq!(node_gated, 2);
        let _ = tech;
    }

    #[test]
    fn ring_netlist_shape() {
        let tech = Technology::cmosp35();
        let nl = ring_oscillator(&tech, 5, 5e-15).unwrap();
        assert_eq!(nl.devices().len(), 10);
        assert!(nl.primary_inputs().is_empty());
        assert_eq!(nl.primary_outputs().len(), 5);
        assert!(ring_oscillator(&tech, 4, 5e-15).is_err());
        let flat = flatten_netlist(&nl).unwrap();
        assert_eq!(flat.stage.inputs().len(), 0);
        assert!(flat.stage.edges().iter().all(|e| e.gate_node.is_some()));
    }
}
