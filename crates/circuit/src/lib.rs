//! Circuit modeling for the QWM transistor-level timing toolkit.
//!
//! * [`stage`] — the CMOS logic stage as a polar directed graph (paper
//!   Definition 1) with builder, capacitance bookkeeping (Eq. (1)) and
//!   terminal-voltage resolution;
//! * [`waveform`] — piecewise-linear waveforms, threshold crossings and
//!   delay/slew metrics (the outputs of waveform evaluation,
//!   Definition 3);
//! * [`cells`] — generators for every circuit in the paper's evaluation:
//!   gates (Table I), random NMOS stacks (Table II), the Manchester carry
//!   chain (Fig. 2) and the memory decoder tree (Fig. 3);
//! * [`netlist`] — flat transistor-level netlists for full circuits;
//! * [`partition`] — channel-connected-component extraction of logic
//!   stages from a netlist (the "dynamic stage construction" of §I);
//! * [`parser`] — a SPICE-subset deck parser.
//!
//! # Example
//!
//! Build a NAND3 and inspect its discharge path:
//!
//! ```
//! use qwm_circuit::cells;
//! use qwm_device::tech::Technology;
//!
//! # fn main() -> Result<(), qwm_num::NumError> {
//! let tech = Technology::cmosp35();
//! let nand3 = cells::nand(&tech, 3, cells::DEFAULT_LOAD)?;
//! assert_eq!(nand3.inputs().len(), 3);
//! assert_eq!(nand3.edge_count(), 6); // 3 NMOS in series, 3 PMOS parallel
//! # Ok(())
//! # }
//! ```

pub mod cells;
pub mod flatten;
pub mod netlist;
pub mod parser;
pub mod partition;
pub mod stage;
pub mod waveform;

pub use flatten::{flatten_netlist, ring_oscillator, FlatCircuit};
pub use netlist::{NetDevice, NetId, Netlist};
pub use stage::{DeviceKind, Edge, EdgeId, Input, InputId, LogicStage, Node, NodeId, NodeKind};
pub use waveform::{delay_between, measure_transition, TimingMetrics, TransitionKind, Waveform};
