//! Linear and bilinear interpolation over uniform grids.
//!
//! Device-table queries land between characterized (Vs, Vg) grid points;
//! the paper interpolates "from neighbor points" (§V-A). [`UniformGrid1`]
//! and [`UniformGrid2`] provide exactly that, with clamping at the grid
//! edges (terminal voltages are clamped into the characterized range by
//! the caller, so edge clamping only absorbs round-off).

use crate::{NumError, Result};

/// A uniform 1-D grid `x₀, x₀+dx, …` carrying `n` sample values.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformGrid1 {
    x0: f64,
    dx: f64,
    values: Vec<f64>,
}

impl UniformGrid1 {
    /// Builds a grid starting at `x0` with spacing `dx > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] if fewer than two samples, a
    /// non-positive spacing, or non-finite data.
    pub fn new(x0: f64, dx: f64, values: Vec<f64>) -> Result<Self> {
        if values.len() < 2 || dx <= 0.0 || !dx.is_finite() || !x0.is_finite() {
            return Err(NumError::InvalidInput {
                context: "UniformGrid1::new",
                detail: format!("len={} dx={dx}", values.len()),
            });
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(NumError::InvalidInput {
                context: "UniformGrid1::new",
                detail: "non-finite sample".to_string(),
            });
        }
        Ok(UniformGrid1 { x0, dx, values })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the grid holds no samples. The constructor requires at
    /// least two, so this is false for any grid built through [`new`]
    /// (`UniformGrid1::new`) — but the `len()/is_empty()` pair must stay
    /// honest rather than hardcoding that invariant.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Last grid abscissa.
    pub fn x_max(&self) -> f64 {
        self.x0 + self.dx * (self.values.len() - 1) as f64
    }

    /// Linearly interpolates at `x`, clamping outside the grid.
    ///
    /// ```
    /// # use qwm_num::interp::UniformGrid1;
    /// # fn main() -> Result<(), qwm_num::NumError> {
    /// let g = UniformGrid1::new(0.0, 1.0, vec![0.0, 10.0, 20.0])?;
    /// assert_eq!(g.eval(0.5), 5.0);
    /// assert_eq!(g.eval(-1.0), 0.0); // clamped
    /// # Ok(())
    /// # }
    /// ```
    pub fn eval(&self, x: f64) -> f64 {
        let (i, t) = self.locate(x);
        self.values[i] * (1.0 - t) + self.values[i + 1] * t
    }

    /// Derivative of the interpolant at `x` (the cell slope).
    pub fn deriv(&self, x: f64) -> f64 {
        let (i, _) = self.locate(x);
        (self.values[i + 1] - self.values[i]) / self.dx
    }

    fn locate(&self, x: f64) -> (usize, f64) {
        let n = self.values.len();
        let u = ((x - self.x0) / self.dx).clamp(0.0, (n - 1) as f64);
        let mut i = u.floor() as usize;
        if i >= n - 1 {
            i = n - 2;
        }
        (i, u - i as f64)
    }
}

/// A uniform 2-D grid over `(x, y)` with row-major sample values
/// (`values[iy * nx + ix]`).
#[derive(Debug, Clone, PartialEq)]
pub struct UniformGrid2 {
    x0: f64,
    dx: f64,
    nx: usize,
    y0: f64,
    dy: f64,
    ny: usize,
    values: Vec<f64>,
}

impl UniformGrid2 {
    /// Builds the 2-D grid.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] on degenerate axes or a value
    /// buffer whose length differs from `nx * ny`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        x0: f64,
        dx: f64,
        nx: usize,
        y0: f64,
        dy: f64,
        ny: usize,
        values: Vec<f64>,
    ) -> Result<Self> {
        if nx < 2 || ny < 2 || dx <= 0.0 || dy <= 0.0 {
            return Err(NumError::InvalidInput {
                context: "UniformGrid2::new",
                detail: format!("nx={nx} ny={ny} dx={dx} dy={dy}"),
            });
        }
        if values.len() != nx * ny {
            return Err(NumError::InvalidInput {
                context: "UniformGrid2::new",
                detail: format!("values.len()={} expected {}", values.len(), nx * ny),
            });
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(NumError::InvalidInput {
                context: "UniformGrid2::new",
                detail: "non-finite sample".to_string(),
            });
        }
        Ok(UniformGrid2 {
            x0,
            dx,
            nx,
            y0,
            dy,
            ny,
            values,
        })
    }

    /// Grid extents as `((x0, x_max), (y0, y_max))`.
    pub fn extents(&self) -> ((f64, f64), (f64, f64)) {
        (
            (self.x0, self.x0 + self.dx * (self.nx - 1) as f64),
            (self.y0, self.y0 + self.dy * (self.ny - 1) as f64),
        )
    }

    fn locate(u: f64, n: usize) -> (usize, f64) {
        let u = u.clamp(0.0, (n - 1) as f64);
        let mut i = u.floor() as usize;
        if i >= n - 1 {
            i = n - 2;
        }
        (i, u - i as f64)
    }

    /// Bilinearly interpolates at `(x, y)`, clamping outside the grid.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let (ix, tx) = Self::locate((x - self.x0) / self.dx, self.nx);
        let (iy, ty) = Self::locate((y - self.y0) / self.dy, self.ny);
        let v00 = self.values[iy * self.nx + ix];
        let v10 = self.values[iy * self.nx + ix + 1];
        let v01 = self.values[(iy + 1) * self.nx + ix];
        let v11 = self.values[(iy + 1) * self.nx + ix + 1];
        let a = v00 * (1.0 - tx) + v10 * tx;
        let b = v01 * (1.0 - tx) + v11 * tx;
        a * (1.0 - ty) + b * ty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid1_exact_at_samples() {
        let g = UniformGrid1::new(1.0, 0.5, vec![2.0, 4.0, 8.0]).unwrap();
        assert_eq!(g.eval(1.0), 2.0);
        assert_eq!(g.eval(1.5), 4.0);
        assert_eq!(g.eval(2.0), 8.0);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.x_max(), 2.0);
    }

    #[test]
    fn grid1_linear_between_samples_and_clamped_outside() {
        let g = UniformGrid1::new(0.0, 1.0, vec![0.0, 10.0]).unwrap();
        assert_eq!(g.eval(0.25), 2.5);
        assert_eq!(g.eval(-5.0), 0.0);
        assert_eq!(g.eval(5.0), 10.0);
        assert_eq!(g.deriv(0.5), 10.0);
    }

    #[test]
    fn grid2_reproduces_bilinear_function() {
        // f(x, y) = 3 + 2x − y + 0.5 x y is exactly bilinear.
        let f = |x: f64, y: f64| 3.0 + 2.0 * x - y + 0.5 * x * y;
        let (nx, ny) = (5, 4);
        let (dx, dy) = (0.25, 0.5);
        let mut values = Vec::new();
        for iy in 0..ny {
            for ix in 0..nx {
                values.push(f(ix as f64 * dx, iy as f64 * dy));
            }
        }
        let g = UniformGrid2::new(0.0, dx, nx, 0.0, dy, ny, values).unwrap();
        for &(x, y) in &[(0.1, 0.1), (0.6, 1.2), (0.99, 1.49), (0.0, 0.0)] {
            assert!((g.eval(x, y) - f(x, y)).abs() < 1e-12, "at ({x},{y})");
        }
    }

    #[test]
    fn grid2_clamps_out_of_range() {
        let g = UniformGrid2::new(0.0, 1.0, 2, 0.0, 1.0, 2, vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(g.eval(-1.0, -1.0), 0.0);
        assert_eq!(g.eval(9.0, 9.0), 3.0);
        let ((xl, xh), (yl, yh)) = g.extents();
        assert_eq!((xl, xh, yl, yh), (0.0, 1.0, 0.0, 1.0));
    }

    #[test]
    fn validation() {
        assert!(UniformGrid1::new(0.0, 0.0, vec![1.0, 2.0]).is_err());
        assert!(UniformGrid1::new(0.0, 1.0, vec![1.0]).is_err());
        assert!(UniformGrid1::new(0.0, 1.0, vec![1.0, f64::NAN]).is_err());
        assert!(UniformGrid2::new(0.0, 1.0, 1, 0.0, 1.0, 2, vec![0.0, 1.0]).is_err());
        assert!(UniformGrid2::new(0.0, 1.0, 2, 0.0, 1.0, 2, vec![0.0, 1.0]).is_err());
    }
}
