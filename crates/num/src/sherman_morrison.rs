#![allow(clippy::needless_range_loop)] // index loops mirror the matrix algebra

//! Sherman–Morrison solves for "tridiagonal plus rank-1" systems.
//!
//! The QWM Jacobian (paper Eq. (9) and the matrix Â of §IV-B) is
//! tridiagonal in the node voltages except for its **last column**, which
//! carries the sensitivity to the unknown region end time τ′. Writing
//! `Â = A + u·vᵀ` with `A` tridiagonal, `v = e_n` and `u` the extra last
//! column, the update `Δx = Â⁻¹ F` is obtained from two Thomas solves:
//!
//! ```text
//! A y = F
//! A z = u
//! x   = y − v·y / (1 + v·z) · z
//! ```
//!
//! which keeps the whole Newton update at O(K), as the paper exploits.

use crate::tridiag::Tridiagonal;
use crate::{NumError, Result};

/// Solves `(A + u vᵀ) x = b` where `A` is tridiagonal.
///
/// # Errors
///
/// Returns [`NumError::Dimension`] on size mismatches,
/// [`NumError::Singular`] if `A` is singular or the Sherman–Morrison
/// denominator `1 + vᵀ A⁻¹ u` vanishes.
///
/// ```
/// use qwm_num::sherman_morrison::solve_rank1_update;
/// use qwm_num::tridiag::Tridiagonal;
/// # fn main() -> Result<(), qwm_num::NumError> {
/// let a = Tridiagonal::from_bands(vec![0.0], vec![1.0, 1.0], vec![0.0])?;
/// // A + u vᵀ = [[1, 1], [0, 2]] for u = [1, 1], v = [0, 1].
/// let x = solve_rank1_update(&a, &[1.0, 1.0], &[0.0, 1.0], &[3.0, 4.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_rank1_update(a: &Tridiagonal, u: &[f64], v: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    let n = a.dim();
    if u.len() != n || v.len() != n || b.len() != n {
        return Err(NumError::Dimension {
            context: "solve_rank1_update",
            detail: format!("n={n} u={} v={} b={}", u.len(), v.len(), b.len()),
        });
    }
    let y = a.solve(b)?;
    let z = a.solve(u)?;
    let vy: f64 = v.iter().zip(&y).map(|(a, b)| a * b).sum();
    let vz: f64 = v.iter().zip(&z).map(|(a, b)| a * b).sum();
    let denom = 1.0 + vz;
    if denom.abs() < 1e-300 || !denom.is_finite() {
        return Err(NumError::Singular {
            index: n - 1,
            pivot: denom,
        });
    }
    let scale = vy / denom;
    Ok(y.iter().zip(&z).map(|(yi, zi)| yi - scale * zi).collect())
}

/// Solves a system whose matrix is tridiagonal except for a dense last
/// column — the exact shape of the QWM Jacobian.
///
/// `a` holds the tridiagonal part **with its own (n-1)-th column entries
/// already zeroed in rows 0..n-2** (i.e. only `a[n-2][n-1]` and
/// `a[n-1][n-1]` live in the bands); `last_col[r]` is the amount to add to
/// entry `(r, n-1)` on top of the banded part.
///
/// Internally this is [`solve_rank1_update`] with `u = last_col` and
/// `v = e_{n-1}`.
///
/// The banded part `a` must itself be nonsingular (Sherman–Morrison
/// inverts it twice); callers therefore keep a nonzero `(n-1, n-1)` band
/// entry and put only the *remainder* of the true last-column entries in
/// `last_col`. The QWM solver does exactly this with the ∂F/∂τ′ column.
///
/// # Errors
///
/// Same as [`solve_rank1_update`].
pub fn solve_tridiag_last_column(a: &Tridiagonal, last_col: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    let n = a.dim();
    let mut v = vec![0.0; n];
    if n > 0 {
        v[n - 1] = 1.0;
    }
    solve_rank1_update(a, last_col, &v, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    /// Builds the dense equivalent of tridiagonal + u vᵀ and cross-checks.
    fn check_against_dense(a: &Tridiagonal, u: &[f64], v: &[f64], b: &[f64]) {
        let n = a.dim();
        let mut dense = a.to_dense();
        for r in 0..n {
            for c in 0..n {
                dense.add(r, c, u[r] * v[c]);
            }
        }
        let want = dense.solve(b).unwrap();
        let got = solve_rank1_update(a, u, v, b).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10, "{g} vs {w}");
        }
    }

    #[test]
    fn rank1_update_matches_dense() {
        let a = Tridiagonal::from_bands(
            vec![-1.0, 0.5, -0.25],
            vec![4.0, 5.0, 6.0, 7.0],
            vec![1.0, -1.0, 0.75],
        )
        .unwrap();
        check_against_dense(
            &a,
            &[0.1, -0.2, 0.3, 1.5],
            &[0.0, 0.0, 0.0, 1.0],
            &[1.0, 2.0, 3.0, 4.0],
        );
        check_against_dense(
            &a,
            &[1.0, 1.0, 1.0, 1.0],
            &[0.5, 0.0, -0.5, 0.0],
            &[-1.0, 0.0, 1.0, 2.0],
        );
    }

    #[test]
    fn last_column_shape() {
        // Dense matrix:
        // [ 2 1 0 | 3  ]
        // [ 1 3 1 | -1 ]
        // [ 0 1 4 | 2  ]
        // [ 0 0 1 | 6  ]
        // The band keeps a nonsingular (3,3) = 1; the extra 5 rides in
        // last_col (the band part must stay invertible on its own).
        let a = Tridiagonal::from_bands(
            vec![1.0, 1.0, 1.0],
            vec![2.0, 3.0, 4.0, 1.0],
            vec![1.0, 1.0, 0.0],
        )
        .unwrap();
        let last = [3.0, -1.0, 2.0, 5.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let got = solve_tridiag_last_column(&a, &last, &b).unwrap();

        let mut dense = a.to_dense();
        for r in 0..4 {
            dense.add(r, 3, last[r]);
        }
        let want = dense.solve(&b).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_denominator_detected() {
        // A = I (2x2), u = [0, -1], v = [0, 1] makes 1 + vᵀA⁻¹u = 0.
        let a = Tridiagonal::from_bands(vec![0.0], vec![1.0, 1.0], vec![0.0]).unwrap();
        let r = solve_rank1_update(&a, &[0.0, -1.0], &[0.0, 1.0], &[1.0, 1.0]);
        assert!(matches!(r, Err(NumError::Singular { .. })));
    }

    #[test]
    fn dimension_mismatch() {
        let a = Tridiagonal::zeros(2).unwrap();
        assert!(solve_rank1_update(&a, &[1.0], &[0.0, 1.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn identity_rank1_is_exact() {
        let dense = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 2.0]]).unwrap();
        let a = Tridiagonal::from_bands(vec![0.0], vec![1.0, 1.0], vec![0.0]).unwrap();
        let x = solve_rank1_update(&a, &[1.0, 1.0], &[0.0, 1.0], &[3.0, 4.0]).unwrap();
        let back = dense.mul_vec(&x).unwrap();
        assert!((back[0] - 3.0).abs() < 1e-12);
        assert!((back[1] - 4.0).abs() < 1e-12);
    }
}
