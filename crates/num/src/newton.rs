//! A damped Newton–Raphson driver.
//!
//! Both engines in this toolkit run Newton–Raphson, but over very
//! different problem sizes and counts:
//!
//! * the SPICE baseline solves one nonlinear system **per time step**
//!   (hundreds to thousands of solves per transient);
//! * QWM solves one nonlinear system **per critical region** (K solves
//!   per transient, the paper's entire point).
//!
//! The driver is generic over a [`NonlinearSystem`], which supplies the
//! residual and the Jacobian *solve* (not the Jacobian itself) so that
//! implementations can pick their own linear algebra — dense LU for
//! SPICE's MNA matrix, Thomas + Sherman–Morrison for QWM's
//! tridiagonal-plus-column system.

use crate::{NumError, Result};
use std::cell::RefCell;

/// A nonlinear system `F(x) = 0` together with a way to solve its
/// linearization.
pub trait NonlinearSystem {
    /// Problem dimension.
    fn dim(&self) -> usize;

    /// Evaluates the residual `F(x)` into `out` (length [`Self::dim`]).
    ///
    /// # Errors
    ///
    /// Implementations may fail on out-of-domain iterates (e.g. a device
    /// model queried outside its table).
    fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<()>;

    /// Solves `J(x) · delta = f` for the Newton update, writing it into
    /// the caller-provided `delta` (length [`Self::dim`]). The driver
    /// owns the buffer (see [`NewtonWorkspace`]) so per-iteration heap
    /// traffic stays out of the hot path.
    ///
    /// # Errors
    ///
    /// Implementations should surface singular Jacobians as
    /// [`NumError::Singular`].
    fn solve_jacobian(&self, x: &[f64], f: &[f64], delta: &mut [f64]) -> Result<()>;

    /// Clamps or projects an iterate back into the valid domain
    /// (e.g. node voltages into `[−0.5, Vdd + 0.5]`). The default is the
    /// identity.
    fn project(&self, _x: &mut [f64]) {}
}

/// Reusable buffers for [`newton_solve_with`]: residual, update, trial
/// point, trial residual, and the best-candidate pair kept by the damped
/// line search. Owning one per driver (or per worker thread) makes a
/// warm Newton solve allocation-free apart from the returned
/// [`NewtonOutcome`].
#[derive(Debug, Default, Clone)]
pub struct NewtonWorkspace {
    f: Vec<f64>,
    delta: Vec<f64>,
    xt: Vec<f64>,
    ft: Vec<f64>,
    best_x: Vec<f64>,
    best_f: Vec<f64>,
}

impl NewtonWorkspace {
    /// A workspace pre-sized for `n`-dimensional systems.
    pub fn new(n: usize) -> Self {
        let mut ws = NewtonWorkspace::default();
        ws.ensure_dim(n);
        ws
    }

    /// Grows (or shrinks) every buffer to length `n`. Amortized free
    /// once the workspace has seen the largest system it will serve.
    pub fn ensure_dim(&mut self, n: usize) {
        for buf in [
            &mut self.f,
            &mut self.delta,
            &mut self.xt,
            &mut self.ft,
            &mut self.best_x,
            &mut self.best_f,
        ] {
            buf.resize(n, 0.0);
        }
    }
}

thread_local! {
    /// Per-thread fallback workspace for the legacy [`newton_solve`]
    /// entry point, so callers that never thread a workspace through
    /// still reuse buffers across solves on the same worker.
    static NEWTON_WS: RefCell<NewtonWorkspace> = RefCell::new(NewtonWorkspace::default());
}

/// Convergence and damping controls for [`newton_solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum Newton iterations before reporting failure.
    pub max_iterations: usize,
    /// Converged when the ∞-norm of the residual drops below this.
    pub tol_residual: f64,
    /// Converged when the ∞-norm of the update drops below this.
    pub tol_update: f64,
    /// Maximum step halvings per iteration when the full step increases
    /// the residual norm (0 disables damping).
    pub max_backtracks: usize,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iterations: 60,
            tol_residual: 1e-9,
            tol_update: 1e-12,
            max_backtracks: 8,
        }
    }
}

/// Outcome of a successful Newton solve.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonOutcome {
    /// The converged iterate.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual ∞-norm.
    pub residual_norm: f64,
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// Runs damped Newton–Raphson from `x0` until convergence.
///
/// Each iteration solves `J δ = F` and applies `x ← x − λ δ`, halving λ
/// while the residual norm fails to decrease (up to
/// [`NewtonOptions::max_backtracks`] times; the last candidate is accepted
/// regardless so the iteration can escape flat regions).
///
/// # Errors
///
/// Returns [`NumError::NoConvergence`] when the iteration budget is
/// exhausted, and propagates residual/Jacobian errors.
///
/// ```
/// use qwm_num::newton::{newton_solve, NewtonOptions, NonlinearSystem};
/// use qwm_num::Result;
///
/// /// x² − 2 = 0
/// struct Sqrt2;
/// impl NonlinearSystem for Sqrt2 {
///     fn dim(&self) -> usize { 1 }
///     fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
///         out[0] = x[0] * x[0] - 2.0;
///         Ok(())
///     }
///     fn solve_jacobian(&self, x: &[f64], f: &[f64], delta: &mut [f64]) -> Result<()> {
///         delta[0] = f[0] / (2.0 * x[0]);
///         Ok(())
///     }
/// }
///
/// # fn main() -> Result<()> {
/// let out = newton_solve(&Sqrt2, &[1.0], &NewtonOptions::default())?;
/// assert!((out.x[0] - 2f64.sqrt()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn newton_solve<S: NonlinearSystem + ?Sized>(
    system: &S,
    x0: &[f64],
    opts: &NewtonOptions,
) -> Result<NewtonOutcome> {
    NEWTON_WS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => newton_solve_with(system, x0, opts, &mut ws),
        // Re-entrant call (a residual that itself runs Newton): fall
        // back to a fresh workspace rather than panicking the borrow.
        Err(_) => newton_solve_with(system, x0, opts, &mut NewtonWorkspace::default()),
    })
}

/// [`newton_solve`] with an explicit, caller-owned [`NewtonWorkspace`].
///
/// All scratch lives in `ws`; a warm call allocates only the returned
/// `NewtonOutcome::x`. Results are bitwise-identical to
/// [`newton_solve`] — the workspace changes where intermediates live,
/// never the arithmetic.
///
/// # Errors
///
/// Same contract as [`newton_solve`].
pub fn newton_solve_with<S: NonlinearSystem + ?Sized>(
    system: &S,
    x0: &[f64],
    opts: &NewtonOptions,
    ws: &mut NewtonWorkspace,
) -> Result<NewtonOutcome> {
    let n = system.dim();
    if x0.len() != n {
        return Err(NumError::Dimension {
            context: "newton_solve",
            detail: format!("x0.len()={} dim={n}", x0.len()),
        });
    }
    ws.ensure_dim(n);
    // Split borrows so the trial-point fill can read `delta` while
    // writing `xt`.
    let NewtonWorkspace {
        f,
        delta,
        xt,
        ft,
        best_x,
        best_f,
    } = ws;
    let mut x = x0.to_vec();
    system.project(&mut x);
    system.residual(&x, f)?;
    let mut fnorm = inf_norm(f);

    for iter in 0..opts.max_iterations {
        if fnorm <= opts.tol_residual {
            return Ok(NewtonOutcome {
                x,
                iterations: iter,
                residual_norm: fnorm,
            });
        }
        system.solve_jacobian(&x, f, delta)?;
        if !delta.iter().all(|d| d.is_finite()) {
            return Err(NumError::NoConvergence {
                method: "newton (non-finite update)",
                iterations: iter,
                residual: fnorm,
            });
        }

        // Damped line search on the residual norm. The best candidate
        // (lowest finite norm) is kept in best_x/best_f.
        let mut lambda = 1.0;
        let mut best_norm = f64::INFINITY;
        let mut have_best = false;
        for _ in 0..=opts.max_backtracks {
            for ((t, xi), di) in xt.iter_mut().zip(&x).zip(delta.iter()) {
                *t = xi - lambda * di;
            }
            system.project(xt);
            match system.residual(xt, ft) {
                Ok(()) => {
                    let norm = inf_norm(ft);
                    if norm.is_finite() && (!have_best || norm < best_norm) {
                        best_x.copy_from_slice(xt);
                        best_f.copy_from_slice(ft);
                        best_norm = norm;
                        have_best = true;
                    }
                    if norm < fnorm {
                        break;
                    }
                }
                Err(_) if opts.max_backtracks > 0 => {
                    // Out-of-domain trial point: shrink the step and retry.
                }
                Err(e) => return Err(e),
            }
            lambda *= 0.5;
        }
        if !have_best {
            return Err(NumError::NoConvergence {
                method: "newton (all damped steps out of domain)",
                iterations: iter,
                residual: fnorm,
            });
        }

        let update_norm: f64 = x
            .iter()
            .zip(best_x.iter())
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
        x.copy_from_slice(best_x);
        f.copy_from_slice(best_f);
        fnorm = best_norm;
        if update_norm <= opts.tol_update {
            return Ok(NewtonOutcome {
                x,
                iterations: iter + 1,
                residual_norm: fnorm,
            });
        }
    }
    if fnorm <= opts.tol_residual {
        return Ok(NewtonOutcome {
            x,
            iterations: opts.max_iterations,
            residual_norm: fnorm,
        });
    }
    Err(NumError::NoConvergence {
        method: "newton",
        iterations: opts.max_iterations,
        residual: fnorm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    /// 2-D Rosenbrock-style gradient system with a known root at (1, 1).
    struct TwoD;
    impl NonlinearSystem for TwoD {
        fn dim(&self) -> usize {
            2
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
            out[0] = x[0] * x[0] + x[1] * x[1] - 2.0;
            out[1] = x[0] - x[1];
            Ok(())
        }
        fn solve_jacobian(&self, x: &[f64], f: &[f64], delta: &mut [f64]) -> Result<()> {
            let j = Matrix::from_rows(&[&[2.0 * x[0], 2.0 * x[1]], &[1.0, -1.0]])?;
            delta.copy_from_slice(&j.solve(f)?);
            Ok(())
        }
    }

    #[test]
    fn converges_on_2d_system() {
        let out = newton_solve(&TwoD, &[3.0, 0.5], &NewtonOptions::default()).unwrap();
        assert!((out.x[0] - 1.0).abs() < 1e-8);
        assert!((out.x[1] - 1.0).abs() < 1e-8);
        assert!(out.iterations < 20);
    }

    #[test]
    fn immediate_convergence_costs_zero_iterations() {
        let out = newton_solve(&TwoD, &[1.0, 1.0], &NewtonOptions::default()).unwrap();
        assert_eq!(out.iterations, 0);
    }

    /// A system whose full Newton step overshoots badly without damping.
    struct Steep;
    impl NonlinearSystem for Steep {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
            out[0] = x[0].atan();
            Ok(())
        }
        fn solve_jacobian(&self, x: &[f64], f: &[f64], delta: &mut [f64]) -> Result<()> {
            delta[0] = f[0] * (1.0 + x[0] * x[0]);
            Ok(())
        }
    }

    #[test]
    fn damping_rescues_atan() {
        // Plain Newton diverges on atan(x)=0 from |x0| > ~1.39; damping fixes it.
        let out = newton_solve(&Steep, &[5.0], &NewtonOptions::default()).unwrap();
        assert!(out.x[0].abs() < 1e-8);
    }

    #[test]
    fn iteration_budget_is_enforced() {
        let opts = NewtonOptions {
            max_iterations: 1,
            tol_residual: 0.0,
            ..Default::default()
        };
        let err = newton_solve(&TwoD, &[30.0, -7.0], &opts).unwrap_err();
        assert!(matches!(err, NumError::NoConvergence { .. }));
    }

    #[test]
    fn projection_keeps_iterates_in_domain() {
        /// sqrt-based residual that would NaN for x < 0 without projection.
        struct Rooty;
        impl NonlinearSystem for Rooty {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
                if x[0] < 0.0 {
                    return Err(NumError::InvalidInput {
                        context: "Rooty",
                        detail: "negative".into(),
                    });
                }
                out[0] = x[0].sqrt() - 2.0;
                Ok(())
            }
            fn solve_jacobian(&self, x: &[f64], f: &[f64], delta: &mut [f64]) -> Result<()> {
                delta[0] = f[0] * 2.0 * x[0].max(1e-12).sqrt();
                Ok(())
            }
            fn project(&self, x: &mut [f64]) {
                if x[0] < 0.0 {
                    x[0] = 0.0;
                }
            }
        }
        let out = newton_solve(&Rooty, &[0.1], &NewtonOptions::default()).unwrap();
        assert!((out.x[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        assert!(newton_solve(&TwoD, &[1.0], &NewtonOptions::default()).is_err());
    }

    /// A workspace reused across solves (including dimension changes)
    /// yields bitwise-identical iterates to the thread-local path.
    #[test]
    fn reused_workspace_is_bitwise_identical() {
        let mut ws = NewtonWorkspace::new(1);
        let opts = NewtonOptions::default();
        for _ in 0..3 {
            let a = newton_solve(&TwoD, &[3.0, 0.5], &opts).unwrap();
            let b = newton_solve_with(&TwoD, &[3.0, 0.5], &opts, &mut ws).unwrap();
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.residual_norm.to_bits(), b.residual_norm.to_bits());
            for (p, q) in a.x.iter().zip(&b.x) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
            let s = newton_solve_with(&Steep, &[5.0], &opts, &mut ws).unwrap();
            assert!(s.x[0].abs() < 1e-8);
        }
    }
}
