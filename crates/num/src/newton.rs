//! A damped Newton–Raphson driver.
//!
//! Both engines in this toolkit run Newton–Raphson, but over very
//! different problem sizes and counts:
//!
//! * the SPICE baseline solves one nonlinear system **per time step**
//!   (hundreds to thousands of solves per transient);
//! * QWM solves one nonlinear system **per critical region** (K solves
//!   per transient, the paper's entire point).
//!
//! The driver is generic over a [`NonlinearSystem`], which supplies the
//! residual and the Jacobian *solve* (not the Jacobian itself) so that
//! implementations can pick their own linear algebra — dense LU for
//! SPICE's MNA matrix, Thomas + Sherman–Morrison for QWM's
//! tridiagonal-plus-column system.

use crate::{NumError, Result};

/// A nonlinear system `F(x) = 0` together with a way to solve its
/// linearization.
pub trait NonlinearSystem {
    /// Problem dimension.
    fn dim(&self) -> usize;

    /// Evaluates the residual `F(x)` into `out` (length [`Self::dim`]).
    ///
    /// # Errors
    ///
    /// Implementations may fail on out-of-domain iterates (e.g. a device
    /// model queried outside its table).
    fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<()>;

    /// Solves `J(x) · delta = f` for the Newton update `delta`.
    ///
    /// # Errors
    ///
    /// Implementations should surface singular Jacobians as
    /// [`NumError::Singular`].
    fn solve_jacobian(&self, x: &[f64], f: &[f64]) -> Result<Vec<f64>>;

    /// Clamps or projects an iterate back into the valid domain
    /// (e.g. node voltages into `[−0.5, Vdd + 0.5]`). The default is the
    /// identity.
    fn project(&self, _x: &mut [f64]) {}
}

/// Convergence and damping controls for [`newton_solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum Newton iterations before reporting failure.
    pub max_iterations: usize,
    /// Converged when the ∞-norm of the residual drops below this.
    pub tol_residual: f64,
    /// Converged when the ∞-norm of the update drops below this.
    pub tol_update: f64,
    /// Maximum step halvings per iteration when the full step increases
    /// the residual norm (0 disables damping).
    pub max_backtracks: usize,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iterations: 60,
            tol_residual: 1e-9,
            tol_update: 1e-12,
            max_backtracks: 8,
        }
    }
}

/// Outcome of a successful Newton solve.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonOutcome {
    /// The converged iterate.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual ∞-norm.
    pub residual_norm: f64,
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// Runs damped Newton–Raphson from `x0` until convergence.
///
/// Each iteration solves `J δ = F` and applies `x ← x − λ δ`, halving λ
/// while the residual norm fails to decrease (up to
/// [`NewtonOptions::max_backtracks`] times; the last candidate is accepted
/// regardless so the iteration can escape flat regions).
///
/// # Errors
///
/// Returns [`NumError::NoConvergence`] when the iteration budget is
/// exhausted, and propagates residual/Jacobian errors.
///
/// ```
/// use qwm_num::newton::{newton_solve, NewtonOptions, NonlinearSystem};
/// use qwm_num::Result;
///
/// /// x² − 2 = 0
/// struct Sqrt2;
/// impl NonlinearSystem for Sqrt2 {
///     fn dim(&self) -> usize { 1 }
///     fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
///         out[0] = x[0] * x[0] - 2.0;
///         Ok(())
///     }
///     fn solve_jacobian(&self, x: &[f64], f: &[f64]) -> Result<Vec<f64>> {
///         Ok(vec![f[0] / (2.0 * x[0])])
///     }
/// }
///
/// # fn main() -> Result<()> {
/// let out = newton_solve(&Sqrt2, &[1.0], &NewtonOptions::default())?;
/// assert!((out.x[0] - 2f64.sqrt()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn newton_solve<S: NonlinearSystem + ?Sized>(
    system: &S,
    x0: &[f64],
    opts: &NewtonOptions,
) -> Result<NewtonOutcome> {
    let n = system.dim();
    if x0.len() != n {
        return Err(NumError::Dimension {
            context: "newton_solve",
            detail: format!("x0.len()={} dim={n}", x0.len()),
        });
    }
    let mut x = x0.to_vec();
    system.project(&mut x);
    let mut f = vec![0.0; n];
    system.residual(&x, &mut f)?;
    let mut fnorm = inf_norm(&f);

    for iter in 0..opts.max_iterations {
        if fnorm <= opts.tol_residual {
            return Ok(NewtonOutcome {
                x,
                iterations: iter,
                residual_norm: fnorm,
            });
        }
        let delta = system.solve_jacobian(&x, &f)?;
        if !delta.iter().all(|d| d.is_finite()) {
            return Err(NumError::NoConvergence {
                method: "newton (non-finite update)",
                iterations: iter,
                residual: fnorm,
            });
        }

        // Damped line search on the residual norm.
        let mut lambda = 1.0;
        let mut best: Option<(Vec<f64>, Vec<f64>, f64)> = None;
        for _ in 0..=opts.max_backtracks {
            let mut xt: Vec<f64> = x
                .iter()
                .zip(&delta)
                .map(|(xi, di)| xi - lambda * di)
                .collect();
            system.project(&mut xt);
            let mut ft = vec![0.0; n];
            match system.residual(&xt, &mut ft) {
                Ok(()) => {
                    let norm = inf_norm(&ft);
                    if norm.is_finite() && (best.is_none() || norm < best.as_ref().unwrap().2) {
                        best = Some((xt, ft, norm));
                    }
                    if norm < fnorm {
                        break;
                    }
                }
                Err(_) if opts.max_backtracks > 0 => {
                    // Out-of-domain trial point: shrink the step and retry.
                }
                Err(e) => return Err(e),
            }
            lambda *= 0.5;
        }
        let (xt, ft, norm) = best.ok_or(NumError::NoConvergence {
            method: "newton (all damped steps out of domain)",
            iterations: iter,
            residual: fnorm,
        })?;

        let update_norm: f64 = x
            .iter()
            .zip(&xt)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
        x = xt;
        f = ft;
        fnorm = norm;
        if update_norm <= opts.tol_update {
            return Ok(NewtonOutcome {
                x,
                iterations: iter + 1,
                residual_norm: fnorm,
            });
        }
    }
    if fnorm <= opts.tol_residual {
        return Ok(NewtonOutcome {
            x,
            iterations: opts.max_iterations,
            residual_norm: fnorm,
        });
    }
    Err(NumError::NoConvergence {
        method: "newton",
        iterations: opts.max_iterations,
        residual: fnorm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    /// 2-D Rosenbrock-style gradient system with a known root at (1, 1).
    struct TwoD;
    impl NonlinearSystem for TwoD {
        fn dim(&self) -> usize {
            2
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
            out[0] = x[0] * x[0] + x[1] * x[1] - 2.0;
            out[1] = x[0] - x[1];
            Ok(())
        }
        fn solve_jacobian(&self, x: &[f64], f: &[f64]) -> Result<Vec<f64>> {
            let j = Matrix::from_rows(&[&[2.0 * x[0], 2.0 * x[1]], &[1.0, -1.0]])?;
            j.solve(f)
        }
    }

    #[test]
    fn converges_on_2d_system() {
        let out = newton_solve(&TwoD, &[3.0, 0.5], &NewtonOptions::default()).unwrap();
        assert!((out.x[0] - 1.0).abs() < 1e-8);
        assert!((out.x[1] - 1.0).abs() < 1e-8);
        assert!(out.iterations < 20);
    }

    #[test]
    fn immediate_convergence_costs_zero_iterations() {
        let out = newton_solve(&TwoD, &[1.0, 1.0], &NewtonOptions::default()).unwrap();
        assert_eq!(out.iterations, 0);
    }

    /// A system whose full Newton step overshoots badly without damping.
    struct Steep;
    impl NonlinearSystem for Steep {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
            out[0] = x[0].atan();
            Ok(())
        }
        fn solve_jacobian(&self, x: &[f64], f: &[f64]) -> Result<Vec<f64>> {
            Ok(vec![f[0] * (1.0 + x[0] * x[0])])
        }
    }

    #[test]
    fn damping_rescues_atan() {
        // Plain Newton diverges on atan(x)=0 from |x0| > ~1.39; damping fixes it.
        let out = newton_solve(&Steep, &[5.0], &NewtonOptions::default()).unwrap();
        assert!(out.x[0].abs() < 1e-8);
    }

    #[test]
    fn iteration_budget_is_enforced() {
        let opts = NewtonOptions {
            max_iterations: 1,
            tol_residual: 0.0,
            ..Default::default()
        };
        let err = newton_solve(&TwoD, &[30.0, -7.0], &opts).unwrap_err();
        assert!(matches!(err, NumError::NoConvergence { .. }));
    }

    #[test]
    fn projection_keeps_iterates_in_domain() {
        /// sqrt-based residual that would NaN for x < 0 without projection.
        struct Rooty;
        impl NonlinearSystem for Rooty {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
                if x[0] < 0.0 {
                    return Err(NumError::InvalidInput {
                        context: "Rooty",
                        detail: "negative".into(),
                    });
                }
                out[0] = x[0].sqrt() - 2.0;
                Ok(())
            }
            fn solve_jacobian(&self, x: &[f64], f: &[f64]) -> Result<Vec<f64>> {
                Ok(vec![f[0] * 2.0 * x[0].max(1e-12).sqrt()])
            }
            fn project(&self, x: &mut [f64]) {
                if x[0] < 0.0 {
                    x[0] = 0.0;
                }
            }
        }
        let out = newton_solve(&Rooty, &[0.1], &NewtonOptions::default()).unwrap();
        assert!((out.x[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        assert!(newton_solve(&TwoD, &[1.0], &NewtonOptions::default()).is_err());
    }
}
