//! Error metrics for comparing waveforms and delay figures.
//!
//! The paper quotes delay accuracy as a percentage ("average accuracy of
//! 99%", "worst-case error of 3.66%"); these helpers compute the same
//! quantities for `EXPERIMENTS.md`.

use crate::{NumError, Result};

/// Rejects non-finite samples with an error naming the first offending
/// index, so callers (and their logs) can locate the poisoned element
/// instead of panicking inside a sort comparator or silently averaging a
/// NaN into every downstream figure.
fn ensure_finite(context: &'static str, xs: &[f64]) -> Result<()> {
    if let Some(i) = xs.iter().position(|x| !x.is_finite()) {
        return Err(NumError::InvalidInput {
            context,
            detail: format!("non-finite sample {} at index {i}", xs[i]),
        });
    }
    Ok(())
}

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on empty or non-finite input.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(NumError::InvalidInput {
            context: "mean",
            detail: "empty input".to_string(),
        });
    }
    ensure_finite("mean", xs)?;
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Root-mean-square of a sample.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on empty or non-finite input.
pub fn rms(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(NumError::InvalidInput {
            context: "rms",
            detail: "empty input".to_string(),
        });
    }
    ensure_finite("rms", xs)?;
    Ok((xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt())
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample by linear interpolation on
/// the sorted order statistics.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on empty or non-finite input, or
/// `q` outside `[0, 1]`.
pub fn percentile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return Err(NumError::InvalidInput {
            context: "percentile",
            detail: format!("len={} q={q}", xs.len()),
        });
    }
    ensure_finite("percentile", xs)?;
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let i = pos.floor() as usize;
    let t = pos - i as f64;
    if i + 1 < sorted.len() {
        Ok(sorted[i] * (1.0 - t) + sorted[i + 1] * t)
    } else {
        Ok(sorted[i])
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank convention:
/// `sorted[⌈q·n⌉ − 1]`, always an actual sample. Load harnesses use this
/// flavor so a reported p99 latency is a latency that really occurred.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on empty or non-finite input, or
/// `q` outside `[0, 1]`.
pub fn percentile_nearest(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return Err(NumError::InvalidInput {
            context: "percentile_nearest",
            detail: format!("len={} q={q}", xs.len()),
        });
    }
    ensure_finite("percentile_nearest", xs)?;
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Ok(sorted[rank - 1])
}

/// Sample standard deviation (n−1 denominator).
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for fewer than two samples or
/// non-finite input (via [`mean`]).
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(NumError::InvalidInput {
            context: "std_dev",
            detail: format!("{} samples", xs.len()),
        });
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Ok((ss / (xs.len() - 1) as f64).sqrt())
}

/// Box–Muller transform: maps two independent uniforms in `(0, 1]` to a
/// standard-normal sample (pure function — callers bring their own RNG).
pub fn normal_from_uniforms(u1: f64, u2: f64) -> f64 {
    let u1 = u1.clamp(f64::MIN_POSITIVE, 1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Relative error `|got − want| / |want|` in percent.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] when `want == 0` or either value
/// is non-finite.
pub fn relative_error_pct(got: f64, want: f64) -> Result<f64> {
    if want == 0.0 {
        return Err(NumError::InvalidInput {
            context: "relative_error_pct",
            detail: "reference value is zero".to_string(),
        });
    }
    if !got.is_finite() || !want.is_finite() {
        return Err(NumError::InvalidInput {
            context: "relative_error_pct",
            detail: format!("non-finite value (got={got} want={want})"),
        });
    }
    Ok(100.0 * (got - want).abs() / want.abs())
}

/// Summary of pairwise relative errors between two equally long series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Mean relative error in percent.
    pub mean_pct: f64,
    /// Maximum relative error in percent.
    pub max_pct: f64,
    /// RMS absolute error (same units as the inputs).
    pub rms_abs: f64,
}

/// Compares `got` against the reference `want`, element-wise.
///
/// Elements whose reference magnitude is below `floor` are skipped for
/// the relative metrics (they still contribute to `rms_abs`); this avoids
/// blowing up the percentage on near-zero waveform tails.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on empty, mismatched, or
/// non-finite inputs, or when *every* reference element falls below
/// `floor`.
pub fn compare_series(got: &[f64], want: &[f64], floor: f64) -> Result<ErrorSummary> {
    if got.is_empty() || got.len() != want.len() {
        return Err(NumError::InvalidInput {
            context: "compare_series",
            detail: format!("got.len()={} want.len()={}", got.len(), want.len()),
        });
    }
    ensure_finite("compare_series", got)?;
    ensure_finite("compare_series", want)?;
    let mut sum_pct = 0.0;
    let mut max_pct: f64 = 0.0;
    let mut count = 0usize;
    let mut ss = 0.0;
    for (&g, &w) in got.iter().zip(want) {
        let abs = (g - w).abs();
        ss += abs * abs;
        if w.abs() > floor {
            let pct = 100.0 * abs / w.abs();
            sum_pct += pct;
            max_pct = max_pct.max(pct);
            count += 1;
        }
    }
    if count == 0 {
        return Err(NumError::InvalidInput {
            context: "compare_series",
            detail: "every reference element below floor".to_string(),
        });
    }
    Ok(ErrorSummary {
        mean_pct: sum_pct / count as f64,
        max_pct,
        rms_abs: (ss / got.len() as f64).sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_rms() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert!((rms(&[3.0, 4.0]).unwrap() - (12.5f64).sqrt()).abs() < 1e-12);
        assert!(mean(&[]).is_err());
        assert!(rms(&[]).is_err());
    }

    #[test]
    fn percentile_and_std() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&xs, 1.0).unwrap(), 5.0);
        assert_eq!(percentile(&xs, 0.5).unwrap(), 3.0);
        assert!((percentile(&xs, 0.25).unwrap() - 2.0).abs() < 1e-12);
        assert!(percentile(&[], 0.5).is_err());
        assert!(percentile(&xs, 1.5).is_err());
        assert!((std_dev(&xs).unwrap() - (2.5f64).sqrt()).abs() < 1e-12);
        assert!(std_dev(&[1.0]).is_err());
    }

    #[test]
    fn box_muller_moments() {
        // Deterministic low-discrepancy grid: mean ~0, var ~1.
        let mut samples = Vec::new();
        let n = 64;
        for i in 0..n {
            for j in 0..n {
                let u1 = (i as f64 + 0.5) / n as f64;
                let u2 = (j as f64 + 0.5) / n as f64;
                samples.push(normal_from_uniforms(u1, u2));
            }
        }
        let m = mean(&samples).unwrap();
        let s = std_dev(&samples).unwrap();
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((s - 1.0).abs() < 0.05, "std {s}");
    }

    #[test]
    fn relative_error() {
        assert!((relative_error_pct(101.0, 100.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((relative_error_pct(99.0, 100.0).unwrap() - 1.0).abs() < 1e-12);
        assert!(relative_error_pct(1.0, 0.0).is_err());
    }

    #[test]
    fn series_comparison_with_floor() {
        let want = [1.0, 2.0, 1e-15];
        let got = [1.01, 1.98, 5e-15];
        let s = compare_series(&got, &want, 1e-9).unwrap();
        assert!((s.mean_pct - 1.0).abs() < 1e-9);
        assert!((s.max_pct - 1.0).abs() < 1e-9);
        assert!(s.rms_abs > 0.0);
    }

    #[test]
    fn nearest_rank_percentile() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile_nearest(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(percentile_nearest(&xs, 0.5).unwrap(), 3.0);
        assert_eq!(percentile_nearest(&xs, 0.95).unwrap(), 5.0);
        assert_eq!(percentile_nearest(&xs, 1.0).unwrap(), 5.0);
        // Always an actual sample, never an interpolated value.
        assert_eq!(percentile_nearest(&xs, 0.25).unwrap(), 2.0);
        assert!(percentile_nearest(&[], 0.5).is_err());
        assert!(percentile_nearest(&xs, -0.1).is_err());
    }

    /// Every fallible entry point rejects non-finite samples with a
    /// structured error naming the offending index — no panic path.
    #[test]
    fn non_finite_inputs_are_structured_errors() {
        let bad = [1.0, 2.0, f64::NAN, 4.0];
        let detail_of = |r: Result<f64>| match r {
            Err(NumError::InvalidInput { detail, .. }) => detail,
            other => panic!("expected InvalidInput, got {other:?}"),
        };
        assert!(detail_of(mean(&bad)).contains("index 2"));
        assert!(detail_of(rms(&bad)).contains("index 2"));
        assert!(detail_of(percentile(&bad, 0.5)).contains("index 2"));
        assert!(detail_of(percentile_nearest(&bad, 0.5)).contains("index 2"));
        assert!(std_dev(&bad).is_err());
        assert!(mean(&[f64::INFINITY]).is_err());
        assert!(rms(&[f64::NEG_INFINITY]).is_err());
        assert!(percentile(&[0.0, f64::INFINITY], 1.0).is_err());
        assert!(relative_error_pct(f64::NAN, 1.0).is_err());
        assert!(relative_error_pct(1.0, f64::NAN).is_err());
        assert!(compare_series(&bad, &[1.0; 4], 0.0).is_err());
        assert!(compare_series(&[1.0; 4], &bad, 0.0).is_err());
        // The infallible Box–Muller helper propagates NaN rather than
        // panicking — pinned so a future clamp change can't regress it
        // into a panic.
        assert!(normal_from_uniforms(f64::NAN, 0.5).is_nan());
    }

    #[test]
    fn series_comparison_errors() {
        assert!(compare_series(&[], &[], 0.0).is_err());
        assert!(compare_series(&[1.0], &[1.0, 2.0], 0.0).is_err());
        assert!(compare_series(&[1.0], &[1e-12], 1e-9).is_err());
    }
}
