#![allow(clippy::needless_range_loop)] // index-style loops mirror the textbook algorithms

//! Dense row-major matrices with LU decomposition and partial pivoting.
//!
//! This is the general-purpose linear solver of the toolkit. The QWM
//! inner loop deliberately avoids it (the paper's Jacobian is tridiagonal
//! plus one column, solved in O(K)), but it is used by:
//!
//! * the SPICE-class baseline engine (`qwm-spice`), whose MNA matrix is
//!   small and dense for logic stages;
//! * polynomial least squares in [`crate::polyfit`];
//! * the solver ablation bench, which measures the ~2× advantage of the
//!   tridiagonal path the paper reports.

use crate::{NumError, Result};

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// ```
/// use qwm_num::matrix::Matrix;
/// # fn main() -> Result<(), qwm_num::NumError> {
/// let m = Matrix::identity(3);
/// let x = m.solve(&[1.0, 2.0, 3.0])?;
/// assert_eq!(x, vec![1.0, 2.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(NumError::Dimension {
                context: "Matrix::zeros",
                detail: format!("rows={rows} cols={cols}"),
            });
        }
        Ok(Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n).expect("identity dimension must be nonzero");
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices; all rows must share one length.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] on empty input or ragged rows.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(NumError::Dimension {
                context: "Matrix::from_rows",
                detail: "empty input".to_string(),
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(NumError::Dimension {
                    context: "Matrix::from_rows",
                    detail: format!("row {i} has {} cols, expected {cols}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to the element at (`r`, `c`) — the natural operation for
    /// MNA stamping.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] += v;
    }

    /// Resets every entry to zero, keeping the allocation (per-NR-iteration
    /// restamping in the SPICE engine).
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(NumError::Dimension {
                context: "Matrix::mul_vec",
                detail: format!("x.len()={} cols={}", x.len(), self.cols),
            });
        }
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            y[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(y)
    }

    /// Factors the (square) matrix as `P·A = L·U` with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if the matrix is not square and
    /// [`NumError::Singular`] on pivot breakdown.
    pub fn lu(&self) -> Result<LuFactors> {
        if self.rows != self.cols {
            return Err(NumError::Dimension {
                context: "Matrix::lu",
                detail: format!("rows={} cols={}", self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivoting: find the largest |entry| in column k.
            let mut p = k;
            let mut max = lu[k * n + k].abs();
            for r in (k + 1)..n {
                let v = lu[r * n + k].abs();
                if v > max {
                    max = v;
                    p = r;
                }
            }
            if max < f64::MIN_POSITIVE.cbrt() * 1e-100 || max == 0.0 || !max.is_finite() {
                return Err(NumError::Singular {
                    index: k,
                    pivot: lu[p * n + k],
                });
            }
            if p != k {
                for c in 0..n {
                    lu.swap(k * n + c, p * n + c);
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[k * n + k];
            for r in (k + 1)..n {
                let factor = lu[r * n + k] / pivot;
                lu[r * n + k] = factor;
                for c in (k + 1)..n {
                    lu[r * n + c] -= factor * lu[k * n + c];
                }
            }
        }
        Ok(LuFactors { n, lu, perm, sign })
    }

    /// Solves `self * x = b` through a fresh LU factorization.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors and dimension mismatches.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.lu()?.solve(b)
    }

    /// Determinant via LU (product of pivots times permutation sign).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if the matrix is not square.
    pub fn det(&self) -> Result<f64> {
        match self.lu() {
            Ok(f) => Ok(f.det()),
            Err(NumError::Singular { .. }) => Ok(0.0),
            Err(e) => Err(e),
        }
    }
}

/// The result of [`Matrix::lu`]: packed L\U factors plus the row
/// permutation, reusable across multiple right-hand sides.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
    sign: f64,
}

impl LuFactors {
    /// Solves `A x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.n;
        if b.len() != n {
            return Err(NumError::Dimension {
                context: "LuFactors::solve",
                detail: format!("b.len()={} n={n}", b.len()),
            });
        }
        // Apply permutation, then forward/backward substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let mut s = x[r];
            for c in 0..r {
                s -= self.lu[r * n + c] * x[c];
            }
            x[r] = s;
        }
        for r in (0..n).rev() {
            let mut s = x[r];
            for c in (r + 1)..n {
                s -= self.lu[r * n + c] * x[c];
            }
            x[r] = s / self.lu[r * n + r];
        }
        Ok(x)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for k in 0..self.n {
            d *= self.lu[k * self.n + k];
        }
        d
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let m = Matrix::identity(4);
        let b = [1.0, -2.0, 3.5, 0.0];
        assert_eq!(m.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero pivot forces a row swap.
        let m = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn solve_random_roundtrip() {
        // A fixed well-conditioned system: verify A * solve(A, b) == b.
        let m = Matrix::from_rows(&[
            &[4.0, 1.0, 0.5, 0.0],
            &[1.0, 5.0, 1.0, 0.3],
            &[0.5, 1.0, 6.0, 1.0],
            &[0.0, 0.3, 1.0, 7.0],
        ])
        .unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = m.solve(&b).unwrap();
        let back = m.mul_vec(&x).unwrap();
        for (got, want) in back.iter().zip(&b) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn singular_is_reported() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            m.solve(&[1.0, 1.0]),
            Err(NumError::Singular { .. })
        ));
    }

    #[test]
    fn det_matches_hand_computation() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!((m.det().unwrap() + 2.0).abs() < 1e-12);
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(s.det().unwrap(), 0.0);
    }

    #[test]
    fn reuse_factors_for_multiple_rhs() {
        let m = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
        let f = m.lu().unwrap();
        assert_eq!(f.solve(&[2.0, 4.0]).unwrap(), vec![1.0, 1.0]);
        assert_eq!(f.solve(&[4.0, 8.0]).unwrap(), vec![2.0, 2.0]);
        assert_eq!(f.dim(), 2);
    }

    #[test]
    fn dimension_errors() {
        assert!(Matrix::zeros(0, 3).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
        let m = Matrix::zeros(2, 3).unwrap();
        assert!(m.lu().is_err());
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn stamping_helpers() {
        let mut m = Matrix::zeros(2, 2).unwrap();
        m.add(0, 0, 1.5);
        m.add(0, 0, 0.5);
        assert_eq!(m.get(0, 0), 2.0);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
    }
}
