//! A small deterministic pseudo-random generator for workload synthesis
//! and randomized tests.
//!
//! The workspace builds offline with no external crates, so this module
//! stands in for `rand`: an xorshift-style generator (splitmix64 seeding
//! into xoshiro256**) that is fast, has no global state, and — most
//! importantly for the experiment harness — reproduces the exact same
//! sequence for the same seed on every platform.

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator whose sequence is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng64 {
        let mut sm = seed;
        Rng64 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Creates the generator for one lane of a seeded stream family.
    ///
    /// Load harnesses fan one master seed out to many independent
    /// workers (connections, sessions, rounds). Deriving each worker's
    /// seed by adding or xoring indices produces correlated or colliding
    /// streams — `master + 1` for lane 0 is `master` for lane 1. This
    /// constructor instead folds every lane index through splitmix64, so
    /// each `(master, lanes)` tuple keys a statistically independent
    /// sequence, stable across platforms and thread interleavings.
    pub fn stream(master: u64, lanes: &[u64]) -> Rng64 {
        let mut sm = master;
        let mut key = splitmix64(&mut sm);
        for &lane in lanes {
            // Feed the lane through the same mixer rather than xoring it
            // in raw, so consecutive lane indices land far apart.
            let mut lane_state = lane;
            let mut lane_sm = key ^ splitmix64(&mut lane_state);
            key = splitmix64(&mut lane_sm);
        }
        Rng64::seed_from_u64(key)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "empty range");
        lo + (hi - lo) * self.unit()
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform `bool`.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_stays_in_half_open_interval() {
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_respects_bounds_and_is_roughly_uniform() {
        let mut rng = Rng64::seed_from_u64(9);
        let n = 10_000;
        let mut below_mid = 0usize;
        for _ in 0..n {
            let v = rng.range(2.0, 6.0);
            assert!((2.0..6.0).contains(&v));
            if v < 4.0 {
                below_mid += 1;
            }
        }
        // Loose two-sided check that the halves are balanced.
        assert!((4000..6000).contains(&below_mid), "{below_mid}");
    }

    #[test]
    fn stream_lanes_are_deterministic_and_independent() {
        // Same (master, lanes) → same sequence.
        let mut a = Rng64::stream(7, &[3, 11]);
        let mut b = Rng64::stream(7, &[3, 11]);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Adjacent lanes, adjacent masters and permuted lane paths all
        // diverge — the additive-seed aliasing (`master+1` lane 0 ==
        // `master` lane 1) must not exist.
        let pairs: [(u64, &[u64]); 6] = [
            (7, &[0]),
            (7, &[1]),
            (8, &[0]),
            (7, &[0, 1]),
            (7, &[1, 0]),
            (7, &[]),
        ];
        let firsts: Vec<u64> = pairs
            .iter()
            .map(|(m, l)| Rng64::stream(*m, l).next_u64())
            .collect();
        for i in 0..firsts.len() {
            for j in i + 1..firsts.len() {
                assert_ne!(firsts[i], firsts[j], "streams {i} and {j} collide");
            }
        }
    }

    #[test]
    fn range_usize_covers_all_values() {
        let mut rng = Rng64::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.range_usize(3, 8);
            assert!((3..8).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
