//! Least-squares polynomial fitting.
//!
//! The tabular device model (paper §V-A) compresses HSPICE-style sweep
//! data by fitting, at each (Vs, Vg) grid point, the channel current
//! `Ids(Vd)` with a **linear** polynomial in the saturation region and a
//! **quadratic** in the triode region. This module provides the generic
//! fit via normal equations solved with the pivoted LU from
//! [`crate::matrix`]; degrees here are tiny (≤ 3) so the normal equations
//! are perfectly conditioned once the abscissa is centred.

use crate::matrix::Matrix;
use crate::{NumError, Result};

/// A polynomial `c₀ + c₁ (x−x̄) + c₂ (x−x̄)² + …` stored with the centring
/// offset `x̄` used during fitting (centring keeps the normal equations
/// well conditioned).
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
    center: f64,
}

impl Polynomial {
    /// Builds a polynomial from raw coefficients around `center`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] on an empty coefficient list or
    /// non-finite values.
    pub fn new(coeffs: Vec<f64>, center: f64) -> Result<Self> {
        if coeffs.is_empty() || coeffs.iter().any(|c| !c.is_finite()) || !center.is_finite() {
            return Err(NumError::InvalidInput {
                context: "Polynomial::new",
                detail: "empty or non-finite coefficients".to_string(),
            });
        }
        Ok(Polynomial { coeffs, center })
    }

    /// Polynomial degree (number of coefficients minus one).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Coefficients, lowest order first, in the centred variable.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The centring offset `x̄`.
    pub fn center(&self) -> f64 {
        self.center
    }

    /// Evaluates the polynomial at `x` (Horner form).
    ///
    /// ```
    /// # use qwm_num::polyfit::Polynomial;
    /// # fn main() -> Result<(), qwm_num::NumError> {
    /// let p = Polynomial::new(vec![1.0, 2.0, 3.0], 0.0)?; // 1 + 2x + 3x²
    /// assert_eq!(p.eval(2.0), 17.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn eval(&self, x: f64) -> f64 {
        let t = x - self.center;
        self.coeffs.iter().rev().fold(0.0, |acc, c| acc * t + c)
    }

    /// Evaluates the first derivative at `x`.
    pub fn deriv(&self, x: f64) -> f64 {
        let t = x - self.center;
        let mut acc = 0.0;
        for (k, c) in self.coeffs.iter().enumerate().skip(1).rev() {
            acc = acc * t + (k as f64) * c;
        }
        acc
    }
}

/// Fits a degree-`degree` polynomial to `(x, y)` samples by least squares.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] if there are fewer samples than
/// coefficients, mismatched lengths, or non-finite data, and propagates
/// singular normal equations (e.g. all-identical abscissae).
///
/// ```
/// use qwm_num::polyfit::polyfit;
/// # fn main() -> Result<(), qwm_num::NumError> {
/// let x = [0.0, 1.0, 2.0, 3.0];
/// let y = [1.0, 3.0, 7.0, 13.0]; // 1 + x + x²
/// let p = polyfit(&x, &y, 2)?;
/// assert!((p.eval(1.5) - (1.0 + 1.5 + 2.25)).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn polyfit(x: &[f64], y: &[f64], degree: usize) -> Result<Polynomial> {
    let m = degree + 1;
    if x.len() != y.len() {
        return Err(NumError::InvalidInput {
            context: "polyfit",
            detail: format!("x.len()={} y.len()={}", x.len(), y.len()),
        });
    }
    if x.len() < m {
        return Err(NumError::InvalidInput {
            context: "polyfit",
            detail: format!("{} samples for degree {degree}", x.len()),
        });
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return Err(NumError::InvalidInput {
            context: "polyfit",
            detail: "non-finite sample".to_string(),
        });
    }
    let center = x.iter().sum::<f64>() / x.len() as f64;

    // Normal equations: (Vᵀ V) c = Vᵀ y with Vandermonde V in (x - center).
    let mut ata = Matrix::zeros(m, m)?;
    let mut aty = vec![0.0; m];
    let mut powers = vec![0.0; m];
    for (&xi, &yi) in x.iter().zip(y) {
        let t = xi - center;
        let mut p = 1.0;
        for pow in powers.iter_mut() {
            *pow = p;
            p *= t;
        }
        for r in 0..m {
            aty[r] += powers[r] * yi;
            for c in 0..m {
                ata.add(r, c, powers[r] * powers[c]);
            }
        }
    }
    let coeffs = ata.solve(&aty)?;
    Polynomial::new(coeffs, center)
}

/// Root-mean-square residual of a fit over the given samples.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on empty or mismatched samples.
pub fn fit_rms_error(p: &Polynomial, x: &[f64], y: &[f64]) -> Result<f64> {
    if x.is_empty() || x.len() != y.len() {
        return Err(NumError::InvalidInput {
            context: "fit_rms_error",
            detail: format!("x.len()={} y.len()={}", x.len(), y.len()),
        });
    }
    let ss: f64 = x
        .iter()
        .zip(y)
        .map(|(&xi, &yi)| {
            let e = p.eval(xi) - yi;
            e * e
        })
        .sum();
    Ok((ss / x.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quadratic_recovered() {
        let x: Vec<f64> = (0..10).map(|i| i as f64 * 0.33).collect();
        let y: Vec<f64> = x.iter().map(|&t| 2.0 - 3.0 * t + 0.5 * t * t).collect();
        let p = polyfit(&x, &y, 2).unwrap();
        for &t in &x {
            assert!((p.eval(t) - (2.0 - 3.0 * t + 0.5 * t * t)).abs() < 1e-9);
        }
        assert!(fit_rms_error(&p, &x, &y).unwrap() < 1e-9);
    }

    #[test]
    fn linear_fit_of_noisy_line_is_close() {
        // Deterministic "noise": alternating ±0.01.
        let x: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &t)| 5.0 * t + 1.0 + if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        let p = polyfit(&x, &y, 1).unwrap();
        assert!((p.deriv(0.5) - 5.0).abs() < 0.02);
        assert!((p.eval(0.0) - 1.0).abs() < 0.02);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let p = Polynomial::new(vec![1.0, -2.0, 0.5, 0.25], 1.3).unwrap();
        let h = 1e-6;
        for &x in &[-1.0, 0.0, 2.0, 5.0] {
            let fd = (p.eval(x + h) - p.eval(x - h)) / (2.0 * h);
            assert!((p.deriv(x) - fd).abs() < 1e-6, "at {x}");
        }
    }

    #[test]
    fn centring_survives_large_offsets() {
        // x around 1e6 would wreck un-centred normal equations.
        let x: Vec<f64> = (0..8).map(|i| 1.0e6 + i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&t| 3.0 * (t - 1.0e6) + 7.0).collect();
        let p = polyfit(&x, &y, 1).unwrap();
        assert!((p.eval(1.0e6 + 3.5) - (3.0 * 3.5 + 7.0)).abs() < 1e-6);
    }

    #[test]
    fn input_validation() {
        assert!(polyfit(&[1.0], &[1.0, 2.0], 1).is_err());
        assert!(polyfit(&[1.0, 2.0], &[1.0, 2.0], 2).is_err());
        assert!(polyfit(&[1.0, f64::NAN], &[1.0, 2.0], 1).is_err());
        assert!(Polynomial::new(vec![], 0.0).is_err());
        let p = Polynomial::new(vec![1.0], 0.0).unwrap();
        assert!(fit_rms_error(&p, &[], &[]).is_err());
    }

    #[test]
    fn accessors() {
        let p = Polynomial::new(vec![1.0, 2.0], 3.0).unwrap();
        assert_eq!(p.degree(), 1);
        assert_eq!(p.center(), 3.0);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
    }
}
