//! Numerical kernels underpinning the QWM transistor-level timing analyzer.
//!
//! This crate is self-contained (no external numerics dependencies) and
//! provides exactly the machinery the paper's algorithm needs:
//!
//! * [`matrix`] — a small dense row-major matrix with LU decomposition and
//!   partial pivoting, used as the general-purpose linear solver and as the
//!   baseline for the tridiagonal-solver ablation (paper §IV-B).
//! * [`tridiag`] — the Thomas algorithm for tridiagonal systems, the O(K)
//!   workhorse of the QWM Newton update.
//! * [`sherman_morrison`] — solving `(A + u vᵀ) x = b` with two tridiagonal
//!   back-solves, exactly as the paper does for the dense last Jacobian
//!   column (the unknown region end time τ′).
//! * [`newton`] — a damped Newton–Raphson driver over a user-supplied
//!   residual/Jacobian, with configurable convergence criteria.
//! * [`polyfit`] — linear least-squares polynomial fitting (normal
//!   equations with partial-pivoted LU), used by the tabular device model
//!   (linear fit in saturation, quadratic fit in triode, paper §V-A).
//! * [`interp`] — 1-D linear and 2-D bilinear interpolation over uniform
//!   grids, used for device-table queries between characterized points.
//! * [`roots`] — bracketing plus bisection/Brent root refinement, used for
//!   waveform threshold crossings.
//! * [`integrate`] — trapezoid/Simpson quadrature for waveform metrics.
//! * [`stats`] — error metrics (max/mean relative error, RMS) used by the
//!   experiment harness when comparing QWM against the SPICE baseline.
//! * [`rng`] — a deterministic PRNG for workload synthesis and randomized
//!   tests, keeping the workspace free of external dependencies.
//!
//! # Example
//!
//! Solve a small linear system with LU and verify against the tridiagonal
//! path:
//!
//! ```
//! use qwm_num::matrix::Matrix;
//! use qwm_num::tridiag::Tridiagonal;
//!
//! # fn main() -> Result<(), qwm_num::NumError> {
//! let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]])?;
//! let b = [3.0, 5.0, 3.0];
//! let x_lu = a.solve(&b)?;
//!
//! let t = Tridiagonal::from_bands(vec![1.0, 1.0], vec![2.0, 3.0, 2.0], vec![1.0, 1.0])?;
//! let x_tri = t.solve(&b)?;
//! for (l, t) in x_lu.iter().zip(&x_tri) {
//!     assert!((l - t).abs() < 1e-12);
//! }
//! # Ok(())
//! # }
//! ```

// The kernel crates must not regress into clone-per-iteration patterns;
// redundant_clone is allow-by-default upstream, denied here.
#![deny(clippy::redundant_clone)]

pub mod integrate;
pub mod interp;
pub mod matrix;
pub mod newton;
pub mod polyfit;
pub mod rng;
pub mod roots;
pub mod sherman_morrison;
pub mod stats;
pub mod tridiag;

use std::fmt;

/// Errors produced by the numerical kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum NumError {
    /// A matrix or system had inconsistent or empty dimensions.
    Dimension {
        /// What was being constructed or solved.
        context: &'static str,
        /// Dimension details, e.g. `"rows=3 cols=2"`.
        detail: String,
    },
    /// A (near-)singular pivot was encountered during factorization.
    Singular {
        /// Pivot index at which breakdown occurred.
        index: usize,
        /// Magnitude of the offending pivot.
        pivot: f64,
    },
    /// An iterative method failed to converge.
    NoConvergence {
        /// Which method failed.
        method: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the final iterate.
        residual: f64,
    },
    /// Input data was invalid (NaN, empty samples, unordered abscissae...).
    InvalidInput {
        /// What was being computed.
        context: &'static str,
        /// Human-readable description of the problem.
        detail: String,
    },
    /// A computation exceeded its iteration or wall-clock budget.
    Timeout {
        /// Which budget was exhausted.
        context: &'static str,
        /// Budget details (limit, elapsed, site).
        detail: String,
    },
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::Dimension { context, detail } => {
                write!(f, "dimension mismatch in {context}: {detail}")
            }
            NumError::Singular { index, pivot } => {
                write!(f, "singular pivot {pivot:e} at index {index}")
            }
            NumError::NoConvergence {
                method,
                iterations,
                residual,
            } => write!(
                f,
                "{method} failed to converge after {iterations} iterations (residual {residual:e})"
            ),
            NumError::InvalidInput { context, detail } => {
                write!(f, "invalid input to {context}: {detail}")
            }
            NumError::Timeout { context, detail } => {
                write!(f, "budget exhausted in {context}: {detail}")
            }
        }
    }
}

impl std::error::Error for NumError {}

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, NumError>;

/// Returns true when `a` and `b` agree to within `tol` absolutely or
/// relatively (whichever is looser), the comparison used throughout the
/// test suites.
///
/// ```
/// assert!(qwm_num::approx_eq(1.0, 1.0 + 1e-13, 1e-9));
/// assert!(!qwm_num::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(0.0, 0.0, 1e-12));
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-10), 1e-9));
        assert!(!approx_eq(1.0, 2.0, 1e-9));
    }

    #[test]
    fn error_display_is_informative() {
        let e = NumError::Singular {
            index: 3,
            pivot: 1e-20,
        };
        let s = e.to_string();
        assert!(s.contains("singular"));
        assert!(s.contains('3'));
    }
}
