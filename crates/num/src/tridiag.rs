//! Tridiagonal systems and the Thomas algorithm.
//!
//! The Jacobian of the QWM current-matching equations (paper Eq. (9)) is
//! tridiagonal with respect to the node voltages because each node's
//! residual involves only the branch currents of the devices immediately
//! below and above it. Solving such a system costs O(K) instead of the
//! O(K³) of a dense LU — the paper reports this alone buys ~2× on the
//! Newton update.

use crate::{NumError, Result};

/// A tridiagonal matrix stored as three bands.
///
/// For an `n × n` system the bands are `sub` (length `n-1`, below the
/// diagonal), `diag` (length `n`) and `sup` (length `n-1`, above the
/// diagonal).
///
/// ```
/// use qwm_num::tridiag::Tridiagonal;
/// # fn main() -> Result<(), qwm_num::NumError> {
/// // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8]  =>  x = [1; 2; 3]
/// let t = Tridiagonal::from_bands(vec![1.0, 1.0], vec![2.0, 2.0, 2.0], vec![1.0, 1.0])?;
/// let x = t.solve(&[4.0, 8.0, 8.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// assert!((x[2] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tridiagonal {
    sub: Vec<f64>,
    diag: Vec<f64>,
    sup: Vec<f64>,
}

impl Tridiagonal {
    /// Creates an `n × n` zero tridiagonal matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if `n == 0`.
    pub fn zeros(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(NumError::Dimension {
                context: "Tridiagonal::zeros",
                detail: "n=0".to_string(),
            });
        }
        Ok(Tridiagonal {
            sub: vec![0.0; n.saturating_sub(1)],
            diag: vec![0.0; n],
            sup: vec![0.0; n.saturating_sub(1)],
        })
    }

    /// Builds a tridiagonal matrix from its bands.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] unless
    /// `sub.len() == sup.len() == diag.len() - 1` and `diag` is non-empty.
    pub fn from_bands(sub: Vec<f64>, diag: Vec<f64>, sup: Vec<f64>) -> Result<Self> {
        if diag.is_empty() || sub.len() != diag.len() - 1 || sup.len() != diag.len() - 1 {
            return Err(NumError::Dimension {
                context: "Tridiagonal::from_bands",
                detail: format!("sub={} diag={} sup={}", sub.len(), diag.len(), sup.len()),
            });
        }
        Ok(Tridiagonal { sub, diag, sup })
    }

    /// Dimension of the system.
    pub fn dim(&self) -> usize {
        self.diag.len()
    }

    /// Returns entry (`r`, `c`), which is zero outside the three bands.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let n = self.dim();
        assert!(r < n && c < n, "tridiagonal index out of bounds");
        if r == c {
            self.diag[r]
        } else if c + 1 == r {
            self.sub[c]
        } else if r + 1 == c {
            self.sup[r]
        } else {
            0.0
        }
    }

    /// Sets entry (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or outside the three bands.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        let n = self.dim();
        assert!(r < n && c < n, "tridiagonal index out of bounds");
        if r == c {
            self.diag[r] = v;
        } else if c + 1 == r {
            self.sub[c] = v;
        } else if r + 1 == c {
            self.sup[r] = v;
        } else {
            panic!("({r},{c}) lies outside the tridiagonal bands");
        }
    }

    /// Matrix-vector product.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if `x.len() != dim()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if x.len() != n {
            return Err(NumError::Dimension {
                context: "Tridiagonal::mul_vec",
                detail: format!("x.len()={} n={n}", x.len()),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = self.diag[i] * x[i];
            if i > 0 {
                s += self.sub[i - 1] * x[i - 1];
            }
            if i + 1 < n {
                s += self.sup[i] * x[i + 1];
            }
            y[i] = s;
        }
        Ok(y)
    }

    /// Solves `T x = b` with the Thomas algorithm in O(n).
    ///
    /// The Thomas algorithm does not pivot; it is stable for the
    /// diagonally dominant systems QWM produces (each diagonal carries the
    /// node capacitance term plus device conductances). A vanishing
    /// eliminated pivot is reported as singular.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] on size mismatch and
    /// [`NumError::Singular`] on pivot breakdown.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        let mut c = vec![0.0; n];
        let mut x = vec![0.0; n];
        thomas_solve_into(&self.sub, &self.diag, &self.sup, b, &mut c, &mut x)?;
        Ok(x)
    }

    /// Borrowed-band Thomas solve writing into `x`; see
    /// [`thomas_solve_into`]. `c_scratch` is overwritten scratch of
    /// length `dim()`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] on size mismatch and
    /// [`NumError::Singular`] on pivot breakdown.
    pub fn solve_into(&self, b: &[f64], c_scratch: &mut [f64], x: &mut [f64]) -> Result<()> {
        thomas_solve_into(&self.sub, &self.diag, &self.sup, b, c_scratch, x)
    }

    /// Converts to a dense [`crate::matrix::Matrix`] (tests/ablation).
    pub fn to_dense(&self) -> crate::matrix::Matrix {
        let n = self.dim();
        let mut m = crate::matrix::Matrix::zeros(n, n).expect("n >= 1");
        for r in 0..n {
            for c in r.saturating_sub(1)..(r + 2).min(n) {
                m.set(r, c, self.get(r, c));
            }
        }
        m
    }
}

/// Allocation-free Thomas solve over borrowed bands: `x` receives the
/// solution of the tridiagonal system, `c_scratch` holds the modified
/// superdiagonal during elimination. Both must have `diag.len()`
/// elements; `sub`/`sup` carry `diag.len() - 1`. The hot QWM region
/// solver stamps its bands into a reusable `SolveScratch` and calls
/// this directly, so a Newton iteration performs zero allocations — the
/// boxed [`Tridiagonal::solve`] delegates here with fresh buffers.
///
/// The operation order is identical to the historical boxed solve
/// (forward elimination into `x`, then in-place back-substitution), so
/// results are bitwise-identical to `Tridiagonal::solve`.
///
/// # Errors
///
/// Returns [`NumError::Dimension`] on any length mismatch and
/// [`NumError::Singular`] on pivot breakdown.
pub fn thomas_solve_into(
    sub: &[f64],
    diag: &[f64],
    sup: &[f64],
    b: &[f64],
    c_scratch: &mut [f64],
    x: &mut [f64],
) -> Result<()> {
    let n = diag.len();
    if n == 0
        || sub.len() != n - 1
        || sup.len() != n - 1
        || b.len() != n
        || c_scratch.len() != n
        || x.len() != n
    {
        return Err(NumError::Dimension {
            context: "thomas_solve_into",
            detail: format!(
                "sub={} diag={n} sup={} b={} c={} x={}",
                sub.len(),
                sup.len(),
                b.len(),
                c_scratch.len(),
                x.len()
            ),
        });
    }
    let c = c_scratch;
    let mut pivot = diag[0];
    if pivot == 0.0 || !pivot.is_finite() {
        return Err(NumError::Singular { index: 0, pivot });
    }
    if n > 1 {
        c[0] = sup[0] / pivot;
    }
    x[0] = b[0] / pivot;
    for i in 1..n {
        pivot = diag[i] - sub[i - 1] * c[i - 1];
        if pivot == 0.0 || !pivot.is_finite() {
            return Err(NumError::Singular { index: i, pivot });
        }
        if i + 1 < n {
            c[i] = sup[i] / pivot;
        }
        x[i] = (b[i] - sub[i - 1] * x[i - 1]) / pivot;
    }
    for i in (0..n - 1).rev() {
        let next = x[i + 1];
        x[i] -= c[i] * next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_1x1() {
        let t = Tridiagonal::from_bands(vec![], vec![4.0], vec![]).unwrap();
        assert_eq!(t.solve(&[8.0]).unwrap(), vec![2.0]);
    }

    #[test]
    fn solve_matches_dense_lu() {
        let t = Tridiagonal::from_bands(
            vec![-1.0, -2.0, 0.5, 1.0],
            vec![4.0, 5.0, 6.0, 5.0, 4.0],
            vec![1.0, -1.5, 2.0, -0.5],
        )
        .unwrap();
        let b = [1.0, -2.0, 3.0, -4.0, 5.0];
        let x_tri = t.solve(&b).unwrap();
        let x_lu = t.to_dense().solve(&b).unwrap();
        for (a, b) in x_tri.iter().zip(&x_lu) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn mul_vec_roundtrip() {
        let t = Tridiagonal::from_bands(vec![1.0, 2.0], vec![10.0, 10.0, 10.0], vec![3.0, 4.0])
            .unwrap();
        let x = [1.0, 2.0, 3.0];
        let b = t.mul_vec(&x).unwrap();
        let back = t.solve(&b).unwrap();
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn get_set_bands() {
        let mut t = Tridiagonal::zeros(3).unwrap();
        t.set(0, 0, 1.0);
        t.set(1, 0, 2.0);
        t.set(0, 1, 3.0);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.get(0, 1), 3.0);
        assert_eq!(t.get(2, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside the tridiagonal bands")]
    fn set_off_band_panics() {
        let mut t = Tridiagonal::zeros(3).unwrap();
        t.set(2, 0, 1.0);
    }

    #[test]
    fn borrowed_solve_bitwise_matches_boxed() {
        let t = Tridiagonal::from_bands(
            vec![-1.0, -2.0, 0.5, 1.0],
            vec![4.0, 5.0, 6.0, 5.0, 4.0],
            vec![1.0, -1.5, 2.0, -0.5],
        )
        .unwrap();
        let b = [1.0, -2.0, 3.0, -4.0, 5.0];
        let boxed = t.solve(&b).unwrap();
        let mut c = [0.0; 5];
        let mut x = [0.0; 5];
        t.solve_into(&b, &mut c, &mut x).unwrap();
        for (a, e) in x.iter().zip(&boxed) {
            assert_eq!(a.to_bits(), e.to_bits());
        }
        // Dimension checks on every slice argument.
        assert!(thomas_solve_into(&[], &[], &[], &[], &mut [], &mut []).is_err());
        assert!(t.solve_into(&b, &mut c[..4], &mut x).is_err());
        assert!(t.solve_into(&b[..3], &mut c, &mut x).is_err());
    }

    #[test]
    fn singular_detection() {
        let t = Tridiagonal::from_bands(vec![1.0], vec![0.0, 1.0], vec![1.0]).unwrap();
        assert!(matches!(
            t.solve(&[1.0, 1.0]),
            Err(NumError::Singular { .. })
        ));
    }

    #[test]
    fn dimension_checks() {
        assert!(Tridiagonal::zeros(0).is_err());
        assert!(Tridiagonal::from_bands(vec![1.0], vec![1.0], vec![]).is_err());
        let t = Tridiagonal::zeros(2).unwrap();
        assert!(t.solve(&[1.0]).is_err());
        assert!(t.mul_vec(&[1.0, 2.0, 3.0]).is_err());
    }
}
