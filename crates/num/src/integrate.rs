//! Quadrature over sampled and closed-form functions.
//!
//! Used for charge bookkeeping (`∫ i dt`) in the SPICE-engine
//! conservation tests and for waveform energy/area metrics in the
//! experiment harness.

use crate::{NumError, Result};

/// Trapezoid rule over irregular samples `(x, y)`.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on fewer than two samples,
/// mismatched lengths, or non-monotone abscissae.
///
/// ```
/// # fn main() -> Result<(), qwm_num::NumError> {
/// let x = [0.0, 1.0, 2.0];
/// let y = [0.0, 1.0, 2.0];
/// assert_eq!(qwm_num::integrate::trapezoid(&x, &y)?, 2.0);
/// # Ok(())
/// # }
/// ```
pub fn trapezoid(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return Err(NumError::InvalidInput {
            context: "trapezoid",
            detail: format!("x.len()={} y.len()={}", x.len(), y.len()),
        });
    }
    let mut acc = 0.0;
    for i in 1..x.len() {
        let h = x[i] - x[i - 1];
        if h < 0.0 {
            return Err(NumError::InvalidInput {
                context: "trapezoid",
                detail: format!("non-monotone abscissae at index {i}"),
            });
        }
        acc += 0.5 * h * (y[i] + y[i - 1]);
    }
    Ok(acc)
}

/// Composite Simpson's rule for `f` over `[a, b]` with `n` (even,
/// positive) panels.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for odd or zero `n` or a reversed
/// interval.
pub fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> Result<f64> {
    if n == 0 || !n.is_multiple_of(2) {
        return Err(NumError::InvalidInput {
            context: "simpson",
            detail: format!("n={n} must be positive and even"),
        });
    }
    if b.is_nan() || a.is_nan() || b < a {
        return Err(NumError::InvalidInput {
            context: "simpson",
            detail: format!("reversed interval [{a}, {b}]"),
        });
    }
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for i in 1..n {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        acc += w * f(a + h * i as f64);
    }
    Ok(acc * h / 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_linear_is_exact() {
        let x: Vec<f64> = (0..=10).map(|i| i as f64 * 0.1).collect();
        let y: Vec<f64> = x.iter().map(|&t| 3.0 * t + 1.0).collect();
        // ∫₀¹ (3t + 1) dt = 2.5
        assert!((trapezoid(&x, &y).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_rejects_bad_input() {
        assert!(trapezoid(&[0.0], &[1.0]).is_err());
        assert!(trapezoid(&[0.0, 1.0], &[1.0]).is_err());
        assert!(trapezoid(&[1.0, 0.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn simpson_cubic_is_exact() {
        // Simpson integrates cubics exactly: ∫₀² x³ dx = 4.
        let v = simpson(|x| x * x * x, 0.0, 2.0, 2).unwrap();
        assert!((v - 4.0).abs() < 1e-12);
    }

    #[test]
    fn simpson_converges_on_sine() {
        let v = simpson(|x| x.sin(), 0.0, std::f64::consts::PI, 64).unwrap();
        assert!((v - 2.0).abs() < 1e-6);
    }

    #[test]
    fn simpson_validation() {
        assert!(simpson(|x| x, 0.0, 1.0, 3).is_err());
        assert!(simpson(|x| x, 0.0, 1.0, 0).is_err());
        assert!(simpson(|x| x, 1.0, 0.0, 2).is_err());
    }
}
