//! Scalar root finding: bisection and Brent's method.
//!
//! Used for waveform threshold crossings (50% delay points, 10%/90% slew
//! points) and for inverting the quadratic voltage pieces when locating
//! QWM critical points analytically is inconvenient.

use crate::{NumError, Result};

/// Refines a root of `f` inside the bracket `[a, b]` by bisection.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] if the bracket does not straddle a
/// sign change and [`NumError::NoConvergence`] if the interval fails to
/// shrink below `tol` within `max_iter` halvings.
///
/// ```
/// # fn main() -> Result<(), qwm_num::NumError> {
/// let root = qwm_num::roots::bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200)?;
/// assert!((root - 2f64.sqrt()).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn bisect<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64, max_iter: usize) -> Result<f64> {
    let (mut lo, mut hi) = (a.min(b), a.max(b));
    let (mut flo, fhi) = (f(lo), f(hi));
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo * fhi > 0.0 {
        return Err(NumError::InvalidInput {
            context: "bisect",
            detail: format!("no sign change on [{lo}, {hi}]"),
        });
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if fm == 0.0 || (hi - lo) < tol {
            return Ok(mid);
        }
        if flo * fm < 0.0 {
            hi = mid;
        } else {
            lo = mid;
            flo = fm;
        }
    }
    Err(NumError::NoConvergence {
        method: "bisect",
        iterations: max_iter,
        residual: hi - lo,
    })
}

/// Brent's method: inverse-quadratic interpolation with a bisection
/// safety net. Typically converges in ~10 evaluations where bisection
/// needs 40+.
///
/// # Errors
///
/// Same contract as [`bisect`].
pub fn brent<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64, max_iter: usize) -> Result<f64> {
    let (mut a, mut b) = (a, b);
    let (mut fa, mut fb) = (f(a), f(b));
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(NumError::InvalidInput {
            context: "brent",
            detail: format!("no sign change on [{a}, {b}]"),
        });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant step.
            b - fb * (b - a) / (fb - fa)
        };

        let lo = (3.0 * a + b) / 4.0;
        let cond1 = !((lo.min(b) < s) && (s < lo.max(b)));
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= d.abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < tol;
        let cond5 = !mflag && d.abs() < tol;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = b - c;
        c = b;
        fc = fb;
        if fa * fs < 0.0 {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumError::NoConvergence {
        method: "brent",
        iterations: max_iter,
        residual: (b - a).abs(),
    })
}

/// Scans `[a, b]` in `steps` uniform increments and returns the first
/// sub-interval on which `f` changes sign, or `None`.
///
/// Used to bracket threshold crossings of sampled waveforms before
/// handing off to [`brent`].
pub fn bracket<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, steps: usize) -> Option<(f64, f64)> {
    if steps == 0 || b.is_nan() || a.is_nan() || b <= a {
        return None;
    }
    let h = (b - a) / steps as f64;
    let mut x0 = a;
    let mut f0 = f(x0);
    for i in 1..=steps {
        let x1 = a + h * i as f64;
        let f1 = f(x1);
        if f0 == 0.0 {
            return Some((x0, x0));
        }
        if f0 * f1 <= 0.0 {
            return Some((x0, x1));
        }
        x0 = x1;
        f0 = f1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13, 200).unwrap();
        assert!((r - 2f64.sqrt()).abs() < 1e-11);
    }

    #[test]
    fn bisect_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 10).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 10).unwrap(), 1.0);
    }

    #[test]
    fn brent_matches_bisect_but_faster_polynomials() {
        let f = |x: f64| (x - 0.3) * (x * x + 1.0);
        let rb = brent(f, 0.0, 1.0, 1e-14, 100).unwrap();
        assert!((rb - 0.3).abs() < 1e-10);
    }

    #[test]
    fn brent_on_transcendental() {
        let r = brent(|x: f64| x.cos() - x, 0.0, 1.0, 1e-14, 100).unwrap();
        assert!((r - 0.739_085_133_215_160_6).abs() < 1e-9);
    }

    #[test]
    fn no_sign_change_rejected() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 50).is_err());
        assert!(brent(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 50).is_err());
    }

    #[test]
    fn bracket_scans() {
        let got = bracket(|x| x - 0.55, 0.0, 1.0, 10).unwrap();
        assert!(got.0 <= 0.55 && 0.55 <= got.1);
        assert!(bracket(|x| x + 10.0, 0.0, 1.0, 10).is_none());
        assert!(bracket(|x| x, 1.0, 0.0, 10).is_none());
    }

    #[test]
    fn bracket_then_brent_pipeline() {
        let f = |x: f64| (x * 3.1).sin() - 0.2;
        let (a, b) = bracket(f, 0.0, 1.0, 32).unwrap();
        let r = brent(f, a, b, 1e-13, 100).unwrap();
        assert!(f(r).abs() < 1e-9);
    }
}
