//! Asymptotic waveform evaluation and π macromodels.
//!
//! Two reductions of an RC tree, both moment-matched:
//!
//! * [`TwoPoleModel`] — classic AWE (Pillage & Rohrer): a second-order
//!   Padé approximation of the voltage transfer to one observation node,
//!   yielding two poles/residues and a closed-form step response;
//! * [`PiModel`] — the O'Brien/Savarino reduction of the *driving-point*
//!   admittance to a `C_near — R — C_far` π, matching the first three
//!   admittance moments. This is the "macro π model for the wire" the
//!   paper plugs into the decoder-tree analysis (Fig. 10): the π's R
//!   becomes a wire edge in the QWM chain and its caps join the adjacent
//!   node capacitances.

use crate::rc::RcTree;
use qwm_num::{NumError, Result};

/// A reduced `C_near — R — C_far` π model of an RC tree seen from its
/// root.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiModel {
    /// Capacitance at the driving end \[F\].
    pub c_near: f64,
    /// Series resistance \[Ω\].
    pub r: f64,
    /// Capacitance at the far end \[F\].
    pub c_far: f64,
}

impl PiModel {
    /// Reduces a tree by matching its first three driving-point
    /// admittance moments: with `y(s) = A₁s + A₂s² + A₃s³ + …`,
    /// `C_far = A₂²/A₃`, `R = −A₃²/A₂³`, `C_near = A₁ − C_far`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] if the tree is purely
    /// capacitive (no resistive structure to match) or the reduction
    /// yields a non-physical element.
    pub fn from_tree(tree: &RcTree) -> Result<Self> {
        let (a1, a2, a3) = tree.admittance_moments();
        if a2 == 0.0 || a3 == 0.0 {
            return Err(NumError::InvalidInput {
                context: "PiModel::from_tree",
                detail: "tree has no resistive structure".to_string(),
            });
        }
        let c_far = a2 * a2 / a3;
        let r = -a3 * a3 / (a2 * a2 * a2);
        let c_near = a1 - c_far;
        if c_far.is_nan() || c_far <= 0.0 || r.is_nan() || r <= 0.0 || c_near < -1e-21 {
            return Err(NumError::InvalidInput {
                context: "PiModel::from_tree",
                detail: format!("non-physical reduction c1={c_near} r={r} c2={c_far}"),
            });
        }
        Ok(PiModel {
            c_near: c_near.max(0.0),
            r,
            c_far,
        })
    }

    /// Total capacitance of the π (equals the tree's total by
    /// construction).
    pub fn total_cap(&self) -> f64 {
        self.c_near + self.c_far
    }

    /// Elmore delay of the π to the far node: `R · C_far`.
    pub fn elmore(&self) -> f64 {
        self.r * self.c_far
    }
}

/// A two-pole AWE reduced-order model of the step response at one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPoleModel {
    /// The (real, negative) poles \[1/s\].
    pub poles: [f64; 2],
    /// Residues of the step response: `v(t) = 1 + k₁e^{p₁t} + k₂e^{p₂t}`.
    pub residues: [f64; 2],
}

impl TwoPoleModel {
    /// Builds the model from the voltage moments `m₁ … m₄` at the
    /// observation node (a (2,2) Padé on `H(s) = 1 + m₁s + m₂s² + …`).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] when the Hankel system is
    /// singular or the poles come out complex/unstable — the usual AWE
    /// failure modes its derivatives (PRIMA etc.) fix; callers fall back
    /// to Elmore in that case.
    pub fn from_moments(m1: f64, m2: f64, m3: f64, m4: f64) -> Result<Self> {
        // Denominator 1 + b₁s + b₂s²: Hankel solve
        //   [m1 m2][b2]   [-m3]
        //   [m2 m3][b1] = [-m4]
        let det = m1 * m3 - m2 * m2;
        if det.abs() < 1e-300 {
            return Err(NumError::InvalidInput {
                context: "TwoPoleModel::from_moments",
                detail: "singular Hankel system".to_string(),
            });
        }
        let b2 = (-m3 * m3 + m2 * m4) / det;
        let b1 = (m2 * m3 - m1 * m4) / det;
        // Poles are roots of b₂p² ... characteristic 1 + b₁s + b₂s² = 0.
        let disc = b1 * b1 - 4.0 * b2;
        if disc < 0.0 || b2 == 0.0 {
            return Err(NumError::InvalidInput {
                context: "TwoPoleModel::from_moments",
                detail: format!("complex poles (disc={disc})"),
            });
        }
        let sq = disc.sqrt();
        let p1 = (-b1 + sq) / (2.0 * b2);
        let p2 = (-b1 - sq) / (2.0 * b2);
        if p1 >= 0.0 || p2 >= 0.0 {
            return Err(NumError::InvalidInput {
                context: "TwoPoleModel::from_moments",
                detail: format!("unstable poles {p1} {p2}"),
            });
        }
        // Residues of H(s) = Σ kᵢ/(s−pᵢ) · pᵢ-normalized transfer; match
        // H(0)=1 and H'(0)=m1:
        //   k₁ + k₂ = -1        (step response 1 + k₁e^{p₁t} + k₂e^{p₂t},
        //    v(0)=0)
        //   k₁/p₁ + k₂/p₂ = ... matched via m1: ∫(1-v) dt = -m1 = -(k₁/p₁ + k₂/p₂)
        let denom = 1.0 / p1 - 1.0 / p2;
        if denom == 0.0 {
            return Err(NumError::InvalidInput {
                context: "TwoPoleModel::from_moments",
                detail: "repeated pole".to_string(),
            });
        }
        // From k₁ + k₂ = −1 and k₁/p₁ + k₂/p₂ = −m₁:
        let k1 = (1.0 / p2 - m1) / denom;
        let k2 = -1.0 - k1;
        Ok(TwoPoleModel {
            poles: [p1, p2],
            residues: [k1, k2],
        })
    }

    /// Builds the model directly from a tree and observation node.
    ///
    /// # Errors
    ///
    /// See [`TwoPoleModel::from_moments`].
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node.
    pub fn from_tree(tree: &RcTree, node: usize) -> Result<Self> {
        let m = tree.moments(4);
        Self::from_moments(m[1][node], m[2][node], m[3][node], m[4][node])
    }

    /// Unit-step response at time `t ≥ 0`:
    /// `v(t) = 1 + k₁e^{p₁t} + k₂e^{p₂t}`.
    pub fn step_response(&self, t: f64) -> f64 {
        1.0 + self.residues[0] * (self.poles[0] * t).exp()
            + self.residues[1] * (self.poles[1] * t).exp()
    }

    /// 50 % delay of the unit-step response, by bisection on the
    /// monotone dominant-pole tail.
    ///
    /// # Errors
    ///
    /// Propagates bracketing failures (the response of a valid model
    /// always crosses 0.5).
    pub fn delay_50(&self) -> Result<f64> {
        let tau = -1.0 / self.poles.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let f = |t: f64| self.step_response(t) - 0.5;
        let (a, b) = qwm_num::roots::bracket(f, 0.0, 50.0 * tau, 4096).ok_or_else(|| {
            NumError::InvalidInput {
                context: "TwoPoleModel::delay_50",
                detail: "no 50% crossing".to_string(),
            }
        })?;
        qwm_num::roots::brent(f, a, b, 1e-18, 200)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_model_preserves_total_cap_and_elmore_shape() {
        let (tree, end) = RcTree::ladder(2e3, 1e-12, 32).unwrap();
        let pi = PiModel::from_tree(&tree).unwrap();
        assert!((pi.total_cap() - 1e-12).abs() < 1e-24);
        assert!(pi.r > 0.0 && pi.r < 2e3, "π R is below the total R");
        // The π's far-end Elmore is close to the distributed line's.
        let ratio = pi.elmore() / tree.elmore(end);
        assert!(ratio > 0.7 && ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn pi_model_single_rc_is_exact() {
        let mut t = RcTree::new(0.0);
        let _ = t.add_node(0, 1000.0, 1e-12).unwrap();
        let pi = PiModel::from_tree(&t).unwrap();
        assert!((pi.c_far - 1e-12).abs() < 1e-26);
        assert!((pi.r - 1000.0).abs() < 1e-6);
        assert!(pi.c_near.abs() < 1e-26);
    }

    #[test]
    fn pi_model_rejects_pure_capacitance() {
        let t = RcTree::new(1e-12);
        assert!(PiModel::from_tree(&t).is_err());
    }

    #[test]
    fn two_pole_single_rc_recovers_exact_exponential() {
        // Single RC: poles p₁ = −1/RC (and a parasite), response
        // 1 − e^{−t/RC}.
        let mut t = RcTree::new(0.0);
        let n = t.add_node(0, 1000.0, 1e-12).unwrap();
        let m = t.moments(4);
        // For a single pole the Hankel system is singular; perturb with a
        // tiny second section instead.
        let mut t2 = RcTree::new(0.0);
        let a = t2.add_node(0, 990.0, 0.99e-12).unwrap();
        let _ = t2.add_node(a, 10.0, 0.01e-12).unwrap();
        let model = TwoPoleModel::from_tree(&t2, a).unwrap();
        let rc = 1e-9;
        let d = model.delay_50().unwrap();
        assert!((d - rc * std::f64::consts::LN_2).abs() < 0.05 * rc, "{d}");
        // And the true single-RC case errors out cleanly.
        assert!(TwoPoleModel::from_moments(m[1][n], m[2][n], m[3][n], m[4][n]).is_err());
    }

    #[test]
    fn two_pole_tracks_distributed_line() {
        let (tree, end) = RcTree::ladder(1e3, 1e-12, 64).unwrap();
        let model = TwoPoleModel::from_tree(&tree, end).unwrap();
        assert!(model.poles[0] < 0.0 && model.poles[1] < 0.0);
        // v(0) = 0, v(∞) = 1.
        assert!(model.step_response(0.0).abs() < 1e-9);
        assert!((model.step_response(1e-6) - 1.0).abs() < 1e-9);
        // Bounded everywhere (AWE-2 may dip slightly near t = 0 — the
        // classic artifact its successors fix) and monotone past the
        // dominant-pole knee.
        let tau = -1.0
            / model
                .poles
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
        let mut prev = -1.0;
        for i in 0..200 {
            let t = i as f64 * 5e-12;
            let v = model.step_response(t);
            assert!((-0.1..=1.01).contains(&v), "v({t}) = {v}");
            if t > 0.5 * tau {
                assert!(v >= prev - 1e-12);
                prev = v;
            }
        }
        // 50% delay close to D2M (a good 2-moment estimate).
        let d = model.delay_50().unwrap();
        let d2m = tree.d2m_delay(end);
        assert!((d - d2m).abs() < 0.25 * d2m, "awe {d} vs d2m {d2m}");
    }

    #[test]
    fn step_response_limits() {
        let (tree, end) = RcTree::ladder(5e3, 3e-12, 16).unwrap();
        let m = TwoPoleModel::from_tree(&tree, end).unwrap();
        let d = m.delay_50().unwrap();
        assert!(m.step_response(d) - 0.5 < 1e-9);
        assert!(d > 0.0);
    }
}
