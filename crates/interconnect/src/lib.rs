//! RC interconnect analysis for the QWM timing toolkit.
//!
//! Deep-submicron wires cannot be treated as lumped capacitors (paper
//! §I); the decoder-tree experiment (Fig. 3 / Fig. 10) chains transistors
//! through wires whose lengths grow exponentially with the tree level.
//! This crate provides the linear-circuit machinery the paper leans on:
//!
//! * [`rc`] — RC trees and ladders, circuit moments (the AWE currency),
//!   Elmore and D2M delay metrics;
//! * [`awe`] — asymptotic waveform evaluation (two-pole Padé) and the
//!   O'Brien/Savarino π macromodel used to fold long wires into the QWM
//!   chain.
//!
//! # Example
//!
//! Reduce a long wire to a π model:
//!
//! ```
//! use qwm_interconnect::awe::PiModel;
//! use qwm_interconnect::rc::RcTree;
//!
//! # fn main() -> Result<(), qwm_num::NumError> {
//! // A 2 kΩ / 1 pF distributed line, 32 sections.
//! let (tree, _far) = RcTree::ladder(2e3, 1e-12, 32)?;
//! let pi = PiModel::from_tree(&tree)?;
//! assert!((pi.total_cap() - 1e-12).abs() < 1e-24);
//! # Ok(())
//! # }
//! ```

pub mod awe;
pub mod htree;
pub mod rc;

pub use awe::{PiModel, TwoPoleModel};
pub use htree::{build_htree, HTree};
pub use rc::RcTree;

/// Builds the RC ladder for a wire of width `w` and length `l` under the
/// given technology, using `segments` sections. Returns the tree and the
/// far-end node index.
///
/// # Errors
///
/// Propagates [`RcTree::ladder`] validation.
pub fn wire_ladder(
    tech: &qwm_device::Technology,
    w: f64,
    l: f64,
    segments: usize,
) -> qwm_num::Result<(RcTree, usize)> {
    let r = qwm_device::caps::wire_res(tech, w, l);
    let c = qwm_device::caps::wire_cap(tech, w, l);
    RcTree::ladder(r, c, segments)
}

/// Reduces a wire directly to its π macromodel (the Fig. 10 flow).
///
/// # Errors
///
/// Propagates ladder and reduction failures.
pub fn wire_pi_model(
    tech: &qwm_device::Technology,
    w: f64,
    l: f64,
    segments: usize,
) -> qwm_num::Result<PiModel> {
    let (tree, _) = wire_ladder(tech, w, l, segments)?;
    PiModel::from_tree(&tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qwm_device::Technology;

    #[test]
    fn wire_helpers_roundtrip() {
        let tech = Technology::cmosp35();
        let (tree, far) = wire_ladder(&tech, 0.6e-6, 160e-6, 16).unwrap();
        assert_eq!(far, 16);
        let pi = wire_pi_model(&tech, 0.6e-6, 160e-6, 16).unwrap();
        let total = qwm_device::caps::wire_cap(&tech, 0.6e-6, 160e-6);
        assert!((pi.total_cap() - total).abs() < 1e-24);
        assert!(tree.elmore(far) > 0.0);
    }

    #[test]
    fn longer_wire_slower_pi() {
        let tech = Technology::cmosp35();
        let short = wire_pi_model(&tech, 0.6e-6, 40e-6, 16).unwrap();
        let long = wire_pi_model(&tech, 0.6e-6, 160e-6, 16).unwrap();
        assert!(long.elmore() > short.elmore());
    }
}
