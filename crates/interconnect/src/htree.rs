//! H-tree (clock-distribution) construction over RC trees.
//!
//! A balanced binary wire tree whose branch length halves at each level —
//! the classic clock-distribution structure. Exercises the moment
//! machinery on *branching* trees (the ladder tests only cover chains)
//! and gives the AWE reductions a realistic multi-sink workload.

use crate::rc::RcTree;
use qwm_num::{NumError, Result};

/// A built H-tree: the RC tree plus its leaf node indices.
#[derive(Debug, Clone)]
pub struct HTree {
    /// The underlying RC tree, rooted at the driver.
    pub tree: RcTree,
    /// Leaf (sink) node indices, left-to-right.
    pub leaves: Vec<usize>,
}

/// Builds an `levels`-deep balanced H-tree. The root branch has total
/// resistance `r0` and capacitance `c0` (split into `segments` ladder
/// sections); each level halves the branch length (halving R and C).
/// Every leaf carries `sink_cap`.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for zero levels/segments or
/// non-positive parasitics.
pub fn build_htree(
    levels: usize,
    r0: f64,
    c0: f64,
    segments: usize,
    sink_cap: f64,
) -> Result<HTree> {
    if levels == 0 || segments == 0 || r0 <= 0.0 || c0 <= 0.0 || sink_cap < 0.0 {
        return Err(NumError::InvalidInput {
            context: "build_htree",
            detail: format!("levels={levels} segments={segments} r0={r0} c0={c0}"),
        });
    }
    let mut tree = RcTree::new(0.0);
    let mut frontier = vec![0usize];
    let mut leaves = Vec::new();
    for level in 0..levels {
        let scale = 0.5f64.powi(level as i32);
        let (rl, cl) = (r0 * scale, c0 * scale);
        let rs = rl / segments as f64;
        let cs = cl / segments as f64;
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for &at in &frontier {
            for _branch in 0..2 {
                let mut node = at;
                for s in 0..segments {
                    let cap = if s == 0 { 0.5 * cs } else { cs };
                    node = tree.add_node(node, rs, cap)?;
                }
                tree.add_cap(node, 0.5 * cs);
                if level + 1 == levels {
                    tree.add_cap(node, sink_cap);
                    leaves.push(node);
                }
                next.push(node);
            }
        }
        frontier = next;
    }
    Ok(HTree { tree, leaves })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::awe::TwoPoleModel;

    #[test]
    fn htree_shape_and_symmetry() {
        let h = build_htree(3, 1e3, 1e-12, 4, 5e-15).unwrap();
        assert_eq!(h.leaves.len(), 8);
        // Balanced: all leaves share the same Elmore delay.
        let d0 = h.tree.elmore(h.leaves[0]);
        for &leaf in &h.leaves[1..] {
            let d = h.tree.elmore(leaf);
            assert!((d - d0).abs() < 1e-18 + 1e-9 * d0, "{d} vs {d0}");
        }
        assert!(d0 > 0.0);
    }

    #[test]
    fn deeper_tree_is_slower_but_sublinear() {
        // Each added level halves the branch, so delay grows but far
        // less than doubling.
        let d2 = {
            let h = build_htree(2, 1e3, 1e-12, 4, 5e-15).unwrap();
            h.tree.elmore(h.leaves[0])
        };
        let d4 = {
            let h = build_htree(4, 1e3, 1e-12, 4, 5e-15).unwrap();
            h.tree.elmore(h.leaves[0])
        };
        assert!(d4 > d2);
        assert!(d4 < 4.0 * d2, "d2 {d2} d4 {d4}");
    }

    #[test]
    fn awe_reduces_a_leaf_response() {
        let h = build_htree(3, 2e3, 2e-12, 6, 10e-15).unwrap();
        let leaf = h.leaves[3];
        let model = TwoPoleModel::from_tree(&h.tree, leaf).unwrap();
        let d_awe = model.delay_50().unwrap();
        let d_elm = h.tree.elmore(leaf);
        let d2m = h.tree.d2m_delay(leaf);
        // AWE sits near D2M, below the Elmore bound.
        assert!(d_awe < d_elm);
        assert!((d_awe - d2m).abs() < 0.3 * d2m, "awe {d_awe} d2m {d2m}");
    }

    #[test]
    fn total_cap_accounts_for_all_branches_and_sinks() {
        let (levels, c0, sink) = (3usize, 1e-12, 5e-15);
        let h = build_htree(levels, 1e3, c0, 4, sink).unwrap();
        // Wire cap: sum over levels of 2^(l+1) branches × c0/2^l = 2·c0 per level.
        let wire: f64 = (0..levels).map(|_| 2.0 * c0).sum();
        let sinks = 8.0 * sink;
        assert!(
            (h.tree.total_cap() - wire - sinks).abs() < 1e-18,
            "total {} vs {}",
            h.tree.total_cap(),
            wire + sinks
        );
    }

    #[test]
    fn validation() {
        assert!(build_htree(0, 1e3, 1e-12, 4, 0.0).is_err());
        assert!(build_htree(2, 0.0, 1e-12, 4, 0.0).is_err());
        assert!(build_htree(2, 1e3, 1e-12, 0, 0.0).is_err());
    }
}
