//! RC trees: construction, Elmore delay and circuit moments.
//!
//! Wires in the decoder-tree experiment are too long to lump: the paper
//! builds "a macro π model for the wire" using AWE (§V-C, Fig. 10). The
//! pipeline here is: wire geometry → distributed RC ladder ([`RcTree`])
//! → voltage/admittance moments → reduced models ([`crate::awe`]).
//!
//! Moments follow the standard RC-tree recursion: with `m₀ ≡ 1`,
//! `m_{k+1}(i) = −Σ_j R_{shared}(i,j) · C_j · m_k(j)`, computed in O(n)
//! per order by subtree-current accumulation. `−m₁(i)` is the Elmore
//! delay to node `i`.

use qwm_num::{NumError, Result};

/// An RC tree rooted at the driving point (node 0). Every non-root node
/// hangs from its parent through a resistor and carries a grounded
/// capacitor.
#[derive(Debug, Clone)]
pub struct RcTree {
    parent: Vec<Option<usize>>,
    res: Vec<f64>,
    cap: Vec<f64>,
    children: Vec<Vec<usize>>,
}

impl RcTree {
    /// A tree containing only the root, with optional root capacitance.
    pub fn new(root_cap: f64) -> Self {
        RcTree {
            parent: vec![None],
            res: vec![0.0],
            cap: vec![root_cap],
            children: vec![Vec::new()],
        }
    }

    /// Adds a node under `parent` through resistance `r`, carrying
    /// capacitance `c`. Returns the new node index.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for an unknown parent or a
    /// non-positive resistance.
    pub fn add_node(&mut self, parent: usize, r: f64, c: f64) -> Result<usize> {
        if parent >= self.parent.len() {
            return Err(NumError::InvalidInput {
                context: "RcTree::add_node",
                detail: format!("parent {parent} out of range"),
            });
        }
        if r <= 0.0 || c < 0.0 {
            return Err(NumError::InvalidInput {
                context: "RcTree::add_node",
                detail: format!("r={r} c={c}"),
            });
        }
        let id = self.parent.len();
        self.parent.push(Some(parent));
        self.res.push(r);
        self.cap.push(c);
        self.children.push(Vec::new());
        self.children[parent].push(id);
        Ok(id)
    }

    /// Adds extra grounded capacitance at an existing node.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node.
    pub fn add_cap(&mut self, node: usize, c: f64) {
        self.cap[node] += c;
    }

    /// Number of nodes (root included).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the tree has only the root.
    pub fn is_empty(&self) -> bool {
        self.parent.len() == 1
    }

    /// Total capacitance of the tree.
    pub fn total_cap(&self) -> f64 {
        self.cap.iter().sum()
    }

    /// A uniform `segments`-section ladder for a wire of total resistance
    /// `r_total` and capacitance `c_total` (the classic distributed-RC
    /// discretization). Returns the tree and the index of the far end.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for zero segments or
    /// non-positive totals.
    pub fn ladder(r_total: f64, c_total: f64, segments: usize) -> Result<(Self, usize)> {
        if segments == 0 || r_total <= 0.0 || c_total <= 0.0 {
            return Err(NumError::InvalidInput {
                context: "RcTree::ladder",
                detail: format!("segments={segments} r={r_total} c={c_total}"),
            });
        }
        let rs = r_total / segments as f64;
        let cs = c_total / segments as f64;
        // Half-section caps at the two ends for second-order accuracy.
        let mut tree = RcTree::new(0.5 * cs);
        let mut at = 0;
        for k in 0..segments {
            let c = if k + 1 == segments { 0.5 * cs } else { cs };
            at = tree.add_node(at, rs, c)?;
        }
        Ok((tree, at))
    }

    /// Voltage moments `m₀ … m_q` at every node for a unit step driven at
    /// the root: `moments[k][node]`. `m₀` is all ones; `−m₁` is Elmore.
    pub fn moments(&self, q: usize) -> Vec<Vec<f64>> {
        let n = self.len();
        let mut out = Vec::with_capacity(q + 1);
        out.push(vec![1.0; n]);
        // Topological order: parents precede children by construction.
        for k in 0..q {
            let prev = &out[k];
            // Subtree sums of C_j * m_k(j).
            let mut subtree = vec![0.0; n];
            for i in (0..n).rev() {
                subtree[i] += self.cap[i] * prev[i];
                if let Some(p) = self.parent[i] {
                    let s = subtree[i];
                    subtree[p] += s;
                }
            }
            let mut next = vec![0.0; n];
            for i in 1..n {
                let p = self.parent[i].expect("non-root has a parent");
                next[i] = next[p] - self.res[i] * subtree[i];
            }
            out.push(next);
        }
        out
    }

    /// Elmore delay (first moment magnitude) from the root to `node`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node.
    pub fn elmore(&self, node: usize) -> f64 {
        assert!(node < self.len(), "node out of range");
        -self.moments(1)[1][node]
    }

    /// The D2M two-moment delay metric `ln2 · m₁² / √m₂` (Alpert, Devgan
    /// & Kashyap), a better step-response 50 % estimate than Elmore for
    /// far-from-root nodes.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node.
    pub fn d2m_delay(&self, node: usize) -> f64 {
        assert!(node < self.len(), "node out of range");
        let m = self.moments(2);
        let m1 = m[1][node];
        let m2 = m[2][node];
        if m2 <= 0.0 {
            return self.elmore(node);
        }
        std::f64::consts::LN_2 * m1 * m1 / m2.sqrt()
    }

    /// Driving-point admittance moments `(A₁, A₂, A₃)` where
    /// `y(s) = A₁s + A₂s² + A₃s³ + …` — the inputs to the π-model
    /// reduction.
    pub fn admittance_moments(&self) -> (f64, f64, f64) {
        let m = self.moments(2);
        let a1 = self.total_cap();
        let a2: f64 = self.cap.iter().zip(&m[1]).map(|(c, m1)| c * m1).sum();
        let a3: f64 = self.cap.iter().zip(&m[2]).map(|(c, m2)| c * m2).sum();
        (a1, a2, a3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rc_elmore() {
        let mut t = RcTree::new(0.0);
        let n = t.add_node(0, 1000.0, 1e-12).unwrap();
        assert!((t.elmore(n) - 1e-9).abs() < 1e-18);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn elmore_accumulates_along_a_chain() {
        // R1=1k,C1=1p then R2=2k,C2=2p:
        // Elmore(2) = R1*(C1+C2) + R2*C2 = 1k*3p + 2k*2p = 7 ns.
        let mut t = RcTree::new(0.0);
        let n1 = t.add_node(0, 1000.0, 1e-12).unwrap();
        let n2 = t.add_node(n1, 2000.0, 2e-12).unwrap();
        assert!((t.elmore(n2) - 7e-9).abs() < 1e-18);
        // Branch off n1 does not see R2.
        let n3 = t.add_node(n1, 500.0, 1e-12).unwrap();
        // Elmore(3) = R1*(C1+C2+C3) + R3*C3 = 1k*4p + 0.5k*1p = 4.5n.
        assert!((t.elmore(n3) - 4.5e-9).abs() < 1e-18);
    }

    #[test]
    fn ladder_converges_to_distributed_elmore() {
        // Distributed RC line: Elmore to the far end → 0.5·R·C as
        // segments → ∞.
        let (r, c) = (1e3, 1e-12);
        let (t1, end1) = RcTree::ladder(r, c, 1).unwrap();
        let (t64, end64) = RcTree::ladder(r, c, 64).unwrap();
        let d1 = t1.elmore(end1);
        let d64 = t64.elmore(end64);
        assert!((d64 - 0.5 * r * c).abs() < 0.01 * 0.5 * r * c, "{d64}");
        // Single segment with half-caps also gives exactly RC/2.
        assert!((d1 - 0.5 * r * c).abs() < 1e-18);
        assert!((t64.total_cap() - c).abs() < 1e-24);
    }

    #[test]
    fn moments_m0_is_unity_m1_negative() {
        let (t, end) = RcTree::ladder(1e3, 1e-12, 8).unwrap();
        let m = t.moments(3);
        assert!(m[0].iter().all(|&v| v == 1.0));
        assert!(m[1][end] < 0.0);
        // Moments alternate in sign for RC trees.
        assert!(m[2][end] > 0.0);
        assert!(m[3][end] < 0.0);
    }

    #[test]
    fn d2m_bounds_elmore_from_below_at_far_end() {
        let (t, end) = RcTree::ladder(5e3, 2e-12, 32).unwrap();
        let elm = t.elmore(end);
        let d2m = t.d2m_delay(end);
        // Elmore is a provable upper bound on 50% delay; D2M is tighter.
        assert!(d2m < elm);
        assert!(d2m > 0.3 * elm);
    }

    #[test]
    fn admittance_moments_signs_and_total_cap() {
        let (t, _) = RcTree::ladder(1e3, 1e-12, 16).unwrap();
        let (a1, a2, a3) = t.admittance_moments();
        assert!((a1 - 1e-12).abs() < 1e-24);
        assert!(a2 < 0.0);
        assert!(a3 > 0.0);
    }

    #[test]
    fn validation() {
        let mut t = RcTree::new(0.0);
        assert!(t.add_node(5, 1.0, 1e-12).is_err());
        assert!(t.add_node(0, 0.0, 1e-12).is_err());
        assert!(t.add_node(0, 1.0, -1.0).is_err());
        assert!(RcTree::ladder(1.0, 1.0, 0).is_err());
        assert!(RcTree::ladder(0.0, 1.0, 4).is_err());
        assert!(RcTree::new(1e-15).is_empty());
    }
}
