//! Process-wide table cache: `tabular_models_cached` characterizes a
//! technology exactly once, and an installed (restored) table
//! short-circuits the sweep entirely.
//!
//! Kept as its own integration binary so [`TableModel::characterization_count`]
//! deltas are not raced by unrelated tests characterizing in parallel.

use qwm_device::model::Polarity;
use qwm_device::{cached_table, cached_tables, install_table, TableModel, Technology};

#[test]
fn cache_characterizes_once_and_serves_installed_tables() {
    let tech = Technology::cmosp35();

    let c0 = TableModel::characterization_count();
    let first = qwm_device::tabular_models_cached(&tech).expect("models");
    let c1 = TableModel::characterization_count();
    assert_eq!(c1 - c0, 2, "one sweep per polarity on a cold cache");

    let second = qwm_device::tabular_models_cached(&tech).expect("models");
    assert_eq!(
        TableModel::characterization_count(),
        c1,
        "second build must come from the cache"
    );

    // Cached builds are bitwise-identical to the originals.
    let g = qwm_device::Geometry::new(1e-6, 0.35e-6);
    let tv = qwm_device::TermVoltage::new(3.3, 3.3, 0.0);
    for p in [Polarity::Nmos, Polarity::Pmos] {
        let a = first.for_polarity(p).iv(&g, tv).unwrap();
        let b = second.for_polarity(p).iv(&g, tv).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // A restored table (from_parts — no sweep) installed into the cache
    // is served as-is: building models for its technology performs zero
    // characterizations.
    let mut shifted = tech.clone();
    shifted.vt0_n += 0.01;
    let donor_n = cached_table(&tech, Polarity::Nmos, 0.1).expect("cached nmos");
    let donor_p = cached_table(&tech, Polarity::Pmos, 0.1).expect("cached pmos");
    let restored_n = TableModel::from_parts(
        shifted.clone(),
        Polarity::Nmos,
        0.1,
        donor_n.points().to_vec(),
    )
    .expect("rebuild");
    let restored_p = TableModel::from_parts(
        shifted.clone(),
        Polarity::Pmos,
        0.1,
        donor_p.points().to_vec(),
    )
    .expect("rebuild");
    install_table(restored_n);
    install_table(restored_p);
    let c2 = TableModel::characterization_count();
    let restored = qwm_device::tabular_models_cached(&shifted).expect("models");
    assert_eq!(
        TableModel::characterization_count(),
        c2,
        "installed tables must suppress the sweep"
    );
    // The served table is the installed one (donor fits, shifted tech).
    let served = cached_table(&shifted, Polarity::Nmos, 0.1).expect("cached");
    assert_eq!(served.points(), donor_n.points());
    assert!(restored.for_polarity(Polarity::Nmos).iv(&g, tv).is_ok());

    // install replaces (same identity), never duplicates.
    let n_before = cached_tables().len();
    install_table(cached_table(&shifted, Polarity::Nmos, 0.1).unwrap());
    assert_eq!(cached_tables().len(), n_before);
}
