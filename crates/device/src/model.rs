//! The device-model abstraction (paper Definition 2).
//!
//! A `DeviceModel` maps geometric parameters and a terminal-voltage
//! configuration to the current flowing from the edge's source node to
//! its sink node, plus the threshold/saturation voltages and the
//! parasitic capacitance contributions at each terminal. Both the
//! analytic model ([`crate::mosfet::Mosfet`]) and the compressed tabular
//! model the paper builds in §V-A implement this trait, so the SPICE
//! baseline and the QWM engine can each be run against either.

use crate::tech::Technology;
use qwm_num::Result;

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// N-channel device: conducts when the gate is high relative to the
    /// lower terminal; body tied to ground.
    Nmos,
    /// P-channel device: conducts when the gate is low relative to the
    /// higher terminal; body tied to Vdd.
    Pmos,
}

/// Geometric parameters of a circuit element (paper Definition 1's
/// `w, l` plus the optional junction geometry of §III-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometry {
    /// Drawn width \[m\].
    pub w: f64,
    /// Drawn length \[m\].
    pub l: f64,
    /// Source-junction area \[m²\]; `None` derives `w · l_diff`.
    pub area_src: Option<f64>,
    /// Source-junction perimeter \[m\]; `None` derives `2·(w + l_diff)`.
    pub perim_src: Option<f64>,
    /// Drain-junction area \[m²\].
    pub area_snk: Option<f64>,
    /// Drain-junction perimeter \[m\].
    pub perim_snk: Option<f64>,
}

impl Geometry {
    /// A transistor of drawn size `w × l` with default junction geometry.
    ///
    /// ```
    /// let g = qwm_device::model::Geometry::new(1.0e-6, 0.35e-6);
    /// assert_eq!(g.w, 1.0e-6);
    /// ```
    pub fn new(w: f64, l: f64) -> Self {
        Geometry {
            w,
            l,
            area_src: None,
            perim_src: None,
            area_snk: None,
            perim_snk: None,
        }
    }

    /// Source junction area, defaulting to `w · l_diff`.
    pub fn src_area(&self, tech: &Technology) -> f64 {
        self.area_src.unwrap_or(self.w * tech.l_diff)
    }

    /// Source junction perimeter, defaulting to `2(w + l_diff)`.
    pub fn src_perim(&self, tech: &Technology) -> f64 {
        self.perim_src.unwrap_or(2.0 * (self.w + tech.l_diff))
    }

    /// Sink junction area, defaulting to `w · l_diff`.
    pub fn snk_area(&self, tech: &Technology) -> f64 {
        self.area_snk.unwrap_or(self.w * tech.l_diff)
    }

    /// Sink junction perimeter, defaulting to `2(w + l_diff)`.
    pub fn snk_perim(&self, tech: &Technology) -> f64 {
        self.perim_snk.unwrap_or(2.0 * (self.w + tech.l_diff))
    }
}

/// Terminal voltage configuration of a circuit edge (paper Definition 2):
/// the gate (`input`) voltage plus the absolute voltages of the edge's
/// source and sink nodes. All in volts, node-referenced (body terminals
/// are implicit: ground for NMOS, Vdd for PMOS).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TermVoltage {
    /// Gate voltage (undefined/ignored for wire segments).
    pub input: f64,
    /// Voltage of the edge's source node.
    pub src: f64,
    /// Voltage of the edge's sink node.
    pub snk: f64,
}

impl TermVoltage {
    /// Convenience constructor.
    pub fn new(input: f64, src: f64, snk: f64) -> Self {
        TermVoltage { input, src, snk }
    }
}

/// Current and its partial derivatives with respect to the three terminal
/// voltages — everything a Newton iteration needs from the model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IvEval {
    /// Current flowing from the source node to the sink node \[A\].
    pub i: f64,
    /// ∂i/∂input (gate transconductance seen at node level).
    pub d_input: f64,
    /// ∂i/∂src.
    pub d_src: f64,
    /// ∂i/∂snk.
    pub d_snk: f64,
}

/// A device model (paper Definition 2): I/V relationship, threshold and
/// saturation voltages, and terminal capacitance contributions.
pub trait DeviceModel: Send + Sync {
    /// Which technology the model was built for.
    fn tech(&self) -> &Technology;

    /// Current from the source node to the sink node for the given
    /// geometry and terminal voltages (`iv` in Definition 2).
    ///
    /// # Errors
    ///
    /// Tabular models may reject voltages far outside the characterized
    /// range.
    fn iv(&self, geom: &Geometry, tv: TermVoltage) -> Result<f64> {
        Ok(self.iv_eval(geom, tv)?.i)
    }

    /// Current plus node-voltage derivatives.
    ///
    /// # Errors
    ///
    /// Same contract as [`DeviceModel::iv`].
    fn iv_eval(&self, geom: &Geometry, tv: TermVoltage) -> Result<IvEval>;

    /// Evaluates N independent lanes in one call, writing
    /// `out[k] = iv_eval(lanes[k])` for the first `min(lanes, out)`
    /// lanes. The default loops the scalar path; batch-aware models
    /// (the tabular model's SoA kernel) override it to amortize
    /// bookkeeping and evaluate lanes branch-free. Implementations must
    /// be lane-order-preserving and bitwise-identical to the scalar
    /// path, including the order of fault-injection checks.
    ///
    /// # Errors
    ///
    /// Same contract as [`DeviceModel::iv_eval`]; the first failing lane
    /// aborts the batch.
    fn iv_eval_batch(&self, lanes: &[(Geometry, TermVoltage)], out: &mut [IvEval]) -> Result<()> {
        for (lane, o) in lanes.iter().zip(out.iter_mut()) {
            *o = self.iv_eval(&lane.0, lane.1)?;
        }
        Ok(())
    }

    /// Effective threshold voltage, including body effect, referenced to
    /// the conduction source terminal implied by `tv` (`threshold` in
    /// Definition 2).
    fn threshold(&self, tv: TermVoltage) -> f64;

    /// Gate overdrive (`v_gs,eff − Vt`): positive when the device
    /// conducts. The QWM critical-point condition is `turn_on_excess = 0`
    /// for the next transistor along the charge/discharge path.
    fn turn_on_excess(&self, tv: TermVoltage) -> f64;

    /// Saturation voltage `Vdsat` for the given terminal configuration.
    fn vdsat(&self, tv: TermVoltage) -> f64;

    /// Parasitic capacitance contributed to the source node at source
    /// voltage `v` (`srccap` in Definition 2) \[F\].
    fn src_cap(&self, geom: &Geometry, v: f64) -> f64;

    /// Parasitic capacitance contributed to the sink node at sink voltage
    /// `v` (`snkcap` in Definition 2) \[F\].
    fn snk_cap(&self, geom: &Geometry, v: f64) -> f64;

    /// Capacitance presented to the input (gate) net (`inputcap`) \[F\].
    fn input_cap(&self, geom: &Geometry) -> f64;
}

/// The set of models a circuit is evaluated under — one per device kind
/// (paper: `model : Device → DeviceModel`).
pub struct ModelSet {
    /// Model used for NMOS edges.
    pub nmos: Box<dyn DeviceModel>,
    /// Model used for PMOS edges.
    pub pmos: Box<dyn DeviceModel>,
}

impl ModelSet {
    /// Builds a model set from NMOS and PMOS models.
    pub fn new(nmos: Box<dyn DeviceModel>, pmos: Box<dyn DeviceModel>) -> Self {
        ModelSet { nmos, pmos }
    }

    /// The model for a given polarity.
    pub fn for_polarity(&self, p: Polarity) -> &dyn DeviceModel {
        match p {
            Polarity::Nmos => self.nmos.as_ref(),
            Polarity::Pmos => self.pmos.as_ref(),
        }
    }

    /// The shared technology (taken from the NMOS model).
    pub fn tech(&self) -> &Technology {
        self.nmos.tech()
    }
}

impl std::fmt::Debug for ModelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelSet").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_defaults_derive_from_ldiff() {
        let tech = Technology::cmosp35();
        let g = Geometry::new(2.0e-6, 0.35e-6);
        assert!((g.src_area(&tech) - 2.0e-6 * tech.l_diff).abs() < 1e-18);
        assert!((g.src_perim(&tech) - 2.0 * (2.0e-6 + tech.l_diff)).abs() < 1e-12);
        assert_eq!(g.src_area(&tech), g.snk_area(&tech));
    }

    #[test]
    fn geometry_explicit_junctions_win() {
        let tech = Technology::cmosp35();
        let g = Geometry {
            area_src: Some(1e-12),
            perim_snk: Some(5e-6),
            ..Geometry::new(1e-6, 0.35e-6)
        };
        assert_eq!(g.src_area(&tech), 1e-12);
        assert_eq!(g.snk_perim(&tech), 5e-6);
    }

    #[test]
    fn term_voltage_roundtrip() {
        let tv = TermVoltage::new(3.3, 1.0, 0.0);
        assert_eq!(tv.input, 3.3);
        assert_eq!(tv.src, 1.0);
        assert_eq!(tv.snk, 0.0);
    }

    #[test]
    fn model_set_is_shareable_across_threads() {
        // The parallel STA engine hands one `&ModelSet` to every worker;
        // this pins the `Send + Sync` guarantee (the `DeviceModel`
        // supertrait) so a non-threadsafe model can never sneak in.
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<ModelSet>();
        assert_sync_send::<&dyn DeviceModel>();

        // And the lookup really is `&self`-concurrent: identical
        // currents from racing readers of one shared set.
        let tech = Technology::cmosp35();
        let set = crate::analytic_models(&tech);
        let tv = TermVoltage::new(tech.vdd, tech.vdd / 2.0, 0.0);
        let g = Geometry::new(1e-6, tech.l_min);
        let expect = set.nmos.iv(&g, tv).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let set = &set;
                s.spawn(move || {
                    for _ in 0..100 {
                        assert_eq!(set.nmos.iv(&g, tv).unwrap(), expect);
                    }
                });
            }
        });
    }
}
