//! The compressed tabular device model (paper §V-A).
//!
//! A direct table of Ids over (Vg, Vs, Vd) would be accurate but huge, so
//! the paper sweeps `Vs` and `Vg` from 0 to 3.3 V at 0.1 V pitch and, at
//! each grid point, curve-fits the dependence on `Vd`:
//!
//! * a **quadratic** in the triode region (`0 ≤ Vds < Vdsat`),
//! * a **linear** function in the saturation region (`Vds ≥ Vdsat`),
//!
//! storing 7 parameters per point — the five fit coefficients plus the
//! threshold and saturation voltages. Queries off the grid interpolate
//! bilinearly from the four neighbours; the fit coefficients also give
//! `∂Ids/∂Vd` and `∂Ids/∂Vs` "very fast", which is what the QWM Jacobian
//! consumes.
//!
//! Here the characterization source is the analytic model of
//! [`crate::mosfet`] (standing in for the paper's HSPICE/BSIM3 sweeps —
//! see DESIGN.md §2). Note the triode region of the analytic model is
//! slightly *cubic* (channel-length modulation), so the quadratic fit is
//! genuinely approximate, exactly like the paper's fits of BSIM3 data.

use crate::caps;
use crate::model::{DeviceModel, Geometry, IvEval, Polarity, TermVoltage};
use crate::mosfet::ids_core;
use crate::tech::Technology;
use qwm_num::polyfit::polyfit;
use qwm_num::{NumError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Process-wide count of full grid characterizations (see
/// [`TableModel::characterization_count`]). Always-on (plain atomic,
/// not a `qwm-obs` counter) so warm-restart tests can assert "zero
/// re-characterizations" regardless of whether `QWM_OBS` is set.
static CHARACTERIZATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide cache of characterized tables, keyed by the full
/// `(technology, polarity, step)` identity. [`crate::tabular_models_cached`]
/// consults it before sweeping, and a store-backed server installs
/// restored tables here on boot so characterization never re-runs for a
/// technology it already paid for.
fn table_registry() -> &'static Mutex<Vec<TableModel>> {
    static REG: OnceLock<Mutex<Vec<TableModel>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

fn table_matches(t: &TableModel, tech: &Technology, polarity: Polarity, step: f64) -> bool {
    t.polarity == polarity && t.step.to_bits() == step.to_bits() && t.tech == *tech
}

/// Installs a table into the process-wide cache, replacing any entry
/// with the same technology, polarity and grid pitch. The cache is
/// append-mostly and tiny (one entry per characterized corner ×
/// polarity), so lookup is a linear scan.
pub fn install_table(t: TableModel) {
    let mut reg = table_registry().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(slot) = reg
        .iter_mut()
        .find(|c| table_matches(c, &t.tech, t.polarity, t.step))
    {
        *slot = t;
    } else {
        reg.push(t);
    }
}

/// Looks up a cached table for exactly this technology, polarity and
/// grid pitch (`step` compares bitwise — the cache never substitutes a
/// "close" table).
pub fn cached_table(tech: &Technology, polarity: Polarity, step: f64) -> Option<TableModel> {
    table_registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .find(|t| table_matches(t, tech, polarity, step))
        .cloned()
}

/// Every cached table, in installation order — what a store-backed
/// server persists after a commit.
pub fn cached_tables() -> Vec<TableModel> {
    table_registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// The 7 stored parameters at one (Vs, Vg) grid point.
///
/// Currents are per unit W/L; `vds` below is the local drain-source
/// voltage (`Vd − Vs`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FitPoint {
    /// Triode quadratic: `i = t2·vds² + t1·vds + t0` on `[0, vdsat)`.
    pub t0: f64,
    /// Linear triode coefficient.
    pub t1: f64,
    /// Quadratic triode coefficient.
    pub t2: f64,
    /// Saturation linear: `i = s1·vds + s0` on `[vdsat, ∞)`.
    pub s0: f64,
    /// Saturation slope (channel-length modulation).
    pub s1: f64,
    /// Effective threshold voltage at this (Vs, Vg) \[V\].
    pub vth: f64,
    /// Saturation voltage at this (Vs, Vg) \[V\].
    pub vdsat: f64,
}

impl FitPoint {
    /// Evaluates the piecewise fit at local `vds ≥ 0` and returns
    /// `(i, ∂i/∂vds)`.
    pub fn eval(&self, vds: f64) -> (f64, f64) {
        if self.vdsat <= 0.0 {
            return (0.0, 0.0);
        }
        if vds < self.vdsat {
            (
                (self.t2 * vds + self.t1) * vds + self.t0,
                2.0 * self.t2 * vds + self.t1,
            )
        } else {
            (self.s1 * vds + self.s0, self.s1)
        }
    }

    /// Branch-free form of [`FitPoint::eval`]: both region polynomials
    /// are computed and the result selected by comparison, which lets
    /// the batched lookup kernel autovectorize across lanes. Relies on
    /// the characterization invariant that a cutoff point (`vdsat ≤ 0`)
    /// stores all-zero fit coefficients, so the saturation arm already
    /// yields the scalar path's `(0.0, 0.0)` — each arm's arithmetic is
    /// unchanged, making the select bitwise-identical to `eval`.
    #[inline]
    fn eval_select(&self, vds: f64) -> (f64, f64) {
        let tri_i = (self.t2 * vds + self.t1) * vds + self.t0;
        let tri_d = 2.0 * self.t2 * vds + self.t1;
        let sat_i = self.s1 * vds + self.s0;
        let sat_d = self.s1;
        let triode = vds < self.vdsat;
        (
            if triode { tri_i } else { sat_i },
            if triode { tri_d } else { sat_d },
        )
    }
}

/// Samples, fit curves and residuals for one characterized grid point —
/// the data behind the paper's Fig. 8.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Source voltage of the characterized point \[V\].
    pub vs: f64,
    /// Gate voltage of the characterized point \[V\].
    pub vg: f64,
    /// Sampled `(vds, ids)` pairs from the reference model.
    pub samples: Vec<(f64, f64)>,
    /// The stored 7-parameter fit.
    pub fit: FitPoint,
    /// RMS residual of the fit over the samples \[A\].
    pub rms_error: f64,
    /// Maximum absolute residual \[A\].
    pub max_error: f64,
}

/// The characterized tabular model for one polarity.
#[derive(Debug, Clone)]
pub struct TableModel {
    tech: Technology,
    polarity: Polarity,
    step: f64,
    n: usize, // grid points per axis: vs index * n + vg index
    points: Vec<FitPoint>,
}

impl TableModel {
    /// Characterizes the analytic model over a `(Vs, Vg)` grid with the
    /// given pitch (the paper uses 0.1 V) and `n_vd` drain samples per
    /// region fit.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for a non-positive or
    /// larger-than-supply pitch.
    pub fn characterize(tech: Technology, polarity: Polarity, step: f64) -> Result<Self> {
        if step <= 0.0 || step > tech.vdd {
            return Err(NumError::InvalidInput {
                context: "TableModel::characterize",
                detail: format!("grid step {step}"),
            });
        }
        CHARACTERIZATIONS.fetch_add(1, Ordering::Relaxed);
        qwm_obs::counter!("device.table.characterizations").incr();
        let n = (tech.vdd / step).round() as usize + 1;
        let (kp, vt0) = match polarity {
            Polarity::Nmos => (tech.kp_n, tech.vt0_n),
            Polarity::Pmos => (tech.kp_p, tech.vt0_p),
        };
        let mut points = Vec::with_capacity(n * n);
        for is in 0..n {
            let vs = is as f64 * step;
            for ig in 0..n {
                let vg = ig as f64 * step;
                points.push(fit_point(&tech, kp, vt0, vs, vg, 24)?);
            }
        }
        Ok(TableModel {
            tech,
            polarity,
            step,
            n,
            points,
        })
    }

    /// Characterizes with the paper's defaults: 0.1 V grid pitch.
    ///
    /// # Errors
    ///
    /// See [`TableModel::characterize`].
    pub fn with_defaults(tech: Technology, polarity: Polarity) -> Result<Self> {
        Self::characterize(tech, polarity, 0.1)
    }

    /// Rebuilds a table from previously characterized parts (e.g. a
    /// `qwm-store` device-table record) **without** re-running the
    /// grid sweeps — the whole point of persisting tables. The fits
    /// are taken as-is, so a table restored from the same technology,
    /// polarity and step is bitwise-identical to the one that was
    /// stored.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for a bad pitch (as in
    /// [`TableModel::characterize`]) or a point count that does not
    /// match the grid implied by `step`.
    pub fn from_parts(
        tech: Technology,
        polarity: Polarity,
        step: f64,
        points: Vec<FitPoint>,
    ) -> Result<Self> {
        if step <= 0.0 || step > tech.vdd {
            return Err(NumError::InvalidInput {
                context: "TableModel::from_parts",
                detail: format!("grid step {step}"),
            });
        }
        let n = (tech.vdd / step).round() as usize + 1;
        if points.len() != n * n {
            return Err(NumError::InvalidInput {
                context: "TableModel::from_parts",
                detail: format!("{} fit points for a {n}×{n} grid", points.len()),
            });
        }
        Ok(TableModel {
            tech,
            polarity,
            step,
            n,
            points,
        })
    }

    /// Process-wide count of full grid characterizations performed by
    /// [`TableModel::characterize`] since process start. Restoring via
    /// [`TableModel::from_parts`] does not count — which is exactly
    /// what lets a warm-restart test assert that a store-backed boot
    /// re-characterized nothing.
    pub fn characterization_count() -> u64 {
        CHARACTERIZATIONS.load(Ordering::Relaxed)
    }

    /// The characterized technology.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// The stored per-grid-point fits, row-major (`vs` index × n +
    /// `vg` index).
    pub fn points(&self) -> &[FitPoint] {
        &self.points
    }

    /// Number of (Vs, Vg) grid points.
    pub fn grid_points(&self) -> usize {
        self.points.len()
    }

    /// Grid pitch \[V\].
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Device polarity.
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// The stored fit at grid indices `(is, ig)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn fit_at(&self, is: usize, ig: usize) -> &FitPoint {
        assert!(is < self.n && ig < self.n, "grid index out of range");
        &self.points[is * self.n + ig]
    }

    /// Regenerates the Fig.-8-style fit report for an arbitrary `(vs, vg)`
    /// point (re-sampled from the analytic reference).
    ///
    /// # Errors
    ///
    /// Propagates fitting errors.
    pub fn fit_report(&self, vs: f64, vg: f64) -> Result<FitReport> {
        let (kp, vt0) = match self.polarity {
            Polarity::Nmos => (self.tech.kp_n, self.tech.vt0_n),
            Polarity::Pmos => (self.tech.kp_p, self.tech.vt0_p),
        };
        let fit = fit_point(&self.tech, kp, vt0, vs, vg, 24)?;
        let mut samples = Vec::new();
        let n_samples = 67;
        let mut max_error: f64 = 0.0;
        let mut ss = 0.0;
        for i in 0..n_samples {
            let vds = self.tech.vdd * i as f64 / (n_samples - 1) as f64;
            let i_ref = ids_core(&self.tech, kp, vt0, vg - vs, vds, vs).i;
            let (i_fit, _) = fit.eval(vds);
            let e = i_fit - i_ref;
            max_error = max_error.max(e.abs());
            ss += e * e;
            samples.push((vds, i_ref));
        }
        Ok(FitReport {
            vs,
            vg,
            samples,
            fit,
            rms_error: (ss / n_samples as f64).sqrt(),
            max_error,
        })
    }

    /// Clamped cell index and in-cell fraction along one grid axis.
    /// `min(n − 2)` replaces the historical `if i >= n − 1` branch with
    /// an identical-result select.
    #[inline]
    fn locate(&self, v: f64) -> (usize, f64) {
        let n = self.n;
        let u = (v / self.step).clamp(0.0, (n - 1) as f64);
        let i = (u.floor() as usize).min(n - 2);
        (i, u - i as f64)
    }

    /// Forward-frame query: current per unit W/L and partials for
    /// normalized voltages `(vg, vs, vd)` with `vd ≥ vs`, bilinearly
    /// blended from the four neighbouring grid fits. Shared by the
    /// scalar and batched entry points so both produce bitwise-identical
    /// results; bookkeeping (lookup counter, trace attribution) lives in
    /// the callers.
    #[inline]
    fn forward_core(&self, vg: f64, vs: f64, vd: f64) -> (f64, f64, f64, f64) {
        let n = self.n;
        let (is, ts) = self.locate(vs);
        let (ig, tg) = self.locate(vg);
        let vds = (vd - vs).max(0.0);

        // Corner fits evaluated at the *query's* local vds.
        let p00 = self.points[is * n + ig].eval_select(vds);
        let p10 = self.points[(is + 1) * n + ig].eval_select(vds);
        let p01 = self.points[is * n + ig + 1].eval_select(vds);
        let p11 = self.points[(is + 1) * n + ig + 1].eval_select(vds);

        let w00 = (1.0 - ts) * (1.0 - tg);
        let w10 = ts * (1.0 - tg);
        let w01 = (1.0 - ts) * tg;
        let w11 = ts * tg;

        let i = w00 * p00.0 + w10 * p10.0 + w01 * p01.0 + w11 * p11.0;
        let d_vds = w00 * p00.1 + w10 * p10.1 + w01 * p01.1 + w11 * p11.1;
        // Exact derivatives of the bilinear interpolant along the axes.
        let d_vs_axis = ((p10.0 - p00.0) * (1.0 - tg) + (p11.0 - p01.0) * tg) / self.step;
        let d_vg_axis = ((p01.0 - p00.0) * (1.0 - ts) + (p11.0 - p10.0) * ts) / self.step;
        (i, d_vg_axis, d_vs_axis, d_vds)
    }

    /// Batched SoA forward queries: `out[k]` receives the forward-frame
    /// result `(i, ∂i/∂vg, ∂i/∂vs_axis, ∂i/∂vds)` for lane `k`'s
    /// normalized `(vg, vs, vd)`. Lanes are independent and evaluated
    /// branch-free (select-based region pick, clamped cell index), so
    /// the loop autovectorizes when neighbouring lanes land in the same
    /// `(is, ig)` cell — the corner-sweep case where N corners query the
    /// same transistor back-to-back. The lookup counter and trace
    /// attribution are amortized to one update per batch; results are
    /// bitwise-identical to N scalar forward queries.
    ///
    /// Only the first `min(queries.len(), out.len())` lanes are written.
    pub fn forward_batch(&self, queries: &[(f64, f64, f64)], out: &mut [(f64, f64, f64, f64)]) {
        let n = queries.len().min(out.len());
        if n == 0 {
            return;
        }
        qwm_obs::counter!("device.table.lookups").add(n as u64);
        let _t = qwm_obs::trace::time_lookup();
        for (q, o) in queries[..n].iter().zip(&mut out[..n]) {
            *o = self.forward_core(q.0, q.1, q.2);
        }
    }

    /// Node-level evaluation in the normalized (NMOS-shaped) frame.
    /// Bookkeeping-free: callers account for the lookup (scalar
    /// `iv_eval` per call, `iv_eval_batch` once per batch).
    fn eval_normalized(&self, tv: TermVoltage, wl: f64) -> IvEval {
        if tv.src >= tv.snk {
            let (i, d_vg, d_vs_ax, d_vds) = self.forward_core(tv.input, tv.snk, tv.src);
            IvEval {
                i: wl * i,
                d_input: wl * d_vg,
                d_src: wl * d_vds,
                d_snk: wl * (d_vs_ax - d_vds),
            }
        } else {
            let (i, d_vg, d_vs_ax, d_vds) = self.forward_core(tv.input, tv.src, tv.snk);
            IvEval {
                i: -wl * i,
                d_input: -wl * d_vg,
                d_snk: -wl * d_vds,
                d_src: -wl * (d_vs_ax - d_vds),
            }
        }
    }
}

/// Builds the 7-parameter fit for one (vs, vg) grid point by sampling the
/// analytic core and least-squares fitting each region.
fn fit_point(
    tech: &Technology,
    kp: f64,
    vt0: f64,
    vs: f64,
    vg: f64,
    samples_per_region: usize,
) -> Result<FitPoint> {
    let vgs = vg - vs;
    let vsb = vs;
    let vth = tech.vt_body(vt0, vsb);
    let vdsat = (vgs - vth).max(0.0);
    if vdsat <= 0.0 {
        return Ok(FitPoint {
            vth,
            ..FitPoint::default()
        });
    }
    let sample = |vds: f64| ids_core(tech, kp, vt0, vgs, vds, vsb).i;

    // Triode fit on [0, vdsat].
    let m = samples_per_region.max(4);
    let mut xs = Vec::with_capacity(m);
    let mut ys = Vec::with_capacity(m);
    for i in 0..m {
        let vds = vdsat * i as f64 / (m - 1) as f64;
        xs.push(vds);
        ys.push(sample(vds));
    }
    let tri = polyfit(&xs, &ys, 2)?;

    // Saturation fit on [vdsat, max(vdd, vdsat + 0.5)].
    let hi = tech.vdd.max(vdsat + 0.5);
    xs.clear();
    ys.clear();
    for i in 0..m {
        let vds = vdsat + (hi - vdsat) * i as f64 / (m - 1) as f64;
        xs.push(vds);
        ys.push(sample(vds));
    }
    let sat = polyfit(&xs, &ys, 1)?;

    // Re-express both polynomials around vds = 0.
    let c = tri.center();
    let (a0, a1, a2) = (tri.coeffs()[0], tri.coeffs()[1], tri.coeffs()[2]);
    let t0 = a0 - a1 * c + a2 * c * c;
    let t1 = a1 - 2.0 * a2 * c;
    let t2 = a2;
    let cs = sat.center();
    let (b0, b1) = (sat.coeffs()[0], sat.coeffs()[1]);
    Ok(FitPoint {
        t0,
        t1,
        t2,
        s0: b0 - b1 * cs,
        s1: b1,
        vth,
        vdsat,
    })
}

impl DeviceModel for TableModel {
    fn tech(&self) -> &Technology {
        &self.tech
    }

    fn iv_eval(&self, geom: &Geometry, tv: TermVoltage) -> Result<IvEval> {
        if let Some(e) = qwm_fault::check("device.table") {
            return Err(e);
        }
        qwm_obs::counter!("device.table.lookups").incr();
        // Attributes this lookup's wall time to the enclosing traced
        // arc; a single relaxed load when tracing is off.
        let _t = qwm_obs::trace::time_lookup();
        let wl = geom.w / geom.l;
        match self.polarity {
            Polarity::Nmos => Ok(self.eval_normalized(tv, wl)),
            Polarity::Pmos => {
                let vdd = self.tech.vdd;
                let m = TermVoltage::new(vdd - tv.input, vdd - tv.src, vdd - tv.snk);
                let e = self.eval_normalized(m, wl);
                Ok(IvEval {
                    i: -e.i,
                    d_input: e.d_input,
                    d_src: e.d_src,
                    d_snk: e.d_snk,
                })
            }
        }
    }

    /// SoA batch evaluation. Fault-injection checks run first, one per
    /// lane in lane order — the same count and stream order as N scalar
    /// `iv_eval` calls — then all lanes evaluate through the shared
    /// branch-free core. Bitwise-identical to the scalar path.
    fn iv_eval_batch(&self, lanes: &[(Geometry, TermVoltage)], out: &mut [IvEval]) -> Result<()> {
        let n = lanes.len().min(out.len());
        if n == 0 {
            return Ok(());
        }
        for _ in 0..n {
            if let Some(e) = qwm_fault::check("device.table") {
                return Err(e);
            }
        }
        qwm_obs::counter!("device.table.lookups").add(n as u64);
        let _t = qwm_obs::trace::time_lookup();
        let vdd = self.tech.vdd;
        for (lane, o) in lanes[..n].iter().zip(&mut out[..n]) {
            let (geom, tv) = (&lane.0, lane.1);
            let wl = geom.w / geom.l;
            *o = match self.polarity {
                Polarity::Nmos => self.eval_normalized(tv, wl),
                Polarity::Pmos => {
                    let m = TermVoltage::new(vdd - tv.input, vdd - tv.src, vdd - tv.snk);
                    let e = self.eval_normalized(m, wl);
                    IvEval {
                        i: -e.i,
                        d_input: e.d_input,
                        d_src: e.d_src,
                        d_snk: e.d_snk,
                    }
                }
            };
        }
        Ok(())
    }

    fn threshold(&self, tv: TermVoltage) -> f64 {
        // Interpolate the stored vth along the source axis.
        let vs_norm = match self.polarity {
            Polarity::Nmos => tv.src.min(tv.snk),
            Polarity::Pmos => self.tech.vdd - tv.src.max(tv.snk),
        };
        let n = self.n;
        let u = (vs_norm / self.step).clamp(0.0, (n - 1) as f64);
        let mut i = u.floor() as usize;
        if i >= n - 1 {
            i = n - 2;
        }
        let t = u - i as f64;
        // vth is independent of vg in this model; read column 0.
        let lo = self.points[i * n].vth;
        let hi = self.points[(i + 1) * n].vth;
        lo * (1.0 - t) + hi * t
    }

    fn turn_on_excess(&self, tv: TermVoltage) -> f64 {
        match self.polarity {
            Polarity::Nmos => tv.input - tv.src.min(tv.snk) - self.threshold(tv),
            Polarity::Pmos => tv.src.max(tv.snk) - tv.input - self.threshold(tv),
        }
    }

    fn vdsat(&self, tv: TermVoltage) -> f64 {
        self.turn_on_excess(tv).max(0.0)
    }

    fn src_cap(&self, geom: &Geometry, v: f64) -> f64 {
        caps::junction_cap(
            &self.tech,
            self.polarity,
            geom.src_area(&self.tech),
            geom.src_perim(&self.tech),
            v,
        ) + caps::channel_side_cap(&self.tech, geom)
    }

    fn snk_cap(&self, geom: &Geometry, v: f64) -> f64 {
        caps::junction_cap(
            &self.tech,
            self.polarity,
            geom.snk_area(&self.tech),
            geom.snk_perim(&self.tech),
            v,
        ) + caps::channel_side_cap(&self.tech, geom)
    }

    fn input_cap(&self, geom: &Geometry) -> f64 {
        caps::gate_cap(&self.tech, geom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::Mosfet;

    fn table(p: Polarity) -> TableModel {
        TableModel::with_defaults(Technology::cmosp35(), p).unwrap()
    }

    #[test]
    fn grid_size_matches_paper_pitch() {
        let t = table(Polarity::Nmos);
        // 0..=3.3 at 0.1 V: 34 points per axis.
        assert_eq!(t.grid_points(), 34 * 34);
        assert_eq!(t.step(), 0.1);
        assert_eq!(t.polarity(), Polarity::Nmos);
    }

    #[test]
    fn table_tracks_analytic_model_on_grid() {
        let tech = Technology::cmosp35();
        let t = table(Polarity::Nmos);
        let a = Mosfet::new(tech.clone(), Polarity::Nmos);
        let g = Geometry::new(1e-6, 0.35e-6);
        // On-grid (vs, vg) with various vd: fit error only (no interp).
        for &(vg, vs, vd) in &[
            (3.3, 0.0, 3.3),
            (3.3, 0.0, 0.5),
            (2.0, 1.0, 3.0),
            (1.5, 0.5, 1.0),
        ] {
            let tv = TermVoltage::new(vg, vd, vs);
            let it = t.iv(&g, tv).unwrap();
            let ia = a.iv(&g, tv).unwrap();
            let denom = ia.abs().max(1e-6);
            assert!(
                (it - ia).abs() / denom < 0.03,
                "({vg},{vs},{vd}): table {it} vs analytic {ia}"
            );
        }
    }

    #[test]
    fn table_interpolates_off_grid() {
        let tech = Technology::cmosp35();
        let t = table(Polarity::Nmos);
        let a = Mosfet::new(tech, Polarity::Nmos);
        let g = Geometry::new(2e-6, 0.35e-6);
        for &(vg, vs, vd) in &[(3.17, 0.07, 2.71), (2.55, 1.23, 2.9), (1.87, 0.33, 0.91)] {
            let tv = TermVoltage::new(vg, vd, vs);
            let it = t.iv(&g, tv).unwrap();
            let ia = a.iv(&g, tv).unwrap();
            let denom = ia.abs().max(1e-5);
            assert!(
                (it - ia).abs() / denom < 0.08,
                "({vg},{vs},{vd}): table {it} vs analytic {ia}"
            );
        }
    }

    #[test]
    fn cutoff_region_is_zero() {
        let t = table(Polarity::Nmos);
        let g = Geometry::new(1e-6, 0.35e-6);
        let i = t.iv(&g, TermVoltage::new(0.2, 3.3, 0.0)).unwrap();
        assert_eq!(i, 0.0);
    }

    #[test]
    fn antisymmetry_under_terminal_swap() {
        let t = table(Polarity::Nmos);
        let g = Geometry::new(1e-6, 0.35e-6);
        let a = t.iv(&g, TermVoltage::new(3.3, 2.2, 0.4)).unwrap();
        let b = t.iv(&g, TermVoltage::new(3.3, 0.4, 2.2)).unwrap();
        assert!((a + b).abs() < 1e-18);
    }

    #[test]
    fn pmos_table_matches_pmos_analytic() {
        let tech = Technology::cmosp35();
        let t = table(Polarity::Pmos);
        let a = Mosfet::new(tech, Polarity::Pmos);
        let g = Geometry::new(2e-6, 0.35e-6);
        for &(vg, vs, vd) in &[(0.0, 3.3, 0.0), (0.0, 3.3, 2.0), (1.0, 2.8, 0.7)] {
            let tv = TermVoltage::new(vg, vs, vd);
            let it = t.iv(&g, tv).unwrap();
            let ia = a.iv(&g, tv).unwrap();
            let denom = ia.abs().max(1e-5);
            assert!(
                (it - ia).abs() / denom < 0.08,
                "({vg},{vs},{vd}): {it} vs {ia}"
            );
        }
    }

    #[test]
    fn derivatives_match_finite_differences_of_table() {
        let t = table(Polarity::Nmos);
        let g = Geometry::new(1e-6, 0.35e-6);
        let h = 1e-6;
        // Inside one grid cell and safely in saturation for all four
        // corner fits, where the interpolant is smooth.
        let (vg, vs, vd) = (3.04, 0.04, 3.21);
        let f = |vg: f64, vs: f64, vd: f64| t.iv(&g, TermVoltage::new(vg, vd, vs)).unwrap();
        let e = t.iv_eval(&g, TermVoltage::new(vg, vd, vs)).unwrap();
        let fd_g = (f(vg + h, vs, vd) - f(vg - h, vs, vd)) / (2.0 * h);
        let fd_d = (f(vg, vs, vd + h) - f(vg, vs, vd - h)) / (2.0 * h);
        let fd_s = (f(vg, vs + h, vd) - f(vg, vs - h, vd)) / (2.0 * h);
        let tol = 1e-4 * e.i.abs().max(1e-9); // derivatives are A/V scale
        assert!((e.d_input - fd_g).abs() < tol, "{} vs {fd_g}", e.d_input);
        assert!((e.d_src - fd_d).abs() < tol, "{} vs {fd_d}", e.d_src);
        assert!((e.d_snk - fd_s).abs() < tol, "{} vs {fd_s}", e.d_snk);
    }

    #[test]
    fn fit_report_residuals_are_small() {
        let t = table(Polarity::Nmos);
        let r = t.fit_report(0.0, 3.3).unwrap();
        assert!(!r.samples.is_empty());
        let peak = r.samples.iter().map(|s| s.1.abs()).fold(0.0_f64, f64::max);
        assert!(
            r.rms_error < 0.02 * peak,
            "rms {} vs peak {peak}",
            r.rms_error
        );
        assert!(r.max_error < 0.05 * peak);
        assert!(r.fit.vdsat > 0.0);
    }

    #[test]
    fn threshold_interpolates_body_effect() {
        let tech = Technology::cmosp35();
        let t = table(Polarity::Nmos);
        let tv0 = TermVoltage::new(3.3, 3.3, 0.0);
        assert!((t.threshold(tv0) - tech.vt0_n).abs() < 1e-9);
        let tv1 = TermVoltage::new(3.3, 3.3, 1.05);
        let want = tech.vt_body(tech.vt0_n, 1.05);
        assert!((t.threshold(tv1) - want).abs() < 0.01);
        assert!(t.turn_on_excess(tv1) > 0.0);
    }

    /// Property test: the batched SoA kernel is bitwise-identical to N
    /// scalar evaluations, across both polarities, both terminal
    /// orderings, cutoff/triode/saturation regions and off-grid points.
    #[test]
    fn forward_batch_bitwise_matches_scalar() {
        use qwm_num::rng::Rng64;
        let vdd = Technology::cmosp35().vdd;
        let mut rng = Rng64::seed_from_u64(0x0bad_cafe_f00d_0001);
        for polarity in [Polarity::Nmos, Polarity::Pmos] {
            let t = table(polarity);
            // Raw normalized-frame queries against forward_batch.
            let queries: Vec<(f64, f64, f64)> = (0..257)
                .map(|_| {
                    let vg = rng.unit() * (vdd + 0.4) - 0.2;
                    let vs = rng.unit() * (vdd + 0.4) - 0.2;
                    let vd = vs + rng.unit() * (vdd - vs.min(vdd));
                    (vg, vs, vd)
                })
                .collect();
            let mut out = vec![(0.0, 0.0, 0.0, 0.0); queries.len()];
            t.forward_batch(&queries, &mut out);
            for (q, o) in queries.iter().zip(&out) {
                let want = t.forward_core(q.0, q.1, q.2);
                assert_eq!(o.0.to_bits(), want.0.to_bits(), "i at {q:?}");
                assert_eq!(o.1.to_bits(), want.1.to_bits(), "d_vg at {q:?}");
                assert_eq!(o.2.to_bits(), want.2.to_bits(), "d_vs at {q:?}");
                assert_eq!(o.3.to_bits(), want.3.to_bits(), "d_vds at {q:?}");
            }

            // Device-level lanes against the scalar trait path.
            let lanes: Vec<(Geometry, TermVoltage)> = (0..129)
                .map(|k| {
                    let g = Geometry::new(0.4e-6 + rng.unit() * 3e-6, 0.35e-6);
                    let a = rng.unit() * (vdd + 0.4) - 0.2;
                    let b = rng.unit() * (vdd + 0.4) - 0.2;
                    let vg = rng.unit() * (vdd + 0.4) - 0.2;
                    // Exercise both src >= snk and src < snk orderings.
                    let tv = if k % 2 == 0 {
                        TermVoltage::new(vg, a.max(b), a.min(b))
                    } else {
                        TermVoltage::new(vg, a.min(b), a.max(b))
                    };
                    (g, tv)
                })
                .collect();
            let mut batch = vec![IvEval::default(); lanes.len()];
            t.iv_eval_batch(&lanes, &mut batch).unwrap();
            for (lane, got) in lanes.iter().zip(&batch) {
                let want = t.iv_eval(&lane.0, lane.1).unwrap();
                assert_eq!(got.i.to_bits(), want.i.to_bits());
                assert_eq!(got.d_input.to_bits(), want.d_input.to_bits());
                assert_eq!(got.d_src.to_bits(), want.d_src.to_bits());
                assert_eq!(got.d_snk.to_bits(), want.d_snk.to_bits());
            }
        }
    }

    /// The branch-free select form agrees bitwise with the branched
    /// piecewise eval on every stored grid fit, including cutoff points.
    #[test]
    fn eval_select_bitwise_matches_eval() {
        let t = table(Polarity::Nmos);
        for p in &t.points {
            for k in 0..=12 {
                let vds = 3.3 * k as f64 / 12.0;
                let (a, b) = p.eval(vds);
                let (c, d) = p.eval_select(vds);
                assert_eq!(a.to_bits(), c.to_bits());
                assert_eq!(b.to_bits(), d.to_bits());
            }
        }
    }

    #[test]
    fn rejects_bad_grid_step() {
        assert!(TableModel::characterize(Technology::cmosp35(), Polarity::Nmos, 0.0).is_err());
        assert!(TableModel::characterize(Technology::cmosp35(), Polarity::Nmos, 10.0).is_err());
    }
}
