//! Analytic MOSFET model (Level-1+ square law with body effect and
//! channel-length modulation).
//!
//! This plays the role BSIM3 played in the paper: the *reference*
//! physics. The SPICE-class baseline engine integrates it directly; the
//! tabular model of [`crate::table`] is characterized from it, mirroring
//! the paper's HSPICE-sweep → 7-parameter-fit pipeline (§V-A).
//!
//! The model is evaluated at **node level**: terminal roles (conduction
//! source vs. drain) are assigned from the instantaneous voltages, so
//! pass transistors and stack transistors conduct correctly in either
//! direction. PMOS devices are handled by mirroring every voltage through
//! Vdd, which turns them into NMOS-shaped problems with their own
//! `(k'ₚ, Vt0ₚ)`.

use crate::caps;
use crate::model::{DeviceModel, Geometry, IvEval, Polarity, TermVoltage};
use crate::tech::Technology;
use qwm_num::Result;

/// Per-unit-(W/L) channel current and its partials in the conduction
/// frame (`vds ≥ 0`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct CoreEval {
    pub i: f64,
    pub d_vgs: f64,
    pub d_vds: f64,
    pub d_vsb: f64,
}

/// Square-law channel current per unit W/L for `vds ≥ 0`.
///
/// Continuous and C¹ across both the cutoff and saturation boundaries
/// (the triode/saturation expressions and their `∂/∂vds` agree at
/// `vds = vov`), which keeps Newton iterations well behaved.
pub(crate) fn ids_core(
    tech: &Technology,
    kp: f64,
    vt0: f64,
    vgs: f64,
    vds: f64,
    vsb: f64,
) -> CoreEval {
    debug_assert!(vds >= 0.0, "ids_core requires the conduction frame");
    let vt = tech.vt_body(vt0, vsb);
    let dvt = tech.vt_body_deriv(vsb);
    let vov = vgs - vt;
    if vov <= 0.0 {
        return CoreEval::default();
    }
    let clm = 1.0 + tech.lambda * vds;
    if vds < vov {
        // Triode region.
        let f = vov * vds - 0.5 * vds * vds;
        let d_vgs = kp * vds * clm;
        CoreEval {
            i: kp * f * clm,
            d_vgs,
            d_vds: kp * ((vov - vds) * clm + f * tech.lambda),
            d_vsb: -dvt * d_vgs,
        }
    } else {
        // Saturation region.
        let d_vgs = kp * vov * clm;
        CoreEval {
            i: 0.5 * kp * vov * vov * clm,
            d_vgs,
            d_vds: 0.5 * kp * vov * vov * tech.lambda,
            d_vsb: -dvt * d_vgs,
        }
    }
}

/// Maps a conduction-frame [`CoreEval`] to node-level current and
/// derivatives for an N-channel edge whose higher terminal is `src`.
fn nmos_eval(tech: &Technology, kp: f64, vt0: f64, tv: TermVoltage, wl: f64) -> IvEval {
    if tv.src >= tv.snk {
        let e = ids_core(tech, kp, vt0, tv.input - tv.snk, tv.src - tv.snk, tv.snk);
        IvEval {
            i: wl * e.i,
            d_input: wl * e.d_vgs,
            d_src: wl * e.d_vds,
            d_snk: wl * (-e.d_vgs - e.d_vds + e.d_vsb),
        }
    } else {
        let e = ids_core(tech, kp, vt0, tv.input - tv.src, tv.snk - tv.src, tv.src);
        IvEval {
            i: -wl * e.i,
            d_input: -wl * e.d_vgs,
            d_snk: -wl * e.d_vds,
            d_src: -wl * (-e.d_vgs - e.d_vds + e.d_vsb),
        }
    }
}

/// The analytic transistor model for one polarity.
#[derive(Debug, Clone)]
pub struct Mosfet {
    tech: Technology,
    polarity: Polarity,
}

impl Mosfet {
    /// Builds the model for `polarity` under `tech`.
    ///
    /// ```
    /// use qwm_device::mosfet::Mosfet;
    /// use qwm_device::model::{DeviceModel, Geometry, Polarity, TermVoltage};
    /// use qwm_device::tech::Technology;
    ///
    /// # fn main() -> Result<(), qwm_num::NumError> {
    /// let n = Mosfet::new(Technology::cmosp35(), Polarity::Nmos);
    /// let geom = Geometry::new(1.0e-6, 0.35e-6);
    /// // Gate high, drain at Vdd, source at ground: saturation current.
    /// let i = n.iv(&geom, TermVoltage::new(3.3, 3.3, 0.0))?;
    /// assert!(i > 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(tech: Technology, polarity: Polarity) -> Self {
        Mosfet { tech, polarity }
    }

    /// Device polarity.
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    fn params(&self) -> (f64, f64) {
        match self.polarity {
            Polarity::Nmos => (self.tech.kp_n, self.tech.vt0_n),
            Polarity::Pmos => (self.tech.kp_p, self.tech.vt0_p),
        }
    }
}

impl DeviceModel for Mosfet {
    fn tech(&self) -> &Technology {
        &self.tech
    }

    fn iv_eval(&self, geom: &Geometry, tv: TermVoltage) -> Result<IvEval> {
        let (kp, vt0) = self.params();
        let wl = geom.w / geom.l;
        match self.polarity {
            Polarity::Nmos => Ok(nmos_eval(&self.tech, kp, vt0, tv, wl)),
            Polarity::Pmos => {
                // Mirror every voltage through Vdd; the mirrored problem
                // is NMOS-shaped. Current negates; node derivatives carry
                // over unchanged (two sign flips cancel).
                let vdd = self.tech.vdd;
                let m = TermVoltage::new(vdd - tv.input, vdd - tv.src, vdd - tv.snk);
                let e = nmos_eval(&self.tech, kp, vt0, m, wl);
                Ok(IvEval {
                    i: -e.i,
                    d_input: e.d_input,
                    d_src: e.d_src,
                    d_snk: e.d_snk,
                })
            }
        }
    }

    fn threshold(&self, tv: TermVoltage) -> f64 {
        match self.polarity {
            Polarity::Nmos => {
                let vs = tv.src.min(tv.snk);
                self.tech.vt_body(self.tech.vt0_n, vs)
            }
            Polarity::Pmos => {
                let vs = tv.src.max(tv.snk);
                self.tech.vt_body(self.tech.vt0_p, self.tech.vdd - vs)
            }
        }
    }

    fn turn_on_excess(&self, tv: TermVoltage) -> f64 {
        match self.polarity {
            Polarity::Nmos => {
                let vs = tv.src.min(tv.snk);
                tv.input - vs - self.threshold(tv)
            }
            Polarity::Pmos => {
                let vs = tv.src.max(tv.snk);
                vs - tv.input - self.threshold(tv)
            }
        }
    }

    fn vdsat(&self, tv: TermVoltage) -> f64 {
        self.turn_on_excess(tv).max(0.0)
    }

    fn src_cap(&self, geom: &Geometry, v: f64) -> f64 {
        caps::junction_cap(
            &self.tech,
            self.polarity,
            geom.src_area(&self.tech),
            geom.src_perim(&self.tech),
            v,
        ) + caps::channel_side_cap(&self.tech, geom)
    }

    fn snk_cap(&self, geom: &Geometry, v: f64) -> f64 {
        caps::junction_cap(
            &self.tech,
            self.polarity,
            geom.snk_area(&self.tech),
            geom.snk_perim(&self.tech),
            v,
        ) + caps::channel_side_cap(&self.tech, geom)
    }

    fn input_cap(&self, geom: &Geometry) -> f64 {
        caps::gate_cap(&self.tech, geom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> Mosfet {
        Mosfet::new(Technology::cmosp35(), Polarity::Nmos)
    }
    fn pmos() -> Mosfet {
        Mosfet::new(Technology::cmosp35(), Polarity::Pmos)
    }
    fn geom() -> Geometry {
        Geometry::new(1.0e-6, 0.35e-6)
    }

    #[test]
    fn cutoff_carries_no_current() {
        let tv = TermVoltage::new(0.0, 3.3, 0.0);
        assert_eq!(nmos().iv(&geom(), tv).unwrap(), 0.0);
        // PMOS with gate at Vdd is off.
        let tv = TermVoltage::new(3.3, 3.3, 0.0);
        assert_eq!(pmos().iv(&geom(), tv).unwrap(), 0.0);
    }

    #[test]
    fn nmos_saturation_and_triode_magnitudes() {
        let n = nmos();
        let sat = n.iv(&geom(), TermVoltage::new(3.3, 3.3, 0.0)).unwrap();
        let tri = n.iv(&geom(), TermVoltage::new(3.3, 0.1, 0.0)).unwrap();
        assert!(sat > tri, "saturation current exceeds shallow triode");
        assert!(sat > 1e-4 && sat < 1e-2, "~mA-class for W/L≈2.9: {sat}");
    }

    #[test]
    fn current_is_antisymmetric_in_terminal_swap() {
        // Swapping src/snk must exactly negate the current (pass gates).
        let n = nmos();
        let a = n.iv(&geom(), TermVoltage::new(3.3, 2.0, 0.5)).unwrap();
        let b = n.iv(&geom(), TermVoltage::new(3.3, 0.5, 2.0)).unwrap();
        assert!((a + b).abs() < 1e-18);
        assert!(a > 0.0);
    }

    #[test]
    fn pmos_sources_current_from_high_terminal() {
        // Gate low, src at Vdd, snk at 0: current flows src → snk.
        let p = pmos();
        let i = p.iv(&geom(), TermVoltage::new(0.0, 3.3, 0.0)).unwrap();
        assert!(i > 0.0);
        // Mirror symmetry with NMOS magnitudes at matched overdrives,
        // scaled by the mobility ratio.
        let t = Technology::cmosp35();
        let n = Mosfet::new(
            Technology {
                vt0_n: t.vt0_p,
                ..t.clone()
            },
            Polarity::Nmos,
        );
        let i_n = n.iv(&geom(), TermVoltage::new(3.3, 3.3, 0.0)).unwrap();
        let ratio = i / i_n;
        assert!((ratio - t.kp_p / t.kp_n).abs() < 1e-6 * ratio.abs().max(1.0));
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-7;
        for model in [nmos(), pmos()] {
            for &(vg, vs, vk) in &[
                (3.3, 2.0, 0.5),
                (3.3, 0.5, 2.0),
                (1.5, 3.0, 2.8),
                (0.3, 2.0, 0.0), // NMOS off, PMOS on
                (2.0, 1.0, 1.0), // zero vds
            ] {
                let g = geom();
                let f =
                    |vg: f64, vs: f64, vk: f64| model.iv(&g, TermVoltage::new(vg, vs, vk)).unwrap();
                let e = model.iv_eval(&g, TermVoltage::new(vg, vs, vk)).unwrap();
                let fd_g = (f(vg + h, vs, vk) - f(vg - h, vs, vk)) / (2.0 * h);
                let fd_s = (f(vg, vs + h, vk) - f(vg, vs - h, vk)) / (2.0 * h);
                let fd_k = (f(vg, vs, vk + h) - f(vg, vs, vk - h)) / (2.0 * h);
                let tol = 1e-5 * (e.i.abs().max(1e-6)) / 1e-6;
                assert!(
                    (e.d_input - fd_g).abs() < tol,
                    "d_input at ({vg},{vs},{vk})"
                );
                assert!((e.d_src - fd_s).abs() < tol, "d_src at ({vg},{vs},{vk})");
                assert!((e.d_snk - fd_k).abs() < tol, "d_snk at ({vg},{vs},{vk})");
            }
        }
    }

    #[test]
    fn continuity_across_saturation_boundary() {
        let n = nmos();
        let g = geom();
        // vov at vsb=0 with vgs = 2.0: vov = 2.0 - vt0 = 1.45.
        let vov = 2.0 - Technology::cmosp35().vt0_n;
        let below = n.iv(&g, TermVoltage::new(2.0, vov - 1e-9, 0.0)).unwrap();
        let above = n.iv(&g, TermVoltage::new(2.0, vov + 1e-9, 0.0)).unwrap();
        assert!((below - above).abs() < 1e-9 * below.abs());
    }

    #[test]
    fn body_effect_reduces_current() {
        let n = nmos();
        let g = geom();
        // Same vgs/vds but lifted source: body effect raises Vt.
        let low = n.iv(&g, TermVoltage::new(3.3, 1.0, 0.0)).unwrap();
        let lifted = n.iv(&g, TermVoltage::new(3.3 + 1.0, 2.0, 1.0)).unwrap();
        assert!(lifted < low);
    }

    #[test]
    fn threshold_and_excess() {
        let n = nmos();
        let t = Technology::cmosp35();
        let tv = TermVoltage::new(3.3, 3.3, 0.0);
        assert_eq!(n.threshold(tv), t.vt0_n);
        assert!((n.turn_on_excess(tv) - (3.3 - t.vt0_n)).abs() < 1e-12);
        assert_eq!(n.vdsat(tv), n.turn_on_excess(tv));

        // Lifted source engages the body effect.
        let tv2 = TermVoltage::new(3.3, 3.3, 1.0);
        assert!(n.threshold(tv2) > t.vt0_n);

        let p = pmos();
        let tvp = TermVoltage::new(0.0, 3.3, 0.0);
        assert_eq!(p.threshold(tvp), t.vt0_p);
        assert!((p.turn_on_excess(tvp) - (3.3 - t.vt0_p)).abs() < 1e-12);
        // PMOS off at gate = Vdd.
        assert!(p.turn_on_excess(TermVoltage::new(3.3, 3.3, 0.0)) < 0.0);
    }

    #[test]
    fn current_scales_with_geometry() {
        let n = nmos();
        let tv = TermVoltage::new(3.3, 3.3, 0.0);
        let i1 = n.iv(&Geometry::new(1.0e-6, 0.35e-6), tv).unwrap();
        let i2 = n.iv(&Geometry::new(2.0e-6, 0.35e-6), tv).unwrap();
        let i3 = n.iv(&Geometry::new(1.0e-6, 0.70e-6), tv).unwrap();
        assert!((i2 - 2.0 * i1).abs() < 1e-12);
        assert!((i3 - 0.5 * i1).abs() < 1e-12);
    }

    #[test]
    fn caps_are_positive_and_voltage_dependent() {
        let n = nmos();
        let g = geom();
        let c0 = n.src_cap(&g, 0.0);
        let c3 = n.src_cap(&g, 3.3);
        assert!(c0 > 0.0);
        assert!(c3 < c0, "junction cap shrinks with reverse bias");
        assert!(n.input_cap(&g) > 0.0);
    }
}
