//! PVT corners and Monte Carlo variation samples as a first-class axis.
//!
//! A [`Corner`] is a named perturbation of the base [`Technology`]:
//! threshold shifts (`dvt_*`, volts, added to `vt0_*`) and
//! transconductance scale factors (`kp_factor_*`, multiplying `kp_*`) —
//! exactly the knobs [`Technology::with_variation`] exposes. The three
//! classic process corners `ss`/`tt`/`ff` (plus the skewed `sf`/`fs`)
//! are built in; Monte Carlo samples come from the seeded in-repo PRNG
//! via Box–Muller, with the same sigmas the `variation` bench uses, so
//! a corner list is a *pure function of its spec string* — the property
//! the batched STA determinism suite pins.
//!
//! The nominal `tt` corner is the identity perturbation: building its
//! models from the base technology is bitwise-indistinguishable from
//! not having a corner axis at all (`x + 0.0` and `x * 1.0` are exact),
//! which is what keeps single-corner `tt` reports byte-identical to the
//! pre-corner golden snapshots.

use crate::model::ModelSet;
use crate::tech::Technology;
use crate::{analytic_models, tabular_models, tabular_models_cached};
use qwm_num::rng::Rng64;
use qwm_num::stats::normal_from_uniforms;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// One-sigma threshold-voltage variation \[V\] for Monte Carlo samples
/// (matches the `variation` bench).
pub const SIGMA_VT: f64 = 0.030;
/// One-sigma relative transconductance variation for Monte Carlo
/// samples (matches the `variation` bench).
pub const SIGMA_KP: f64 = 0.05;
/// Largest Monte Carlo expansion a single `mc:<seed>:<n>` item may
/// request (keeps a typo from exploding a batched run).
pub const MAX_MC_SAMPLES: usize = 64;

/// A named process corner: a perturbation of the base technology.
#[derive(Debug, Clone, PartialEq)]
pub struct Corner {
    name: String,
    /// NMOS threshold shift \[V\].
    pub dvt_n: f64,
    /// PMOS threshold shift \[V\] (same sign convention as `vt0_p`).
    pub dvt_p: f64,
    /// NMOS transconductance scale factor (> 0).
    pub kp_factor_n: f64,
    /// PMOS transconductance scale factor (> 0).
    pub kp_factor_p: f64,
}

impl Corner {
    /// The typical/typical (nominal) corner — the identity perturbation.
    pub fn tt() -> Self {
        Corner {
            name: "tt".to_string(),
            dvt_n: 0.0,
            dvt_p: 0.0,
            kp_factor_n: 1.0,
            kp_factor_p: 1.0,
        }
    }

    /// Slow/slow: both polarities at +2σ threshold, −2σ drive.
    pub fn ss() -> Self {
        Corner {
            name: "ss".to_string(),
            dvt_n: 2.0 * SIGMA_VT,
            dvt_p: 2.0 * SIGMA_VT,
            kp_factor_n: 1.0 - 2.0 * SIGMA_KP,
            kp_factor_p: 1.0 - 2.0 * SIGMA_KP,
        }
    }

    /// Fast/fast: both polarities at −2σ threshold, +2σ drive.
    pub fn ff() -> Self {
        Corner {
            name: "ff".to_string(),
            dvt_n: -2.0 * SIGMA_VT,
            dvt_p: -2.0 * SIGMA_VT,
            kp_factor_n: 1.0 + 2.0 * SIGMA_KP,
            kp_factor_p: 1.0 + 2.0 * SIGMA_KP,
        }
    }

    /// Skewed slow-NMOS / fast-PMOS.
    pub fn sf() -> Self {
        Corner {
            name: "sf".to_string(),
            dvt_n: 2.0 * SIGMA_VT,
            dvt_p: -2.0 * SIGMA_VT,
            kp_factor_n: 1.0 - 2.0 * SIGMA_KP,
            kp_factor_p: 1.0 + 2.0 * SIGMA_KP,
        }
    }

    /// Skewed fast-NMOS / slow-PMOS.
    pub fn fs() -> Self {
        Corner {
            name: "fs".to_string(),
            dvt_n: -2.0 * SIGMA_VT,
            dvt_p: 2.0 * SIGMA_VT,
            kp_factor_n: 1.0 + 2.0 * SIGMA_KP,
            kp_factor_p: 1.0 - 2.0 * SIGMA_KP,
        }
    }

    /// `n` seeded Monte Carlo variation samples named `mc<seed>_<i>`.
    ///
    /// The draw order per sample is fixed (`dvt_n`, `dvt_p`,
    /// `kp_factor_n`, `kp_factor_p`, two uniforms each through
    /// Box–Muller), so a given `(seed, n)` always expands to the same
    /// corners — anywhere, at any thread count.
    pub fn mc_samples(seed: u64, n: usize) -> Vec<Corner> {
        let mut rng = Rng64::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let mut normal = || normal_from_uniforms(rng.unit(), rng.unit());
                Corner {
                    name: format!("mc{seed}_{i}"),
                    dvt_n: SIGMA_VT * normal(),
                    dvt_p: SIGMA_VT * normal(),
                    kp_factor_n: (1.0 + SIGMA_KP * normal()).max(0.5),
                    kp_factor_p: (1.0 + SIGMA_KP * normal()).max(0.5),
                }
            })
            .collect()
    }

    /// The corner's name (`ss`, `tt`, `ff`, `sf`, `fs`, `mc<seed>_<i>`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The corner's name as a `'static` string (interned process-wide),
    /// usable in cache keys, fault scopes and trace records.
    pub fn interned_name(&self) -> &'static str {
        intern(&self.name)
    }

    /// Whether this is the identity perturbation (the nominal corner).
    pub fn is_nominal(&self) -> bool {
        self.dvt_n == 0.0 && self.dvt_p == 0.0 && self.kp_factor_n == 1.0 && self.kp_factor_p == 1.0
    }

    /// The perturbed technology for this corner. The identity
    /// perturbation returns bitwise the base technology.
    pub fn technology(&self, base: &Technology) -> Technology {
        base.with_variation(self.dvt_n, self.dvt_p, self.kp_factor_n, self.kp_factor_p)
    }
}

/// Interns a string, returning a `'static` reference stable for the
/// process lifetime. Corner name sets are tiny and bounded by the spec
/// strings a process ever parses, so the leak is deliberate: it is what
/// lets corner names ride in `Copy` cache keys and fault scopes.
pub fn intern(name: &str) -> &'static str {
    static POOL: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(Vec::new()));
    let mut pool = pool.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&s) = pool.iter().find(|&&s| s == name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    pool.push(leaked);
    leaked
}

/// Parses a comma-separated corner list: named corners (`ss`, `tt`,
/// `ff`, `sf`, `fs`) and Monte Carlo expansions (`mc:<seed>:<n>`, which
/// contributes `n` seeded samples). Duplicate names are rejected — a
/// batched run keys its books by corner name.
///
/// # Errors
///
/// Returns a one-line message naming the offending item, suitable for a
/// CLI diagnostic or a structured 4xx protocol error.
pub fn parse_corner_list(spec: &str) -> Result<Vec<Corner>, String> {
    let mut corners: Vec<Corner> = Vec::new();
    let push = |c: Corner, corners: &mut Vec<Corner>| -> Result<(), String> {
        if corners.iter().any(|e| e.name == c.name) {
            return Err(format!("duplicate corner {:?}", c.name));
        }
        corners.push(c);
        Ok(())
    };
    for item in spec.split(',') {
        let item = item.trim();
        match item {
            "" => return Err("empty corner name in list".to_string()),
            "tt" => push(Corner::tt(), &mut corners)?,
            "ss" => push(Corner::ss(), &mut corners)?,
            "ff" => push(Corner::ff(), &mut corners)?,
            "sf" => push(Corner::sf(), &mut corners)?,
            "fs" => push(Corner::fs(), &mut corners)?,
            mc if mc.starts_with("mc:") => {
                let mut parts = mc.splitn(3, ':');
                let _ = parts.next();
                let seed = parts
                    .next()
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| format!("malformed Monte Carlo spec {mc:?}: missing seed"))?;
                let n = parts
                    .next()
                    .ok_or_else(|| format!("malformed Monte Carlo spec {mc:?}: missing count"))?;
                let seed: u64 = seed
                    .parse()
                    .map_err(|e| format!("malformed Monte Carlo seed in {mc:?}: {e}"))?;
                let n: usize = n
                    .parse()
                    .map_err(|e| format!("malformed Monte Carlo count in {mc:?}: {e}"))?;
                if n == 0 || n > MAX_MC_SAMPLES {
                    return Err(format!(
                        "Monte Carlo count {n} out of range 1..={MAX_MC_SAMPLES} in {mc:?}"
                    ));
                }
                for c in Corner::mc_samples(seed, n) {
                    push(c, &mut corners)?;
                }
            }
            other => {
                return Err(format!(
                    "unknown corner {other:?} (known: ss, tt, ff, sf, fs, mc:<seed>:<n>)"
                ))
            }
        }
    }
    if corners.is_empty() {
        return Err("empty corner list".to_string());
    }
    Ok(corners)
}

/// A corner list with one characterized [`ModelSet`] per corner — the
/// per-corner device tables a batched STA run evaluates against.
pub struct CornerModels {
    corners: Vec<Corner>,
    sets: Vec<ModelSet>,
}

impl CornerModels {
    /// Builds analytic model sets for each corner.
    pub fn analytic(base: &Technology, corners: &[Corner]) -> Self {
        CornerModels {
            corners: corners.to_vec(),
            sets: corners
                .iter()
                .map(|c| analytic_models(&c.technology(base)))
                .collect(),
        }
    }

    /// Characterizes tabular model sets for each corner (the nominal
    /// corner characterizes the base technology bit-for-bit).
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn tabular(base: &Technology, corners: &[Corner]) -> qwm_num::Result<Self> {
        let sets = corners
            .iter()
            .map(|c| tabular_models(&c.technology(base)))
            .collect::<qwm_num::Result<Vec<_>>>()?;
        Ok(CornerModels {
            corners: corners.to_vec(),
            sets,
        })
    }

    /// Number of corners.
    pub fn len(&self) -> usize {
        self.corners.len()
    }

    /// Whether the list is empty (it never is when built from
    /// [`parse_corner_list`]).
    pub fn is_empty(&self) -> bool {
        self.corners.is_empty()
    }

    /// The corners, in list order.
    pub fn corners(&self) -> &[Corner] {
        &self.corners
    }

    /// The model set of corner `i`.
    pub fn set(&self, i: usize) -> &ModelSet {
        &self.sets[i]
    }

    /// `(corner, models)` pairs in list order.
    pub fn iter(&self) -> impl Iterator<Item = (&Corner, &ModelSet)> {
        self.corners.iter().zip(self.sets.iter())
    }
}

/// Process-wide registry of leaked per-corner model sets, for callers
/// that need `'static` model references (the serving layer's sessions
/// borrow their engine's models for the process lifetime). Keyed by the
/// corner's full parameter tuple, so two same-named corners from
/// different spec grammars could never alias. Nominal corners are
/// served from `base` untouched.
///
/// # Errors
///
/// Propagates characterization failures as a message.
pub fn static_tabular_models(
    base: &'static ModelSet,
    base_tech: &Technology,
    corner: &Corner,
) -> Result<&'static ModelSet, String> {
    if corner.is_nominal() {
        return Ok(base);
    }
    type Key = (String, u64, u64, u64, u64);
    static REG: OnceLock<Mutex<HashMap<Key, &'static ModelSet>>> = OnceLock::new();
    let key = (
        corner.name().to_string(),
        corner.dvt_n.to_bits(),
        corner.dvt_p.to_bits(),
        corner.kp_factor_n.to_bits(),
        corner.kp_factor_p.to_bits(),
    );
    let reg = REG.get_or_init(|| Mutex::new(HashMap::new()));
    let mut reg = reg.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&set) = reg.get(&key) {
        return Ok(set);
    }
    let set = tabular_models_cached(&corner.technology(base_tech)).map_err(|e| e.to_string())?;
    let leaked: &'static ModelSet = Box::leak(Box::new(set));
    reg.insert(key, leaked);
    Ok(leaked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_corners_parse_and_dedup() {
        let c = parse_corner_list("ss,tt,ff").unwrap();
        assert_eq!(
            c.iter().map(|c| c.name()).collect::<Vec<_>>(),
            ["ss", "tt", "ff"]
        );
        assert!(parse_corner_list("ss,ss")
            .unwrap_err()
            .contains("duplicate"));
        assert!(parse_corner_list("").unwrap_err().contains("empty"));
        assert!(parse_corner_list("ss,,ff").unwrap_err().contains("empty"));
        assert!(parse_corner_list("zz")
            .unwrap_err()
            .contains("unknown corner"));
    }

    #[test]
    fn mc_expansion_is_deterministic_and_bounded() {
        let a = parse_corner_list("mc:42:3").unwrap();
        let b = parse_corner_list("mc:42:3").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].name(), "mc42_0");
        assert!(a
            .iter()
            .all(|c| c.kp_factor_n >= 0.5 && c.kp_factor_p >= 0.5));
        // A different seed gives different samples.
        let c = parse_corner_list("mc:43:3").unwrap();
        assert_ne!(a, c);
        assert!(parse_corner_list("mc:42:0")
            .unwrap_err()
            .contains("out of range"));
        assert!(parse_corner_list("mc:42:9999")
            .unwrap_err()
            .contains("out of range"));
        assert!(parse_corner_list("mc:x:2").unwrap_err().contains("seed"));
        assert!(parse_corner_list("mc:42").unwrap_err().contains("count"));
    }

    #[test]
    fn tt_is_the_identity_perturbation() {
        let base = Technology::cmosp35();
        let tt = Corner::tt().technology(&base);
        assert!(Corner::tt().is_nominal());
        assert_eq!(tt.vt0_n.to_bits(), base.vt0_n.to_bits());
        assert_eq!(tt.vt0_p.to_bits(), base.vt0_p.to_bits());
        assert_eq!(tt.kp_n.to_bits(), base.kp_n.to_bits());
        assert_eq!(tt.kp_p.to_bits(), base.kp_p.to_bits());
        // ss really is slower: higher threshold, lower drive.
        let ss = Corner::ss().technology(&base);
        assert!(ss.vt0_n > base.vt0_n && ss.kp_n < base.kp_n);
        let ff = Corner::ff().technology(&base);
        assert!(ff.vt0_n < base.vt0_n && ff.kp_n > base.kp_n);
    }

    #[test]
    fn interning_is_stable() {
        let a = intern("some-corner");
        let b = intern("some-corner");
        assert!(std::ptr::eq(a, b));
        assert_eq!(Corner::ss().interned_name(), "ss");
    }
}
