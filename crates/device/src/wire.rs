//! Wire segments as devices.
//!
//! The paper's circuit model (Definition 1) treats wire segments as a
//! third edge kind alongside NMOS and PMOS. As a *device*, a wire is a
//! linear resistor with half its distributed capacitance lumped at each
//! terminal (a π model); the heavier machinery — distributed RC ladders,
//! moments, AWE macromodels for the decoder-tree experiment — lives in
//! the `qwm-interconnect` crate and produces equivalent R/C values that
//! plug into this same edge shape.

use crate::caps;
use crate::model::{DeviceModel, Geometry, IvEval, TermVoltage};
use crate::tech::Technology;
use qwm_num::Result;

/// Linear wire-segment model: `J = (V_src − V_snk) / R` with `R` from the
/// sheet resistance and the segment's `w × l` geometry.
#[derive(Debug, Clone)]
pub struct WireModel {
    tech: Technology,
}

impl WireModel {
    /// Builds the wire model for `tech`.
    ///
    /// ```
    /// use qwm_device::wire::WireModel;
    /// use qwm_device::model::{DeviceModel, Geometry, TermVoltage};
    /// use qwm_device::tech::Technology;
    ///
    /// # fn main() -> Result<(), qwm_num::NumError> {
    /// let w = WireModel::new(Technology::cmosp35());
    /// let g = Geometry::new(0.6e-6, 100e-6);
    /// let i = w.iv(&g, TermVoltage::new(0.0, 1.0, 0.0))?;
    /// assert!(i > 0.0); // current flows downhill
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(tech: Technology) -> Self {
        WireModel { tech }
    }

    /// Segment resistance \[Ω\].
    pub fn resistance(&self, geom: &Geometry) -> f64 {
        caps::wire_res(&self.tech, geom.w, geom.l)
    }

    /// Total segment capacitance \[F\].
    pub fn capacitance(&self, geom: &Geometry) -> f64 {
        caps::wire_cap(&self.tech, geom.w, geom.l)
    }
}

impl DeviceModel for WireModel {
    fn tech(&self) -> &Technology {
        &self.tech
    }

    fn iv_eval(&self, geom: &Geometry, tv: TermVoltage) -> Result<IvEval> {
        let g = 1.0 / self.resistance(geom);
        Ok(IvEval {
            i: g * (tv.src - tv.snk),
            d_input: 0.0,
            d_src: g,
            d_snk: -g,
        })
    }

    fn threshold(&self, _tv: TermVoltage) -> f64 {
        0.0
    }

    /// Wires are always conducting; they never generate a QWM critical
    /// point (modeled as infinite overdrive).
    fn turn_on_excess(&self, _tv: TermVoltage) -> f64 {
        f64::INFINITY
    }

    fn vdsat(&self, _tv: TermVoltage) -> f64 {
        0.0
    }

    fn src_cap(&self, geom: &Geometry, _v: f64) -> f64 {
        0.5 * self.capacitance(geom)
    }

    fn snk_cap(&self, geom: &Geometry, _v: f64) -> f64 {
        0.5 * self.capacitance(geom)
    }

    fn input_cap(&self, _geom: &Geometry) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> WireModel {
        WireModel::new(Technology::cmosp35())
    }

    #[test]
    fn ohms_law_and_derivatives() {
        let w = model();
        let g = Geometry::new(0.6e-6, 60e-6); // 100 squares
        let r = w.resistance(&g);
        assert!((r - 100.0 * Technology::cmosp35().wire_r_sq).abs() < 1e-9);
        let e = w.iv_eval(&g, TermVoltage::new(0.0, 2.0, 0.5)).unwrap();
        assert!((e.i - 1.5 / r).abs() < 1e-12);
        assert!((e.d_src - 1.0 / r).abs() < 1e-12);
        assert!((e.d_snk + 1.0 / r).abs() < 1e-12);
        assert_eq!(e.d_input, 0.0);
    }

    #[test]
    fn pi_caps_split_evenly() {
        let w = model();
        let g = Geometry::new(0.6e-6, 60e-6);
        let total = w.capacitance(&g);
        assert!((w.src_cap(&g, 0.0) + w.snk_cap(&g, 3.3) - total).abs() < 1e-20);
        assert_eq!(w.input_cap(&g), 0.0);
    }

    #[test]
    fn never_a_critical_point() {
        let w = model();
        let tv = TermVoltage::new(0.0, 0.0, 0.0);
        assert!(w.turn_on_excess(tv).is_infinite());
        assert_eq!(w.threshold(tv), 0.0);
        assert_eq!(w.vdsat(tv), 0.0);
    }
}
