//! Parasitic capacitance models.
//!
//! The paper's device model (Definition 2) contributes voltage-dependent
//! parasitic capacitance to the source and sink nodes of every edge and a
//! gate capacitance to every input — "the parasitic capacitances depend
//! not only on the device geometry, but also the terminal voltages"
//! (§III-B). We implement the standard junction model
//! `Cj(V) = Cj0 / (1 + V/φB)^m` with separate area and sidewall terms,
//! plus overlap (Miller) and channel capacitances.

use crate::model::{Geometry, Polarity};
use crate::tech::Technology;

/// Reverse-biased junction capacitance at node voltage `v`.
///
/// The reverse bias is `v` for NMOS junctions (body at ground) and
/// `Vdd − v` for PMOS junctions (body at Vdd); forward bias is clamped to
/// zero so the model stays defined for slight overshoots.
///
/// ```
/// use qwm_device::caps::junction_cap;
/// use qwm_device::model::Polarity;
/// use qwm_device::tech::Technology;
///
/// let t = Technology::cmosp35();
/// let c0 = junction_cap(&t, Polarity::Nmos, 1e-12, 4e-6, 0.0);
/// let c3 = junction_cap(&t, Polarity::Nmos, 1e-12, 4e-6, 3.3);
/// assert!(c3 < c0);
/// ```
pub fn junction_cap(tech: &Technology, polarity: Polarity, area: f64, perim: f64, v: f64) -> f64 {
    let bias = match polarity {
        Polarity::Nmos => v,
        Polarity::Pmos => tech.vdd - v,
    }
    .max(0.0);
    let area_term = tech.cj * area / (1.0 + bias / tech.pb).powf(tech.mj);
    let sw_term = tech.cjsw * perim / (1.0 + bias / tech.pb).powf(tech.mjsw);
    area_term + sw_term
}

/// Gate capacitance presented to the input net: full channel oxide plus
/// both overlaps.
pub fn gate_cap(tech: &Technology, geom: &Geometry) -> f64 {
    tech.cox * geom.w * geom.l + 2.0 * tech.c_overlap * geom.w
}

/// Channel + overlap capacitance contributed to *one* diffusion terminal:
/// half the channel oxide plus that terminal's overlap. Covers the Miller
/// coupling path in lumped-to-ground form, the approximation both engines
/// share.
pub fn channel_side_cap(tech: &Technology, geom: &Geometry) -> f64 {
    0.5 * tech.cox * geom.w * geom.l + tech.c_overlap * geom.w
}

/// Total wire capacitance for a `w × l` wire segment: parallel-plate plus
/// fringe on both edges.
pub fn wire_cap(tech: &Technology, w: f64, l: f64) -> f64 {
    tech.wire_c_area * w * l + 2.0 * tech.wire_c_fringe * l
}

/// Wire resistance for a `w × l` segment from sheet resistance.
pub fn wire_res(tech: &Technology, w: f64, l: f64) -> f64 {
    tech.wire_r_sq * l / w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn junction_cap_monotone_in_reverse_bias() {
        let t = Technology::cmosp35();
        let mut prev = f64::INFINITY;
        for i in 0..=33 {
            let v = i as f64 * 0.1;
            let c = junction_cap(&t, Polarity::Nmos, 1e-12, 4e-6, v);
            assert!(c > 0.0);
            assert!(c < prev, "cap must shrink with bias at v={v}");
            prev = c;
        }
    }

    #[test]
    fn pmos_junction_mirrors_nmos() {
        let t = Technology::cmosp35();
        let n = junction_cap(&t, Polarity::Nmos, 1e-12, 4e-6, 1.0);
        let p = junction_cap(&t, Polarity::Pmos, 1e-12, 4e-6, t.vdd - 1.0);
        assert!((n - p).abs() < 1e-20);
    }

    #[test]
    fn forward_bias_clamps() {
        let t = Technology::cmosp35();
        let at_zero = junction_cap(&t, Polarity::Nmos, 1e-12, 4e-6, 0.0);
        let neg = junction_cap(&t, Polarity::Nmos, 1e-12, 4e-6, -0.4);
        assert_eq!(at_zero, neg);
    }

    #[test]
    fn gate_cap_dominated_by_oxide_for_large_devices() {
        let t = Technology::cmosp35();
        let small = gate_cap(&t, &Geometry::new(0.5e-6, 0.35e-6));
        let big = gate_cap(&t, &Geometry::new(5.0e-6, 0.35e-6));
        assert!(big > 9.0 * small / 1.5, "scales roughly with width");
        // Femtofarad scale for minimum devices.
        assert!(small > 1e-16 && small < 1e-14, "{small}");
    }

    #[test]
    fn side_caps_sum_below_gate_cap_plus_overlap() {
        let t = Technology::cmosp35();
        let g = Geometry::new(1e-6, 0.35e-6);
        let two_sides = 2.0 * channel_side_cap(&t, &g);
        assert!((two_sides - gate_cap(&t, &g)).abs() < 1e-20);
    }

    #[test]
    fn wire_parasitics_scale_with_length() {
        let t = Technology::cmosp35();
        let c1 = wire_cap(&t, 0.6e-6, 10e-6);
        let c2 = wire_cap(&t, 0.6e-6, 20e-6);
        assert!((c2 - 2.0 * c1).abs() < 1e-20);
        let r1 = wire_res(&t, 0.6e-6, 10e-6);
        let r2 = wire_res(&t, 0.6e-6, 20e-6);
        assert!((r2 - 2.0 * r1).abs() < 1e-12);
        assert!(r1 > 0.0);
    }
}
