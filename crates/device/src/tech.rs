//! Technology parameters.
//!
//! The paper characterizes devices for "the CMOSP35 technology"
//! (a 0.35 µm, 3.3 V CMOS process) from HSPICE/BSIM3 sweeps. We carry an
//! equivalent parameter set for the analytic Level-1+ model in
//! [`crate::mosfet`]: square-law conduction with body effect and
//! channel-length modulation, plus the parasitic-capacitance constants of
//! [`crate::caps`]. The absolute values are textbook 0.35 µm numbers
//! (Rabaey, *Digital Integrated Circuits*), which is all the shape-level
//! reproduction needs — both engines consume the *same* technology, so
//! QWM-vs-SPICE comparisons are self-consistent.

/// Process and supply constants shared by every device instance.
///
/// All quantities are in SI units (volts, amps, farads, meters) except
/// where noted.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Supply voltage `Vdd` \[V\].
    pub vdd: f64,
    /// NMOS transconductance parameter `k'ₙ = µₙ·Cox` \[A/V²\].
    pub kp_n: f64,
    /// PMOS transconductance parameter `k'ₚ = µₚ·Cox` \[A/V²\].
    pub kp_p: f64,
    /// NMOS zero-bias threshold voltage \[V\] (positive).
    pub vt0_n: f64,
    /// PMOS zero-bias threshold voltage \[V\] (positive magnitude).
    pub vt0_p: f64,
    /// Body-effect coefficient γ \[V^½\] (same magnitude both polarities).
    pub gamma: f64,
    /// Surface potential `2·φ_F` \[V\].
    pub phi: f64,
    /// Channel-length modulation λ \[1/V\].
    pub lambda: f64,
    /// Gate-oxide capacitance per area `Cox` \[F/m²\].
    pub cox: f64,
    /// Gate-drain/source overlap capacitance per width \[F/m\].
    pub c_overlap: f64,
    /// Zero-bias junction area capacitance `Cj0` \[F/m²\].
    pub cj: f64,
    /// Zero-bias junction sidewall capacitance `Cjsw0` \[F/m\].
    pub cjsw: f64,
    /// Junction built-in potential `φ_B` \[V\].
    pub pb: f64,
    /// Junction area grading coefficient `mj`.
    pub mj: f64,
    /// Junction sidewall grading coefficient `mjsw`.
    pub mjsw: f64,
    /// Minimum drawn channel length \[m\] (0.35 µm).
    pub l_min: f64,
    /// Minimum drawn width \[m\].
    pub w_min: f64,
    /// Default source/drain diffusion extent used to derive junction area
    /// when the netlist gives no explicit area \[m\].
    pub l_diff: f64,
    /// Wire sheet resistance \[Ω/□\] (metal-2-class).
    pub wire_r_sq: f64,
    /// Wire capacitance per area \[F/m²\].
    pub wire_c_area: f64,
    /// Wire fringe capacitance per edge length \[F/m\].
    pub wire_c_fringe: f64,
}

impl Technology {
    /// The CMOSP35-class 3.3 V technology used throughout the paper's
    /// experiments.
    ///
    /// ```
    /// let tech = qwm_device::tech::Technology::cmosp35();
    /// assert_eq!(tech.vdd, 3.3);
    /// ```
    pub fn cmosp35() -> Self {
        Technology {
            vdd: 3.3,
            kp_n: 190e-6,
            kp_p: 62e-6,
            vt0_n: 0.55,
            vt0_p: 0.60,
            gamma: 0.45,
            phi: 0.70,
            lambda: 0.06,
            cox: 4.6e-3,
            c_overlap: 0.3e-9,
            cj: 0.9e-3,
            cjsw: 0.28e-9,
            pb: 0.9,
            mj: 0.5,
            mjsw: 0.44,
            l_min: 0.35e-6,
            w_min: 0.5e-6,
            l_diff: 0.8e-6,
            wire_r_sq: 0.075,
            wire_c_area: 30e-6,
            wire_c_fringe: 40e-12,
        }
    }

    /// A scaled 0.18 µm / 1.8 V technology (textbook constants), used to
    /// check that nothing in the toolkit is hard-wired to the paper's
    /// CMOSP35 node.
    pub fn cmos018() -> Self {
        Technology {
            vdd: 1.8,
            kp_n: 340e-6,
            kp_p: 110e-6,
            vt0_n: 0.42,
            vt0_p: 0.45,
            gamma: 0.40,
            phi: 0.75,
            lambda: 0.10,
            cox: 8.6e-3,
            c_overlap: 0.36e-9,
            cj: 1.0e-3,
            cjsw: 0.20e-9,
            pb: 0.8,
            mj: 0.5,
            mjsw: 0.33,
            l_min: 0.18e-6,
            w_min: 0.27e-6,
            l_diff: 0.48e-6,
            wire_r_sq: 0.08,
            wire_c_area: 38e-6,
            wire_c_fringe: 50e-12,
        }
    }

    /// A process-variation corner/sample of this technology: threshold
    /// voltages shifted by `dvt_n`/`dvt_p` \[V\] and transconductances
    /// scaled by `kp_factor_n`/`kp_factor_p` — the knobs statistical
    /// timing (Monte-Carlo or corner-based) sweeps.
    ///
    /// # Panics
    ///
    /// Panics if a scale factor is non-positive.
    pub fn with_variation(
        &self,
        dvt_n: f64,
        dvt_p: f64,
        kp_factor_n: f64,
        kp_factor_p: f64,
    ) -> Technology {
        assert!(
            kp_factor_n > 0.0 && kp_factor_p > 0.0,
            "kp scale factors must be positive"
        );
        Technology {
            vt0_n: self.vt0_n + dvt_n,
            vt0_p: self.vt0_p + dvt_p,
            kp_n: self.kp_n * kp_factor_n,
            kp_p: self.kp_p * kp_factor_p,
            ..self.clone()
        }
    }

    /// Effective threshold voltage including body effect for a
    /// source-to-body reverse bias `vsb ≥ 0` (clamped at 0 below).
    ///
    /// `Vt(vsb) = Vt0 + γ·(√(2φF + vsb) − √(2φF))`, the relation the
    /// paper's `threshold` model member encodes (Definition 2).
    pub fn vt_body(&self, vt0: f64, vsb: f64) -> f64 {
        let vsb = vsb.max(0.0);
        vt0 + self.gamma * ((self.phi + vsb).sqrt() - self.phi.sqrt())
    }

    /// Derivative `∂Vt/∂vsb` (zero for `vsb < 0` after clamping).
    pub fn vt_body_deriv(&self, vsb: f64) -> f64 {
        if vsb <= 0.0 {
            0.0
        } else {
            0.5 * self.gamma / (self.phi + vsb).sqrt()
        }
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::cmosp35()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_cmosp35() {
        assert_eq!(Technology::default(), Technology::cmosp35());
    }

    #[test]
    fn body_effect_raises_threshold() {
        let t = Technology::cmosp35();
        let vt0 = t.vt_body(t.vt0_n, 0.0);
        let vt1 = t.vt_body(t.vt0_n, 1.0);
        let vt2 = t.vt_body(t.vt0_n, 2.0);
        assert_eq!(vt0, t.vt0_n);
        assert!(vt1 > vt0);
        assert!(vt2 > vt1);
        // Concave in vsb.
        assert!(vt2 - vt1 < vt1 - vt0);
    }

    #[test]
    fn body_effect_clamps_negative_bias() {
        let t = Technology::cmosp35();
        assert_eq!(t.vt_body(t.vt0_n, -0.5), t.vt0_n);
        assert_eq!(t.vt_body_deriv(-0.5), 0.0);
    }

    #[test]
    fn vt_derivative_matches_finite_difference() {
        let t = Technology::cmosp35();
        let h = 1e-7;
        for &vsb in &[0.1, 0.5, 1.5, 3.0] {
            let fd = (t.vt_body(t.vt0_n, vsb + h) - t.vt_body(t.vt0_n, vsb - h)) / (2.0 * h);
            assert!((t.vt_body_deriv(vsb) - fd).abs() < 1e-6);
        }
    }

    #[test]
    fn variation_shifts_the_right_knobs() {
        let t = Technology::cmosp35();
        let v = t.with_variation(0.03, -0.02, 1.1, 0.9);
        assert!((v.vt0_n - (t.vt0_n + 0.03)).abs() < 1e-12);
        assert!((v.vt0_p - (t.vt0_p - 0.02)).abs() < 1e-12);
        assert!((v.kp_n - 1.1 * t.kp_n).abs() < 1e-12);
        assert!((v.kp_p - 0.9 * t.kp_p).abs() < 1e-12);
        assert_eq!(v.vdd, t.vdd, "supply untouched");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn variation_rejects_nonpositive_scale() {
        Technology::cmosp35().with_variation(0.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn cmos018_scales_sanely_from_cmosp35() {
        let a = Technology::cmosp35();
        let b = Technology::cmos018();
        assert!(b.vdd < a.vdd);
        assert!(b.l_min < a.l_min);
        assert!(b.kp_n > a.kp_n, "thinner oxide, higher k'");
        assert!(b.vt0_n < a.vt0_n);
        assert!(b.kp_n > b.kp_p);
    }

    #[test]
    fn sane_magnitudes() {
        let t = Technology::cmosp35();
        assert!(t.kp_n > t.kp_p, "electron mobility exceeds hole mobility");
        assert!(t.vt0_n < t.vdd / 4.0);
        assert!(t.l_min < t.w_min);
    }
}
