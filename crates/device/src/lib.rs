//! Device models for the QWM transistor-level timing toolkit.
//!
//! This crate supplies the physics every engine in the workspace shares:
//!
//! * [`tech`] — CMOSP35-class technology constants (3.3 V, 0.35 µm);
//! * [`model`] — the `DeviceModel` trait (paper Definition 2): I/V,
//!   threshold/saturation voltages and per-terminal parasitic caps;
//! * [`mosfet`] — the analytic Level-1+ MOSFET (body effect +
//!   channel-length modulation), the reference physics standing in for
//!   the paper's BSIM3;
//! * [`table`] — the compressed tabular model of §V-A: a (Vs, Vg) grid of
//!   7-parameter fits (quadratic triode, linear saturation) with bilinear
//!   interpolation — what QWM actually queries;
//! * [`caps`] — junction/overlap/gate/wire capacitance models;
//! * [`wire`] — wire segments as linear devices (π-lumped).
//!
//! # Example
//!
//! Characterize a tabular NMOS model and compare it against the analytic
//! reference:
//!
//! ```
//! use qwm_device::model::{DeviceModel, Geometry, Polarity, TermVoltage};
//! use qwm_device::mosfet::Mosfet;
//! use qwm_device::table::TableModel;
//! use qwm_device::tech::Technology;
//!
//! # fn main() -> Result<(), qwm_num::NumError> {
//! let tech = Technology::cmosp35();
//! let analytic = Mosfet::new(tech.clone(), Polarity::Nmos);
//! let table = TableModel::characterize(tech, Polarity::Nmos, 0.1)?;
//!
//! let geom = Geometry::new(1.0e-6, 0.35e-6);
//! let tv = TermVoltage::new(3.3, 3.3, 0.0); // gate high, full Vds
//! let i_ref = analytic.iv(&geom, tv)?;
//! let i_tab = table.iv(&geom, tv)?;
//! assert!((i_tab - i_ref).abs() < 0.05 * i_ref);
//! # Ok(())
//! # }
//! ```

pub mod caps;
pub mod corner;
pub mod model;
pub mod mosfet;
pub mod table;
pub mod tech;
pub mod wire;

pub use corner::{parse_corner_list, Corner, CornerModels};
pub use model::{DeviceModel, Geometry, IvEval, ModelSet, Polarity, TermVoltage};
pub use mosfet::Mosfet;
pub use table::{cached_table, cached_tables, install_table, TableModel};
pub use tech::Technology;
pub use wire::WireModel;

/// Builds the default analytic model set (reference physics — what the
/// SPICE baseline integrates).
pub fn analytic_models(tech: &Technology) -> ModelSet {
    ModelSet::new(
        Box::new(Mosfet::new(tech.clone(), Polarity::Nmos)),
        Box::new(Mosfet::new(tech.clone(), Polarity::Pmos)),
    )
}

/// Builds the default tabular model set at the paper's 0.1 V grid pitch
/// (what the QWM engine queries).
///
/// # Errors
///
/// Propagates characterization failures.
pub fn tabular_models(tech: &Technology) -> qwm_num::Result<ModelSet> {
    Ok(ModelSet::new(
        Box::new(TableModel::with_defaults(tech.clone(), Polarity::Nmos)?),
        Box::new(TableModel::with_defaults(tech.clone(), Polarity::Pmos)?),
    ))
}

/// Like [`tabular_models`], but consults the process-wide table cache
/// (see [`table::cached_table`]) before sweeping and installs any fresh
/// characterization into it. A table restored from a `qwm-store` record
/// via [`install_table`] short-circuits the sweep entirely — this is
/// what makes a store-backed server boot without re-characterizing.
///
/// # Errors
///
/// Propagates characterization failures.
pub fn tabular_models_cached(tech: &Technology) -> qwm_num::Result<ModelSet> {
    let build = |polarity: Polarity| -> qwm_num::Result<TableModel> {
        if let Some(t) = table::cached_table(tech, polarity, 0.1) {
            return Ok(t);
        }
        let t = TableModel::with_defaults(tech.clone(), polarity)?;
        table::install_table(t.clone());
        Ok(t)
    };
    Ok(ModelSet::new(
        Box::new(build(Polarity::Nmos)?),
        Box::new(build(Polarity::Pmos)?),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_sets_build() {
        let tech = Technology::cmosp35();
        let a = analytic_models(&tech);
        let t = tabular_models(&tech).unwrap();
        assert_eq!(a.tech().vdd, 3.3);
        assert_eq!(t.tech().vdd, 3.3);
        let g = Geometry::new(1e-6, 0.35e-6);
        let tv = TermVoltage::new(3.3, 3.3, 0.0);
        let ia = a.for_polarity(Polarity::Nmos).iv(&g, tv).unwrap();
        let it = t.for_polarity(Polarity::Nmos).iv(&g, tv).unwrap();
        assert!(ia > 0.0 && it > 0.0);
    }
}
