//! DAG levelization and atomic in-degree countdown.
//!
//! A [`Levelizer`] turns a successor-list DAG into *dependency levels*:
//! level 0 holds the nodes with no predecessors, and every other node
//! sits one past its deepest predecessor (its longest-path depth). The
//! levels are what a level-synchronous scheduler would barrier on; the
//! runners in [`crate::dag`] deliberately do **not** barrier — they use
//! the companion [`Countdown`] to release each node the instant its
//! last predecessor completes — but the level structure still drives
//! width statistics and cycle rejection.

use crate::ExecError;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Dependency levels over a successor-list DAG.
#[derive(Debug, Clone)]
pub struct Levelizer {
    succs: Vec<Vec<usize>>,
    indeg: Vec<usize>,
    levels: Vec<Vec<usize>>,
}

impl Levelizer {
    /// Levelizes the DAG given as successor lists (`succs[u]` holds the
    /// nodes depending on `u`). Duplicate edges are coalesced.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Cycle`] when the graph is not a DAG and
    /// [`ExecError::BadEdge`] when a successor index is out of range.
    pub fn from_succs(mut succs: Vec<Vec<usize>>) -> Result<Self, ExecError> {
        let n = succs.len();
        for list in &mut succs {
            list.sort_unstable();
            list.dedup();
            if let Some(&bad) = list.iter().find(|&&s| s >= n) {
                return Err(ExecError::BadEdge {
                    node: bad,
                    total: n,
                });
            }
        }
        let mut indeg = vec![0usize; n];
        for list in &succs {
            for &s in list {
                indeg[s] += 1;
            }
        }
        // Wave-synchronous Kahn: the wave a node is released in equals
        // one past its deepest predecessor's wave, i.e. its level.
        let mut remaining = indeg.clone();
        let mut frontier: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut levels = Vec::new();
        let mut seen = 0usize;
        while !frontier.is_empty() {
            seen += frontier.len();
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in &succs[u] {
                    remaining[v] -= 1;
                    if remaining[v] == 0 {
                        next.push(v);
                    }
                }
            }
            levels.push(std::mem::take(&mut frontier));
            frontier = next;
        }
        if seen != n {
            return Err(ExecError::Cycle {
                completed: seen,
                total: n,
            });
        }
        Ok(Levelizer {
            succs,
            indeg,
            levels,
        })
    }

    /// Levelizes the sub-DAG induced by `subset` over a full graph's
    /// successor lists, renumbering to local indices `0..subset.len()`
    /// in `subset` order. Edges with either endpoint outside the subset
    /// are dropped — the caller owns the contract that such boundary
    /// state is already committed (the incremental-STA dirty cone).
    /// `local_of(i)` maps a local index back to `subset[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::BadEdge`] on an out-of-range or duplicate
    /// subset entry and [`ExecError::Cycle`] if the induced sub-graph
    /// is cyclic (impossible when the full graph is a DAG).
    pub fn from_subgraph(succs: &[Vec<usize>], subset: &[usize]) -> Result<Self, ExecError> {
        let n = succs.len();
        let mut local = vec![usize::MAX; n];
        for (li, &g) in subset.iter().enumerate() {
            if g >= n || local[g] != usize::MAX {
                return Err(ExecError::BadEdge { node: g, total: n });
            }
            local[g] = li;
        }
        let sub_succs: Vec<Vec<usize>> = subset
            .iter()
            .map(|&g| {
                succs[g]
                    .iter()
                    .filter_map(|&t| (local[t] != usize::MAX).then_some(local[t]))
                    .collect()
            })
            .collect();
        Self::from_succs(sub_succs)
    }

    /// Levelizes an edge-list DAG over `n` nodes.
    ///
    /// # Errors
    ///
    /// Same contract as [`Levelizer::from_succs`].
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, ExecError> {
        let mut succs = vec![Vec::new(); n];
        for (u, v) in edges {
            if u >= n {
                return Err(ExecError::BadEdge { node: u, total: n });
            }
            succs[u].push(v);
        }
        Self::from_succs(succs)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// The dependency levels, shallowest first; each level lists its
    /// nodes in ascending index order for level 0 and release order
    /// otherwise (both deterministic).
    pub fn levels(&self) -> &[Vec<usize>] {
        &self.levels
    }

    /// Widest level (1 for a pure chain; the whole graph when every
    /// node is independent). Zero only for an empty graph.
    pub fn max_width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// In-degree (unique predecessors) per node.
    pub fn indegree(&self) -> &[usize] {
        &self.indeg
    }

    /// Deduplicated successor lists.
    pub fn succs(&self) -> &[Vec<usize>] {
        &self.succs
    }

    /// Records the level-width distribution into the observability
    /// layer (`exec.dag.level_width`). No-op when collection is off.
    pub fn record_obs(&self) {
        if !qwm_obs::enabled() {
            return;
        }
        for level in &self.levels {
            qwm_obs::histogram!("exec.dag.level_width", qwm_obs::SIZE_BOUNDS)
                .record(level.len() as u64);
        }
    }
}

/// Atomic in-degree countdown: each node starts at its in-degree and
/// [`Countdown::arrive`] is called once per completed predecessor; the
/// call that takes the count to zero — exactly one, even under
/// concurrent arrivals — reports the node as released.
#[derive(Debug)]
pub struct Countdown {
    remaining: Vec<AtomicUsize>,
}

impl Countdown {
    /// Builds the countdown from per-node in-degrees.
    pub fn new(indeg: &[usize]) -> Self {
        Countdown {
            remaining: indeg.iter().map(|&d| AtomicUsize::new(d)).collect(),
        }
    }

    /// Signals that one predecessor of `node` completed. Returns `true`
    /// iff this arrival released the node (its count just hit zero).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on more arrivals than the in-degree.
    pub fn arrive(&self, node: usize) -> bool {
        let prev = self.remaining[node].fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "node {node} over-released");
        prev == 1
    }

    /// Whether `node` has no outstanding predecessors.
    pub fn is_released(&self, node: usize) -> bool {
        self.remaining[node].load(Ordering::Acquire) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_levels() {
        let l = Levelizer::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(l.levels(), &[vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(l.max_width(), 1);
        assert_eq!(l.indegree(), &[0, 1, 1, 1]);
    }

    #[test]
    fn diamond_join_sits_past_deepest_pred() {
        // 0 -> {1, 2} -> 3, plus a long arm 0 -> 4 -> 2.
        let l = Levelizer::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 3), (0, 4), (4, 2)]).unwrap();
        assert_eq!(l.levels()[0], vec![0]);
        // 2 waits for 4, so it levels below 1.
        assert_eq!(l.levels()[1], vec![1, 4]);
        assert_eq!(l.levels()[2], vec![2]);
        assert_eq!(l.levels()[3], vec![3]);
    }

    #[test]
    fn duplicate_edges_coalesce() {
        let l = Levelizer::from_edges(2, [(0, 1), (0, 1), (0, 1)]).unwrap();
        assert_eq!(l.indegree(), &[0, 1]);
        assert_eq!(l.succs()[0], vec![1]);
    }

    #[test]
    fn cycle_rejected() {
        let err = Levelizer::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Cycle {
                completed: 0,
                total: 3
            }
        ));
        // Self-loop is the degenerate cycle.
        assert!(Levelizer::from_edges(1, [(0, 0)]).is_err());
    }

    #[test]
    fn out_of_range_edge_rejected() {
        assert!(matches!(
            Levelizer::from_edges(2, [(0, 5)]),
            Err(ExecError::BadEdge { node: 5, total: 2 })
        ));
        assert!(Levelizer::from_edges(2, [(7, 0)]).is_err());
    }

    #[test]
    fn subgraph_renumbers_and_drops_boundary_edges() {
        // Chain 0 -> 1 -> 2 -> 3; take the suffix {2, 3}.
        let full = vec![vec![1], vec![2], vec![3], vec![]];
        let l = Levelizer::from_subgraph(&full, &[2, 3]).unwrap();
        assert_eq!(l.node_count(), 2);
        // Local 0 is global 2; the 1->2 boundary edge is gone, so it
        // sits at level 0 with local 1 (global 3) depending on it.
        assert_eq!(l.levels(), &[vec![0], vec![1]]);
        assert_eq!(l.succs()[0], vec![1]);
        // Duplicate or out-of-range subset entries are rejected.
        assert!(Levelizer::from_subgraph(&full, &[2, 2]).is_err());
        assert!(Levelizer::from_subgraph(&full, &[9]).is_err());
        // Empty subset is a valid empty DAG.
        let e = Levelizer::from_subgraph(&full, &[]).unwrap();
        assert_eq!(e.node_count(), 0);
    }

    #[test]
    fn empty_graph() {
        let l = Levelizer::from_succs(Vec::new()).unwrap();
        assert_eq!(l.node_count(), 0);
        assert_eq!(l.max_width(), 0);
        assert!(l.levels().is_empty());
    }
}
