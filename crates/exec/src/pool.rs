//! A persistent `std::thread` work-stealing pool for `'static` tasks.
//!
//! The design is the simple shared-injector scheme: submitters push
//! boxed jobs into one global injector; each worker keeps a private
//! deque, refilling it in small batches from the injector and — when
//! both are empty — stealing the oldest job from a sibling's deque.
//! LIFO pops on the owner side keep caches warm; FIFO steals take the
//! coldest work.
//!
//! Panicking jobs are contained with `catch_unwind`: the worker
//! survives, the pending count still drains (no hangs), and the panic
//! surfaces as an [`ExecError::TaskPanicked`] from [`ThreadPool::wait`].

use crate::ExecError;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// How many jobs a worker moves from the injector to its own deque per
/// refill. Small enough to keep work spread, large enough to amortize
/// the injector lock.
const REFILL_BATCH: usize = 8;

struct PoolState {
    /// Jobs submitted but not yet finished (queued or running).
    pending: usize,
    shutdown: bool,
}

struct PoolShared {
    injector: Mutex<VecDeque<Job>>,
    locals: Vec<Mutex<VecDeque<Job>>>,
    state: Mutex<PoolState>,
    /// Wakes idle workers when work arrives or shutdown begins.
    work_cv: Condvar,
    /// Wakes `wait()` callers when the pool drains.
    idle_cv: Condvar,
    /// Panic messages captured from jobs, submission-order agnostic.
    panics: Mutex<Vec<String>>,
}

/// A fixed-size work-stealing thread pool for `'static` jobs.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        Self::new_with_init(threads, |_| {})
    }

    /// Spawns `threads` workers (clamped to at least one), running
    /// `init(worker_index)` on each worker thread before it starts
    /// taking jobs. Used to pre-warm per-thread state (e.g. the QWM
    /// evaluation workspace) so a worker's first job pays no one-time
    /// setup cost.
    pub fn new_with_init(threads: usize, init: impl Fn(usize) + Send + Sync + 'static) -> Self {
        let threads = threads.max(1);
        let init = Arc::new(init);
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            state: Mutex::new(PoolState {
                pending: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            panics: Mutex::new(Vec::new()),
        });
        let workers = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let init = Arc::clone(&init);
                std::thread::Builder::new()
                    .name(format!("qwm-exec-{w}"))
                    .spawn(move || {
                        init(w);
                        drop(init);
                        worker_loop(&shared, w)
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job. Never blocks on job execution.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        {
            let mut state = self.shared.state.lock().expect("pool state");
            state.pending += 1;
        }
        {
            let mut inj = self.shared.injector.lock().expect("pool injector");
            inj.push_back(Box::new(job));
            qwm_obs::counter!("exec.pool.submitted").incr();
        }
        self.shared.work_cv.notify_one();
    }

    /// Jobs submitted but not yet finished.
    pub fn pending(&self) -> usize {
        self.shared.state.lock().expect("pool state").pending
    }

    /// Blocks until every submitted job has finished.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::TaskPanicked`] when any job panicked since
    /// the last `wait`; the queue still fully drains first, so a panic
    /// never turns into a hang.
    pub fn wait(&self) -> Result<(), ExecError> {
        let mut state = self.shared.state.lock().expect("pool state");
        while state.pending > 0 {
            state = self.shared.idle_cv.wait(state).expect("pool state");
        }
        drop(state);
        let mut panics = self.shared.panics.lock().expect("pool panics");
        if panics.is_empty() {
            Ok(())
        } else {
            let count = panics.len();
            let first = panics.remove(0);
            panics.clear();
            Err(ExecError::TaskPanicked { count, first })
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state");
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn pop_job(shared: &PoolShared, me: usize) -> Option<Job> {
    // Own deque first (LIFO: warmest work).
    if let Some(job) = shared.locals[me].lock().expect("pool local").pop_back() {
        return Some(job);
    }
    // Refill a batch from the shared injector.
    {
        let mut inj = shared.injector.lock().expect("pool injector");
        if !inj.is_empty() {
            let take = (inj.len() / 2).clamp(1, REFILL_BATCH);
            let mut local = shared.locals[me].lock().expect("pool local");
            for _ in 0..take.saturating_sub(1) {
                if let Some(j) = inj.pop_front() {
                    local.push_back(j);
                }
            }
            qwm_obs::histogram!("exec.pool.queue_depth", qwm_obs::SIZE_BOUNDS)
                .record(local.len() as u64);
            drop(local);
            if let Some(job) = inj.pop_front() {
                return Some(job);
            }
        }
    }
    // Steal the oldest job from a sibling (FIFO side).
    let n = shared.locals.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        if let Some(job) = shared.locals[victim]
            .lock()
            .expect("pool local")
            .pop_front()
        {
            qwm_obs::counter!("exec.pool.steals").incr();
            return Some(job);
        }
    }
    None
}

fn worker_loop(shared: &PoolShared, me: usize) {
    loop {
        if let Some(job) = pop_job(shared, me) {
            // There may be more queued than this worker can chew:
            // give a sleeping sibling a chance to pick some up.
            shared.work_cv.notify_one();
            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                shared
                    .panics
                    .lock()
                    .expect("pool panics")
                    .push(format!("pool job panicked on worker {me}"));
                qwm_obs::counter!("exec.pool.panics").incr();
            }
            let mut state = shared.state.lock().expect("pool state");
            state.pending -= 1;
            if state.pending == 0 {
                shared.idle_cv.notify_all();
            }
            continue;
        }
        let state = shared.state.lock().expect("pool state");
        if state.shutdown {
            return;
        }
        // Re-check under the lock via timeout: a job may have landed
        // between the failed pop and this wait.
        let _unused = shared
            .work_cv
            .wait_timeout(state, Duration::from_millis(1))
            .expect("pool state");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_jobs_and_waits() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.worker_count(), 4);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn init_runs_once_per_worker_before_jobs() {
        let inits = Arc::new(Mutex::new(Vec::new()));
        let i = Arc::clone(&inits);
        let pool = ThreadPool::new_with_init(3, move |w| {
            i.lock().unwrap().push(w);
        });
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        pool.execute(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        // Workers run `init` at thread start-up, which races this
        // check for workers that never received a job — poll briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let mut seen = inits.lock().unwrap().clone();
            seen.sort_unstable();
            if seen == vec![0, 1, 2] {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "init calls never completed: {seen:?}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.worker_count(), 1);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        pool.execute(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
