//! `qwm-exec` — zero-dependency parallel execution for the QWM engines.
//!
//! The workspace runs fully offline with no external crates, so this
//! crate supplies the scheduling substrate `rayon`/`crossbeam` would
//! otherwise provide, scoped to exactly what levelized static timing
//! needs:
//!
//! * [`ThreadPool`] — a persistent work-stealing pool (shared injector
//!   plus per-worker deques) for `'static` jobs, with panic containment.
//! * [`Levelizer`] / [`Countdown`] — DAG levelization with cycle
//!   rejection, and the atomic in-degree countdown that releases each
//!   node exactly once when its last predecessor finishes.
//! * [`run_dag`] / [`try_parallel_map`] — scoped runners over borrowed
//!   data: stages dispatch the instant their fanin resolves (no level
//!   barriers), and map results come back position-stable.
//! * [`ShardedMap`] — a lock-sharded memo map for value-stable caches.
//!
//! **Determinism contract.** The runners never impose an order on
//! floating-point reductions; instead callers make every task's writes
//! a pure function of state committed *before* the task is released
//! (the in-degree countdown guarantees the happens-before edge). Under
//! that discipline results are bitwise-identical for any worker count —
//! `tests/parallel_determinism.rs` in the workspace root locks the STA
//! engines to it.

mod dag;
mod levelize;
mod pool;
mod sharded;

pub use dag::{default_threads, hardware_threads, run_dag, try_parallel_map};
pub use levelize::{Countdown, Levelizer};
pub use pool::ThreadPool;
pub use sharded::ShardedMap;

/// Errors from the execution layer.
#[derive(Debug)]
pub enum ExecError {
    /// The graph is not a DAG: only `completed` of `total` nodes are
    /// reachable through acyclic dependencies.
    Cycle {
        /// Nodes released before the cycle stalled the traversal.
        completed: usize,
        /// Total nodes in the graph.
        total: usize,
    },
    /// An edge references a node outside `0..total`.
    BadEdge {
        /// The out-of-range node index.
        node: usize,
        /// Total nodes in the graph.
        total: usize,
    },
    /// One or more pool jobs panicked.
    TaskPanicked {
        /// How many jobs panicked since the last drain.
        count: usize,
        /// Description of the first captured panic.
        first: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Cycle { completed, total } => write!(
                f,
                "dependency graph is cyclic: {completed} of {total} nodes acyclically reachable"
            ),
            ExecError::BadEdge { node, total } => {
                write!(f, "edge references node {node} outside 0..{total}")
            }
            ExecError::TaskPanicked { count, first } => {
                write!(f, "{count} pool job(s) panicked; first: {first}")
            }
        }
    }
}

impl std::error::Error for ExecError {}
