//! A lock-sharded hash map for concurrent memoization.
//!
//! Writers and readers hash the key to one of a fixed set of
//! `Mutex<HashMap>` shards, so unrelated keys rarely contend. The map
//! is deliberately *value-stable*: it memoizes pure computations, so a
//! racing double-insert of the same key stores the same value and
//! determinism is preserved regardless of which write lands.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::Mutex;

const SHARDS: usize = 16;

/// A concurrently usable `HashMap` split across [`SHARDS`] locks.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
    hasher: RandomState,
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        ShardedMap {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        &self.shards[(self.hasher.hash_one(key) as usize) % SHARDS]
    }

    /// Clones out the value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().expect("shard").get(key).cloned()
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard(&key).lock().expect("shard").insert(key, value)
    }

    /// Keeps only the entries whose key satisfies `keep`.
    pub fn retain(&self, mut keep: impl FnMut(&K) -> bool) {
        for shard in &self.shards {
            shard.lock().expect("shard").retain(|k, _| keep(k));
        }
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard").len())
            .sum()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Hash + Eq, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_retain() {
        let m: ShardedMap<(usize, usize), f64> = ShardedMap::new();
        assert!(m.is_empty());
        for i in 0..100 {
            m.insert((i, i + 1), i as f64);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(7, 8)), Some(7.0));
        assert_eq!(m.get(&(7, 9)), None);
        m.retain(|&(a, _)| a % 2 == 0);
        assert_eq!(m.len(), 50);
        assert_eq!(m.get(&(7, 8)), None);
        assert_eq!(m.get(&(8, 9)), Some(8.0));
    }

    #[test]
    fn concurrent_inserts_do_not_lose_entries() {
        let m: ShardedMap<usize, usize> = ShardedMap::new();
        std::thread::scope(|s| {
            for w in 0..4 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..250 {
                        m.insert(w * 1000 + i, i);
                    }
                });
            }
        });
        assert_eq!(m.len(), 1000);
    }
}
