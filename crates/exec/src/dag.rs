//! Scoped deterministic parallel runners over borrowed data.
//!
//! [`run_dag`] executes a dependency DAG with work-stealing scoped
//! workers: a node is dispatched the instant its last predecessor
//! completes (atomic in-degree countdown — no level barriers), released
//! work goes to the finishing worker's own deque, and idle workers
//! steal the oldest entry from a sibling. [`try_parallel_map`] is the
//! degenerate no-dependency case with ordered result collection.
//!
//! Both runners take `Fn(worker, node)` closures over borrowed state
//! (`std::thread::scope`), so callers can share `&self` engines and
//! keep *per-worker* scratch indexed by the worker id. Neither runner
//! imposes an ordering on floating-point reductions: callers get
//! determinism by making each task's writes a pure function of inputs
//! that are committed before the task is released (see
//! `qwm-sta::engine` for the pattern).

use crate::levelize::{Countdown, Levelizer};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Default worker count: `QWM_THREADS` when set to a positive integer,
/// otherwise the machine's available parallelism. A malformed value is
/// reported loudly (warn event + stderr) via `qwm_obs::env` before the
/// hardware default applies — never a silent fallback.
pub fn default_threads() -> usize {
    qwm_obs::env::parse_or_warn(
        "QWM_THREADS",
        "hardware thread count",
        qwm_obs::env::positive_usize,
    )
    .unwrap_or_else(hardware_threads)
}

/// The machine's available parallelism (1 when undetectable).
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

struct DagShared<E> {
    locals: Vec<Mutex<VecDeque<usize>>>,
    countdown: Countdown,
    /// Nodes finished (successfully or not). The run is over when this
    /// reaches the node count or `stop` is raised.
    done: AtomicUsize,
    stop: AtomicBool,
    errors: Mutex<Vec<(usize, E)>>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    idle: Mutex<()>,
    wake: Condvar,
}

fn dag_pop<E>(shared: &DagShared<E>, me: usize) -> Option<usize> {
    if let Some(node) = shared.locals[me].lock().expect("dag local").pop_back() {
        return Some(node);
    }
    let n = shared.locals.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        if let Some(node) = shared.locals[victim].lock().expect("dag local").pop_front() {
            qwm_obs::counter!("exec.dag.steals").incr();
            return Some(node);
        }
    }
    None
}

fn dag_worker<E: Send, F: Fn(usize, usize) -> Result<(), E> + Sync>(
    shared: &DagShared<E>,
    lev: &Levelizer,
    f: &F,
    me: usize,
    total: usize,
    trace_ctx: u64,
) {
    // Re-install the submitting thread's trace parent so spans recorded
    // by tasks on this worker attach to the caller's tree (no-op unless
    // tracing is on).
    let _trace = qwm_obs::trace::adopt(trace_ctx);
    let obs = qwm_obs::enabled();
    let mut busy_ns: u64 = 0;
    loop {
        if shared.stop.load(Ordering::Acquire) || shared.done.load(Ordering::Acquire) >= total {
            break;
        }
        let Some(node) = dag_pop(shared, me) else {
            let guard = shared.idle.lock().expect("dag idle");
            // Timeout backstop against a wake-up racing the failed pop.
            let _unused = shared
                .wake
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("dag idle");
            continue;
        };
        let started = obs.then(std::time::Instant::now);
        let outcome = catch_unwind(AssertUnwindSafe(|| f(me, node)));
        if let Some(t0) = started {
            busy_ns += t0.elapsed().as_nanos() as u64;
        }
        match outcome {
            Ok(Ok(())) => {
                let mut released = 0usize;
                {
                    let mut local = shared.locals[me].lock().expect("dag local");
                    for &succ in &lev.succs()[node] {
                        if shared.countdown.arrive(succ) {
                            local.push_back(succ);
                            released += 1;
                        }
                    }
                    if obs {
                        qwm_obs::histogram!("exec.dag.queue_depth", qwm_obs::SIZE_BOUNDS)
                            .record(local.len() as u64);
                    }
                }
                // One task is consumed next by this worker; offer the
                // rest to sleepers.
                if released > 1 {
                    shared.wake.notify_all();
                } else if released == 1 {
                    shared.wake.notify_one();
                }
            }
            Ok(Err(e)) => {
                shared.errors.lock().expect("dag errors").push((node, e));
                shared.stop.store(true, Ordering::Release);
                shared.wake.notify_all();
            }
            Err(payload) => {
                let mut slot = shared.panic.lock().expect("dag panic");
                if slot.is_none() {
                    *slot = Some(payload);
                }
                shared.stop.store(true, Ordering::Release);
                shared.wake.notify_all();
            }
        }
        if shared.done.fetch_add(1, Ordering::AcqRel) + 1 >= total {
            shared.wake.notify_all();
        }
    }
    if obs {
        qwm_obs::histogram!("exec.dag.worker_busy_ns", qwm_obs::NS_BOUNDS).record(busy_ns);
    }
}

/// Runs every node of the levelized DAG through `f(worker, node)`,
/// dispatching each node as soon as its last predecessor finishes.
///
/// On success every node ran exactly once. On failure the error from
/// the smallest failing node index is returned (concurrent siblings
/// may or may not have run — their side effects must be idempotent or
/// discarded by the caller) and no successor of a failed node runs.
///
/// # Errors
///
/// The first (smallest-node) task error.
///
/// # Panics
///
/// Re-raises the panic payload if a task panicked, after all workers
/// have parked — a task panic never deadlocks the run.
pub fn run_dag<E, F>(threads: usize, lev: &Levelizer, f: F) -> Result<(), (usize, E)>
where
    E: Send,
    F: Fn(usize, usize) -> Result<(), E> + Sync,
{
    let total = lev.node_count();
    if total == 0 {
        return Ok(());
    }
    lev.record_obs();
    let threads = threads.max(1).min(total);
    if threads == 1 {
        // Single worker: same dispatch discipline without thread spawns.
        let countdown = Countdown::new(lev.indegree());
        let mut queue: VecDeque<usize> = (0..total).filter(|&n| lev.indegree()[n] == 0).collect();
        while let Some(node) = queue.pop_front() {
            f(0, node).map_err(|e| (node, e))?;
            for &succ in &lev.succs()[node] {
                if countdown.arrive(succ) {
                    queue.push_back(succ);
                }
            }
        }
        return Ok(());
    }
    let shared = DagShared::<E> {
        locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        countdown: Countdown::new(lev.indegree()),
        done: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        errors: Mutex::new(Vec::new()),
        panic: Mutex::new(None),
        idle: Mutex::new(()),
        wake: Condvar::new(),
    };
    // Seed the roots round-robin across the workers.
    for (i, root) in (0..total).filter(|&n| lev.indegree()[n] == 0).enumerate() {
        shared.locals[i % threads]
            .lock()
            .expect("dag local")
            .push_back(root);
    }
    // Capture the trace parent here, on the submitting thread; workers
    // adopt it so per-stage spans cross the thread boundary intact.
    let trace_ctx = qwm_obs::trace::current();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let shared = &shared;
            let f = &f;
            scope.spawn(move || dag_worker(shared, lev, f, w, total, trace_ctx));
        }
    });
    if let Some(payload) = shared.panic.into_inner().expect("dag panic") {
        resume_unwind(payload);
    }
    let mut errors = shared.errors.into_inner().expect("dag errors");
    if let Some(pos) = (0..errors.len()).min_by_key(|&i| errors[i].0) {
        return Err(errors.swap_remove(pos));
    }
    Ok(())
}

/// Maps `f(worker, index)` over `0..n` in parallel, returning results
/// in index order. The assignment of indices to workers is dynamic;
/// the output is position-stable regardless.
///
/// # Errors
///
/// The error from the smallest failing index (later indices may have
/// run concurrently).
///
/// # Panics
///
/// Re-raises the first task panic after the run winds down.
pub fn try_parallel_map<T, E, F>(threads: usize, n: usize, f: F) -> Result<Vec<T>, (usize, E)>
where
    T: Send,
    E: Send,
    F: Fn(usize, usize) -> Result<T, E> + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(f(0, i).map_err(|e| (i, e))?);
        }
        return Ok(out);
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let slots: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    let errors: Mutex<Vec<(usize, E)>> = Mutex::new(Vec::new());
    let panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let trace_ctx = qwm_obs::trace::current();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let (next, stop, slots, errors, panic, f) = (&next, &stop, &slots, &errors, &panic, &f);
            scope.spawn(move || {
                let _trace = qwm_obs::trace::adopt(trace_ctx);
                // Per-worker scratch: results batch up locally and merge
                // once, so the shared lock is taken O(1) times per worker.
                let mut mine: Vec<(usize, T)> = Vec::new();
                loop {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| f(w, i))) {
                        Ok(Ok(t)) => mine.push((i, t)),
                        Ok(Err(e)) => {
                            errors.lock().expect("map errors").push((i, e));
                            stop.store(true, Ordering::Release);
                        }
                        Err(payload) => {
                            let mut slot = panic.lock().expect("map panic");
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            stop.store(true, Ordering::Release);
                        }
                    }
                }
                slots.lock().expect("map slots").append(&mut mine);
            });
        }
    });
    if let Some(payload) = panic.into_inner().expect("map panic") {
        resume_unwind(payload);
    }
    let mut errors = errors.into_inner().expect("map errors");
    if let Some(pos) = (0..errors.len()).min_by_key(|&i| errors[i].0) {
        return Err(errors.swap_remove(pos));
    }
    let mut pairs = slots.into_inner().expect("map slots");
    pairs.sort_unstable_by_key(|&(i, _)| i);
    debug_assert!(pairs.iter().enumerate().all(|(k, &(i, _))| k == i));
    Ok(pairs.into_iter().map(|(_, t)| t).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_orders_results() {
        let out = try_parallel_map::<_, (), _>(4, 100, |_w, i| Ok(i * i)).unwrap();
        assert_eq!(out.len(), 100);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn map_surfaces_smallest_error() {
        let err =
            try_parallel_map::<usize, &str, _>(
                4,
                64,
                |_w, i| {
                    if i % 7 == 3 {
                        Err("bad")
                    } else {
                        Ok(i)
                    }
                },
            )
            .unwrap_err();
        // 3 is the smallest failing index a worker can reach first in
        // the serial prefix; in parallel any failing index stops the
        // run, but the reported one is the smallest captured.
        assert!(err.0 % 7 == 3, "failing index, got {}", err.0);
        assert_eq!(err.1, "bad");
    }

    #[test]
    fn dag_respects_dependencies() {
        use std::sync::atomic::AtomicU64;
        // 0 -> 1 -> 3, 0 -> 2 -> 3: record a completion stamp per node.
        let lev = Levelizer::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let clock = AtomicU64::new(0);
        let stamps: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        run_dag::<(), _>(4, &lev, |_w, node| {
            stamps[node].store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
            Ok(())
        })
        .unwrap();
        let s: Vec<u64> = stamps.iter().map(|a| a.load(Ordering::SeqCst)).collect();
        assert!(s.iter().all(|&v| v > 0), "all nodes ran: {s:?}");
        assert!(s[0] < s[1] && s[0] < s[2]);
        assert!(s[3] > s[1] && s[3] > s[2]);
    }
}
