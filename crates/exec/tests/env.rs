//! `QWM_THREADS` parsing contract: valid values win, malformed values
//! fall back to the hardware default *loudly* (the report itself is
//! exercised in `qwm-obs`; here we pin the resulting thread counts).
//!
//! Environment mutation is process-global, so every test holds one
//! lock and restores the variable it found.

use qwm_exec::{default_threads, hardware_threads};
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

struct EnvGuard {
    prior: Option<String>,
    _held: MutexGuard<'static, ()>,
}

impl EnvGuard {
    fn set(value: Option<&str>) -> EnvGuard {
        let held = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prior = std::env::var("QWM_THREADS").ok();
        match value {
            Some(v) => std::env::set_var("QWM_THREADS", v),
            None => std::env::remove_var("QWM_THREADS"),
        }
        EnvGuard { prior, _held: held }
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        match &self.prior {
            Some(v) => std::env::set_var("QWM_THREADS", v),
            None => std::env::remove_var("QWM_THREADS"),
        }
    }
}

#[test]
fn unset_uses_hardware_threads() {
    let _g = EnvGuard::set(None);
    assert_eq!(default_threads(), hardware_threads());
}

#[test]
fn valid_value_wins() {
    let _g = EnvGuard::set(Some("3"));
    assert_eq!(default_threads(), 3);
    drop(_g);
    let _g = EnvGuard::set(Some(" 8 "));
    assert_eq!(default_threads(), 8);
}

#[test]
fn malformed_values_fall_back_to_hardware_default() {
    for bad in ["0", "-2", "four", "2.5", "4x"] {
        let _g = EnvGuard::set(Some(bad));
        assert_eq!(default_threads(), hardware_threads(), "QWM_THREADS={bad}");
    }
}

#[test]
fn empty_value_is_treated_as_unset() {
    let _g = EnvGuard::set(Some(""));
    assert_eq!(default_threads(), hardware_threads());
}
