//! Integration tests for the `qwm-exec` scheduling substrate: pool
//! drain/panic behaviour, levelizer cycle rejection and single-release
//! joins, and the scoped DAG runner's dependency discipline.

use qwm_exec::{run_dag, Countdown, ExecError, Levelizer, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn pool_drains_ten_thousand_noops_without_loss() {
    let pool = ThreadPool::new(4);
    let hits = Arc::new(AtomicUsize::new(0));
    for _ in 0..10_000 {
        let hits = Arc::clone(&hits);
        pool.execute(move || {
            hits.fetch_add(1, Ordering::Relaxed);
        });
    }
    pool.wait().expect("no panics");
    assert_eq!(hits.load(Ordering::Relaxed), 10_000, "every task ran");
    assert_eq!(pool.pending(), 0);
}

#[test]
fn pool_panic_is_captured_as_err_not_a_hang() {
    let pool = ThreadPool::new(3);
    let hits = Arc::new(AtomicUsize::new(0));
    for i in 0..50 {
        let hits = Arc::clone(&hits);
        pool.execute(move || {
            if i == 17 {
                panic!("task 17 exploded");
            }
            hits.fetch_add(1, Ordering::Relaxed);
        });
    }
    // wait() must return (not hang) and surface the panic.
    let err = pool.wait().expect_err("panic surfaces");
    match err {
        ExecError::TaskPanicked { count, first } => {
            assert_eq!(count, 1);
            assert!(first.contains("panicked"), "{first}");
        }
        other => panic!("unexpected error {other:?}"),
    }
    assert_eq!(hits.load(Ordering::Relaxed), 49, "the other 49 still ran");
    // The pool stays usable after a panic.
    let hits2 = Arc::clone(&hits);
    pool.execute(move || {
        hits2.fetch_add(1, Ordering::Relaxed);
    });
    pool.wait().expect("clean batch after the panic drained");
    assert_eq!(hits.load(Ordering::Relaxed), 50);
}

#[test]
fn levelizer_rejects_cyclic_graphs() {
    // 2-cycle buried in an otherwise fine graph.
    let err = Levelizer::from_edges(4, [(0, 1), (1, 2), (2, 1), (0, 3)]).unwrap_err();
    match err {
        ExecError::Cycle { completed, total } => {
            assert_eq!(total, 4);
            assert!(completed < 4, "cycle nodes never release");
        }
        other => panic!("unexpected error {other:?}"),
    }
    assert!(Levelizer::from_edges(1, [(0, 0)]).is_err(), "self-loop");
    // The acyclic version passes.
    assert!(Levelizer::from_edges(4, [(0, 1), (1, 2), (0, 3)]).is_ok());
}

#[test]
fn countdown_releases_diamond_join_exactly_once() {
    // Diamond: 0 -> {1, 2} -> 3.
    let lev = Levelizer::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
    assert_eq!(lev.indegree(), &[0, 1, 1, 2]);
    let cd = Countdown::new(lev.indegree());
    // Two concurrent arrivals at the join: exactly one reports release.
    let releases = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..2 {
            let (cd, releases) = (&cd, &releases);
            s.spawn(move || {
                if cd.arrive(3) {
                    releases.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(releases.load(Ordering::Relaxed), 1, "join released once");
    assert!(cd.is_released(3));
}

#[test]
fn run_dag_executes_each_node_exactly_once() {
    // Random-ish layered DAG, every node counts its executions.
    let mut edges = Vec::new();
    let n = 200;
    for v in 1..n {
        edges.push((v - 1, v)); // spine
        if v >= 7 {
            edges.push((v - 7, v)); // skip edges create joins
        }
    }
    let lev = Levelizer::from_edges(n, edges).unwrap();
    let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    for threads in [1, 2, 4, 8] {
        for c in &counts {
            c.store(0, Ordering::Relaxed);
        }
        run_dag::<(), _>(threads, &lev, |_w, node| {
            counts[node].fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "node {i} ran once at {threads} threads"
            );
        }
    }
}

#[test]
fn run_dag_error_stops_successors() {
    // Chain 0 -> 1 -> 2: failing node 1 must keep node 2 from running.
    let lev = Levelizer::from_edges(3, [(0, 1), (1, 2)]).unwrap();
    let ran = [const { AtomicUsize::new(0) }; 3];
    let (node, msg) = run_dag(4, &lev, |_w, node| {
        ran[node].fetch_add(1, Ordering::Relaxed);
        if node == 1 {
            Err("stage 1 diverged")
        } else {
            Ok(())
        }
    })
    .unwrap_err();
    assert_eq!(node, 1);
    assert_eq!(msg, "stage 1 diverged");
    assert_eq!(ran[2].load(Ordering::Relaxed), 0, "successor never ran");
}

#[test]
fn run_dag_task_panic_propagates_cleanly() {
    let lev = Levelizer::from_edges(8, (1..8).map(|v| (v - 1, v))).unwrap();
    let result = std::panic::catch_unwind(|| {
        run_dag::<(), _>(4, &lev, |_w, node| {
            if node == 3 {
                panic!("node 3 panicked");
            }
            Ok(())
        })
    });
    assert!(result.is_err(), "panic re-raised, not swallowed or hung");
}
