//! Deterministic request-stream generation shared by the fixed-burst
//! load generator (`server_load`) and its reproducibility tests.
//!
//! Every connection's stream is keyed by [`Rng64::stream`] with lanes
//! `[connection, round]` off one master seed. The earlier scheme —
//! `seed + connection` feeding a per-round xor — aliased streams
//! (`master + 1` at connection 0 replayed `master` at connection 1), so
//! two runs with adjacent seeds shared most of their work and warm/cold
//! medians drifted with thread interleaving. Lane-mixed seeding makes
//! the full request stream a pure function of
//! `(master, connection, round)`: [`request_log`] renders it, and the
//! two-run byte-identity test pins it.

use qwm::num::rng::Rng64;

/// The seeded what-if edit for `round` of `conn`'s stream: resize one
/// random transistor within `[0.5u, 2u]`. A pure function of
/// `(devices, master, conn, round)` — warm replays, cold replays and
/// repeat invocations all see identical work.
pub fn edit_script(devices: &[String], master: u64, conn: u64, round: u64) -> String {
    let mut rng = Rng64::stream(master, &[conn, round]);
    let dev = &devices[rng.range_usize(0, devices.len())];
    let w = rng.range(0.5e-6, 2.0e-6);
    format!("resize {dev} {w:.6e}\n")
}

/// Renders the complete request stream `server_load` offers for
/// `(master, connections, requests)` as one line per round-trip, in
/// deterministic `(connection, round)` order regardless of how threads
/// interleave at execution time. This is the byte-comparable artifact
/// the reproducibility test pins.
pub fn request_log(devices: &[String], master: u64, connections: usize, requests: usize) -> String {
    let mut out = String::new();
    for conn in 0..connections {
        for round in 0..requests {
            let script = edit_script(devices, master, conn as u64, round as u64);
            out.push_str(&format!(
                "c{conn:03}#{round:05} edit load-{conn} | {} ; run load-{conn} qwm slew_ps=20\n",
                script.trim_end_matches('\n')
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn devices() -> Vec<String> {
        (0..7).map(|i| format!("M{i}")).collect()
    }

    #[test]
    fn edit_script_is_pure_in_its_key() {
        let d = devices();
        assert_eq!(edit_script(&d, 42, 3, 9), edit_script(&d, 42, 3, 9));
        assert_ne!(edit_script(&d, 42, 3, 9), edit_script(&d, 42, 3, 10));
        assert_ne!(edit_script(&d, 42, 3, 9), edit_script(&d, 42, 4, 9));
        // The additive-seed alias: master 43 conn 0 must NOT replay
        // master 42 conn 1.
        assert_ne!(edit_script(&d, 43, 0, 5), edit_script(&d, 42, 1, 5));
    }

    #[test]
    fn request_log_is_byte_identical_across_runs() {
        let d = devices();
        let a = request_log(&d, 0x0BAD_5EED, 8, 25);
        let b = request_log(&d, 0x0BAD_5EED, 8, 25);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 8 * 25);
        assert_ne!(a, request_log(&d, 0x0BAD_5EED + 1, 8, 25));
    }
}
