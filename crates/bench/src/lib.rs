//! Shared harness for regenerating every table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one artifact (see DESIGN.md §4
//! for the index); this library holds the common machinery: engine
//! comparison rows, deterministic workloads, wall-clock measurement and
//! gnuplot-ready data dumps under `target/experiments/`.

pub mod capacity;
pub mod harness;
pub mod load;

use qwm::circuit::cells;
use qwm::circuit::stage::{LogicStage, NodeId};
use qwm::circuit::waveform::{TransitionKind, Waveform};
use qwm::core::evaluate::{evaluate, QwmConfig, QwmResult};
use qwm::device::model::ModelSet;
use qwm::device::{analytic_models, tabular_models, Technology};
use qwm::num::Result;
use qwm::spice::engine::{initial_uniform, simulate, TransientConfig, TransientResult};
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The standard experiment context: one technology, analytic models for
/// the SPICE baseline, tabular models for QWM (the paper's pairing).
pub struct Bench {
    /// Shared technology.
    pub tech: Technology,
    /// Reference physics for the SPICE engine.
    pub spice_models: ModelSet,
    /// Compressed tabular models for the QWM engine.
    pub qwm_models: ModelSet,
}

impl Bench {
    /// Builds the context (characterizes the device tables once).
    ///
    /// # Panics
    ///
    /// Panics if device characterization fails (deterministic; cannot
    /// fail for the stock technology).
    pub fn new() -> Self {
        let tech = Technology::cmosp35();
        Bench {
            spice_models: analytic_models(&tech),
            qwm_models: tabular_models(&tech).expect("characterization"),
            tech,
        }
    }
}

impl Default for Bench {
    fn default() -> Self {
        Bench::new()
    }
}

/// One engine-comparison row of Tables I/II.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Workload name (`inv`, `nand3`, `ckt1`, …).
    pub name: String,
    /// SPICE 1 ps transient wall time.
    pub spice_1ps: Duration,
    /// SPICE 1 ps 50 % delay \[s\] — the accuracy reference.
    pub delay_1ps: f64,
    /// SPICE 10 ps transient wall time.
    pub spice_10ps: Duration,
    /// QWM wall time.
    pub qwm: Duration,
    /// QWM 50 % delay \[s\].
    pub delay_qwm: f64,
}

impl ComparisonRow {
    /// Speedup of QWM over the 1 ps baseline.
    pub fn speedup_1ps(&self) -> f64 {
        self.spice_1ps.as_secs_f64() / self.qwm.as_secs_f64()
    }

    /// Speedup of QWM over the 10 ps baseline.
    pub fn speedup_10ps(&self) -> f64 {
        self.spice_10ps.as_secs_f64() / self.qwm.as_secs_f64()
    }

    /// Delay error vs the 1 ps baseline, percent.
    pub fn error_pct(&self) -> f64 {
        100.0 * (self.delay_qwm - self.delay_1ps).abs() / self.delay_1ps
    }
}

/// Runs the canonical falling-output comparison on a stage whose every
/// input steps low→high at `t = 0` from a precharged-high state.
///
/// QWM timing is the best of `repeats` runs (wall times are µs-scale);
/// SPICE horizons self-scale to ~3× the measured delay, mimicking a
/// sensible testbench.
///
/// # Errors
///
/// Propagates engine failures.
pub fn compare_fall(
    bench: &Bench,
    name: &str,
    stage: &LogicStage,
    repeats: usize,
) -> Result<ComparisonRow> {
    compare_fall_with(bench, name, stage, repeats, &QwmConfig::default())
}

/// [`compare_fall`] with an explicit QWM configuration (used to contrast
/// the paper-faithful evaluator against the refined extension).
///
/// # Errors
///
/// Propagates engine failures.
pub fn compare_fall_with(
    bench: &Bench,
    name: &str,
    stage: &LogicStage,
    repeats: usize,
    config: &QwmConfig,
) -> Result<ComparisonRow> {
    let vdd = bench.tech.vdd;
    let inputs: Vec<Waveform> = (0..stage.inputs().len())
        .map(|_| Waveform::step(0.0, 0.0, vdd))
        .collect();
    let init = initial_uniform(stage, &bench.spice_models, vdd);
    let out = stage
        .node_by_name("out")
        .expect("cells name their output 'out'");

    // QWM first (gives the horizon), best-of-N wall time.
    let mut qwm_time = Duration::MAX;
    let mut qwm_res: Option<QwmResult> = None;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        let r = evaluate(
            stage,
            &bench.qwm_models,
            &inputs,
            &init,
            out,
            TransitionKind::Fall,
            config,
        )?;
        qwm_time = qwm_time.min(t0.elapsed());
        qwm_res = Some(r);
    }
    let qwm_res = qwm_res.expect("at least one repeat");
    let delay_qwm = qwm_res.delay_50(vdd, 0.0).expect("50% monitored");
    let horizon = (3.0 * delay_qwm).max(300e-12);

    let run_spice = |cfg: &TransientConfig| -> Result<(TransientResult, f64)> {
        let r = simulate(stage, &bench.spice_models, &inputs, &init, cfg)?;
        let d = r
            .waveform(out)?
            .crossing(vdd / 2.0, false)
            .expect("spice output falls");
        Ok((r, d))
    };
    let (r1, delay_1ps) = run_spice(&TransientConfig::hspice_1ps(horizon))?;
    let (r10, _) = run_spice(&TransientConfig::hspice_10ps(horizon))?;

    Ok(ComparisonRow {
        name: name.to_string(),
        spice_1ps: r1.elapsed,
        delay_1ps,
        spice_10ps: r10.elapsed,
        qwm: qwm_time,
        delay_qwm,
    })
}

/// Prints a Table I/II-style header.
pub fn print_table_header() {
    println!(
        "{:<10} {:>12} {:>9} {:>12} {:>9} {:>12} {:>8}",
        "Circuit", "Hsp1ps[ms]", "Speedup", "Hsp10ps[ms]", "Speedup", "QWM[ms]", "Error"
    );
}

/// Prints one comparison row.
pub fn print_row(row: &ComparisonRow) {
    println!(
        "{:<10} {:>12.4} {:>9.1} {:>12.4} {:>9.1} {:>12.4} {:>7.2}%",
        row.name,
        row.spice_1ps.as_secs_f64() * 1e3,
        row.speedup_1ps(),
        row.spice_10ps.as_secs_f64() * 1e3,
        row.speedup_10ps(),
        row.qwm.as_secs_f64() * 1e3,
        row.error_pct()
    );
}

/// Prints the aggregate line the paper quotes (average speedups and
/// errors).
pub fn print_summary(rows: &[ComparisonRow]) {
    let n = rows.len() as f64;
    let s1: f64 = rows.iter().map(ComparisonRow::speedup_1ps).sum::<f64>() / n;
    let s10: f64 = rows.iter().map(ComparisonRow::speedup_10ps).sum::<f64>() / n;
    let avg_err: f64 = rows.iter().map(ComparisonRow::error_pct).sum::<f64>() / n;
    let max_err: f64 = rows
        .iter()
        .map(ComparisonRow::error_pct)
        .fold(0.0, f64::max);
    println!(
        "average: speedup(1ps) {s1:.1}x  speedup(10ps) {s10:.1}x  mean error {avg_err:.2}%  worst error {max_err:.2}%"
    );
}

/// The directory experiment data files are written to
/// (`target/experiments/`), created on demand.
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Writes whitespace-separated columns with a `#`-prefixed header —
/// directly gnuplot-consumable.
///
/// # Panics
///
/// Panics on I/O failure (experiment binaries want loud failures).
pub fn write_columns(file: &str, header: &str, rows: &[Vec<f64>]) -> PathBuf {
    let path = experiments_dir().join(file);
    let mut f = std::fs::File::create(&path).expect("create data file");
    writeln!(f, "# {header}").expect("write header");
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.6e}")).collect();
        writeln!(f, "{}", line.join(" ")).expect("write row");
    }
    path
}

/// The canonical falling-step stimulus and precharged initial condition
/// for a stage (shared by the figure binaries).
pub fn fall_setup(bench: &Bench, stage: &LogicStage) -> (Vec<Waveform>, Vec<f64>, NodeId) {
    let inputs: Vec<Waveform> = (0..stage.inputs().len())
        .map(|_| Waveform::step(0.0, 0.0, bench.tech.vdd))
        .collect();
    let init = initial_uniform(stage, &bench.spice_models, bench.tech.vdd);
    let out = stage.node_by_name("out").expect("output node");
    (inputs, init, out)
}

/// Deterministic Table II workload: for each stack length 5…10, three
/// width configurations drawn from a fixed seed.
pub fn table2_workload(bench: &Bench) -> Vec<(String, LogicStage)> {
    let mut rng = qwm::num::rng::Rng64::seed_from_u64(0x7ab1e2);
    let mut out = Vec::new();
    for k in 5..=10usize {
        for cfg in 1..=3usize {
            let widths = cells::random_widths(&mut rng, &bench.tech, k);
            let stage =
                cells::nmos_stack(&bench.tech, &widths, cells::DEFAULT_LOAD).expect("stack builds");
            out.push((format!("{k}/ckt{cfg}"), stage));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn comparison_row_math() {
        let row = ComparisonRow {
            name: "x".to_string(),
            spice_1ps: Duration::from_micros(1000),
            delay_1ps: 100e-12,
            spice_10ps: Duration::from_micros(100),
            qwm: Duration::from_micros(50),
            delay_qwm: 98e-12,
        };
        assert!((row.speedup_1ps() - 20.0).abs() < 1e-9);
        assert!((row.speedup_10ps() - 2.0).abs() < 1e-9);
        assert!((row.error_pct() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn table2_workload_is_deterministic() {
        let bench = Bench::new();
        let a = table2_workload(&bench);
        let b = table2_workload(&bench);
        assert_eq!(a.len(), 18);
        for ((na, sa), (nb, sb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(sa.edge_count(), sb.edge_count());
            for (ea, eb) in sa.edges().iter().zip(sb.edges()) {
                assert_eq!(ea.geom.w, eb.geom.w);
            }
        }
        // Stack lengths 5..=10, three each.
        assert!(a[0].0.starts_with("5/"));
        assert!(a[17].0.starts_with("10/"));
    }

    #[test]
    fn write_columns_emits_gnuplot_format() {
        let path = write_columns(
            "unit_test_tmp.dat",
            "a b",
            &[vec![1.0, 2.0], vec![3.0, 4.5e-12]],
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# a b\n"));
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("4.500000e-12"));
        std::fs::remove_file(path).ok();
    }
}
