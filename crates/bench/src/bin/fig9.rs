//! Figure 9: 6-NMOS stack (the Manchester carry chain's longest path)
//! — QWM's critical points against the dense SPICE waveforms.
use qwm::circuit::cells;
use qwm::circuit::waveform::TransitionKind;
use qwm::core::evaluate::{evaluate, QwmConfig};
use qwm::num::stats::compare_series;
use qwm::spice::engine::{simulate, TransientConfig};
use qwm_bench::{fall_setup, write_columns, Bench};

fn main() {
    let bench = Bench::new();
    let stage = cells::manchester_longest_path(&bench.tech, 4, cells::DEFAULT_LOAD).unwrap();
    let (inputs, init, out) = fall_setup(&bench, &stage);

    let q = evaluate(
        &stage,
        &bench.qwm_models,
        &inputs,
        &init,
        out,
        TransitionKind::Fall,
        &QwmConfig::default(),
    )
    .expect("qwm");
    let horizon = q
        .output_crossings
        .last()
        .map(|c| c.1 * 1.2)
        .unwrap_or(500e-12);
    let s = simulate(
        &stage,
        &bench.spice_models,
        &inputs,
        &init,
        &TransientConfig::hspice_1ps(horizon),
    )
    .expect("spice");

    // QWM critical points per chain node (what the paper plots as
    // straight lines between points).
    let mut bp_rows = Vec::new();
    for (k, w) in q.waveforms.iter().enumerate() {
        for (t, v) in w.breakpoints() {
            bp_rows.push(vec![k as f64 + 1.0, t, v]);
        }
    }
    let p1 = write_columns(
        "fig9_qwm_breakpoints.dat",
        "node t v (QWM critical points)",
        &bp_rows,
    );

    // Dense SPICE traces for the same chain nodes.
    let mut sp_rows = Vec::new();
    for (i, &t) in s.times.iter().enumerate() {
        let mut row = vec![t];
        for node in &q.chain.nodes[1..] {
            row.push(s.voltages[node.0][i]);
        }
        sp_rows.push(row);
    }
    let p2 = write_columns(
        "fig9_spice_waveforms.dat",
        "t v_node1 .. v_node6 (SPICE 1ps)",
        &sp_rows,
    );
    println!("Figure 9 data -> {} and {}", p1.display(), p2.display());

    // Accuracy: sample QWM's output waveform on the SPICE grid.
    let qw = q.output_waveform();
    let span_end = qw.breakpoints().last().unwrap().0;
    let mut got = Vec::new();
    let mut want = Vec::new();
    for (i, &t) in s.times.iter().enumerate() {
        if t <= span_end {
            got.push(qw.voltage(t));
            want.push(s.voltages[out.0][i]);
        }
    }
    let cmp = compare_series(&got, &want, 0.05).expect("series compare");
    let d_q = q.delay_50(bench.tech.vdd, 0.0).unwrap();
    let d_s = s
        .waveform(out)
        .unwrap()
        .crossing(bench.tech.vdd / 2.0, false)
        .unwrap();
    println!(
        "output waveform: mean |err| {:.2}% (accuracy {:.2}%), rms {:.3} V",
        cmp.mean_pct,
        100.0 - cmp.mean_pct,
        cmp.rms_abs
    );
    println!(
        "50% delay: qwm {:.2} ps vs spice {:.2} ps ({:.2}% error)",
        d_q * 1e12,
        d_s * 1e12,
        100.0 * (d_q - d_s).abs() / d_s
    );
    println!("critical points committed: {}", q.critical_points.len());
    // Telemetry appendix (enabled via QWM_OBS=summary|json).
    qwm::obs::emit();
}
