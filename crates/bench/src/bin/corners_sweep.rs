//! Batched multi-corner sweep vs sequential single-corner runs on the
//! `sta_parallel` random-DAG workload, emitting `BENCH_corners.json`.
//!
//! Three flows over the same 600-stage DAG at ss/tt/ff:
//!
//! * **sequential cold** — one fresh engine per corner, full
//!   slew-aware run each (what N independent signoff invocations
//!   cost);
//! * **batched cold** — one engine, one levelized pass timing every
//!   corner per arc (`run_corners`);
//! * **batched warm what-if** — the served steady state: a committed
//!   baseline sweep, one transistor resize, then
//!   `run_incremental_corners` re-timing only the dirty cone across
//!   all corners. This is the headline row — it is the flow a warm
//!   session answers corner queries with, and the one the 1.5× target
//!   applies to.
//!
//! Characterized per-corner device tables are built once up front and
//! shared by all flows (both the CLI and the server reuse them across
//! runs), so the comparison isolates engine work. Every flow's reports
//! are asserted byte-identical per corner before any number is
//! reported: the speedup is only meaningful if batching changes
//! nothing but the wall clock.
use qwm::circuit::waveform::TransitionKind;
use qwm::device::{parse_corner_list, CornerModels};
use qwm::sta::engine::StaEngine;
use qwm::sta::evaluator::QwmEvaluator;
use qwm::sta::graph::random_dag_netlist;
use qwm::sta::report::golden_report;
use qwm::sta::CornerRun;
use qwm_bench::Bench;
use std::io::Write as _;
use std::time::Instant;

const STAGES: usize = 600;
const SEED: u64 = 0x5aa5_1234;
const INPUT_SLEW: f64 = 30e-12;
const CORNER_SPEC: &str = "ss,tt,ff";
const TARGET_SPEEDUP: f64 = 1.5;
/// Device index the what-if edit resizes (mid-DAG, arbitrary but
/// fixed so the run is reproducible).
const EDIT_DEVICE: usize = 100;

fn main() -> std::process::ExitCode {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_corners.json".to_string());
    let bench = Bench::new();
    let corners = parse_corner_list(CORNER_SPEC).expect("corner spec");
    // Characterize every corner once, up front (excluded from all rows).
    let t0 = Instant::now();
    let models = CornerModels::tabular(&bench.tech, &corners).expect("characterization");
    let characterize = t0.elapsed();
    let ev = QwmEvaluator::default();
    println!(
        "random DAG: {STAGES} gates (seed {SEED:#x}), corners {CORNER_SPEC}, \
         characterization {:.1} ms",
        characterize.as_secs_f64() * 1e3
    );

    // Sequential cold: fresh engine + full run per corner.
    let mut seq_reports = Vec::new();
    let mut seq_per_corner_ms = Vec::new();
    let t0 = Instant::now();
    for (i, c) in corners.iter().enumerate() {
        let t1 = Instant::now();
        let nl = random_dag_netlist(&bench.tech, STAGES, SEED);
        let engine = StaEngine::new(nl, models.set(i), TransitionKind::Fall).expect("engine");
        let report = engine.run_with_slew(&ev, INPUT_SLEW).expect("run");
        seq_per_corner_ms.push((c.name().to_string(), t1.elapsed().as_secs_f64() * 1e3));
        seq_reports.push(golden_report(&report, engine.netlist()));
    }
    let sequential_cold = t0.elapsed();

    // Batched cold: one engine, one levelized pass, all corners.
    let nl = random_dag_netlist(&bench.tech, STAGES, SEED);
    let mut engine = StaEngine::new(nl, models.set(0), TransitionKind::Fall).expect("engine");
    let runs: Vec<CornerRun> = corners
        .iter()
        .enumerate()
        .map(|(i, c)| CornerRun {
            name: c.interned_name(),
            models: models.set(i),
            evaluator: &ev,
        })
        .collect();
    let t0 = Instant::now();
    let batched = engine.run_corners(&runs, INPUT_SLEW).expect("batched run");
    let batched_cold = t0.elapsed();
    for (i, rep) in batched.reports.iter().enumerate() {
        let got = golden_report(rep, engine.netlist());
        assert_eq!(
            got, seq_reports[i],
            "batched corner {} differs from its sequential run",
            batched.corners[i]
        );
    }

    // Batched warm what-if: committed baseline, one resize, dirty-cone
    // sweep across all corners.
    engine.set_input_slew(INPUT_SLEW).expect("slew");
    let _baseline = engine.run_incremental_corners(&runs).expect("baseline");
    let w = engine.netlist().devices()[EDIT_DEVICE].geom.w;
    engine.resize_device(EDIT_DEVICE, 2.0 * w).expect("resize");
    let t0 = Instant::now();
    let whatif = engine.run_incremental_corners(&runs).expect("what-if");
    let batched_whatif = t0.elapsed();
    let stats = engine.incremental_stats();

    // The warm sweep must match cold runs of the *edited* netlist.
    // An incremental run's evaluation count legitimately differs from
    // a cold run's (it only re-times the dirty cone), so the byte
    // comparison covers everything *but* the counter lines.
    let numeric_body = |s: &str| -> String {
        s.lines()
            .filter(|l| !l.starts_with("evaluations ") && !l.starts_with("waveform_failures "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    for (i, _c) in corners.iter().enumerate() {
        let nl = random_dag_netlist(&bench.tech, STAGES, SEED);
        let mut cold = StaEngine::new(nl, models.set(i), TransitionKind::Fall).expect("engine");
        cold.resize_device(EDIT_DEVICE, 2.0 * w).expect("resize");
        let report = cold.run_with_slew(&ev, INPUT_SLEW).expect("run");
        assert_eq!(
            numeric_body(&golden_report(&report, cold.netlist())),
            numeric_body(&golden_report(&whatif.reports[i], engine.netlist())),
            "warm corner {} differs from a cold run of the edited DAG",
            whatif.corners[i]
        );
    }

    let seq_ms = sequential_cold.as_secs_f64() * 1e3;
    let cold_ms = batched_cold.as_secs_f64() * 1e3;
    let whatif_ms = batched_whatif.as_secs_f64() * 1e3;
    let speedup_cold = seq_ms / cold_ms.max(1e-9);
    let speedup_whatif = seq_ms / whatif_ms.max(1e-9);
    let meets_target = speedup_whatif >= TARGET_SPEEDUP;
    println!(
        "sequential cold ({} corners): {seq_ms:.1} ms",
        corners.len()
    );
    println!("batched cold sweep:           {cold_ms:.1} ms  ({speedup_cold:.2}x)");
    println!(
        "batched warm what-if sweep:   {whatif_ms:.2} ms  ({speedup_whatif:.2}x, \
         {} of {} stage-corners re-timed, {} arcs reused)",
        stats.evaluated_stages,
        STAGES * corners.len(),
        stats.reused_arcs
    );
    println!(
        "target {TARGET_SPEEDUP}x vs sequential single-corner runs: {}",
        if meets_target { "MET" } else { "MISSED" }
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"stages\": {STAGES},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"corners\": \"{CORNER_SPEC}\",\n"));
    json.push_str(&format!("  \"input_slew_ps\": {:.1},\n", INPUT_SLEW * 1e12));
    json.push_str(&format!(
        "  \"characterization_ms\": {:.2},\n",
        characterize.as_secs_f64() * 1e3
    ));
    json.push_str("  \"sequential_cold_per_corner_ms\": {");
    for (i, (name, ms)) in seq_per_corner_ms.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!("\"{name}\": {ms:.2}"));
    }
    json.push_str("},\n");
    json.push_str(&format!("  \"sequential_cold_ms\": {seq_ms:.2},\n"));
    json.push_str(&format!("  \"batched_cold_ms\": {cold_ms:.2},\n"));
    json.push_str(&format!("  \"batched_whatif_ms\": {whatif_ms:.3},\n"));
    json.push_str(&format!(
        "  \"whatif_evaluated_stage_corners\": {},\n",
        stats.evaluated_stages
    ));
    json.push_str(&format!("  \"speedup_batched_cold\": {speedup_cold:.2},\n"));
    json.push_str(&format!(
        "  \"speedup_batched_whatif\": {speedup_whatif:.2},\n"
    ));
    json.push_str(&format!("  \"target_speedup\": {TARGET_SPEEDUP},\n"));
    json.push_str("  \"bitwise_identical\": true,\n");
    json.push_str(&format!("  \"meets_target\": {meets_target}\n"));
    json.push_str("}\n");
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("corners_sweep: cannot write {out_path}: {e}");
            return std::process::ExitCode::FAILURE;
        }
    }
    qwm::obs::emit();
    if meets_target {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
