//! Kernel hot-path cost: per-arc solve time and steady-state allocation
//! accounting, emitting `BENCH_kernel.json`.
//!
//! Three measurements over the QWM kernel (the per-region Newton solve
//! the paper's speedup rests on):
//!
//! * **cold ns/arc** — a fresh engine timing a `sta_parallel`-style
//!   random DAG end to end (characterization excluded), wall time
//!   divided by arcs evaluated;
//! * **warm ns/arc** — repeated re-evaluation of a fixed set of
//!   representative stages after a warmup pass: every cache, table and
//!   per-worker scratch buffer is hot, so this is the steady-state
//!   kernel cost a warm server pays per arc;
//! * **allocs/solve** — allocations per warm region solve, measured by
//!   the counting global allocator below across repeated identical
//!   `solve_region_into` calls. The workspace-reuse contract says this
//!   is **zero** once scratch is warm; the gate fails on any regression.
//!
//! The `before_*` fields are the same measurements taken on the tree
//! immediately before the workspace/batching rework (same machine, same
//! workload) and are kept as the honest record of what the change
//! bought. `meets_target` gates only on machine-independent facts plus
//! the in-process speedup ratio: zero steady-state allocations and a
//! warm per-arc cost at least `TARGET_SPEEDUP`× better than the
//! recorded baseline.
//!
//! All timed figures are **min-of-windows**: the measurement loop is
//! split into several equal windows and the fastest window is reported.
//! On a shared single-core host the slow windows measure neighbour
//! steal time, not this code; the minimum is the reproducible estimate
//! of what the kernel itself costs. The recorded `before_*` baselines
//! were taken with the same estimator.
//!
//! `--smoke` shrinks iteration counts for the CI gate and gates only on
//! the allocation facts (which are exact at any iteration count); the
//! timing figures are still reported but a short contended window must
//! not fail the build.

use qwm::circuit::cells;
use qwm::circuit::waveform::TransitionKind;
use qwm::core::chain::Chain;
use qwm::core::evaluate::{evaluate, QwmConfig};
use qwm::core::solver::{
    solve_region_into, ChainContext, EndCondition, RegionOptions, RegionSolution, RegionState,
    SolveScratch,
};
use qwm::sta::engine::StaEngine;
use qwm::sta::evaluator::{sensitized_setup_with_slew, QwmEvaluator};
use qwm::sta::graph::random_dag_netlist;
use qwm_bench::Bench;
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const STAGES: usize = 240;
const SEED: u64 = 0x5aa5_1234;
const INPUT_SLEW: f64 = 30e-12;
/// Required warm-path improvement over the recorded pre-rework baseline
/// (full mode only — see `--smoke` below).
const TARGET_SPEEDUP: f64 = 2.0;
/// Ceiling on warm allocations per evaluation (vs 606 before the
/// rework). Allocation counts are deterministic, so this is the
/// regression signal that survives a contended host: under `--smoke`
/// the gate checks only the allocation facts, because short timing
/// windows on a shared box measure neighbour steal time, not this
/// code. The timing bar is enforced by the full-mode run recorded in
/// `BENCH_kernel.json`.
const ALLOCS_PER_EVAL_MAX: f64 = 64.0;
/// Warm ns/arc on the tree immediately before the workspace/batching
/// rework (this machine, this workload, min-of-windows, best of
/// repeated process runs — the estimator most favourable to the
/// baseline).
const BEFORE_WARM_NS_PER_ARC: f64 = 35_152.0;
/// Cold ns/arc on the pre-rework tree (same methodology).
const BEFORE_COLD_NS_PER_ARC: f64 = 28_754.0;
/// ns per warm region solve on the pre-rework tree (same methodology).
const BEFORE_NS_PER_SOLVE: f64 = 3_176.0;
/// Allocations per warm region solve on the pre-rework tree (exact —
/// allocation counts are deterministic).
const BEFORE_ALLOCS_PER_SOLVE: f64 = 66.0;
/// Allocations per warm evaluation on the pre-rework tree (exact).
const BEFORE_ALLOCS_PER_EVAL: f64 = 606.0;

/// Counting allocator: every heap allocation in the process bumps a
/// relaxed counter. Deallocations are not counted — the steady-state
/// assertion is about *acquiring* memory on the hot path.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_now() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

fn main() -> std::process::ExitCode {
    let mut out_path = "BENCH_kernel.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let (windows, warm_reps, solve_reps, cold_runs) = if smoke {
        (4, 12, 400, 1)
    } else {
        (10, 60, 2000, 3)
    };

    let bench = Bench::new();
    let tech = &bench.tech;
    let models = &bench.qwm_models;
    let ev = QwmEvaluator::default();

    // --- Cold: fresh engine over the random DAG, end to end. ---
    // Min over a few fresh engines: each run is cold for the engine
    // (levelization, per-arc state) even though process-wide tables
    // stay warm after the first.
    let mut cold_ns_per_arc = f64::INFINITY;
    let mut cold_arcs = 1usize;
    for _ in 0..cold_runs {
        let nl = random_dag_netlist(tech, STAGES, SEED);
        let engine = StaEngine::new(nl, models, TransitionKind::Fall).expect("engine");
        let t0 = Instant::now();
        let report = engine.run_with_slew(&ev, INPUT_SLEW).expect("cold run");
        let cold = t0.elapsed();
        cold_arcs = report.evaluations.max(1);
        cold_ns_per_arc = cold_ns_per_arc.min(cold.as_secs_f64() * 1e9 / cold_arcs as f64);
    }

    // --- Warm: repeated evaluation of representative stages. ---
    // The mix mirrors the random-DAG cell population: inverters, NAND2/3
    // fall arcs and a 4-high stack, each driven by the slew-derived ramp
    // stimulus the STA engine uses.
    let stages = vec![
        cells::inverter(tech, cells::DEFAULT_LOAD).expect("inv"),
        cells::nand(tech, 2, cells::DEFAULT_LOAD).expect("nand2"),
        cells::nand(tech, 3, cells::DEFAULT_LOAD).expect("nand3"),
        cells::nmos_stack(tech, &[1.5e-6; 4], cells::DEFAULT_LOAD).expect("stack4"),
    ];
    let config = QwmConfig::default();
    let mut setups = Vec::new();
    for stage in &stages {
        let out = stage.node_by_name("out").expect("out");
        let (inputs, init, _t_ref) =
            sensitized_setup_with_slew(stage, models, out, TransitionKind::Fall, INPUT_SLEW)
                .expect("setup");
        setups.push((stage, out, inputs, init));
    }
    // Warmup: fills thread-local scratch, table caches, obs registries.
    for (stage, out, inputs, init) in &setups {
        evaluate(
            stage,
            models,
            inputs,
            init,
            *out,
            TransitionKind::Fall,
            &config,
        )
        .expect("warmup eval");
    }
    let (a0, _) = allocs_now();
    let mut warm_ns_per_arc = f64::INFINITY;
    for _ in 0..windows {
        let t0 = Instant::now();
        for _ in 0..warm_reps {
            for (stage, out, inputs, init) in &setups {
                evaluate(
                    stage,
                    models,
                    inputs,
                    init,
                    *out,
                    TransitionKind::Fall,
                    &config,
                )
                .expect("warm eval");
            }
        }
        let warm = t0.elapsed();
        warm_ns_per_arc =
            warm_ns_per_arc.min(warm.as_secs_f64() * 1e9 / (warm_reps * setups.len()) as f64);
    }
    let (a1, _) = allocs_now();
    let warm_arcs = (windows * warm_reps * setups.len()) as f64;
    let allocs_per_eval = (a1 - a0) as f64 / warm_arcs;

    // --- Allocations per warm region solve. ---
    // One representative mid-discharge region on a 3-high stack, solved
    // repeatedly through the caller-scratch entry point. After warmup
    // the solve must not touch the allocator at all.
    let stage = cells::nmos_stack(tech, &[1.5e-6, 2.0e-6, 1.0e-6], 20e-15).expect("stack3");
    let out = stage.node_by_name("out").expect("out");
    let chain = Chain::extract(&stage, out, TransitionKind::Fall).expect("chain");
    let inputs: Vec<qwm::circuit::waveform::Waveform> = (0..3)
        .map(|_| qwm::circuit::waveform::Waveform::constant(tech.vdd))
        .collect();
    let ctx = ChainContext {
        stage: &stage,
        chain: &chain,
        models,
        inputs: &inputs,
        rail_v: 0.0,
    };
    let v0 = vec![1.0, 2.5, 3.1];
    let caps = ctx.node_caps(&v0);
    let i0 = ctx.node_currents(&v0, 0.0).expect("currents");
    let state = RegionState {
        tau: 0.0,
        v: v0,
        i: i0,
        caps,
    };
    let cond = EndCondition::Crossing {
        node: 3,
        level: 2.0,
    };
    let opts = RegionOptions::default();
    let mut scratch = SolveScratch::default();
    let mut sol = RegionSolution::default();
    let mut spent = 0usize;
    // Warmup fills the scratch and the solution buffers.
    for _ in 0..8 {
        solve_region_into(
            &ctx,
            &state,
            cond,
            5e-12,
            &opts,
            &mut spent,
            &mut scratch,
            &mut sol,
        )
        .expect("warmup solve");
    }
    let (s0, b0) = allocs_now();
    let mut ns_per_solve = f64::INFINITY;
    for _ in 0..windows {
        let t0 = Instant::now();
        for _ in 0..solve_reps {
            solve_region_into(
                &ctx,
                &state,
                cond,
                5e-12,
                &opts,
                &mut spent,
                &mut scratch,
                &mut sol,
            )
            .expect("warm solve");
        }
        let solve_time = t0.elapsed();
        ns_per_solve = ns_per_solve.min(solve_time.as_secs_f64() * 1e9 / solve_reps as f64);
    }
    let (s1, b1) = allocs_now();
    let total_solves = (windows * solve_reps) as f64;
    let allocs_per_solve = (s1 - s0) as f64 / total_solves;
    let bytes_per_solve = (b1 - b0) as f64 / total_solves;

    let warm_speedup = BEFORE_WARM_NS_PER_ARC / warm_ns_per_arc.max(1e-9);
    let cold_speedup = BEFORE_COLD_NS_PER_ARC / cold_ns_per_arc.max(1e-9);
    let allocs_ok = allocs_per_solve == 0.0 && allocs_per_eval <= ALLOCS_PER_EVAL_MAX;
    let meets_target = allocs_ok && (smoke || warm_speedup >= TARGET_SPEEDUP);

    println!(
        "cold:  {cold_ns_per_arc:>10.0} ns/arc  ({cold_arcs} arcs, {cold_speedup:.2}x vs before)"
    );
    println!("warm:  {warm_ns_per_arc:>10.0} ns/arc  ({warm_speedup:.2}x vs before, {allocs_per_eval:.1} allocs/eval)");
    println!("solve: {ns_per_solve:>10.0} ns/solve ({allocs_per_solve} allocs, {bytes_per_solve} bytes steady-state)");
    println!(
        "target {}: {}",
        if smoke {
            "zero allocs/solve + bounded allocs/eval (smoke)".to_string()
        } else {
            format!("{TARGET_SPEEDUP}x warm + zero allocs/solve")
        },
        if meets_target { "MET" } else { "MISSED" }
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"qwm.kernel.v1\",\n");
    json.push_str(&format!("  \"stages\": {STAGES},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"input_slew_ps\": {:.1},\n", INPUT_SLEW * 1e12));
    json.push_str(&format!("  \"cold_ns_per_arc\": {cold_ns_per_arc:.0},\n"));
    json.push_str(&format!("  \"warm_ns_per_arc\": {warm_ns_per_arc:.0},\n"));
    json.push_str(&format!("  \"ns_per_solve\": {ns_per_solve:.0},\n"));
    json.push_str(&format!("  \"allocs_per_eval\": {allocs_per_eval:.1},\n"));
    json.push_str(&format!(
        "  \"allocs_per_solve_steady\": {allocs_per_solve},\n"
    ));
    json.push_str(&format!(
        "  \"bytes_per_solve_steady\": {bytes_per_solve},\n"
    ));
    json.push_str(&format!(
        "  \"before_cold_ns_per_arc\": {BEFORE_COLD_NS_PER_ARC},\n"
    ));
    json.push_str(&format!(
        "  \"before_warm_ns_per_arc\": {BEFORE_WARM_NS_PER_ARC},\n"
    ));
    json.push_str(&format!(
        "  \"before_ns_per_solve\": {BEFORE_NS_PER_SOLVE},\n"
    ));
    json.push_str(&format!(
        "  \"before_allocs_per_solve\": {BEFORE_ALLOCS_PER_SOLVE},\n"
    ));
    json.push_str(&format!(
        "  \"before_allocs_per_eval\": {BEFORE_ALLOCS_PER_EVAL},\n"
    ));
    json.push_str(&format!("  \"warm_speedup\": {warm_speedup:.2},\n"));
    json.push_str(&format!("  \"cold_speedup\": {cold_speedup:.2},\n"));
    json.push_str(&format!("  \"target_speedup\": {TARGET_SPEEDUP},\n"));
    json.push_str(&format!(
        "  \"allocs_per_eval_max\": {ALLOCS_PER_EVAL_MAX},\n"
    ));
    json.push_str(&format!("  \"meets_target\": {meets_target}\n"));
    json.push_str("}\n");
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("kernel_bench: cannot write {out_path}: {e}");
            return std::process::ExitCode::FAILURE;
        }
    }
    if meets_target {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
