//! server_restart — kill/restart smoke driver for `qwm serve --store`.
//!
//! ```text
//! server_restart --qwm <path/to/qwm> [--deck <deck.sp>] [--store <dir>]
//!                [--out <BENCH_restart.json>]
//! ```
//!
//! Boots a stored server, commits a session (`load`, `run`, `edit`,
//! `run`, `edit`), SIGKILLs it mid-session, restarts it against the
//! same store, and verifies the durability contract end to end:
//!
//! * `report` after restart is byte-identical to the last committed
//!   report before the kill;
//! * the first `run` after restart is byte-identical to a
//!   never-restarted reference server's and goes through the
//!   incremental path (`full_run=false`);
//! * `store status` reports the restore and zero device
//!   re-characterizations in the revived process.
//!
//! Exits nonzero on any violation; with `--out`, writes a small JSON
//! artifact so CI logs capture what was measured.

use qwm::server::Client;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct Args {
    qwm: String,
    deck: String,
    store: Option<PathBuf>,
    out: Option<String>,
}

fn usage() -> &'static str {
    "usage: server_restart --qwm <path/to/qwm> [--deck <deck.sp>] [--store <dir>]\n\
     \u{20}                     [--out <BENCH_restart.json>]"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut qwm = None;
    let mut deck = "testdata/path4.sp".to_string();
    let mut store = None;
    let mut out = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--qwm" => qwm = Some(it.next().ok_or("--qwm needs a path")?.clone()),
            "--deck" => deck = it.next().ok_or("--deck needs a path")?.clone(),
            "--store" => store = Some(PathBuf::from(it.next().ok_or("--store needs a dir")?)),
            "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }
    Ok(Args {
        qwm: qwm.ok_or_else(|| format!("--qwm is required\n{}", usage()))?,
        deck,
        store,
        out,
    })
}

struct Serve {
    child: Child,
    addr: String,
}

fn start(qwm: &str, store: &Path) -> Result<Serve, String> {
    let mut child = Command::new(qwm)
        .args(["serve", "--addr", "127.0.0.1:0"])
        .arg("--store")
        .arg(store)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {qwm}: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let first = BufReader::new(stdout)
        .lines()
        .next()
        .ok_or("server exited before printing its address")?
        .map_err(|e| format!("read banner: {e}"))?;
    let addr = first
        .strip_prefix("listening on ")
        .ok_or_else(|| format!("unexpected banner {first:?}"))?
        .to_string();
    Ok(Serve { child, addr })
}

fn connect(serve: &Serve) -> Result<Client, String> {
    let mut c = Client::connect(&serve.addr).map_err(|e| format!("connect: {e}"))?;
    c.set_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("timeout: {e}"))?;
    Ok(c)
}

fn kill(mut serve: Serve) -> Result<(), String> {
    serve.child.kill().map_err(|e| format!("kill: {e}"))?;
    serve.child.wait().map_err(|e| format!("wait: {e}"))?;
    Ok(())
}

fn send_ok(c: &mut Client, line: &str) -> Result<(String, String), String> {
    let r = c.send(line).map_err(|e| format!("{line:?}: {e}"))?;
    if !r.ok() {
        return Err(format!("{line:?}: {} {}", r.status, r.head));
    }
    Ok((r.head.clone(), r.body().to_string()))
}

/// The committed script: two runs with an edit between them, plus one
/// more edit left pending when the kill lands.
fn drive(c: &mut Client, sid: &str, deck: &str) -> Result<String, String> {
    let r = c.load(sid, deck).map_err(|e| format!("load: {e}"))?;
    if !r.ok() {
        return Err(format!("load: {} {}", r.status, r.head));
    }
    send_ok(c, &format!("run {sid} qwm slew_ps=20"))?;
    let e = c
        .edit(sid, "resize MN2 1.2u\nload n2 20f\n")
        .map_err(|e| format!("edit: {e}"))?;
    if !e.ok() {
        return Err(format!("edit: {} {}", e.status, e.head));
    }
    let (_, second) = send_ok(c, &format!("run {sid} qwm slew_ps=20"))?;
    let e = c
        .edit(sid, "resize MN4 1.5u\n")
        .map_err(|e| format!("edit: {e}"))?;
    if !e.ok() {
        return Err(format!("edit 2: {} {}", e.status, e.head));
    }
    Ok(second)
}

fn run(args: &Args) -> Result<String, String> {
    let deck = std::fs::read_to_string(&args.deck).map_err(|e| format!("{}: {e}", args.deck))?;
    let store = match &args.store {
        Some(d) => d.clone(),
        None => std::env::temp_dir().join(format!("qwm-restart-smoke-{}", std::process::id())),
    };
    let _ = std::fs::remove_dir_all(&store);
    let ref_store = store.with_extension("ref");
    let _ = std::fs::remove_dir_all(&ref_store);

    // Reference: never killed, runs the whole script in one life.
    let reference = start(&args.qwm, &ref_store)?;
    let mut rc = connect(&reference)?;
    drive(&mut rc, "d", &deck)?;
    let (_, ref_third) = send_ok(&mut rc, "run d qwm slew_ps=20")?;
    kill(reference)?;

    // Victim: same script, SIGKILLed before the pending edit is run.
    let victim = start(&args.qwm, &store)?;
    let mut vc = connect(&victim)?;
    let committed = drive(&mut vc, "d", &deck)?;
    kill(victim)?;

    // Revival: the session must come back warm and bitwise.
    let revived = start(&args.qwm, &store)?;
    let mut c = connect(&revived)?;
    let (_, report) = send_ok(&mut c, "report d")?;
    if report != committed {
        return Err("restored report differs from the last committed report".to_string());
    }
    let (status, _) = send_ok(&mut c, "store status")?;
    if !status.contains("restores=1") {
        return Err(format!("expected restores=1 in {status:?}"));
    }
    if !status.contains("characterizations=0") {
        return Err(format!("expected characterizations=0 in {status:?}"));
    }
    let (_, third) = send_ok(&mut c, "run d qwm slew_ps=20")?;
    if third != ref_third {
        return Err("restored first run differs from never-restarted reference".to_string());
    }
    let (stats, _) = send_ok(&mut c, "stats d")?;
    if !stats.contains("full_run=false") {
        return Err(format!(
            "first restored query was not incremental: {stats:?}"
        ));
    }
    kill(revived)?;
    let _ = std::fs::remove_dir_all(&store);
    let _ = std::fs::remove_dir_all(&ref_store);

    Ok(format!(
        "{{\n  \"schema\": \"qwm.restart.v1\",\n  \"deck\": {:?},\n  \
         \"bitwise_identical\": true,\n  \"incremental_first_query\": true,\n  \
         \"restores\": 1,\n  \"recharacterizations\": 0\n}}\n",
        args.deck
    ))
}

fn main() -> std::process::ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(json) => {
            if let Some(out) = &args.out {
                if let Err(e) = std::fs::write(out, &json) {
                    eprintln!("write {out}: {e}");
                    return std::process::ExitCode::FAILURE;
                }
                println!("wrote {out}");
            }
            println!("restart smoke: bitwise warm restart verified");
            std::process::ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("restart smoke failed: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}
