//! Table I: QWM vs the SPICE baseline on minimum-size logic gates
//! (inverter, NAND2–4), falling output, step inputs.
use qwm::circuit::cells;
use qwm_bench::{compare_fall, print_row, print_summary, print_table_header, Bench};

fn main() {
    let bench = Bench::new();
    println!("Table I — QWM vs SPICE-class baseline, minimum-size gates\n");
    print_table_header();
    let mut rows = Vec::new();
    let gates: Vec<(&str, qwm::circuit::LogicStage)> = vec![
        (
            "inv",
            cells::inverter(&bench.tech, cells::DEFAULT_LOAD).unwrap(),
        ),
        (
            "nand2",
            cells::nand(&bench.tech, 2, cells::DEFAULT_LOAD).unwrap(),
        ),
        (
            "nand3",
            cells::nand(&bench.tech, 3, cells::DEFAULT_LOAD).unwrap(),
        ),
        (
            "nand4",
            cells::nand(&bench.tech, 4, cells::DEFAULT_LOAD).unwrap(),
        ),
    ];
    for (name, stage) in &gates {
        let row = compare_fall(&bench, name, stage, 20).expect("comparison");
        print_row(&row);
        rows.push(row);
    }
    println!();
    print_summary(&rows);

    println!(
        "\nwith the refined evaluator (midpoint caps + adaptive splitting — beyond the paper):\n"
    );
    qwm_bench::print_table_header();
    let mut refined = Vec::new();
    for (name, stage) in &gates {
        let row = qwm_bench::compare_fall_with(
            &bench,
            name,
            stage,
            20,
            &qwm::core::evaluate::QwmConfig::refined(),
        )
        .expect("comparison");
        print_row(&row);
        refined.push(row);
    }
    println!();
    print_summary(&refined);
    // Telemetry appendix (enabled via QWM_OBS=summary|json).
    qwm::obs::emit();
}
