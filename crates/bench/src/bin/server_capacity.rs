//! Capacity-discovery driver for `qwm serve`: ramps offered load from
//! workload decks until a stop threshold trips, binary-searches the
//! maximum sustainable rps, and writes `BENCH_capacity_server.json` —
//! the artifact `compare` turns into a cross-PR regression gate.
//!
//! ```text
//! server_capacity --addr 127.0.0.1:7117 --workload testdata/workloads/heavy_run.deck
//!                 [--workload ...] [--seed <u64>] [--connections <n>]
//!                 [--out BENCH_capacity_server.json]
//!                 [--initial-rps <n>] [--increment-rps <n>] [--max-rps <n>]
//!                 [--round-ms <n>] [--sessions <n>] [--shutdown]
//!
//! server_capacity plan --workload <deck> --rps <n> [--seed <u64>]
//!
//! server_capacity compare <old.json> <new.json> [--max-regression-pct <f>]
//! ```
//!
//! `plan` prints the deterministic op log a round would execute without
//! touching any server (the replay-pinning artifact). `compare` exits
//! non-zero when any workload's discovered max rps regressed by more
//! than the allowed percentage. The `--initial-rps`-family flags
//! override every loaded deck — how the check.sh smoke shrinks the
//! stock decks to a bounded run on an ephemeral port.

use qwm_bench::capacity::{
    compare_reports, discover_capacity, parse_workload, plan_round, render_op_log, results_json,
    ExperimentResult, WorkloadSpec,
};
use std::io::Write as _;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: server_capacity --addr <host:port> --workload <deck> [--workload <deck>]...\n\
     \u{20}       [--seed <u64>] [--connections <n>] [--out <file>]\n\
     \u{20}       [--initial-rps <n>] [--increment-rps <n>] [--max-rps <n>]\n\
     \u{20}       [--round-ms <n>] [--sessions <n>] [--shutdown]\n\
     \u{20}  or:  server_capacity plan --workload <deck> --rps <n> [--seed <u64>]\n\
     \u{20}  or:  server_capacity compare <old.json> <new.json> [--max-regression-pct <f>]"
}

struct Overrides {
    initial_rps: Option<u32>,
    increment_rps: Option<u32>,
    max_rps: Option<u32>,
    round_ms: Option<u64>,
    sessions: Option<usize>,
}

impl Overrides {
    fn apply(&self, spec: &mut WorkloadSpec) {
        if let Some(v) = self.initial_rps {
            spec.initial_rps = v;
        }
        if let Some(v) = self.increment_rps {
            spec.increment_rps = v;
        }
        if let Some(v) = self.max_rps {
            spec.max_rps = v;
        }
        if let Some(v) = self.round_ms {
            spec.round_ms = v;
        }
        if let Some(v) = self.sessions {
            spec.sessions = v;
        }
    }
}

fn load_workload(path: &str) -> Result<WorkloadSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse_workload(&text).map_err(|e| format!("{path}: {e}"))
}

fn main_compare(argv: &[String]) -> Result<(), String> {
    let mut files = Vec::new();
    let mut max_regression_pct = 10.0;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-regression-pct" => {
                max_regression_pct = it
                    .next()
                    .ok_or("--max-regression-pct needs a percentage")?
                    .parse()
                    .map_err(|e| format!("bad --max-regression-pct: {e}"))?;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other if !other.starts_with('-') => files.push(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        return Err(format!("compare needs exactly two files\n{}", usage()));
    };
    let old = std::fs::read_to_string(old_path).map_err(|e| format!("read {old_path}: {e}"))?;
    let new = std::fs::read_to_string(new_path).map_err(|e| format!("read {new_path}: {e}"))?;
    let summary = compare_reports(&old, &new, max_regression_pct)
        .map_err(|e| format!("capacity regression vs {old_path}:\n{e}"))?;
    println!("{summary}");
    println!("server_capacity: compare ok ({max_regression_pct:.1}% regression allowed)");
    Ok(())
}

fn main_plan(argv: &[String]) -> Result<(), String> {
    let mut workload = None;
    let mut rps: Option<u32> = None;
    let mut seed = 0x0BAD_5EED_u64;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{a} needs {what}"))
        };
        match a.as_str() {
            "--workload" => workload = Some(next("a deck file")?.clone()),
            "--rps" => {
                rps = Some(
                    next("a rate")?
                        .parse()
                        .map_err(|e| format!("bad --rps: {e}"))?,
                );
            }
            "--seed" => {
                seed = next("a u64")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }
    let workload = workload.ok_or(format!("plan needs --workload\n{}", usage()))?;
    let rps = rps.ok_or(format!("plan needs --rps\n{}", usage()))?;
    let spec = load_workload(&workload)?;
    // The op log must not depend on live server state, so the device
    // list comes straight from the SPICE deck.
    let deck = std::fs::read_to_string(&spec.deck).map_err(|e| format!("{}: {e}", spec.deck))?;
    let netlist =
        qwm::circuit::parser::parse_netlist(&deck).map_err(|e| format!("{}: {e}", spec.deck))?;
    let devices: Vec<String> = netlist
        .devices()
        .iter()
        .filter(|d| d.gate.is_some())
        .map(|d| d.name.clone())
        .collect();
    print!("{}", render_op_log(&plan_round(&spec, &devices, seed, rps)));
    Ok(())
}

fn main_ramp(argv: &[String]) -> Result<(), String> {
    let mut addr = String::new();
    let mut workloads = Vec::new();
    let mut seed = 0x0BAD_5EED_u64;
    let mut connections = 4usize;
    let mut out_path = "BENCH_capacity_server.json".to_string();
    let mut shutdown = false;
    let mut ov = Overrides {
        initial_rps: None,
        increment_rps: None,
        max_rps: None,
        round_ms: None,
        sessions: None,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{a} needs {what}"))
        };
        match a.as_str() {
            "--addr" => addr = next("host:port")?.clone(),
            "--workload" => workloads.push(next("a deck file")?.clone()),
            "--seed" => {
                seed = next("a u64")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--connections" => {
                connections = next("a count")?
                    .parse()
                    .map_err(|e| format!("bad --connections: {e}"))?;
            }
            "--out" => out_path = next("a file")?.clone(),
            "--initial-rps" => {
                ov.initial_rps = Some(
                    next("a rate")?
                        .parse()
                        .map_err(|e| format!("bad --initial-rps: {e}"))?,
                );
            }
            "--increment-rps" => {
                ov.increment_rps = Some(
                    next("a rate")?
                        .parse()
                        .map_err(|e| format!("bad --increment-rps: {e}"))?,
                );
            }
            "--max-rps" => {
                ov.max_rps = Some(
                    next("a rate")?
                        .parse()
                        .map_err(|e| format!("bad --max-rps: {e}"))?,
                );
            }
            "--round-ms" => {
                ov.round_ms = Some(
                    next("a duration")?
                        .parse()
                        .map_err(|e| format!("bad --round-ms: {e}"))?,
                );
            }
            "--sessions" => {
                ov.sessions = Some(
                    next("a count")?
                        .parse()
                        .map_err(|e| format!("bad --sessions: {e}"))?,
                );
            }
            "--shutdown" => shutdown = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }
    if addr.is_empty() {
        return Err(format!("--addr is required\n{}", usage()));
    }
    if workloads.is_empty() {
        return Err(format!("at least one --workload is required\n{}", usage()));
    }
    if connections == 0 {
        return Err("--connections must be at least 1".to_string());
    }

    let mut results: Vec<ExperimentResult> = Vec::new();
    for path in &workloads {
        let mut spec = load_workload(path)?;
        ov.apply(&mut spec);
        let r = discover_capacity(&addr, &spec, seed, connections)?;
        println!(
            "server_capacity: {} max sustainable {} rps over {} rounds{}",
            r.spec.name,
            r.max_sustainable_rps,
            r.rounds.len(),
            if r.saturated {
                ""
            } else {
                " (never saturated; raise max_rps)"
            }
        );
        results.push(r);
    }

    if shutdown {
        match qwm::server::Client::connect(&addr).and_then(|mut c| c.send("shutdown")) {
            Ok(r) if r.ok() => {}
            Ok(r) => eprintln!("server_capacity: shutdown: {} {}", r.status, r.head),
            Err(e) => eprintln!("server_capacity: shutdown: {e}"),
        }
    }

    let json = results_json(seed, &results);
    std::fs::File::create(&out_path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("server_capacity: wrote {out_path}");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("compare") => main_compare(&argv[1..]),
        Some("plan") => main_plan(&argv[1..]),
        _ => main_ramp(&argv),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
