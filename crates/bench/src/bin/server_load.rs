//! Load generator for `qwm serve`: seeded what-if edit streams over N
//! concurrent connections, reporting client-side latency percentiles
//! and the warm-incremental vs per-process-cold speedup to
//! `BENCH_server.json`.
//!
//! ```text
//! server_load --addr 127.0.0.1:7117 [--connections 8] [--requests 50]
//!             [--seed 3135097598] [--deck testdata/path4.sp]
//!             [--out BENCH_server.json] [--cold target/release/qwm]
//!             [--shutdown]
//! ```
//!
//! Each connection owns one session: it loads the deck, then issues
//! `requests` rounds of a seeded `edit` (random transistor resize)
//! followed by `run qwm slew_ps=20`, timing each edit+run round-trip.
//! With `--cold <qwm-bin>` the same queries are replayed as one-shot
//! CLI invocations (`qwm <deck> --edits <file> --slew 20`), which pay
//! parse + characterization + full propagation every time — the
//! baseline the persistent server exists to beat.
//!
//! Exits non-zero if any request fails, so CI can gate on it.

use qwm::circuit::parser::parse_netlist;
use qwm::server::Client;
use qwm_bench::load::edit_script;
use std::io::Write as _;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    connections: usize,
    requests: usize,
    seed: u64,
    deck: String,
    out: String,
    cold: Option<String>,
    shutdown: bool,
    /// Write a line-oriented JSON telemetry dump (server `metrics` plus
    /// one traced run's span tree) for `qwm obs-report`.
    obs_dump: Option<String>,
}

fn usage() -> &'static str {
    "usage: server_load --addr <host:port> [--connections <n>] [--requests <n>]\n\
     \u{20}       [--seed <u64>] [--deck <file>] [--out <file>]\n\
     \u{20}       [--cold <qwm-bin>] [--obs-dump <file>] [--shutdown]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        connections: 8,
        requests: 50,
        seed: 0x0BAD_5EED_u64,
        deck: "testdata/path4.sp".to_string(),
        out: "BENCH_server.json".to_string(),
        cold: None,
        shutdown: false,
        obs_dump: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{a} needs {what}"))
        };
        match a.as_str() {
            "--addr" => args.addr = next("host:port")?,
            "--connections" => {
                args.connections = next("a count")?
                    .parse()
                    .map_err(|e| format!("bad --connections: {e}"))?;
            }
            "--requests" => {
                args.requests = next("a count")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?;
            }
            "--seed" => {
                args.seed = next("a u64")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--deck" => args.deck = next("a file")?,
            "--out" => args.out = next("a file")?,
            "--cold" => args.cold = Some(next("the qwm binary")?),
            "--obs-dump" => args.obs_dump = Some(next("a file")?),
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }
    if args.addr.is_empty() {
        return Err(format!("--addr is required\n{}", usage()));
    }
    if args.connections == 0 || args.requests == 0 {
        return Err("--connections and --requests must be at least 1".to_string());
    }
    Ok(args)
}

struct StreamResult {
    latencies: Vec<Duration>,
    /// Server-reported queue wait per `run` (the `wait_ns=` head field).
    waits: Vec<Duration>,
    /// Server-reported solve time per `run` (the `solve_ns=` head field).
    solves: Vec<Duration>,
    failures: usize,
    /// `429 busy` responses absorbed by retrying — backpressure, not
    /// failure, but reported so saturation is visible.
    rejections: usize,
}

/// Extracts an integer `key=<n>` token from a reply head line.
fn head_field(head: &str, key: &str) -> Option<u64> {
    head.split_whitespace()
        .find_map(|t| t.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
        .and_then(|v| v.parse().ok())
}

/// Sends a closure-built request, retrying `429 busy` with backoff.
/// Returns the successful reply, or `None` after exhausting retries or
/// on any other error (which the caller counts as a failure).
fn with_busy_retry(
    rejections: &mut usize,
    mut send: impl FnMut() -> std::io::Result<qwm::server::Reply>,
) -> Option<qwm::server::Reply> {
    for attempt in 0..50u32 {
        match send() {
            Ok(r) if r.status == 429 => {
                *rejections += 1;
                std::thread::sleep(Duration::from_micros(200 * u64::from(attempt + 1)));
            }
            Ok(r) if r.ok() => return Some(r),
            Ok(_) | Err(_) => return None,
        }
    }
    None
}

/// One connection's warm workload: load the deck, then `requests`
/// seeded edit+run round-trips against its private session.
fn warm_stream(args: &Args, deck: &str, devices: &[String], conn: usize) -> StreamResult {
    let mut out = StreamResult {
        latencies: Vec::with_capacity(args.requests),
        waits: Vec::with_capacity(args.requests),
        solves: Vec::with_capacity(args.requests),
        failures: 0,
        rejections: 0,
    };
    let mut client = match Client::connect(&args.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("server_load: conn {conn}: connect: {e}");
            out.failures += args.requests;
            return out;
        }
    };
    let sid = format!("load-{conn}");
    if with_busy_retry(&mut out.rejections, || client.load(&sid, deck)).is_none() {
        eprintln!("server_load: conn {conn}: load failed");
        out.failures += args.requests;
        return out;
    }
    for i in 0..args.requests {
        // Lane-mixed (seed, connection, round) stream: no aliasing
        // between adjacent seeds or connections (see qwm_bench::load).
        let script = edit_script(devices, args.seed, conn as u64, i as u64);
        let t0 = Instant::now();
        let edited = with_busy_retry(&mut out.rejections, || client.edit(&sid, &script));
        let ran = edited.and_then(|_| {
            with_busy_retry(&mut out.rejections, || {
                client.send(&format!("run {sid} qwm slew_ps=20"))
            })
        });
        match ran {
            Some(reply) => {
                out.latencies.push(t0.elapsed());
                // Server-side split of the same round-trip: time queued
                // behind admission control vs time actually solving.
                if let Some(ns) = head_field(&reply.head, "wait_ns") {
                    out.waits.push(Duration::from_nanos(ns));
                }
                if let Some(ns) = head_field(&reply.head, "solve_ns") {
                    out.solves.push(Duration::from_nanos(ns));
                }
            }
            None => out.failures += 1,
        }
    }
    out
}

/// The cold baseline: the same seeded edit queries as fresh `qwm`
/// processes, offered at the *same concurrency* as the warm streams —
/// `connections` workers each spawning its own sequence of one-shot
/// invocations. Holding offered load constant is what makes the
/// warm/cold medians comparable: both sides contend for the same
/// cores.
fn cold_streams(args: &Args, qwm_bin: &str, devices: &[String], rounds: usize) -> Vec<Duration> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.connections)
            .map(|conn| {
                scope.spawn(move || {
                    let mut times = Vec::with_capacity(rounds);
                    let edits_path = std::env::temp_dir().join(format!(
                        "server_load_cold_{}_{conn}.edits",
                        std::process::id()
                    ));
                    for i in 0..rounds {
                        let script = edit_script(devices, args.seed, conn as u64, i as u64);
                        if let Err(e) = std::fs::write(&edits_path, &script) {
                            eprintln!("server_load: cold: write {}: {e}", edits_path.display());
                            break;
                        }
                        let t0 = Instant::now();
                        let status = std::process::Command::new(qwm_bin)
                            .arg(&args.deck)
                            .arg("--edits")
                            .arg(&edits_path)
                            .arg("--slew")
                            .arg("20")
                            .stdout(std::process::Stdio::null())
                            .stderr(std::process::Stdio::null())
                            .status();
                        match status {
                            Ok(s) if s.success() => times.push(t0.elapsed()),
                            Ok(s) => eprintln!("server_load: cold run {conn}/{i}: exit {s}"),
                            Err(e) => eprintln!("server_load: cold run {conn}/{i}: {e}"),
                        }
                    }
                    let _ = std::fs::remove_file(&edits_path);
                    times
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
}

/// Builds the `--obs-dump` payload: loads a dedicated session, traces
/// one run, and concatenates the span-tree JSON with the server's
/// metrics JSON. Any step failing aborts the dump (never the bench).
fn obs_dump(args: &Args, deck: &str) -> Result<String, String> {
    fn cmd(
        client: &mut Client,
        rejections: &mut usize,
        line: &str,
    ) -> Result<qwm::server::Reply, String> {
        with_busy_retry(rejections, || client.send(line)).ok_or(format!("{line:?} failed"))
    }
    let mut rejections = 0usize;
    let mut client = Client::connect(&args.addr).map_err(|e| format!("connect: {e}"))?;
    let sid = "load-obs";
    with_busy_retry(&mut rejections, || client.load(sid, deck)).ok_or("load failed".to_string())?;
    cmd(&mut client, &mut rejections, &format!("trace {sid} on"))?;
    cmd(
        &mut client,
        &mut rejections,
        &format!("run {sid} qwm slew_ps=20"),
    )?;
    let trace = cmd(
        &mut client,
        &mut rejections,
        &format!("trace {sid} last json"),
    )?;
    cmd(&mut client, &mut rejections, &format!("trace {sid} off"))?;
    let metrics = cmd(&mut client, &mut rejections, "metrics")?;
    let _ = client.send(&format!("close {sid}"));
    let mut dump = metrics.payload.unwrap_or_default();
    dump.push_str(&trace.payload.unwrap_or_default());
    Ok(dump)
}

/// Exact nearest-rank percentile over the sorted sample, in
/// microseconds — the NaN-safe [`qwm::num::stats::percentile_nearest`]
/// with empty samples mapped to `0.0` so report rows stay total.
fn pct_us(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let us: Vec<f64> = sorted.iter().map(|d| d.as_secs_f64() * 1e6).collect();
    qwm::num::stats::percentile_nearest(&us, q).expect("finite latency samples")
}

fn main() -> std::process::ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let deck = match std::fs::read_to_string(&args.deck) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("server_load: cannot read {}: {e}", args.deck);
            return std::process::ExitCode::FAILURE;
        }
    };
    let netlist = match parse_netlist(&deck) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("server_load: {}: {e}", args.deck);
            return std::process::ExitCode::FAILURE;
        }
    };
    // Transistors only: wires/caps have no gate and no width to resize.
    let devices: Vec<String> = netlist
        .devices()
        .iter()
        .filter(|d| d.gate.is_some())
        .map(|d| d.name.clone())
        .collect();
    if devices.is_empty() {
        eprintln!("server_load: {} has no transistors to edit", args.deck);
        return std::process::ExitCode::FAILURE;
    }

    let t_all = Instant::now();
    let results: Vec<StreamResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.connections)
            .map(|conn| {
                let (args, deck, devices) = (&args, deck.as_str(), devices.as_slice());
                scope.spawn(move || warm_stream(args, deck, devices, conn))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t_all.elapsed();

    let mut latencies: Vec<Duration> = results.iter().flat_map(|r| r.latencies.clone()).collect();
    latencies.sort();
    let mut waits: Vec<Duration> = results.iter().flat_map(|r| r.waits.clone()).collect();
    waits.sort();
    let mut solves: Vec<Duration> = results.iter().flat_map(|r| r.solves.clone()).collect();
    solves.sort();
    let failures: usize = results.iter().map(|r| r.failures).sum();
    let rejections: usize = results.iter().map(|r| r.rejections).sum();
    let total = args.connections * args.requests;
    let mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().map(|d| d.as_secs_f64()).sum::<f64>() / latencies.len() as f64 * 1e6
    };
    let (p50, p95, p99) = (
        pct_us(&latencies, 0.50),
        pct_us(&latencies, 0.95),
        pct_us(&latencies, 0.99),
    );

    // Cold comparison: a handful of rounds per worker is enough for a
    // stable median, and each costs a full process + characterization.
    let cold = args.cold.as_ref().map(|bin| {
        let rounds = args.requests.clamp(3, 5);
        let mut t = cold_streams(&args, bin, &devices, rounds);
        t.sort();
        t
    });
    let cold_median_us = cold.as_ref().map(|t| pct_us(t, 0.50));
    let speedup = cold_median_us.and_then(|c| (p50 > 0.0).then_some(c / p50));

    // Telemetry dump for `qwm obs-report`: one traced run's span tree
    // plus the server's full metrics registry, as JSON lines.
    if let Some(dump_path) = &args.obs_dump {
        match obs_dump(&args, &deck) {
            Ok(dump) => {
                if let Err(e) = std::fs::write(dump_path, dump) {
                    eprintln!("server_load: cannot write {dump_path}: {e}");
                }
            }
            Err(e) => eprintln!("server_load: obs dump: {e}"),
        }
    }

    if args.shutdown {
        match Client::connect(&args.addr).and_then(|mut c| c.send("shutdown")) {
            Ok(r) if r.ok() => {}
            Ok(r) => eprintln!("server_load: shutdown: {} {}", r.status, r.head),
            Err(e) => eprintln!("server_load: shutdown: {e}"),
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"deck\": \"{}\",\n", args.deck));
    json.push_str(&format!("  \"connections\": {},\n", args.connections));
    json.push_str(&format!(
        "  \"requests_per_connection\": {},\n",
        args.requests
    ));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!("  \"total_requests\": {total},\n"));
    json.push_str(&format!("  \"failures\": {failures},\n"));
    json.push_str(&format!("  \"busy_retries\": {rejections},\n"));
    json.push_str(&format!(
        "  \"wall_ms\": {:.3},\n",
        wall.as_secs_f64() * 1e3
    ));
    json.push_str(&format!(
        "  \"warm\": {{ \"mean_us\": {mean_us:.1}, \"p50_us\": {p50:.1}, \
         \"p95_us\": {p95:.1}, \"p99_us\": {p99:.1} }},\n"
    ));
    // Server-side split of each warm run: queue wait (admission to job
    // start) vs solve time, from the run reply's wait_ns=/solve_ns=.
    json.push_str(&format!(
        "  \"warm_breakdown\": {{ \"queue_wait_p50_us\": {:.1}, \"queue_wait_p95_us\": {:.1}, \
         \"solve_p50_us\": {:.1}, \"solve_p95_us\": {:.1} }}",
        pct_us(&waits, 0.50),
        pct_us(&waits, 0.95),
        pct_us(&solves, 0.50),
        pct_us(&solves, 0.95),
    ));
    if let (Some(t), Some(med)) = (&cold, cold_median_us) {
        json.push_str(&format!(
            ",\n  \"cold\": {{ \"runs\": {}, \"median_us\": {med:.1} }}",
            t.len()
        ));
    }
    if let Some(s) = speedup {
        json.push_str(&format!(",\n  \"speedup_median\": {s:.2}"));
    }
    json.push_str("\n}\n");

    match std::fs::File::create(&args.out).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("server_load: cannot write {}: {e}", args.out);
            return std::process::ExitCode::FAILURE;
        }
    }
    print!("{json}");
    println!(
        "server_load: {} ok / {} failed over {} connections; warm p50 {:.1} us{}",
        total - failures,
        failures,
        args.connections,
        p50,
        match speedup {
            Some(s) => format!("; cold/warm median speedup {s:.1}x"),
            None => String::new(),
        }
    );
    if failures > 0 {
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
