//! Figure 5: the NMOS device-model I/V surface — Ids against source
//! voltage Vs and drain voltage Vd at Vg = Vdd.
use qwm::device::model::{Geometry, TermVoltage};
use qwm_bench::{write_columns, Bench};

fn main() {
    let bench = Bench::new();
    let model = bench.spice_models.for_polarity(qwm::device::Polarity::Nmos);
    let geom = Geometry::new(1e-6, bench.tech.l_min);
    let vdd = bench.tech.vdd;
    let n = 34;
    let mut rows = Vec::new();
    for is in 0..n {
        let vs = vdd * is as f64 / (n - 1) as f64;
        for id in 0..n {
            let vd = vdd * id as f64 / (n - 1) as f64;
            let i = model
                .iv(&geom, TermVoltage::new(vdd, vd, vs))
                .expect("model eval");
            rows.push(vec![vs, vd, i]);
        }
        rows.push(vec![f64::NAN, f64::NAN, f64::NAN]); // gnuplot block break
    }
    let rows: Vec<Vec<f64>> = rows.into_iter().filter(|r| r[0].is_finite()).collect();
    let path = write_columns(
        "fig5_iv_surface.dat",
        "vs vd ids (NMOS, vg=vdd, w=1u)",
        &rows,
    );
    println!(
        "Figure 5 data ({} points) -> {}",
        rows.len(),
        path.display()
    );
    // Shape summary: current increases with |vd - vs| and vanishes when
    // the source rides at the gate.
    println!("Ids(vs=0, vd=vdd) = {:.4e} A", rows[33][2]);
    // Telemetry appendix (enabled via QWM_OBS=summary|json).
    qwm::obs::emit();
}
