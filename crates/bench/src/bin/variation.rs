//! Monte-Carlo statistical timing: QWM's order-of-magnitude speedup is
//! what makes per-sample re-evaluation affordable (the use case the
//! PARADE-style parametric-delay literature targets).
//!
//! Each sample perturbs the technology (±30 mV threshold σ, ±5 % k' σ,
//! Gaussian, seeded), rebuilds the analytic models and re-times the
//! paper's 6-NMOS stack with QWM. A handful of SPICE samples calibrate
//! what the same study would cost with the baseline.

use qwm::circuit::cells;
use qwm::circuit::waveform::{TransitionKind, Waveform};
use qwm::core::evaluate::{evaluate, QwmConfig};
use qwm::device::{analytic_models, Technology};
use qwm::num::rng::Rng64;
use qwm::num::stats::{mean, normal_from_uniforms, percentile, std_dev};
use qwm::spice::engine::{initial_uniform, simulate, TransientConfig};
use qwm_bench::write_columns;
use std::time::Instant;

fn main() {
    let nominal = Technology::cmosp35();
    let samples = 200usize;
    let sigma_vt = 0.030; // 30 mV
    let sigma_kp = 0.05; // 5 %
    let mut rng = Rng64::seed_from_u64(0x5151a7);

    let stage = cells::manchester_longest_path(&nominal, 4, cells::DEFAULT_LOAD).unwrap();
    let out = stage.node_by_name("out").unwrap();
    let inputs: Vec<Waveform> = (0..stage.inputs().len())
        .map(|_| Waveform::step(0.0, 0.0, nominal.vdd))
        .collect();

    let normal = |rng: &mut Rng64| normal_from_uniforms(rng.unit(), rng.unit());

    let t0 = Instant::now();
    let mut delays = Vec::with_capacity(samples);
    for _ in 0..samples {
        let tech = nominal.with_variation(
            sigma_vt * normal(&mut rng),
            sigma_vt * normal(&mut rng),
            (1.0 + sigma_kp * normal(&mut rng)).max(0.5),
            (1.0 + sigma_kp * normal(&mut rng)).max(0.5),
        );
        let models = analytic_models(&tech);
        let init = initial_uniform(&stage, &models, tech.vdd);
        let r = evaluate(
            &stage,
            &models,
            &inputs,
            &init,
            out,
            TransitionKind::Fall,
            &QwmConfig::default(),
        )
        .expect("qwm sample");
        delays.push(r.delay_50(tech.vdd, 0.0).expect("delay"));
    }
    let qwm_elapsed = t0.elapsed();

    let m = mean(&delays).unwrap();
    let s = std_dev(&delays).unwrap();
    let p50 = percentile(&delays, 0.5).unwrap();
    let p99 = percentile(&delays, 0.99).unwrap();
    println!("Monte-Carlo timing of the 6-NMOS stack ({samples} samples, sigma_vt = 30 mV, sigma_kp = 5%):");
    println!(
        "  mean {:.2} ps  sigma {:.2} ps ({:.1}%)  median {:.2} ps  p99 {:.2} ps",
        m * 1e12,
        s * 1e12,
        100.0 * s / m,
        p50 * 1e12,
        p99 * 1e12
    );
    println!(
        "  QWM wall time: {qwm_elapsed:?} total ({:?}/sample)",
        qwm_elapsed / samples as u32
    );

    // Calibrate the SPICE-per-sample cost on 5 nominal-ish samples.
    let spice_probe = 5usize;
    let t0 = Instant::now();
    for i in 0..spice_probe {
        let tech = nominal.with_variation(
            sigma_vt * (i as f64 / spice_probe as f64 - 0.5),
            0.0,
            1.0,
            1.0,
        );
        let models = analytic_models(&tech);
        let init = initial_uniform(&stage, &models, tech.vdd);
        let r = simulate(
            &stage,
            &models,
            &inputs,
            &init,
            &TransientConfig::hspice_1ps(3.5 * m),
        )
        .expect("spice sample");
        let _ = r
            .waveform(out)
            .unwrap()
            .crossing(tech.vdd / 2.0, false)
            .expect("falls");
    }
    let spice_per = t0.elapsed() / spice_probe as u32;
    println!(
        "  SPICE(1ps) per-sample cost: {spice_per:?} -> full study would take {:?} ({:.1}x the QWM study)",
        spice_per * samples as u32,
        (spice_per * samples as u32).as_secs_f64() / qwm_elapsed.as_secs_f64()
    );

    // Histogram for plotting.
    let bins = 24usize;
    let lo = delays.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = delays.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut hist = vec![0usize; bins];
    for &d in &delays {
        let b = (((d - lo) / (hi - lo)) * bins as f64).min(bins as f64 - 1.0) as usize;
        hist[b] += 1;
    }
    let rows: Vec<Vec<f64>> = hist
        .iter()
        .enumerate()
        .map(|(i, &c)| vec![lo + (hi - lo) * (i as f64 + 0.5) / bins as f64, c as f64])
        .collect();
    let path = write_columns(
        "variation_histogram.dat",
        "delay_s count (MC histogram)",
        &rows,
    );
    println!("  histogram -> {}", path.display());
    // Telemetry appendix (enabled via QWM_OBS=summary|json).
    qwm::obs::emit();
}
