//! Parallel STA scaling: slew-aware analysis of a randomized ~600-stage
//! DAG at increasing worker counts, recording the scaling curve.
//!
//! Each worker count gets a *fresh* engine (the per-stage delay caches
//! persist across runs, so reusing one engine would time cache hits,
//! not evaluations). The report digest is printed per run to make the
//! determinism contract visible: every row must show the same worst
//! arrival and evaluation count.
//!
//! Speedup is bounded by the machine: on a single-core container every
//! row times the same serial work plus scheduling overhead.
use qwm::circuit::waveform::TransitionKind;
use qwm::sta::engine::StaEngine;
use qwm::sta::evaluator::QwmEvaluator;
use qwm::sta::graph::random_dag_netlist;
use qwm_bench::Bench;
use std::time::Instant;

const STAGES: usize = 600;
const SEED: u64 = 0x5aa5_1234;
const INPUT_SLEW: f64 = 30e-12;

fn main() {
    let bench = Bench::new();
    println!(
        "random DAG: {STAGES} gates (seed {SEED:#x}), hardware threads = {}",
        qwm::exec::hardware_threads()
    );
    let mut t1 = None;
    for threads in [1usize, 2, 4, 8] {
        let nl = random_dag_netlist(&bench.tech, STAGES, SEED);
        let engine = StaEngine::new(nl, &bench.qwm_models, TransitionKind::Fall)
            .expect("engine")
            .with_threads(threads);
        let ev = QwmEvaluator::default();
        let t0 = Instant::now();
        let report = engine.run_with_slew(&ev, INPUT_SLEW).expect("run");
        let dt = t0.elapsed();
        let base = *t1.get_or_insert(dt);
        println!(
            "threads {threads}: {:?}  speedup {:.2}x  ({} evals, worst {:.2} ps at {})",
            dt,
            base.as_secs_f64() / dt.as_secs_f64().max(1e-9),
            report.evaluations,
            report.worst.expect("worst").1 * 1e12,
            engine.netlist().net_name(report.worst.expect("worst").0),
        );
    }
    // Telemetry appendix (enabled via QWM_OBS=summary|json).
    qwm::obs::emit();
}
