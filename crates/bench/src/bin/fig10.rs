//! Figure 10: decoder-tree path with exponentially growing wires. QWM
//! runs on the AWE π-macromodel reduction; the SPICE golden runs on the
//! fully distributed RC ladders. Waveform pairs at the two terminals of
//! each wire appear closely spaced, as in the paper.
use qwm::circuit::cells;
use qwm::circuit::waveform::TransitionKind;
use qwm::core::evaluate::{evaluate, QwmConfig};
use qwm::spice::engine::{simulate, TransientConfig};
use qwm_bench::{fall_setup, write_columns, Bench};
use std::time::Instant;

fn main() {
    let bench = Bench::new();
    let levels = 3;
    let base_len = 200e-6;
    let awe = cells::decoder_path_awe(&bench.tech, levels, base_len, cells::DEFAULT_LOAD, 16)
        .expect("awe decoder");
    let dist =
        cells::decoder_path_distributed(&bench.tech, levels, base_len, cells::DEFAULT_LOAD, 16)
            .expect("distributed decoder");

    // QWM on the π-reduced stage.
    let (inputs_a, init_a, out_a) = fall_setup(&bench, &awe);
    let t0 = Instant::now();
    let q = evaluate(
        &awe,
        &bench.qwm_models,
        &inputs_a,
        &init_a,
        out_a,
        TransitionKind::Fall,
        &QwmConfig::default(),
    )
    .expect("qwm on AWE stage");
    let t_qwm = t0.elapsed();
    let d_q = q.delay_50(bench.tech.vdd, 0.0).unwrap();

    // SPICE on the distributed stage.
    let (inputs_d, init_d, out_d) = fall_setup(&bench, &dist);
    let horizon = (3.0 * d_q).max(500e-12);
    let s = simulate(
        &dist,
        &bench.spice_models,
        &inputs_d,
        &init_d,
        &TransientConfig::hspice_1ps(horizon),
    )
    .expect("spice on distributed stage");
    let d_s = s
        .waveform(out_d)
        .unwrap()
        .crossing(bench.tech.vdd / 2.0, false)
        .expect("spice falls");

    // Waveform pairs at the terminals of each wire (both engines).
    let mut names = vec![];
    for l in 0..levels {
        names.push(format!("t{l}"));
        names.push(if l + 1 == levels {
            "out".into()
        } else {
            format!("w{l}")
        });
    }
    let mut rows = Vec::new();
    for (i, &t) in s.times.iter().enumerate() {
        let mut row = vec![t];
        for n in &names {
            let node = dist.node_by_name(n).unwrap();
            row.push(s.voltages[node.0][i]);
        }
        rows.push(row);
    }
    let p1 = write_columns(
        "fig10_spice_pairs.dat",
        "t then v at wire terminals t0 w0 t1 w1 t2 out (SPICE, distributed wires)",
        &rows,
    );
    let mut q_rows = Vec::new();
    for (k, w) in q.waveforms.iter().enumerate() {
        for (t, v) in w.breakpoints() {
            q_rows.push(vec![k as f64 + 1.0, t, v]);
        }
    }
    let p2 = write_columns(
        "fig10_qwm_breakpoints.dat",
        "chain-node t v (QWM on AWE pi models)",
        &q_rows,
    );
    println!("Figure 10 data -> {} and {}", p1.display(), p2.display());

    println!(
        "decoder path ({levels} levels, wires {:.0}/{:.0}/{:.0} um):",
        base_len * 1e6,
        base_len * 2e6,
        base_len * 4e6
    );
    println!(
        "  qwm+AWE delay {:.2} ps in {:?}; spice(distributed,1ps) delay {:.2} ps in {:?}",
        d_q * 1e12,
        t_qwm,
        d_s * 1e12,
        s.elapsed
    );
    println!(
        "  accuracy {:.2}%  speedup {:.1}x",
        100.0 - 100.0 * (d_q - d_s).abs() / d_s,
        s.elapsed.as_secs_f64() / t_qwm.as_secs_f64()
    );
    // Telemetry appendix (enabled via QWM_OBS=summary|json).
    qwm::obs::emit();
}
