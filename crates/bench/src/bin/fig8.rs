//! Figure 8: the tabular model's I/V curve fitting — linear in
//! saturation, quadratic in triode — with residuals.
use qwm::device::table::TableModel;
use qwm::device::Polarity;
use qwm_bench::{write_columns, Bench};

fn main() {
    let bench = Bench::new();
    let table = TableModel::with_defaults(bench.tech.clone(), Polarity::Nmos).unwrap();
    for (vs, vg) in [(0.0, 3.3), (0.5, 2.5), (1.0, 3.0)] {
        let report = table.fit_report(vs, vg).unwrap();
        let rows: Vec<Vec<f64>> = report
            .samples
            .iter()
            .map(|&(vds, i_ref)| {
                let (i_fit, _) = report.fit.eval(vds);
                vec![vds, i_ref, i_fit]
            })
            .collect();
        let file = format!("fig8_fit_vs{vs:.1}_vg{vg:.1}.dat");
        let path = write_columns(&file, "vds ids_reference ids_fit (per unit W/L)", &rows);
        let peak = report
            .samples
            .iter()
            .map(|s| s.1.abs())
            .fold(0.0_f64, f64::max);
        println!(
            "(vs={vs:.1}, vg={vg:.1}): vth={:.3} V vdsat={:.3} V rms={:.3e} A ({:.2}% of peak) max={:.3e} A -> {}",
            report.fit.vth,
            report.fit.vdsat,
            report.rms_error,
            100.0 * report.rms_error / peak.max(1e-30),
            report.max_error,
            path.display()
        );
    }
    println!("\n7 stored parameters per grid point: t0 t1 t2 (triode quadratic), s0 s1 (saturation linear), vth, vdsat");
    // Telemetry appendix (enabled via QWM_OBS=summary|json).
    qwm::obs::emit();
}
