//! The accuracy ladder: the paper's r = 1 evaluator, the refined
//! (midpoint caps + adaptive splitting) variant, and the r = 2
//! two-collocation model, all measured against the 1 ps baseline on the
//! Table II workload.
use qwm::core::evaluate::QwmConfig;
use qwm_bench::{compare_fall_with, table2_workload, Bench, ComparisonRow};

fn main() {
    let bench = Bench::new();
    let ladder: Vec<(&str, QwmConfig)> = vec![
        ("r=1 (paper)", QwmConfig::default()),
        ("refined", QwmConfig::refined()),
        ("r=2", QwmConfig::high_accuracy()),
    ];
    println!("Accuracy ladder over the Table II stacks (errors vs SPICE @ 1 ps):\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "evaluator", "speedup", "mean err", "worst err"
    );
    for (name, cfg) in &ladder {
        let mut rows: Vec<ComparisonRow> = Vec::new();
        for (wname, stage) in table2_workload(&bench) {
            rows.push(compare_fall_with(&bench, &wname, &stage, 5, cfg).expect("row"));
        }
        let n = rows.len() as f64;
        let speedup: f64 = rows.iter().map(ComparisonRow::speedup_1ps).sum::<f64>() / n;
        let mean: f64 = rows.iter().map(ComparisonRow::error_pct).sum::<f64>() / n;
        let worst: f64 = rows
            .iter()
            .map(ComparisonRow::error_pct)
            .fold(0.0, f64::max);
        println!("{name:<14} {speedup:>11.1}x {mean:>11.2}% {worst:>11.2}%");
    }
    // Telemetry appendix (enabled via QWM_OBS=summary|json).
    qwm::obs::emit();
}
