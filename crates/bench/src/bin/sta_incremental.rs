//! Incremental STA: cold full analysis vs dirty-cone re-analysis after
//! single edits on seeded `random_dag_netlist` workloads — the
//! ISSUE-4 acceptance experiment (≥5× wall-clock speedup for a single
//! mid-DAG resize on a ≥200-stage DAG).
//!
//! For each size, the bench seeds the committed book with a cold
//! `run_incremental`, then times (a) a full re-propagation on a fresh
//! engine and (b) the incremental re-run after resizing one mid-DAG
//! device, asserting the reports agree bitwise on the worst arrival.
use qwm::circuit::waveform::TransitionKind;
use qwm::sta::engine::StaEngine;
use qwm::sta::evaluator::QwmEvaluator;
use qwm::sta::graph::random_dag_netlist;
use qwm_bench::Bench;
use std::time::Instant;

fn main() {
    let bench = Bench::new();
    let ev = QwmEvaluator::default();
    for stages in [60usize, 120, 240] {
        let nl = random_dag_netlist(&bench.tech, stages, 0xB0B5 + stages as u64);
        let mut engine =
            StaEngine::new(nl.clone(), &bench.qwm_models, TransitionKind::Fall).expect("engine");
        engine.set_input_slew(20e-12).expect("slew");

        // Cold run seeds the committed book (and the arc caches).
        let t0 = Instant::now();
        let cold = engine.run_incremental(&ev).expect("cold run");
        let t_cold = t0.elapsed();

        // Resize one mid-DAG device, then re-time incrementally.
        let victim = engine
            .netlist()
            .find_device(&format!("MN{}", stages / 2))
            .or_else(|| engine.netlist().find_device(&format!("MN{}a", stages / 2)))
            .expect("mid-DAG device");
        engine
            .resize_device(victim, 3.0 * bench.tech.w_min)
            .expect("resize");
        let t0 = Instant::now();
        let incr = engine.run_incremental(&ev).expect("incremental run");
        let t_incr = t0.elapsed();
        let stats = engine.incremental_stats();

        // Reference: the same edit timed as a full cold re-run.
        let mut full_engine =
            StaEngine::new(nl, &bench.qwm_models, TransitionKind::Fall).expect("engine");
        full_engine
            .resize_device(victim, 3.0 * bench.tech.w_min)
            .expect("resize");
        let t0 = Instant::now();
        let full = full_engine.run_with_slew(&ev, 20e-12).expect("full rerun");
        let t_full = t0.elapsed();
        assert_eq!(
            full.worst.unwrap().1.to_bits(),
            incr.worst.unwrap().1.to_bits(),
            "incremental must be bitwise-identical to the full re-run"
        );

        println!(
            "stages {stages:4}: cold {} evals in {:?}; full re-run {:?}; incremental \
             {}/{} stages ({} evals, {} reused arcs, {} early stops) in {:?}; speedup {:.1}x; \
             worst {:.1} ps -> {:.1} ps",
            cold.evaluations,
            t_cold,
            t_full,
            stats.evaluated_stages,
            stats.dirty_stages,
            stats.evaluations,
            stats.reused_arcs,
            stats.early_stop_nets,
            t_incr,
            t_full.as_secs_f64() / t_incr.as_secs_f64().max(1e-9),
            full.worst.unwrap().1 * 1e12,
            incr.worst.unwrap().1 * 1e12,
        );
    }
    // Telemetry appendix (enabled via QWM_OBS=summary|json).
    qwm::obs::emit();
}
