//! Incremental STA: full analysis vs re-analysis after one transistor
//! resize (the calibration brief's incremental-speedup experiment).
use qwm::circuit::waveform::TransitionKind;
use qwm::sta::engine::StaEngine;
use qwm::sta::evaluator::QwmEvaluator;
use qwm::sta::graph::inverter_chain;
use qwm_bench::Bench;
use std::time::Instant;

fn main() {
    let bench = Bench::new();
    for depth in [8usize, 16, 32] {
        let nl = inverter_chain(&bench.tech, depth, 10e-15);
        let mut engine =
            StaEngine::new(nl, &bench.qwm_models, TransitionKind::Fall).expect("engine");
        let ev = QwmEvaluator::default();
        let t0 = Instant::now();
        let full = engine.run(&ev).expect("full run");
        let t_full = t0.elapsed();

        // Resize one middle inverter's NMOS and re-run incrementally.
        engine
            .resize_device(depth, 3.0 * bench.tech.w_min)
            .expect("resize");
        let t0 = Instant::now();
        let incr = engine.run(&ev).expect("incremental run");
        let t_incr = t0.elapsed();

        println!(
            "depth {depth:3}: full {} evals in {:?}; incremental {} evals (stage + its driver) in {:?}; speedup {:.1}x; worst arrival {:.1} ps -> {:.1} ps",
            full.evaluations,
            t_full,
            incr.evaluations,
            t_incr,
            t_full.as_secs_f64() / t_incr.as_secs_f64().max(1e-9),
            full.worst.unwrap().1 * 1e12,
            incr.worst.unwrap().1 * 1e12,
        );
    }
    // Telemetry appendix (enabled via QWM_OBS=summary|json).
    qwm::obs::emit();
}
