//! Table II: QWM vs the SPICE baseline on randomly sized NMOS stacks,
//! lengths 5–10, three seeded width configurations each.
use qwm_bench::{
    compare_fall, print_row, print_summary, print_table_header, table2_workload, Bench,
};

fn main() {
    let bench = Bench::new();
    println!("Table II — QWM vs SPICE-class baseline, random transistor stacks\n");
    print_table_header();
    let mut rows = Vec::new();
    for (name, stage) in table2_workload(&bench) {
        let row = compare_fall(&bench, &name, &stage, 10).expect("comparison");
        print_row(&row);
        rows.push(row);
    }
    println!();
    print_summary(&rows);

    println!(
        "\nwith the refined evaluator (midpoint caps + adaptive splitting — beyond the paper):\n"
    );
    qwm_bench::print_table_header();
    let mut refined = Vec::new();
    for (name, stage) in table2_workload(&bench) {
        let row = qwm_bench::compare_fall_with(
            &bench,
            &name,
            &stage,
            10,
            &qwm::core::evaluate::QwmConfig::refined(),
        )
        .expect("comparison");
        print_row(&row);
        refined.push(row);
    }
    println!();
    print_summary(&refined);
    // Telemetry appendix (enabled via QWM_OBS=summary|json).
    qwm::obs::emit();
}
