//! Figure 7: discharge current of every node of a 6-NMOS stack — each
//! waveform peaks exactly once, at the instant the transistor above
//! turns on (the observation QWM is built on).
use qwm::circuit::cells;
use qwm::spice::engine::{simulate, TransientConfig};
use qwm_bench::{fall_setup, write_columns, Bench};

fn main() {
    let bench = Bench::new();
    let stage = cells::manchester_longest_path(&bench.tech, 4, cells::DEFAULT_LOAD).unwrap();
    let (inputs, init, _out) = fall_setup(&bench, &stage);
    let r = simulate(
        &stage,
        &bench.spice_models,
        &inputs,
        &init,
        &TransientConfig::hspice_1ps(500e-12),
    )
    .expect("spice transient");

    let nodes = stage.internal_nodes();
    let mut currents = Vec::new();
    for &n in &nodes {
        currents.push(r.node_current(&stage, &bench.spice_models, n).unwrap());
    }
    let steps = currents[0].len();
    let mut rows = Vec::with_capacity(steps);
    for i in 0..steps {
        let mut row = vec![currents[0][i].0];
        for c in &currents {
            row.push(c[i].1);
        }
        rows.push(row);
    }
    let path = write_columns(
        "fig7_stack_currents.dat",
        "t i_node1 .. i_node6 (6-NMOS stack discharge, A)",
        &rows,
    );
    println!("Figure 7 data -> {}", path.display());

    // Single-peak check + peak ordering (the critical-point cascade).
    let mut peaks = Vec::new();
    for (k, c) in currents.iter().enumerate() {
        let (t_peak, i_peak) = c.iter().fold((0.0, 0.0_f64), |acc, &(t, i)| {
            if i.abs() > acc.1 {
                (t, i.abs())
            } else {
                acc
            }
        });
        println!(
            "node {}: peak |I| = {:.4e} A at t = {:.1} ps",
            k + 1,
            i_peak,
            t_peak * 1e12
        );
        peaks.push(t_peak);
    }
    let ordered = peaks.windows(2).all(|w| w[0] <= w[1] + 2e-12);
    println!("peaks ordered bottom-up along the stack: {ordered}");
    // Telemetry appendix (enabled via QWM_OBS=summary|json).
    qwm::obs::emit();
}
