//! Server capacity discovery: a ramping load-regression harness.
//!
//! This module answers the question `server_load` cannot: *where does
//! `qwm serve` actually fall over?* Following the IC scalability
//! framework's experiment shape, it steps the offered request rate
//! against a live server (`initial_rps`, `+increment_rps`, up to
//! `max_rps`), evaluates **stop thresholds** after every round —
//! failure-rate ceiling, schedule-relative median-latency ceiling, and
//! `429` saturation — and then **binary-searches** the maximum
//! sustainable rps between the last good and first bad rounds.
//!
//! # Workload decks
//!
//! Traffic shapes are described by zero-dependency INI-style deck files
//! (cf. `run_mixed_workload_experiment.py`'s TOML decks): top-level
//! ramp bounds and thresholds, then one `[op NAME]` section per
//! operation in the mix. Ops are weighted draws of heavy `run`s
//! (optionally with `corners=` sweeps, jittered slews and deadline
//! distributions), light `report`s and `edit` what-ifs:
//!
//! ```ini
//! name = mixed
//! deck = testdata/path4.sp
//! sessions = 4
//! initial_rps = 50
//! increment_rps = 50
//! max_rps = 2000
//! round_ms = 1000
//! fail_rate_ceiling = 0.25
//! median_ceiling_ms = 200
//! reject_ceiling = 0.5
//!
//! [op run]
//! weight = 3
//! slew_ps = jitter:15:25
//!
//! [op edit]
//! weight = 2
//! ```
//!
//! # Determinism
//!
//! The request schedule is planned **before** anything touches the
//! network: an open-loop scheduler lays every operation out on the
//! round's time axis, one [`Rng64::stream`]-seeded generator per
//! session, so the same `(deck, seed, rps)` triple always plans the
//! byte-identical operation log regardless of how many connections
//! later execute it ([`render_op_log`] is the pinned artifact). Any
//! capacity difference between two runs is therefore attributable to
//! the server, not to harness nondeterminism.
//!
//! # Artifacts
//!
//! [`results_json`] renders `BENCH_capacity_server.json` (per-round
//! rps / failure-rate / percentiles / queue-wait-vs-solve split, plus
//! the discovered max rps per workload); `qwm_obs::report::capacity_html`
//! turns that JSON into a self-contained HTML report, and
//! [`compare_reports`] diffs two JSON artifacts and fails on a
//! max-rps regression — the cross-PR perf gate wired into
//! `scripts/check.sh`.

use qwm::circuit::parser::parse_netlist;
use qwm::num::rng::Rng64;
use qwm::server::{Client, Reply};
use std::time::{Duration, Instant};

/// Stop thresholds evaluated after every round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Round fails when `failures / planned` exceeds this fraction.
    pub fail_rate: f64,
    /// Round fails when the schedule-relative p50 latency exceeds this
    /// many milliseconds (open-loop: measured from each op's *planned*
    /// fire time, so lanes falling behind schedule surface as latency).
    pub median_ms: f64,
    /// Round fails when `429 busy` replies exceed this fraction of the
    /// planned ops — admission-control saturation.
    pub reject_fraction: f64,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            fail_rate: 0.25,
            median_ms: 200.0,
            reject_fraction: 0.5,
        }
    }
}

/// What one operation in the mix does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `run <sid> ...` — a full (incremental) timing query.
    Run,
    /// `edit <sid> ...` — a seeded random transistor resize.
    Edit,
    /// `report <sid>` — replay the last committed report.
    Report,
}

/// Input slew for `run` ops: fixed, or jittered per op so every run
/// dirties the session and does real solve work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Slew {
    Fixed(f64),
    Jitter(f64, f64),
}

/// Per-op deadline distribution (`deadline_ms = none | <ms> |
/// uniform:<lo>:<hi>`). Missed deadlines come back as `408` and count
/// as failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deadline {
    None,
    Fixed(u64),
    Uniform(u64, u64),
}

/// One weighted operation of a workload mix.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSpec {
    /// Section name (`[op NAME]`).
    pub name: String,
    pub kind: OpKind,
    /// Relative draw weight within the mix.
    pub weight: u32,
    /// Evaluator for `run` ops.
    pub eval: String,
    /// Input slew for `run` ops.
    pub slew: Slew,
    /// `corners=` list for `run` ops (empty = classic single corner).
    pub corners: String,
    pub deadline: Deadline,
}

/// A parsed workload deck.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name (also the session-id prefix, charset `[A-Za-z0-9_.-]`).
    pub name: String,
    /// Path to the SPICE deck every session loads.
    pub deck: String,
    /// Warm sessions the traffic is spread across.
    pub sessions: usize,
    pub initial_rps: u32,
    pub increment_rps: u32,
    pub max_rps: u32,
    /// Wall-clock length of one measured round.
    pub round_ms: u64,
    pub thresholds: Thresholds,
    pub ops: Vec<OpSpec>,
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 32
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'))
}

fn parse_slew(v: &str, ln: usize) -> Result<Slew, String> {
    if let Some(rest) = v.strip_prefix("jitter:") {
        let (lo, hi) = rest
            .split_once(':')
            .ok_or(format!("line {ln}: slew_ps jitter needs jitter:<lo>:<hi>"))?;
        let lo: f64 = lo
            .parse()
            .map_err(|_| format!("line {ln}: bad slew_ps jitter low {lo:?}"))?;
        let hi: f64 = hi
            .parse()
            .map_err(|_| format!("line {ln}: bad slew_ps jitter high {hi:?}"))?;
        if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo < hi) {
            return Err(format!("line {ln}: slew_ps jitter needs 0 < lo < hi"));
        }
        Ok(Slew::Jitter(lo, hi))
    } else {
        let ps: f64 = v
            .parse()
            .map_err(|_| format!("line {ln}: bad slew_ps {v:?}"))?;
        if !ps.is_finite() || ps <= 0.0 {
            return Err(format!("line {ln}: slew_ps must be finite and > 0"));
        }
        Ok(Slew::Fixed(ps))
    }
}

fn parse_deadline(v: &str, ln: usize) -> Result<Deadline, String> {
    if v == "none" {
        return Ok(Deadline::None);
    }
    if let Some(rest) = v.strip_prefix("uniform:") {
        let (lo, hi) = rest
            .split_once(':')
            .ok_or(format!("line {ln}: deadline_ms needs uniform:<lo>:<hi>"))?;
        let lo: u64 = lo
            .parse()
            .map_err(|_| format!("line {ln}: bad deadline low {lo:?}"))?;
        let hi: u64 = hi
            .parse()
            .map_err(|_| format!("line {ln}: bad deadline high {hi:?}"))?;
        if lo == 0 || hi <= lo {
            return Err(format!("line {ln}: deadline uniform needs 0 < lo < hi"));
        }
        return Ok(Deadline::Uniform(lo, hi));
    }
    let ms: u64 = v
        .parse()
        .map_err(|_| format!("line {ln}: bad deadline_ms {v:?}"))?;
    Ok(if ms == 0 {
        Deadline::None
    } else {
        Deadline::Fixed(ms)
    })
}

/// Parses an INI-style workload deck. Full-line `#`/`;` comments and
/// blank lines are skipped; errors carry the 1-based line number.
///
/// # Errors
///
/// Returns `line N: <reason>` for the first malformed line, unknown
/// key, or failed validation.
pub fn parse_workload(text: &str) -> Result<WorkloadSpec, String> {
    let mut spec = WorkloadSpec {
        name: String::new(),
        deck: "testdata/path4.sp".to_string(),
        sessions: 4,
        initial_rps: 0,
        increment_rps: 0,
        max_rps: 0,
        round_ms: 1000,
        thresholds: Thresholds::default(),
        ops: Vec::new(),
    };
    // None = top-level keys; Some(i) = keys of ops[i].
    let mut current_op: Option<usize> = None;
    for (idx, raw) in text.lines().enumerate() {
        let ln = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
            continue;
        }
        if let Some(section) = line.strip_prefix('[') {
            let section = section
                .strip_suffix(']')
                .ok_or(format!("line {ln}: unterminated section header"))?
                .trim();
            if section == "experiment" {
                current_op = None;
                continue;
            }
            let op_name = section
                .strip_prefix("op ")
                .ok_or(format!(
                    "line {ln}: unknown section {section:?} (expected [experiment] or [op NAME])"
                ))?
                .trim();
            if !valid_name(op_name) {
                return Err(format!(
                    "line {ln}: op name {op_name:?} must be 1..=32 chars of [A-Za-z0-9_.-]"
                ));
            }
            if spec.ops.iter().any(|o| o.name == op_name) {
                return Err(format!("line {ln}: duplicate op {op_name:?}"));
            }
            let kind = match op_name {
                "run" => Some(OpKind::Run),
                "edit" => Some(OpKind::Edit),
                "report" => Some(OpKind::Report),
                _ => None, // must set `kind =` explicitly
            };
            spec.ops.push(OpSpec {
                name: op_name.to_string(),
                kind: kind.unwrap_or(OpKind::Run),
                weight: 1,
                eval: "qwm".to_string(),
                slew: Slew::Fixed(20.0),
                corners: String::new(),
                deadline: Deadline::None,
            });
            // Ops named after a kind default to it; anything else must
            // declare `kind =` before the section ends — tracked by
            // leaving a sentinel weight check to validation below? No:
            // record pending requirement via name and verify at the end.
            let _ = kind;
            current_op = Some(spec.ops.len() - 1);
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or(format!("line {ln}: expected `key = value`"))?;
        let (key, value) = (key.trim(), value.trim());
        if value.is_empty() {
            return Err(format!("line {ln}: key {key:?} has an empty value"));
        }
        match current_op {
            None => match key {
                "name" => {
                    if !valid_name(value) {
                        return Err(format!(
                            "line {ln}: name {value:?} must be 1..=32 chars of [A-Za-z0-9_.-]"
                        ));
                    }
                    spec.name = value.to_string();
                }
                "deck" => spec.deck = value.to_string(),
                "sessions" => {
                    spec.sessions = value
                        .parse()
                        .map_err(|_| format!("line {ln}: bad sessions {value:?}"))?;
                }
                "initial_rps" => {
                    spec.initial_rps = value
                        .parse()
                        .map_err(|_| format!("line {ln}: bad initial_rps {value:?}"))?;
                }
                "increment_rps" => {
                    spec.increment_rps = value
                        .parse()
                        .map_err(|_| format!("line {ln}: bad increment_rps {value:?}"))?;
                }
                "max_rps" => {
                    spec.max_rps = value
                        .parse()
                        .map_err(|_| format!("line {ln}: bad max_rps {value:?}"))?;
                }
                "round_ms" => {
                    spec.round_ms = value
                        .parse()
                        .map_err(|_| format!("line {ln}: bad round_ms {value:?}"))?;
                }
                "fail_rate_ceiling" => {
                    let v: f64 = value
                        .parse()
                        .map_err(|_| format!("line {ln}: bad fail_rate_ceiling {value:?}"))?;
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!("line {ln}: fail_rate_ceiling must be in [0, 1]"));
                    }
                    spec.thresholds.fail_rate = v;
                }
                "median_ceiling_ms" => {
                    let v: f64 = value
                        .parse()
                        .map_err(|_| format!("line {ln}: bad median_ceiling_ms {value:?}"))?;
                    if !v.is_finite() || v <= 0.0 {
                        return Err(format!("line {ln}: median_ceiling_ms must be > 0"));
                    }
                    spec.thresholds.median_ms = v;
                }
                "reject_ceiling" => {
                    let v: f64 = value
                        .parse()
                        .map_err(|_| format!("line {ln}: bad reject_ceiling {value:?}"))?;
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!("line {ln}: reject_ceiling must be in [0, 1]"));
                    }
                    spec.thresholds.reject_fraction = v;
                }
                other => return Err(format!("line {ln}: unknown experiment key {other:?}")),
            },
            Some(i) => {
                let op = &mut spec.ops[i];
                match key {
                    "kind" => {
                        op.kind = match value {
                            "run" => OpKind::Run,
                            "edit" => OpKind::Edit,
                            "report" => OpKind::Report,
                            other => {
                                return Err(format!(
                                    "line {ln}: unknown op kind {other:?} (run|edit|report)"
                                ))
                            }
                        };
                    }
                    "weight" => {
                        op.weight = value
                            .parse()
                            .map_err(|_| format!("line {ln}: bad weight {value:?}"))?;
                        if op.weight == 0 {
                            return Err(format!("line {ln}: weight must be at least 1"));
                        }
                    }
                    "eval" => {
                        if !["qwm", "elmore", "spice", "fallback"].contains(&value) {
                            return Err(format!("line {ln}: unknown eval {value:?}"));
                        }
                        op.eval = value.to_string();
                    }
                    "slew_ps" => op.slew = parse_slew(value, ln)?,
                    "corners" => {
                        qwm::device::parse_corner_list(value)
                            .map_err(|e| format!("line {ln}: bad corners {value:?}: {e}"))?;
                        op.corners = value.to_string();
                    }
                    "deadline_ms" => op.deadline = parse_deadline(value, ln)?,
                    other => return Err(format!("line {ln}: unknown op key {other:?}")),
                }
            }
        }
    }
    if spec.name.is_empty() {
        return Err("deck must set `name`".to_string());
    }
    if spec.sessions == 0 {
        return Err("sessions must be at least 1".to_string());
    }
    if spec.initial_rps == 0 || spec.increment_rps == 0 || spec.max_rps < spec.initial_rps {
        return Err(
            "ramp bounds must satisfy initial_rps >= 1, increment_rps >= 1, \
             max_rps >= initial_rps"
                .to_string(),
        );
    }
    if spec.round_ms == 0 {
        return Err("round_ms must be at least 1".to_string());
    }
    if spec.ops.is_empty() {
        return Err("deck needs at least one [op NAME] section".to_string());
    }
    Ok(spec)
}

/// One planned operation of a round's open-loop schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedOp {
    /// Scheduled fire time, offset from the round start.
    pub at: Duration,
    /// Owning session index (`0..spec.sessions`).
    pub session: usize,
    /// Per-session sequence number.
    pub seq: u64,
    /// Session id on the wire.
    pub sid: String,
    /// Protocol command line (for `edit`, without the byte count — the
    /// executor frames the body via [`Client::edit`]).
    pub command: String,
    /// Edit-script body, for `edit` ops.
    pub body: Option<String>,
}

/// Session id for session `s` of a workload.
pub fn session_id(spec: &WorkloadSpec, s: usize) -> String {
    format!("cap-{}-s{s}", spec.name)
}

/// Plans one round's schedule at `rps`: a pure function of
/// `(spec, devices, seed, rps)` — independent of how many connections
/// later execute it. One seeded RNG stream per session
/// ([`Rng64::stream`] lanes `[session]`), ops weighted by the deck's
/// mix, fire times evenly spaced with per-op jitter.
pub fn plan_round(spec: &WorkloadSpec, devices: &[String], seed: u64, rps: u32) -> Vec<PlannedOp> {
    let round_s = spec.round_ms as f64 / 1e3;
    let total = ((f64::from(rps) * round_s).round() as u64).max(1);
    let total_weight: u64 = spec.ops.iter().map(|o| u64::from(o.weight)).sum();
    let mut plan = Vec::with_capacity(total as usize);
    for s in 0..spec.sessions {
        let s64 = s as u64;
        // Split `total` ops across sessions without remainder bias.
        let n = (s64 + 1) * total / spec.sessions as u64 - s64 * total / spec.sessions as u64;
        if n == 0 {
            continue;
        }
        let mut rng = Rng64::stream(seed, &[s64]);
        let sid = session_id(spec, s);
        let period = round_s / n as f64;
        for k in 0..n {
            let at = Duration::from_secs_f64((k as f64 + rng.unit()) * period);
            // Weighted draw over the mix.
            let mut draw = rng.next_u64() % total_weight;
            let mut op = &spec.ops[0];
            for candidate in &spec.ops {
                if draw < u64::from(candidate.weight) {
                    op = candidate;
                    break;
                }
                draw -= u64::from(candidate.weight);
            }
            let (command, body) = materialize(op, &sid, devices, &mut rng);
            plan.push(PlannedOp {
                at,
                session: s,
                seq: k,
                sid: sid.clone(),
                command,
                body,
            });
        }
    }
    plan.sort_by_key(|a| (a.at, a.session, a.seq));
    plan
}

/// Builds the wire command (and body, for edits) for one drawn op.
fn materialize(
    op: &OpSpec,
    sid: &str,
    devices: &[String],
    rng: &mut Rng64,
) -> (String, Option<String>) {
    match op.kind {
        OpKind::Report => (format!("report {sid}"), None),
        OpKind::Edit => {
            let dev = &devices[rng.range_usize(0, devices.len())];
            let w = rng.range(0.5e-6, 2.0e-6);
            (
                format!("edit {sid}"),
                Some(format!("resize {dev} {w:.6e}\n")),
            )
        }
        OpKind::Run => {
            let mut cmd = format!("run {sid} {}", op.eval);
            match op.slew {
                Slew::Fixed(ps) => {
                    let _ = std::fmt::Write::write_fmt(&mut cmd, format_args!(" slew_ps={ps}"));
                }
                Slew::Jitter(lo, hi) => {
                    let ps = rng.range(lo, hi);
                    let _ = std::fmt::Write::write_fmt(&mut cmd, format_args!(" slew_ps={ps:.4}"));
                }
            }
            match op.deadline {
                Deadline::None => {}
                Deadline::Fixed(ms) => {
                    let _ = std::fmt::Write::write_fmt(&mut cmd, format_args!(" deadline_ms={ms}"));
                }
                Deadline::Uniform(lo, hi) => {
                    let ms = lo + rng.next_u64() % (hi - lo + 1);
                    let _ = std::fmt::Write::write_fmt(&mut cmd, format_args!(" deadline_ms={ms}"));
                }
            }
            if !op.corners.is_empty() {
                let _ =
                    std::fmt::Write::write_fmt(&mut cmd, format_args!(" corners={}", op.corners));
            }
            (cmd, None)
        }
    }
}

/// Renders a planned schedule as the canonical one-line-per-op log.
/// Byte-identical for identical `(deck, seed, rps)` inputs — the
/// deterministic-replay pin — and independent of connection count.
pub fn render_op_log(plan: &[PlannedOp]) -> String {
    let mut out = String::new();
    for op in plan {
        out.push_str(&format!(
            "{:>12} s{:03}#{:05} {}",
            op.at.as_micros(),
            op.session,
            op.seq,
            op.command
        ));
        if let Some(body) = &op.body {
            out.push_str(" | ");
            out.push_str(&body.replace('\n', "\\n"));
        }
        out.push('\n');
    }
    out
}

/// Partitions a plan across `connections` executor lanes (session
/// `s` rides lane `s % connections`), preserving per-lane time order.
pub fn assign_lanes(plan: &[PlannedOp], connections: usize) -> Vec<Vec<PlannedOp>> {
    let mut lanes = vec![Vec::new(); connections.max(1)];
    for op in plan {
        lanes[op.session % connections.max(1)].push(op.clone());
    }
    lanes
}

/// Extracts an integer `key=<n>` token from a reply head line.
pub fn head_field(head: &str, key: &str) -> Option<u64> {
    head.split_whitespace()
        .find_map(|t| t.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
        .and_then(|v| v.parse().ok())
}

/// Raw measurements of one executed round.
#[derive(Debug, Clone, Default)]
pub struct RoundSample {
    pub planned: usize,
    pub ok: usize,
    pub failures: usize,
    /// `429 busy` replies (not retried in capacity mode — saturation
    /// is exactly what the ramp is probing for).
    pub rejected: usize,
    /// Schedule-relative latency (reply received minus planned fire
    /// time) per successful op, µs. The open-loop saturation signal:
    /// lanes falling behind schedule inflate this even when each
    /// individual round-trip stays fast.
    pub latencies_us: Vec<f64>,
    /// Send-to-reply service time per successful op, µs.
    pub service_us: Vec<f64>,
    /// Server-reported admission queue wait per `run` (`wait_ns=`), µs.
    pub waits_us: Vec<f64>,
    /// Server-reported solve time per `run` (`solve_ns=`), µs.
    pub solves_us: Vec<f64>,
    pub wall: Duration,
}

/// Executes a planned round against a live server over `connections`
/// lanes. Each lane owns one blocking [`Client`] and fires its ops at
/// their scheduled offsets (never early; immediately when behind).
/// Transport errors fail the op and the lane reconnects once; a dead
/// lane fails its remaining ops.
pub fn execute_round(addr: &str, plan: &[PlannedOp], connections: usize) -> RoundSample {
    let lanes = assign_lanes(plan, connections);
    let t0 = Instant::now();
    let samples: Vec<RoundSample> = std::thread::scope(|scope| {
        let handles: Vec<_> = lanes
            .iter()
            .map(|lane| scope.spawn(move || execute_lane(addr, lane, t0)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut out = RoundSample {
        planned: plan.len(),
        wall: t0.elapsed(),
        ..RoundSample::default()
    };
    for s in samples {
        out.ok += s.ok;
        out.failures += s.failures;
        out.rejected += s.rejected;
        out.latencies_us.extend(s.latencies_us);
        out.service_us.extend(s.service_us);
        out.waits_us.extend(s.waits_us);
        out.solves_us.extend(s.solves_us);
    }
    out.latencies_us.sort_by(f64::total_cmp);
    out.service_us.sort_by(f64::total_cmp);
    out.waits_us.sort_by(f64::total_cmp);
    out.solves_us.sort_by(f64::total_cmp);
    out
}

fn lane_client(addr: &str) -> Option<Client> {
    let mut c = Client::connect(addr).ok()?;
    c.set_timeout(Some(Duration::from_secs(30))).ok()?;
    Some(c)
}

fn execute_lane(addr: &str, lane: &[PlannedOp], start: Instant) -> RoundSample {
    let mut out = RoundSample::default();
    let mut client = lane_client(addr);
    for (i, op) in lane.iter().enumerate() {
        let due = start + op.at;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let Some(c) = client.as_mut() else {
            // Lane is dead: one reconnect attempt per op keeps a
            // transient drop from failing the whole remainder.
            client = lane_client(addr);
            if client.is_none() {
                out.failures += lane.len() - i;
                break;
            }
            continue;
        };
        let sent = Instant::now();
        let reply = match &op.body {
            Some(body) => c.edit(&op.sid, body),
            None => c.send(&op.command),
        };
        let done = Instant::now();
        match reply {
            Ok(r) if r.ok() => {
                out.ok += 1;
                out.latencies_us
                    .push(done.duration_since(due).as_secs_f64() * 1e6);
                out.service_us
                    .push(done.duration_since(sent).as_secs_f64() * 1e6);
                if let Some(ns) = head_field(&r.head, "wait_ns") {
                    out.waits_us.push(ns as f64 / 1e3);
                }
                if let Some(ns) = head_field(&r.head, "solve_ns") {
                    out.solves_us.push(ns as f64 / 1e3);
                }
            }
            Ok(r) if r.status == 429 => out.rejected += 1,
            Ok(_) => out.failures += 1,
            Err(_) => {
                out.failures += 1;
                client = None;
            }
        }
    }
    out.wall = start.elapsed();
    out
}

/// Exact nearest-rank percentile over a sorted sample, `0.0` if empty.
///
/// Thin shim over the NaN-safe [`qwm::num::stats::percentile_nearest`]:
/// empty samples map to `0.0` so report rows stay total, while a
/// non-finite latency sample fails loudly with the offending index
/// instead of silently skewing the figure.
pub fn pct(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    qwm::num::stats::percentile_nearest(sorted, q).expect("finite latency samples")
}

/// One evaluated round of an experiment (ramp or binary-search phase).
#[derive(Debug, Clone)]
pub struct RoundRecord {
    /// `"ramp"` or `"search"`.
    pub phase: &'static str,
    pub target_rps: u32,
    pub planned: usize,
    pub ok: usize,
    pub failures: usize,
    pub rejected: usize,
    pub achieved_rps: f64,
    pub fail_rate: f64,
    pub reject_fraction: f64,
    /// Schedule-relative latency percentiles, µs.
    pub p50_us: f64,
    pub p95_us: f64,
    /// Send-to-reply service p50, µs.
    pub service_p50_us: f64,
    pub wait_p50_us: f64,
    pub wait_p95_us: f64,
    pub solve_p50_us: f64,
    pub solve_p95_us: f64,
    pub good: bool,
    /// Empty when good; otherwise the first tripped stop threshold.
    pub stop: String,
}

/// Applies the stop thresholds to one round's measurements.
pub fn evaluate_round(
    phase: &'static str,
    target_rps: u32,
    sample: &RoundSample,
    t: &Thresholds,
) -> RoundRecord {
    let planned = sample.planned.max(1) as f64;
    let fail_rate = sample.failures as f64 / planned;
    let reject_fraction = sample.rejected as f64 / planned;
    let p50_us = pct(&sample.latencies_us, 0.50);
    let mut stop = String::new();
    if fail_rate > t.fail_rate {
        stop = format!("fail_rate {fail_rate:.3} > {:.3}", t.fail_rate);
    } else if p50_us / 1e3 > t.median_ms {
        stop = format!("median {:.1} ms > {:.1} ms", p50_us / 1e3, t.median_ms);
    } else if reject_fraction > t.reject_fraction {
        stop = format!(
            "reject_fraction {reject_fraction:.3} > {:.3}",
            t.reject_fraction
        );
    }
    RoundRecord {
        phase,
        target_rps,
        planned: sample.planned,
        ok: sample.ok,
        failures: sample.failures,
        rejected: sample.rejected,
        achieved_rps: sample.ok as f64 / sample.wall.as_secs_f64().max(1e-9),
        fail_rate,
        reject_fraction,
        p50_us,
        p95_us: pct(&sample.latencies_us, 0.95),
        service_p50_us: pct(&sample.service_us, 0.50),
        wait_p50_us: pct(&sample.waits_us, 0.50),
        wait_p95_us: pct(&sample.waits_us, 0.95),
        solve_p50_us: pct(&sample.solves_us, 0.50),
        solve_p95_us: pct(&sample.solves_us, 0.95),
        good: stop.is_empty(),
        stop,
    }
}

/// One workload's full capacity-discovery outcome.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    pub spec: WorkloadSpec,
    pub connections: usize,
    pub seed: u64,
    pub rounds: Vec<RoundRecord>,
    /// Highest rps that passed every stop threshold (the deck's
    /// `max_rps` when the ramp never tripped one).
    pub max_sustainable_rps: u32,
    /// Whether a stop threshold actually tripped. `false` means the
    /// server absorbed the deck's whole ramp — raise `max_rps` to find
    /// the real ceiling.
    pub saturated: bool,
}

/// Sends `line`, absorbing `429 busy` with linear backoff — used only
/// for session setup/teardown, never inside a measured round.
fn setup_cmd(client: &mut Client, line: &str) -> Result<Reply, String> {
    for attempt in 0..100u32 {
        match client.send(line) {
            Ok(r) if r.status == 429 => {
                std::thread::sleep(Duration::from_micros(500 * u64::from(attempt + 1)));
            }
            Ok(r) if r.ok() => return Ok(r),
            Ok(r) => return Err(format!("{line:?}: {} {}", r.status, r.head)),
            Err(e) => return Err(format!("{line:?}: {e}")),
        }
    }
    Err(format!("{line:?}: still busy after 100 attempts"))
}

fn setup_load(client: &mut Client, sid: &str, deck: &str) -> Result<(), String> {
    for attempt in 0..100u32 {
        match client.load(sid, deck) {
            Ok(r) if r.status == 429 => {
                std::thread::sleep(Duration::from_micros(500 * u64::from(attempt + 1)));
            }
            Ok(r) if r.ok() => return Ok(()),
            Ok(r) => return Err(format!("load {sid}: {} {}", r.status, r.head)),
            Err(e) => return Err(format!("load {sid}: {e}")),
        }
    }
    Err(format!("load {sid}: still busy after 100 attempts"))
}

/// Runs the full capacity-discovery experiment for one workload deck
/// against a live server:
///
/// 1. loads and primes `spec.sessions` warm sessions;
/// 2. **ramp**: rounds at `initial_rps`, `+increment_rps`, … until a
///    stop threshold trips or `max_rps` passes;
/// 3. **binary search** between the last good and first bad rps until
///    the window is at most `max(1, increment_rps / 4)` wide — the
///    convergence rule — reporting the window's floor as the maximum
///    sustainable rps;
/// 4. closes the sessions.
///
/// # Errors
///
/// Fails on unreadable/unparsable SPICE decks, workloads with `edit`
/// ops but no transistors, and session setup failures. Round-level
/// trouble is *data* (failures feed the stop thresholds), not an error.
pub fn discover_capacity(
    addr: &str,
    spec: &WorkloadSpec,
    seed: u64,
    connections: usize,
) -> Result<ExperimentResult, String> {
    let deck_text = std::fs::read_to_string(&spec.deck)
        .map_err(|e| format!("workload {}: read {}: {e}", spec.name, spec.deck))?;
    let netlist = parse_netlist(&deck_text).map_err(|e| format!("workload {}: {e}", spec.name))?;
    let devices: Vec<String> = netlist
        .devices()
        .iter()
        .filter(|d| d.gate.is_some())
        .map(|d| d.name.clone())
        .collect();
    if devices.is_empty() && spec.ops.iter().any(|o| o.kind == OpKind::Edit) {
        return Err(format!(
            "workload {}: {} has no transistors to edit",
            spec.name, spec.deck
        ));
    }
    let connections = connections.clamp(1, spec.sessions);

    // Warm setup: load every session and prime one run so `report` ops
    // always have a committed report and device tables are hot. The
    // ramp then measures steady-state serving, not characterization.
    let mut setup = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    setup
        .set_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    for s in 0..spec.sessions {
        let sid = session_id(spec, s);
        setup_load(&mut setup, &sid, &deck_text)?;
        setup_cmd(&mut setup, &format!("run {sid} qwm slew_ps=20"))?;
    }

    let mut rounds = Vec::new();
    let run_one = |phase: &'static str, rps: u32| -> RoundRecord {
        let plan = plan_round(spec, &devices, seed, rps);
        let sample = execute_round(addr, &plan, connections);
        let record = evaluate_round(phase, rps, &sample, &spec.thresholds);
        println!(
            "capacity[{}] {phase} rps={rps}: ok={} fail={} rej={} achieved={:.1} \
             p50={:.1}ms{}{}",
            spec.name,
            record.ok,
            record.failures,
            record.rejected,
            record.achieved_rps,
            record.p50_us / 1e3,
            if record.good { "" } else { " STOP " },
            record.stop
        );
        record
    };

    // Phase 1: ramp until a threshold trips or the deck's max passes.
    let mut last_good: u32 = 0;
    let mut first_bad: Option<u32> = None;
    let mut rps = spec.initial_rps;
    loop {
        let record = run_one("ramp", rps);
        let good = record.good;
        rounds.push(record);
        if !good {
            first_bad = Some(rps);
            break;
        }
        last_good = rps;
        if rps >= spec.max_rps {
            break;
        }
        rps = (rps + spec.increment_rps).min(spec.max_rps);
    }

    // Phase 2: binary search (lo = last good, hi = first bad) down to
    // the convergence resolution.
    let saturated = first_bad.is_some();
    if let Some(mut hi) = first_bad {
        let mut lo = last_good;
        let resolution = (spec.increment_rps / 4).max(1);
        while hi - lo > resolution {
            let mid = lo + (hi - lo) / 2;
            let record = run_one("search", mid);
            let good = record.good;
            rounds.push(record);
            if good {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        last_good = lo;
    }

    for s in 0..spec.sessions {
        let _ = setup.send(&format!("close {}", session_id(spec, s)));
    }

    Ok(ExperimentResult {
        spec: spec.clone(),
        connections,
        seed,
        rounds,
        max_sustainable_rps: last_good,
        saturated,
    })
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Schema tag written into (and required from) every capacity artifact.
pub const SCHEMA: &str = "qwm.capacity.v1";

/// Renders the `BENCH_capacity_server.json` artifact. Readers must
/// tolerate unknown fields (the compare gate does), so the schema can
/// grow per-round columns without breaking old gates.
pub fn results_json(seed: u64, results: &[ExperimentResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"workloads\": [\n");
    for (wi, r) in results.iter().enumerate() {
        let t = &r.spec.thresholds;
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"name\": \"{}\",\n",
            json_escape(&r.spec.name)
        ));
        out.push_str(&format!(
            "      \"deck\": \"{}\",\n",
            json_escape(&r.spec.deck)
        ));
        out.push_str(&format!("      \"sessions\": {},\n", r.spec.sessions));
        out.push_str(&format!("      \"connections\": {},\n", r.connections));
        out.push_str(&format!("      \"initial_rps\": {},\n", r.spec.initial_rps));
        out.push_str(&format!(
            "      \"increment_rps\": {},\n",
            r.spec.increment_rps
        ));
        out.push_str(&format!("      \"max_rps\": {},\n", r.spec.max_rps));
        out.push_str(&format!("      \"round_ms\": {},\n", r.spec.round_ms));
        out.push_str(&format!(
            "      \"thresholds\": {{ \"fail_rate\": {}, \"median_ms\": {}, \
             \"reject_fraction\": {} }},\n",
            t.fail_rate, t.median_ms, t.reject_fraction
        ));
        out.push_str(&format!(
            "      \"max_sustainable_rps\": {},\n",
            r.max_sustainable_rps
        ));
        out.push_str(&format!("      \"saturated\": {},\n", r.saturated));
        out.push_str("      \"rounds\": [\n");
        for (ri, round) in r.rounds.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"phase\": \"{}\", \"target_rps\": {}, \"planned\": {}, \
                 \"ok\": {}, \"failures\": {}, \"rejected\": {}, \
                 \"achieved_rps\": {:.2}, \"fail_rate\": {:.4}, \
                 \"reject_fraction\": {:.4}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \
                 \"service_p50_us\": {:.1}, \"wait_p50_us\": {:.1}, \
                 \"wait_p95_us\": {:.1}, \"solve_p50_us\": {:.1}, \
                 \"solve_p95_us\": {:.1}, \"good\": {}, \"stop\": \"{}\" }}{}\n",
                round.phase,
                round.target_rps,
                round.planned,
                round.ok,
                round.failures,
                round.rejected,
                round.achieved_rps,
                round.fail_rate,
                round.reject_fraction,
                round.p50_us,
                round.p95_us,
                round.service_p50_us,
                round.wait_p50_us,
                round.wait_p95_us,
                round.solve_p50_us,
                round.solve_p95_us,
                round.good,
                json_escape(&round.stop),
                if ri + 1 == r.rounds.len() { "" } else { "," }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if wi + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

use qwm::obs::report::{parse_json, Json};

fn workload_rows(doc: &Json, which: &str) -> Result<Vec<(String, f64)>, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or(format!("{which}: missing \"schema\" field"))?;
    if !schema.starts_with("qwm.capacity.") {
        return Err(format!("{which}: unexpected schema {schema:?}"));
    }
    let Some(Json::Arr(workloads)) = doc.get("workloads") else {
        return Err(format!("{which}: missing \"workloads\" array"));
    };
    let mut rows = Vec::new();
    for w in workloads {
        let name = w
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("{which}: workload without a \"name\""))?;
        let max = w
            .get("max_sustainable_rps")
            .and_then(Json::as_f64)
            .ok_or(format!(
                "{which}: workload {name:?} without \"max_sustainable_rps\""
            ))?;
        rows.push((name.to_string(), max));
    }
    Ok(rows)
}

/// The cross-PR regression gate: diffs two capacity artifacts and
/// fails when any workload's discovered max rps dropped by more than
/// `max_regression_pct` percent (or vanished entirely). Unknown JSON
/// fields are ignored, so artifacts from newer schema revisions still
/// compare.
///
/// # Errors
///
/// Returns one precise message per regression (joined by newlines), or
/// a parse/schema diagnostic naming the offending side.
pub fn compare_reports(
    old_text: &str,
    new_text: &str,
    max_regression_pct: f64,
) -> Result<String, String> {
    let old = parse_json(old_text).map_err(|e| format!("old artifact: {e}"))?;
    let new = parse_json(new_text).map_err(|e| format!("new artifact: {e}"))?;
    let old_rows = workload_rows(&old, "old artifact")?;
    let new_rows = workload_rows(&new, "new artifact")?;
    let mut summary = Vec::new();
    let mut regressions = Vec::new();
    for (name, old_max) in &old_rows {
        let Some((_, new_max)) = new_rows.iter().find(|(n, _)| n == name) else {
            regressions.push(format!(
                "workload {name:?}: present in old artifact but missing from new"
            ));
            continue;
        };
        let floor = old_max * (1.0 - max_regression_pct / 100.0);
        let delta_pct = if *old_max > 0.0 {
            (new_max - old_max) / old_max * 100.0
        } else {
            0.0
        };
        if *new_max < floor {
            regressions.push(format!(
                "workload {name:?}: max_sustainable_rps regressed {old_max:.0} -> \
                 {new_max:.0} ({:.1}% drop, {max_regression_pct:.1}% allowed)",
                -delta_pct
            ));
        } else {
            summary.push(format!(
                "workload {name:?}: max_sustainable_rps {old_max:.0} -> {new_max:.0} \
                 ({delta_pct:+.1}%) ok"
            ));
        }
    }
    for (name, new_max) in &new_rows {
        if !old_rows.iter().any(|(n, _)| n == name) {
            summary.push(format!(
                "workload {name:?}: new (max_sustainable_rps {new_max:.0}), no baseline"
            ));
        }
    }
    if regressions.is_empty() {
        Ok(summary.join("\n"))
    } else {
        Err(regressions.join("\n"))
    }
}
