//! A minimal micro-benchmark harness.
//!
//! The workspace builds offline with no external crates, so the bench
//! targets (`cargo bench -p qwm-bench`) run on this criterion-style
//! runner: per benchmark it calibrates an iteration batch so one sample
//! takes a measurable slice of wall time, collects a fixed number of
//! samples, and reports min/median/mean. Deterministic knobs:
//! `QWM_BENCH_SAMPLES` overrides the sample count (e.g. `=5` for a
//! quick smoke run).

use std::time::{Duration, Instant};

/// Target wall time for one calibrated sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(2);

/// Micro-benchmark runner; construct once per bench binary.
pub struct Harness {
    samples: usize,
}

impl Harness {
    /// A runner with `samples` samples per benchmark, unless overridden
    /// by `QWM_BENCH_SAMPLES`.
    pub fn new(samples: usize) -> Harness {
        let samples = std::env::var("QWM_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(samples)
            .max(1);
        Harness { samples }
    }

    /// Times `f`, printing a one-line summary.
    pub fn bench<F: FnMut()>(&self, name: &str, mut f: F) {
        // Warm-up and calibration: batch iterations until one sample
        // takes long enough for the clock to resolve it cleanly.
        let mut iters = 1usize;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = t0.elapsed();
            if elapsed >= SAMPLE_TARGET || iters >= 1 << 24 {
                break;
            }
            let grow = if elapsed.is_zero() {
                8.0
            } else {
                (SAMPLE_TARGET.as_secs_f64() / elapsed.as_secs_f64()).clamp(1.5, 8.0)
            };
            iters = ((iters as f64 * grow).ceil() as usize).max(iters + 1);
        }

        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t0.elapsed().as_secs_f64() / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{name:<40} median {}  mean {}  min {}  ({} samples x {iters} iters)",
            fmt_time(median),
            fmt_time(mean),
            fmt_time(min),
            self.samples
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3}us", secs * 1e6)
    } else {
        format!("{:.1}ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let h = Harness { samples: 3 };
        let mut n = 0u64;
        h.bench("harness_selftest", || n = n.wrapping_add(1));
        assert!(n > 0);
    }
}
