//! Headline comparison: a full QWM waveform evaluation vs the SPICE
//! baseline at 1 ps and 10 ps, on a NAND3 and on the paper's 6-stack.
use qwm::circuit::cells;
use qwm::circuit::waveform::{TransitionKind, Waveform};
use qwm::core::evaluate::{evaluate, QwmConfig};
use qwm::device::{analytic_models, tabular_models, Technology};
use qwm::spice::adaptive::{simulate_adaptive, AdaptiveConfig};
use qwm::spice::engine::{initial_uniform, simulate, TransientConfig};
use qwm_bench::harness::Harness;

fn main() {
    let h = Harness::new(20);
    let tech = Technology::cmosp35();
    let spice_models = analytic_models(&tech);
    let qwm_models = tabular_models(&tech).unwrap();
    let workloads = vec![
        (
            "nand3",
            cells::nand(&tech, 3, cells::DEFAULT_LOAD).unwrap(),
            250e-12,
        ),
        (
            "stack6",
            cells::manchester_longest_path(&tech, 4, cells::DEFAULT_LOAD).unwrap(),
            450e-12,
        ),
    ];
    for (name, stage, horizon) in &workloads {
        let inputs: Vec<Waveform> = (0..stage.inputs().len())
            .map(|_| Waveform::step(0.0, 0.0, tech.vdd))
            .collect();
        let init = initial_uniform(stage, &spice_models, tech.vdd);
        let out = stage.node_by_name("out").unwrap();
        h.bench(&format!("qwm/{name}"), || {
            evaluate(
                stage,
                &qwm_models,
                &inputs,
                &init,
                out,
                TransitionKind::Fall,
                &QwmConfig::default(),
            )
            .unwrap();
        });
        h.bench(&format!("spice_1ps/{name}"), || {
            simulate(
                stage,
                &spice_models,
                &inputs,
                &init,
                &TransientConfig::hspice_1ps(*horizon),
            )
            .unwrap();
        });
        h.bench(&format!("spice_10ps/{name}"), || {
            simulate(
                stage,
                &spice_models,
                &inputs,
                &init,
                &TransientConfig::hspice_10ps(*horizon),
            )
            .unwrap();
        });
        h.bench(&format!("spice_adaptive/{name}"), || {
            simulate_adaptive(
                stage,
                &spice_models,
                &inputs,
                &init,
                &AdaptiveConfig::new(*horizon),
            )
            .unwrap();
        });
    }
    qwm::obs::emit();
}
