//! §V-A ablation: tabular-model query cost vs the analytic model (the
//! table exists to make I/V and derivative queries cheap).
use qwm::device::model::{DeviceModel, Geometry, TermVoltage};
use qwm::device::{Mosfet, Polarity, TableModel, Technology};
use qwm_bench::harness::Harness;
use std::hint::black_box;

fn main() {
    let h = Harness::new(20);
    let tech = Technology::cmosp35();
    let analytic = Mosfet::new(tech.clone(), Polarity::Nmos);
    let table = TableModel::with_defaults(tech.clone(), Polarity::Nmos).unwrap();
    let geom = Geometry::new(1.5e-6, tech.l_min);
    // A spread of query points covering all regions.
    let points: Vec<TermVoltage> = (0..64)
        .map(|i| {
            let f = i as f64 / 63.0;
            TermVoltage::new(0.4 + 2.9 * f, 3.3 - 2.0 * f, 1.2 * f)
        })
        .collect();
    h.bench("iv_eval/analytic", || {
        for tv in &points {
            black_box(analytic.iv_eval(&geom, *tv).unwrap());
        }
    });
    h.bench("iv_eval/tabular", || {
        for tv in &points {
            black_box(table.iv_eval(&geom, *tv).unwrap());
        }
    });
    h.bench("characterize/0.1V_grid", || {
        TableModel::characterize(tech.clone(), Polarity::Nmos, 0.1).unwrap();
    });
    qwm::obs::emit();
}
