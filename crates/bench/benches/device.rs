//! §V-A ablation: tabular-model query cost vs the analytic model (the
//! table exists to make I/V and derivative queries cheap).
use criterion::{criterion_group, criterion_main, Criterion};
use qwm::device::model::{DeviceModel, Geometry, TermVoltage};
use qwm::device::{Mosfet, Polarity, TableModel, Technology};
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let tech = Technology::cmosp35();
    let analytic = Mosfet::new(tech.clone(), Polarity::Nmos);
    let table = TableModel::with_defaults(tech.clone(), Polarity::Nmos).unwrap();
    let geom = Geometry::new(1.5e-6, tech.l_min);
    // A spread of query points covering all regions.
    let points: Vec<TermVoltage> = (0..64)
        .map(|i| {
            let f = i as f64 / 63.0;
            TermVoltage::new(0.4 + 2.9 * f, 3.3 - 2.0 * f, 1.2 * f)
        })
        .collect();
    c.bench_function("iv_eval/analytic", |b| {
        b.iter(|| {
            for tv in &points {
                black_box(analytic.iv_eval(&geom, *tv).unwrap());
            }
        })
    });
    c.bench_function("iv_eval/tabular", |b| {
        b.iter(|| {
            for tv in &points {
                black_box(table.iv_eval(&geom, *tv).unwrap());
            }
        })
    });
    c.bench_function("characterize/0.1V_grid", |b| {
        b.iter(|| TableModel::characterize(tech.clone(), Polarity::Nmos, 0.1).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_models
}
criterion_main!(benches);
