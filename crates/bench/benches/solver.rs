//! §IV-B ablation: the QWM Newton update solved with the O(K)
//! bordered-tridiagonal method vs dense LU ("We observe tridiagonal
//! method gives almost twice speedup over LU decomposition").
use qwm::circuit::cells;
use qwm::circuit::waveform::{TransitionKind, Waveform};
use qwm::core::chain::Chain;
use qwm::core::solver::{
    solve_region, ChainContext, EndCondition, LinearSolver, RegionOptions, RegionState,
};
use qwm::device::{analytic_models, Technology};
use qwm_bench::harness::Harness;

fn main() {
    let h = Harness::new(40);
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    for &k in &[4usize, 8, 16, 32, 64] {
        let stage = cells::nmos_stack(&tech, &vec![1.5e-6; k], 20e-15).unwrap();
        let out = stage.node_by_name("out").unwrap();
        let chain = Chain::extract(&stage, out, TransitionKind::Fall).unwrap();
        let inputs: Vec<Waveform> = (0..k).map(|_| Waveform::constant(tech.vdd)).collect();
        let ctx = ChainContext {
            stage: &stage,
            chain: &chain,
            models: &models,
            inputs: &inputs,
            rail_v: 0.0,
        };
        // The canonical first QWM region: everything precharged, the
        // bottom transistor conducting, solved to M2's turn-on.
        let v0 = vec![tech.vdd; k];
        let caps = ctx.node_caps(&v0);
        let i0 = ctx.node_currents(&v0, 0.0).unwrap();
        let state = RegionState {
            tau: 0.0,
            v: v0,
            i: i0,
            caps,
        };
        let cond = EndCondition::TurnOn { element: 2 };
        // Find a working span seed once (the evaluator's ladder).
        let seed = [0.2e-12, 1e-12, 5e-12, 25e-12]
            .into_iter()
            .find(|&dt| solve_region(&ctx, &state, cond, dt, &RegionOptions::default()).is_ok())
            .expect("some seed converges");
        for (label, solver) in [
            ("bordered_tridiagonal", LinearSolver::BorderedTridiagonal),
            ("dense_lu", LinearSolver::DenseLu),
        ] {
            let opts = RegionOptions {
                linear_solver: solver,
                ..RegionOptions::default()
            };
            h.bench(&format!("region_solve/{label}/{k}"), || {
                solve_region(&ctx, &state, cond, seed, &opts).unwrap();
            });
        }
    }
    qwm::obs::emit();
}
