//! Incremental STA: full analysis vs re-analysis after a single resize
//! on an inverter chain.
use criterion::{criterion_group, criterion_main, Criterion};
use qwm::circuit::waveform::TransitionKind;
use qwm::device::{tabular_models, Technology};
use qwm::sta::engine::StaEngine;
use qwm::sta::evaluator::QwmEvaluator;
use qwm::sta::graph::inverter_chain;

fn bench_sta(c: &mut Criterion) {
    let tech = Technology::cmosp35();
    let models = tabular_models(&tech).unwrap();
    let depth = 16;
    let ev = QwmEvaluator::default();
    c.bench_function("sta/full_16", |b| {
        b.iter(|| {
            let nl = inverter_chain(&tech, depth, 10e-15);
            let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
            engine.run(&ev).unwrap()
        })
    });
    c.bench_function("sta/incremental_16", |b| {
        let nl = inverter_chain(&tech, depth, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        engine.run(&ev).unwrap();
        let mut w = 2.0;
        b.iter(|| {
            // Alternate the width so the cache is genuinely invalidated.
            w = if w == 2.0 { 3.0 } else { 2.0 };
            engine.resize_device(depth, w * tech.w_min).unwrap();
            engine.run(&ev).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sta
}
criterion_main!(benches);
