//! Incremental STA: full analysis vs re-analysis after a single resize
//! on an inverter chain.
use qwm::circuit::waveform::TransitionKind;
use qwm::device::{tabular_models, Technology};
use qwm::sta::engine::StaEngine;
use qwm::sta::evaluator::QwmEvaluator;
use qwm::sta::graph::inverter_chain;
use qwm_bench::harness::Harness;

fn main() {
    let h = Harness::new(20);
    let tech = Technology::cmosp35();
    let models = tabular_models(&tech).unwrap();
    let depth = 16;
    let ev = QwmEvaluator::default();
    h.bench("sta/full_16", || {
        let nl = inverter_chain(&tech, depth, 10e-15);
        let engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        engine.run(&ev).unwrap();
    });
    {
        let nl = inverter_chain(&tech, depth, 10e-15);
        let mut engine = StaEngine::new(nl, &models, TransitionKind::Fall).unwrap();
        engine.run(&ev).unwrap();
        let mut w = 2.0;
        h.bench("sta/incremental_16", || {
            // Alternate the width so the cache is genuinely invalidated.
            w = if w == 2.0 { 3.0 } else { 2.0 };
            engine.resize_device(depth, w * tech.w_min).unwrap();
            engine.run(&ev).unwrap();
        });
    }
    qwm::obs::emit();
}
