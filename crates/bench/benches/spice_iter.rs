//! §II ablation: Newton–Raphson vs successive-chords iteration in the
//! SPICE baseline (the TETA trade-off: more iterations, far fewer
//! factorizations).
use qwm::circuit::cells;
use qwm::circuit::waveform::Waveform;
use qwm::device::{analytic_models, Technology};
use qwm::spice::engine::{initial_uniform, simulate, IterationScheme, TransientConfig};
use qwm_bench::harness::Harness;

fn main() {
    let h = Harness::new(20);
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let stage = cells::nand(&tech, 3, cells::DEFAULT_LOAD).unwrap();
    let inputs: Vec<Waveform> = (0..3).map(|_| Waveform::step(0.0, 0.0, tech.vdd)).collect();
    let init = initial_uniform(&stage, &models, tech.vdd);
    for (label, scheme) in [
        ("newton_raphson", IterationScheme::NewtonRaphson),
        ("successive_chords", IterationScheme::SuccessiveChords),
    ] {
        let cfg = TransientConfig {
            iteration: scheme,
            ..TransientConfig::hspice_1ps(300e-12)
        };
        h.bench(&format!("spice_transient/{label}"), || {
            simulate(&stage, &models, &inputs, &init, &cfg).unwrap();
        });
    }
    qwm::obs::emit();
}
