//! Tests for the capacity-discovery subsystem (ISSUE 8): deck parsing,
//! deterministic replay across connection counts, the
//! `BENCH_capacity_server.json` schema round-trip, the `compare`
//! regression gate, and a live bounded ramp against an in-process
//! server for both stock workload decks.

use qwm::obs::report::{capacity_html, parse_json, Json};
use qwm::server::{Server, ServerConfig, ServerHandle};
use qwm_bench::capacity::{
    assign_lanes, compare_reports, discover_capacity, parse_workload, plan_round, render_op_log,
    results_json, OpKind, Slew, SCHEMA,
};
use std::sync::Mutex;

/// Server obs/fault state is process-global; serialize the live tests.
static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Repo-relative path fixup: bench tests run with the crate as cwd.
fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn stock_deck(name: &str) -> String {
    std::fs::read_to_string(repo_root().join("testdata/workloads").join(name)).expect(name)
}

fn devices() -> Vec<String> {
    (0..8).map(|i| format!("M{i}")).collect()
}

// ---------------------------------------------------------------- parsing

#[test]
fn stock_decks_parse_and_describe_the_advertised_mixes() {
    let heavy = parse_workload(&stock_deck("heavy_run.deck")).expect("heavy_run");
    assert_eq!(heavy.name, "heavy_run");
    assert_eq!(heavy.ops.len(), 1);
    assert_eq!(heavy.ops[0].kind, OpKind::Run);
    assert!(matches!(heavy.ops[0].slew, Slew::Jitter(lo, hi) if lo < hi));

    let mixed = parse_workload(&stock_deck("mixed.deck")).expect("mixed");
    assert_eq!(mixed.name, "mixed");
    assert_eq!(mixed.ops.len(), 4);
    let corner = mixed.ops.iter().find(|o| o.name == "corner_sweep").unwrap();
    assert_eq!(corner.kind, OpKind::Run);
    assert_eq!(corner.corners, "ss,tt,ff");
    assert!(mixed.ops.iter().any(|o| o.kind == OpKind::Edit));
    assert!(mixed.ops.iter().any(|o| o.kind == OpKind::Report));
}

#[test]
fn deck_parser_rejects_malformed_input_with_line_numbers() {
    let cases: &[(&str, &str)] = &[
        ("name = x\nbogus_key = 1", "line 2"),
        ("name = x\n[op run]\nweight = 0", "line 3"),
        ("name = x\n[op run]\ncorners = warp9", "line 3"),
        ("name = x\n[op run]\nslew_ps = jitter:9:3", "line 3"),
        ("name = x\n[op run]\nkind = dance", "line 3"),
        ("name = x\n[section", "line 2"),
        ("name = has spaces", "line 1"),
        ("name = x\n[op run]\n[op run]", "duplicate op"),
    ];
    for (text, want) in cases {
        let err = parse_workload(text).expect_err(text);
        assert!(err.contains(want), "{text:?}: {err}");
    }
    // Structural validations run after the line scan.
    assert!(parse_workload("name = x").unwrap_err().contains("ramp"));
    assert!(
        parse_workload("name = x\ninitial_rps = 5\nincrement_rps = 5\nmax_rps = 50")
            .unwrap_err()
            .contains("[op")
    );
}

// ------------------------------------------------------- replay determinism

#[test]
fn planned_op_log_is_byte_identical_across_1_4_8_connections() {
    let spec = parse_workload(&stock_deck("mixed.deck")).expect("mixed");
    let devices = devices();
    let reference = render_op_log(&plan_round(&spec, &devices, 7, 40));
    assert!(!reference.is_empty());
    for connections in [1usize, 4, 8] {
        // The op log is computed before lane assignment, so replanning
        // under any connection count must reproduce it byte-for-byte…
        let plan = plan_round(&spec, &devices, 7, 40);
        assert_eq!(render_op_log(&plan), reference, "{connections} connections");
        // …and lane assignment must partition the plan without losing,
        // duplicating, or reordering any session's ops.
        let lanes = assign_lanes(&plan, connections);
        assert_eq!(lanes.len(), connections);
        assert_eq!(lanes.iter().map(Vec::len).sum::<usize>(), plan.len());
        let mut merged: Vec<_> = lanes.into_iter().flatten().collect();
        merged.sort_by_key(|a| (a.at, a.session, a.seq));
        assert_eq!(render_op_log(&merged), reference);
    }
    // Different seed or rate ⇒ different schedule.
    assert_ne!(
        render_op_log(&plan_round(&spec, &devices, 8, 40)),
        reference
    );
    assert_ne!(
        render_op_log(&plan_round(&spec, &devices, 7, 41)),
        reference
    );
}

#[test]
fn plan_spreads_ops_across_all_sessions_at_the_requested_rate() {
    let spec = parse_workload(&stock_deck("heavy_run.deck")).expect("heavy_run");
    let plan = plan_round(&spec, &devices(), 3, 100);
    // round_ms = 1000 ⇒ 100 rps plans 100 ops.
    assert_eq!(plan.len(), 100);
    for s in 0..spec.sessions {
        let n = plan.iter().filter(|op| op.session == s).count();
        assert!(n >= 100 / spec.sessions, "session {s} got {n} ops");
    }
    let round = std::time::Duration::from_millis(spec.round_ms);
    assert!(plan.iter().all(|op| op.at < round));
    assert!(
        plan.windows(2).all(|w| w[0].at <= w[1].at),
        "sorted by time"
    );
}

// ------------------------------------------- schema round-trip and compare

/// A synthetic two-workload artifact without touching any server.
fn synthetic_artifact(max_a: u32, max_b: u32) -> String {
    let spec = parse_workload(&stock_deck("heavy_run.deck")).expect("heavy_run");
    let devices = devices();
    let mk = |name: &str, max: u32| {
        let mut spec = spec.clone();
        spec.name = name.to_string();
        let plan = plan_round(&spec, &devices, 5, 10);
        let sample = qwm_bench::capacity::RoundSample {
            planned: plan.len(),
            ok: plan.len().saturating_sub(1),
            failures: 1,
            rejected: 0,
            latencies_us: vec![100.0, 200.0, 300.0],
            service_us: vec![90.0, 180.0, 270.0],
            waits_us: vec![5.0, 10.0],
            solves_us: vec![80.0, 160.0],
            wall: std::time::Duration::from_millis(spec.round_ms),
        };
        let record = qwm_bench::capacity::evaluate_round("ramp", 10, &sample, &spec.thresholds);
        qwm_bench::capacity::ExperimentResult {
            spec,
            connections: 2,
            seed: 5,
            rounds: vec![record],
            max_sustainable_rps: max,
            saturated: true,
        }
    };
    results_json(5, &[mk("alpha", max_a), mk("beta", max_b)])
}

#[test]
fn results_json_round_trips_through_the_in_repo_reader() {
    let text = synthetic_artifact(120, 80);
    let doc = parse_json(&text).expect("valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
    assert_eq!(doc.get("seed").and_then(Json::as_f64), Some(5.0));
    let Some(Json::Arr(workloads)) = doc.get("workloads") else {
        panic!("workloads array");
    };
    assert_eq!(workloads.len(), 2);
    let alpha = &workloads[0];
    assert_eq!(alpha.get("name").and_then(Json::as_str), Some("alpha"));
    assert_eq!(
        alpha.get("max_sustainable_rps").and_then(Json::as_f64),
        Some(120.0)
    );
    let Some(Json::Arr(rounds)) = alpha.get("rounds") else {
        panic!("rounds array");
    };
    // Per-round percentiles and the wait/solve split survive the trip.
    let round = &rounds[0];
    for key in [
        "target_rps",
        "achieved_rps",
        "fail_rate",
        "p50_us",
        "p95_us",
        "wait_p50_us",
        "wait_p95_us",
        "solve_p50_us",
        "solve_p95_us",
    ] {
        assert!(
            round.get(key).and_then(Json::as_f64).is_some(),
            "round field {key}"
        );
    }
    assert_eq!(round.get("p50_us").and_then(Json::as_f64), Some(200.0));
    assert_eq!(round.get("wait_p95_us").and_then(Json::as_f64), Some(10.0));
}

#[test]
fn compare_passes_on_identical_artifacts() {
    let text = synthetic_artifact(120, 80);
    let summary = compare_reports(&text, &text, 10.0).expect("identical artifacts compare clean");
    assert!(summary.contains("\"alpha\""), "{summary}");
    assert!(summary.contains("\"beta\""), "{summary}");
}

#[test]
fn compare_fails_precisely_on_an_injected_max_rps_drop() {
    let old = synthetic_artifact(120, 80);
    let new = synthetic_artifact(120, 60); // beta: −25% > 10% allowed
    let err = compare_reports(&old, &new, 10.0).expect_err("regression must fail");
    assert!(err.contains("\"beta\""), "{err}");
    assert!(err.contains("80 -> 60"), "{err}");
    assert!(err.contains("25.0% drop"), "{err}");
    assert!(!err.contains("\"alpha\""), "alpha did not regress: {err}");
    // Within tolerance passes.
    assert!(compare_reports(&old, &synthetic_artifact(115, 75), 10.0).is_ok());
    // A workload vanishing from the new artifact is a regression too.
    let gone = synthetic_artifact(120, 80).replace("\"beta\"", "\"gamma\"");
    let err = compare_reports(&old, &gone, 10.0).expect_err("missing workload must fail");
    assert!(err.contains("missing from new"), "{err}");
}

#[test]
fn compare_tolerates_unknown_fields_and_rejects_wrong_schema() {
    let old = synthetic_artifact(120, 80);
    // Future schema revisions may add fields anywhere.
    let extended = old
        .replace(
            "\"schema\": \"qwm.capacity.v1\",",
            "\"schema\": \"qwm.capacity.v2\",\n  \"host\": \"ci-runner\",",
        )
        .replace("\"sessions\":", "\"annotation\": \"extra\", \"sessions\":");
    compare_reports(&old, &extended, 10.0).expect("unknown fields must be tolerated");
    // But a non-capacity document is refused with a pointed message.
    let err = compare_reports(&old, "{\"schema\": \"qwm.trace.v1\"}", 10.0).unwrap_err();
    assert!(err.contains("unexpected schema"), "{err}");
    let err = compare_reports("not json", &old, 10.0).unwrap_err();
    assert!(err.contains("old artifact"), "{err}");
}

#[test]
fn capacity_html_renders_self_contained_from_the_artifact() {
    let html = capacity_html("capacity test", &synthetic_artifact(120, 80)).expect("render");
    assert!(html.contains("<h2>workload alpha</h2>"), "workload section");
    assert!(html.contains("max sustainable: 120 rps"), "max rps line");
    assert!(html.contains("<table>"), "rounds table");
    for banned in ["http://", "https://", "<script", "src=", "@import"] {
        assert!(!html.contains(banned), "external reference {banned:?}");
    }
    // Non-capacity input is a structured error, not a panic.
    assert!(capacity_html("t", "{\"schema\": \"qwm.obs.v1\"}").is_err());
    assert!(capacity_html("t", "[1, 2]").is_err());
}

// ----------------------------------------------------------- live ramps

fn start_server() -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    Server::spawn(ServerConfig {
        max_inflight: 4,
        ..ServerConfig::default()
    })
    .expect("spawn server")
}

/// Both stock decks, shrunk to a bounded ramp, must converge on a live
/// server: discover a max sustainable rps, record per-round data, and
/// produce an artifact that round-trips through JSON, HTML, and a
/// self-compare.
#[test]
fn bounded_ramp_discovers_capacity_on_both_stock_decks() {
    let _guard = locked();
    let root = repo_root();
    let (handle, join) = start_server();
    let addr = handle.addr().to_string();
    let mut results = Vec::new();
    for deck in ["heavy_run.deck", "mixed.deck"] {
        let mut spec = parse_workload(&stock_deck(deck)).expect(deck);
        spec.deck = root.join(&spec.deck).to_string_lossy().into_owned();
        spec.sessions = 2;
        spec.initial_rps = 4;
        spec.increment_rps = 4;
        spec.max_rps = 12;
        spec.round_ms = 300;
        let r = discover_capacity(&addr, &spec, 11, 2).expect(deck);
        assert!(!r.rounds.is_empty(), "{deck}: no rounds");
        assert!(
            (spec.initial_rps..=spec.max_rps).contains(&r.max_sustainable_rps)
                || r.max_sustainable_rps == 0,
            "{deck}: max {} outside ramp",
            r.max_sustainable_rps
        );
        assert!(r.rounds.iter().all(|round| round.planned > 0));
        results.push(r);
    }
    let json = results_json(11, &results);
    let doc = parse_json(&json).expect("artifact parses");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
    capacity_html("live ramp", &json).expect("HTML renders");
    compare_reports(&json, &json, 5.0).expect("self-compare passes");
    stop_server(handle, join);
}

/// An unreachable median ceiling must trip a stop threshold and drive
/// the binary search to convergence: `max(1, increment/4)` window,
/// search rounds present, `saturated` set.
#[test]
fn unreachable_median_ceiling_forces_saturation_and_binary_search() {
    let _guard = locked();
    let root = repo_root();
    let (handle, join) = start_server();
    let addr = handle.addr().to_string();
    let mut spec = parse_workload(&stock_deck("heavy_run.deck")).expect("heavy_run");
    spec.deck = root.join(&spec.deck).to_string_lossy().into_owned();
    spec.sessions = 2;
    spec.initial_rps = 8;
    spec.increment_rps = 8;
    spec.max_rps = 64;
    spec.round_ms = 250;
    // No real server clears a 1 µs median: the first ramp round trips,
    // exercising the first-round-bad edge (last_good = 0) and search.
    spec.thresholds.median_ms = 0.001;
    let r = discover_capacity(&addr, &spec, 13, 2).expect("ramp");
    assert!(r.saturated, "threshold must trip");
    assert!(
        r.rounds.iter().any(|round| !round.good),
        "a bad round must be recorded"
    );
    assert!(
        r.rounds
            .iter()
            .filter(|round| !round.good)
            .all(|round| round.stop.contains("median")),
        "stop reason names the tripped threshold"
    );
    // Convergence rule: the returned max is below the first bad rps by
    // construction, and the search narrowed to ≤ max(1, increment/4).
    let first_bad = r
        .rounds
        .iter()
        .find(|round| !round.good)
        .map(|round| round.target_rps)
        .unwrap();
    assert!(r.max_sustainable_rps < first_bad);
    stop_server(handle, join);
}

fn stop_server(handle: ServerHandle, join: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    join.join().expect("server thread").expect("clean drain");
}
