//! Higher-order region solves: two collocation points per region.
//!
//! The paper parameterizes its method by `r`, the number of free
//! parameters per node waveform per region: "If r parameters are chosen
//! to characterize each output waveform, then r·K equations need to be
//! generated — r time points need to be chosen" (§IV-A), and its
//! conclusion flags richer waveform models as future work. This module
//! implements `r = 2`: each region carries **two** matched time points —
//! its midpoint and its end — making the node current piecewise linear
//! over two half-intervals (equivalently, the voltage two chained
//! quadratics) instead of one.
//!
//! The coupled system has `2K + 1` unknowns
//! `(V_mid, V_end, τ′)` and is solved by damped Newton with a dense LU
//! update (the Jacobian is block-tridiagonal; at the paper's K ≤ 10 the
//! dense solve is not worth specializing — the point of `r = 2` is
//! accuracy, not speed).

use crate::solver::{ChainContext, EndCondition, RegionOptions, RegionSolution, RegionState};
use qwm_num::matrix::Matrix;
use qwm_num::{NumError, Result};

/// The outcome of a two-point region solve: the midpoint state plus the
/// usual end-of-region solution. Committing it produces two quadratic
/// pieces.
#[derive(Debug, Clone)]
pub struct TwoPointSolution {
    /// Midpoint time `τ + Δ/2`.
    pub tau_mid: f64,
    /// Node voltages at the midpoint.
    pub v_mid: Vec<f64>,
    /// Node currents at the midpoint (device-consistent).
    pub i_mid: Vec<f64>,
    /// The end-of-region solution (same shape as the `r = 1` solver's).
    pub end: RegionSolution,
    /// Current slopes over the first half-interval.
    pub alphas_first: Vec<f64>,
}

/// Solves one region with two collocation points (`r = 2`).
///
/// Residuals (trapezoidal charge balance over each half-interval, with
/// `h = Δ/2`):
///
/// ```text
/// F1_k: C_k (Vm_k − V_k)  − h/2 (I_τk + Im_k) = 0
/// F2_k: C_k (Ve_k − Vm_k) − h/2 (Im_k + Ie_k) = 0
/// F3 : end condition at (V_end, τ′)
/// ```
///
/// where `Im_k`, `Ie_k` are the device-predicted node currents
/// `J_{k+1} − J_k` at the midpoint and end.
///
/// # Errors
///
/// Returns [`NumError::NoConvergence`] when Newton stalls and propagates
/// device/linear-algebra failures.
pub fn solve_region_two_point(
    ctx: &ChainContext<'_>,
    state: &RegionState,
    cond: EndCondition,
    dt_guess: f64,
    opts: &RegionOptions,
    spent: &mut usize,
) -> Result<TwoPointSolution> {
    let n = ctx.chain.len();
    let vdd = ctx.models.tech().vdd;
    let mut t_end = state.tau + dt_guess.max(opts.min_delta);
    if let EndCondition::FixedTime { t } = cond {
        t_end = t;
        if t_end <= state.tau + opts.min_delta {
            return Err(NumError::InvalidInput {
                context: "solve_region_two_point",
                detail: "fixed end time not after region start".to_string(),
            });
        }
    }

    // Seed: explicit Euler to the midpoint and end.
    let h0 = 0.5 * (t_end - state.tau);
    let mut vm: Vec<f64> = (0..n)
        .map(|k| (state.v[k] + state.i[k] * h0 / state.caps[k]).clamp(-0.5, vdd + 0.5))
        .collect();
    let mut ve: Vec<f64> = (0..n)
        .map(|k| (state.v[k] + state.i[k] * 2.0 * h0 / state.caps[k]).clamp(-0.5, vdd + 0.5))
        .collect();

    let dim = 2 * n + 1;
    let mut iterations = 0usize;
    for _ in 0..opts.max_iterations {
        iterations += 1;
        *spent += 1;
        let delta = (t_end - state.tau).max(opts.min_delta);
        let h = 0.5 * delta;
        let t_mid = state.tau + h;

        let im = ctx.node_currents_with_derivs(&vm, t_mid)?;
        let ie = ctx.node_currents_with_derivs(&ve, t_end)?;

        // Residuals.
        let mut f = vec![0.0; dim];
        for k in 0..n {
            f[k] = state.caps[k] * (vm[k] - state.v[k]) - 0.5 * h * (state.i[k] + im.i[k]);
            f[n + k] = state.caps[k] * (ve[k] - vm[k]) - 0.5 * h * (im.i[k] + ie.i[k]);
        }
        let g_res = match cond {
            EndCondition::TurnOn { element } => ctx.excess(element, &ve, t_end),
            EndCondition::Crossing { node, level } => ve[node - 1] - level,
            EndCondition::FixedTime { .. } => 0.0,
        };
        f[2 * n] = g_res;

        // Residuals are charges; dividing by the half-interval gives an
        // equivalent average-current error, comparable with the r = 1
        // solver's current tolerance.
        let f_norm = f[..2 * n].iter().fold(0.0_f64, |m, x| m.max(x.abs() / h));
        let cond_ok = match cond {
            EndCondition::FixedTime { .. } => true,
            _ => g_res.abs() < opts.tol_condition_v,
        };
        if f_norm < opts.tol_current && cond_ok {
            qwm_obs::histogram!("qwm.region.iterations", qwm_obs::ITER_BOUNDS)
                .record(iterations as u64);
            // Device-consistent outputs.
            let alphas_first: Vec<f64> = (0..n).map(|k| (im.i[k] - state.i[k]) / h).collect();
            let alphas_second: Vec<f64> = (0..n).map(|k| (ie.i[k] - im.i[k]) / h).collect();
            return Ok(TwoPointSolution {
                tau_mid: t_mid,
                v_mid: vm,
                i_mid: im.i,
                end: RegionSolution {
                    tau_next: t_end,
                    v_next: ve,
                    i_next: ie.i,
                    alphas: alphas_second,
                    iterations,
                },
                alphas_first,
            });
        }

        // Dense Jacobian.
        let mut jac = Matrix::zeros(dim, dim)?;
        for k in 0..n {
            // F1_k = C (Vm_k − V_k) − h/2 (Iτ_k + Im_k)
            jac.add(k, k, state.caps[k]);
            for (col, dv) in im.deriv_triplet(k) {
                jac.add(k, col, -0.5 * h * dv);
            }
            // ∂F1/∂τ′: h = (τ′−τ)/2 ⇒ ∂h/∂τ′ = 1/2; gate motion at t_mid
            // also scales by 1/2.
            let dtau = -0.25 * (state.i[k] + im.i[k]) - 0.5 * h * (0.5 * im.d_t[k]);
            jac.add(k, 2 * n, dtau);

            // F2_k = C (Ve_k − Vm_k) − h/2 (Im_k + Ie_k)
            jac.add(n + k, n + k, state.caps[k]);
            jac.add(n + k, k, -state.caps[k]);
            for (col, dv) in im.deriv_triplet(k) {
                jac.add(n + k, col, -0.5 * h * dv);
            }
            for (col, dv) in ie.deriv_triplet(k) {
                jac.add(n + k, n + col, -0.5 * h * dv);
            }
            let dtau2 = -0.25 * (im.i[k] + ie.i[k]) - 0.5 * h * (0.5 * im.d_t[k] + ie.d_t[k]);
            jac.add(n + k, 2 * n, dtau2);
        }
        // Condition row.
        match cond {
            EndCondition::TurnOn { element } => {
                let hfd = 1e-6;
                for idx in [element.saturating_sub(1), element] {
                    if idx == 0 || idx > n {
                        continue;
                    }
                    let mut vp = ve.clone();
                    vp[idx - 1] += hfd;
                    let mut vq = ve.clone();
                    vq[idx - 1] -= hfd;
                    let d = (ctx.excess(element, &vp, t_end) - ctx.excess(element, &vq, t_end))
                        / (2.0 * hfd);
                    jac.add(2 * n, n + idx - 1, d);
                }
                let ht = 1e-15;
                let d_t = (ctx.excess(element, &ve, t_end + ht)
                    - ctx.excess(element, &ve, t_end - ht))
                    / (2.0 * ht);
                jac.add(2 * n, 2 * n, d_t);
            }
            EndCondition::Crossing { node, .. } => {
                jac.add(2 * n, n + node - 1, 1.0);
            }
            EndCondition::FixedTime { .. } => {
                jac.add(2 * n, 2 * n, 1.0);
            }
        }

        let step = jac.solve(&f)?;
        if !step.iter().all(|s| s.is_finite()) {
            return Err(NumError::NoConvergence {
                method: "qwm region (r=2, non-finite step)",
                iterations,
                residual: f_norm,
            });
        }
        for k in 0..n {
            vm[k] = (vm[k] - step[k].clamp(-opts.max_dv, opts.max_dv)).clamp(-0.5, vdd + 0.5);
            ve[k] = (ve[k] - step[n + k].clamp(-opts.max_dv, opts.max_dv)).clamp(-0.5, vdd + 0.5);
        }
        if !matches!(cond, EndCondition::FixedTime { .. }) {
            let max_dt = 2.0 * delta + 1e-12;
            t_end = (t_end - step[2 * n].clamp(-max_dt, max_dt)).max(state.tau + opts.min_delta);
        }
    }
    qwm_obs::counter!("qwm.region.failures").incr();
    Err(NumError::NoConvergence {
        method: "qwm region (r=2)",
        iterations,
        residual: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Chain;
    use crate::solver::solve_region;
    use qwm_circuit::cells;
    use qwm_circuit::waveform::{TransitionKind, Waveform};
    use qwm_device::{analytic_models, Technology};

    fn ctx_setup(
        k: usize,
    ) -> (
        Technology,
        qwm_device::ModelSet,
        qwm_circuit::LogicStage,
        Vec<Waveform>,
    ) {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let stage = cells::nmos_stack(&tech, &vec![1.5e-6; k], 20e-15).unwrap();
        let inputs: Vec<Waveform> = (0..k).map(|_| Waveform::constant(tech.vdd)).collect();
        (tech, models, stage, inputs)
    }

    #[test]
    fn two_point_matches_one_point_on_an_easy_region() {
        let (tech, models, stage, inputs) = ctx_setup(2);
        let out = stage.node_by_name("out").unwrap();
        let chain = Chain::extract(&stage, out, TransitionKind::Fall).unwrap();
        let ctx = ChainContext {
            stage: &stage,
            chain: &chain,
            models: &models,
            inputs: &inputs,
            rail_v: 0.0,
        };
        let v0 = vec![2.0, 3.0];
        let caps = ctx.node_caps(&v0);
        let i0 = ctx.node_currents(&v0, 0.0).unwrap();
        let state = RegionState {
            tau: 0.0,
            v: v0,
            i: i0,
            caps,
        };
        let cond = EndCondition::Crossing {
            node: 2,
            level: 2.5,
        };
        let opts = RegionOptions::default();
        let r1 = solve_region(&ctx, &state, cond, 5e-12, &opts).unwrap();
        let mut spent = 0;
        let r2 = solve_region_two_point(&ctx, &state, cond, 5e-12, &opts, &mut spent).unwrap();
        // Same event, slightly different (better-resolved) time.
        assert!((r2.end.tau_next - r1.tau_next).abs() / r1.tau_next < 0.05);
        assert!((r2.end.v_next[1] - 2.5).abs() < 1e-6);
        // Midpoint sits between the endpoints in time and voltage.
        assert!(r2.tau_mid > 0.0 && r2.tau_mid < r2.end.tau_next);
        assert!(r2.v_mid[1] < state.v[1] && r2.v_mid[1] > r2.end.v_next[1]);
        assert!((tech.vdd - 3.3).abs() < 1e-12);
        assert!(spent > 0);
    }

    #[test]
    fn two_point_fixed_time_advances_both_halves() {
        let (_tech, models, stage, inputs) = ctx_setup(3);
        let out = stage.node_by_name("out").unwrap();
        let chain = Chain::extract(&stage, out, TransitionKind::Fall).unwrap();
        let ctx = ChainContext {
            stage: &stage,
            chain: &chain,
            models: &models,
            inputs: &inputs,
            rail_v: 0.0,
        };
        let v0 = vec![1.5, 2.5, 3.2];
        let caps = ctx.node_caps(&v0);
        let i0 = ctx.node_currents(&v0, 0.0).unwrap();
        let state = RegionState {
            tau: 0.0,
            v: v0.clone(),
            i: i0,
            caps,
        };
        let mut spent = 0;
        let sol = solve_region_two_point(
            &ctx,
            &state,
            EndCondition::FixedTime { t: 10e-12 },
            0.0,
            &RegionOptions::default(),
            &mut spent,
        )
        .unwrap();
        assert!((sol.end.tau_next - 10e-12).abs() < 1e-18);
        assert!((sol.tau_mid - 5e-12).abs() < 1e-18);
        for (k, &v0k) in v0.iter().enumerate() {
            assert!(sol.v_mid[k] <= v0k + 1e-9);
            assert!(sol.end.v_next[k] <= sol.v_mid[k] + 1e-9);
        }
        // Bad fixed time rejected.
        assert!(solve_region_two_point(
            &ctx,
            &state,
            EndCondition::FixedTime { t: -1.0 },
            0.0,
            &RegionOptions::default(),
            &mut spent,
        )
        .is_err());
    }
}
