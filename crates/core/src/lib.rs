//! Piecewise Quadratic Waveform Matching (QWM) — the paper's primary
//! contribution.
//!
//! QWM computes the transient response of a CMOS charge/discharge chain
//! with a cost of roughly **K small algebraic solves** (one per
//! transistor) instead of the hundreds of Newton-at-every-time-step
//! solves a SPICE-class integrator needs. The trick (paper §IV): each
//! node's charge/discharge current has a single peak at its *critical
//! point* — the instant the transistor above it turns on — so between
//! critical points the current is well approximated as linear in time
//! and the voltage as quadratic, characterized by one parameter α per
//! node per region. Matching capacitor currents against device-model
//! branch currents at each critical point yields a small nonlinear
//! system whose Jacobian is tridiagonal plus one column, solvable in
//! O(K).
//!
//! * [`chain`] — extraction of the worst-case charge/discharge chain
//!   from a logic stage;
//! * [`piecewise`] — the quadratic waveform representation (Eq. (6));
//! * [`solver`] — the per-region algebraic system (Eq. (7)/(9)) with the
//!   bordered-tridiagonal Newton update (§IV-B) and a dense-LU ablation
//!   path;
//! * [`mod@evaluate`] — the event loop over critical points implementing
//!   waveform evaluation (Definition 3).
//!
//! # Example
//!
//! Delay of a 4-high NMOS stack:
//!
//! ```
//! use qwm_circuit::cells;
//! use qwm_circuit::waveform::{TransitionKind, Waveform};
//! use qwm_core::evaluate::{evaluate, QwmConfig};
//! use qwm_device::{analytic_models, Technology};
//!
//! # fn main() -> Result<(), qwm_num::NumError> {
//! let tech = Technology::cmosp35();
//! let models = analytic_models(&tech);
//! let stack = cells::nmos_stack(&tech, &vec![1.5e-6; 4], 10e-15)?;
//! let out = stack.node_by_name("out").expect("output");
//! let inputs: Vec<Waveform> =
//!     (0..4).map(|_| Waveform::step(0.0, 0.0, tech.vdd)).collect();
//! // Precharged-high start (node 1 is ground in stage indexing).
//! let init: Vec<f64> = (0..stack.node_count())
//!     .map(|i| if i == 1 { 0.0 } else { tech.vdd })
//!     .collect();
//! let result = evaluate(
//!     &stack, &models, &inputs, &init, out,
//!     TransitionKind::Fall, &QwmConfig::default(),
//! )?;
//! let delay = result.delay_50(tech.vdd, 0.0).expect("50% crossing");
//! assert!(delay > 0.0);
//! # Ok(())
//! # }
//! ```

// The hot path must not clone what a borrow can serve (DESIGN.md Â§16);
// redundant_clone is allow-by-default upstream, denied here.
#![deny(clippy::redundant_clone)]

pub mod chain;
pub mod evaluate;
pub mod piecewise;
pub mod solver;
pub mod solver2;

pub use chain::{Chain, ChainElement};
pub use evaluate::{evaluate, CriticalPoint, CriticalPointKind, QwmConfig, QwmResult};
pub use piecewise::{PiecewiseQuadratic, QuadraticPiece};
pub use solver::{EndCondition, LinearSolver, RegionOptions};
pub use solver2::{solve_region_two_point, TwoPointSolution};
