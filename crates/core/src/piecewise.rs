//! Piecewise quadratic waveforms — QWM's native output representation.
//!
//! Within one region `[τ, τ′]` a node's discharge current is modeled as
//! linear, `I(t) = I_τ + α (t − τ)`, so its voltage is the quadratic of
//! paper Eq. (6):
//!
//! ```text
//! V(t) = V_τ + [I_τ (t − τ) + ½ α (t − τ)²] / C
//! ```
//!
//! A transient is a sequence of such pieces separated by the critical
//! points. The pieces carry enough state to evaluate voltage, current
//! and crossings in closed form.

use qwm_circuit::waveform::Waveform;
use qwm_num::{NumError, Result};

/// One quadratic piece of a node's voltage waveform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadraticPiece {
    /// Region start time τ \[s\].
    pub t0: f64,
    /// Region end time τ′ \[s\].
    pub t1: f64,
    /// Voltage at τ \[V\].
    pub v0: f64,
    /// Charge/discharge current at τ \[A\] (paper Eq. (2)).
    pub i0: f64,
    /// Current slope α \[A/s\] — the piece's single free parameter.
    pub alpha: f64,
    /// Node capacitance used in this region \[F\].
    pub cap: f64,
}

impl QuadraticPiece {
    /// Voltage at `t` (valid on `[t0, t1]`, extrapolates outside).
    pub fn voltage(&self, t: f64) -> f64 {
        let dt = t - self.t0;
        self.v0 + (self.i0 * dt + 0.5 * self.alpha * dt * dt) / self.cap
    }

    /// Current at `t`.
    pub fn current(&self, t: f64) -> f64 {
        self.i0 + self.alpha * (t - self.t0)
    }

    /// Voltage at the end of the piece.
    pub fn end_voltage(&self) -> f64 {
        self.voltage(self.t1)
    }

    /// Current at the end of the piece.
    pub fn end_current(&self) -> f64 {
        self.current(self.t1)
    }

    /// Earliest `t ∈ [t0, t1]` with `voltage(t) == level`, if any
    /// (closed-form quadratic solve).
    pub fn crossing(&self, level: f64) -> Option<f64> {
        // v0 + (i0 dt + a/2 dt²)/C = level
        let rhs = (level - self.v0) * self.cap;
        let a = 0.5 * self.alpha;
        let b = self.i0;
        let c = -rhs;
        let span = self.t1 - self.t0;
        let mut best: Option<f64> = None;
        let mut consider = |dt: f64| {
            if (-1e-15..=span * (1.0 + 1e-9)).contains(&dt) {
                let t = self.t0 + dt.max(0.0);
                if best.is_none_or(|b| t < b) {
                    best = Some(t);
                }
            }
        };
        if a.abs() < 1e-30 {
            if b.abs() > 1e-30 {
                consider(-c / b);
            }
        } else {
            let disc = b * b - 4.0 * a * c;
            if disc >= 0.0 {
                let sq = disc.sqrt();
                consider((-b + sq) / (2.0 * a));
                consider((-b - sq) / (2.0 * a));
            }
        }
        best
    }
}

/// A node's full piecewise-quadratic transient.
#[derive(Debug, Clone, Default)]
pub struct PiecewiseQuadratic {
    pieces: Vec<QuadraticPiece>,
}

impl PiecewiseQuadratic {
    /// An empty waveform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a piece; its start must meet the previous piece's end.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] on temporal gaps/overlaps or a
    /// non-positive region span.
    pub fn push(&mut self, piece: QuadraticPiece) -> Result<()> {
        if piece.t1 <= piece.t0 {
            return Err(NumError::InvalidInput {
                context: "PiecewiseQuadratic::push",
                detail: format!("empty region [{}, {}]", piece.t0, piece.t1),
            });
        }
        if let Some(last) = self.pieces.last() {
            if (piece.t0 - last.t1).abs() > 1e-18 + 1e-9 * last.t1.abs() {
                return Err(NumError::InvalidInput {
                    context: "PiecewiseQuadratic::push",
                    detail: format!("gap: previous ends {} next starts {}", last.t1, piece.t0),
                });
            }
        }
        self.pieces.push(piece);
        Ok(())
    }

    /// The underlying pieces.
    pub fn pieces(&self) -> &[QuadraticPiece] {
        &self.pieces
    }

    /// Whether no pieces have been recorded.
    pub fn is_empty(&self) -> bool {
        self.pieces.is_empty()
    }

    /// Voltage at `t` (clamped to the covered span).
    ///
    /// # Panics
    ///
    /// Panics if the waveform is empty.
    pub fn voltage(&self, t: f64) -> f64 {
        assert!(!self.pieces.is_empty(), "empty piecewise waveform");
        let first = &self.pieces[0];
        if t <= first.t0 {
            return first.v0;
        }
        for p in &self.pieces {
            if t <= p.t1 {
                return p.voltage(t);
            }
        }
        self.pieces.last().unwrap().end_voltage()
    }

    /// Current at `t` (zero outside the covered span).
    ///
    /// # Panics
    ///
    /// Panics if the waveform is empty.
    pub fn current(&self, t: f64) -> f64 {
        assert!(!self.pieces.is_empty(), "empty piecewise waveform");
        if t < self.pieces[0].t0 || t > self.pieces.last().unwrap().t1 {
            return 0.0;
        }
        for p in &self.pieces {
            if t <= p.t1 {
                return p.current(t);
            }
        }
        0.0
    }

    /// Earliest crossing of `level` over the whole transient.
    pub fn crossing(&self, level: f64) -> Option<f64> {
        self.pieces.iter().find_map(|p| p.crossing(level))
    }

    /// The critical points `(τ, V(τ))` — region boundaries including the
    /// start of the first region. Fig. 9 plots exactly these.
    pub fn breakpoints(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(self.pieces.len() + 1);
        if let Some(first) = self.pieces.first() {
            out.push((first.t0, first.v0));
        }
        for p in &self.pieces {
            out.push((p.t1, p.end_voltage()));
        }
        out
    }

    /// Densely samples into a PWL [`Waveform`] with `per_piece ≥ 1`
    /// samples per region (for engine-vs-engine comparison plots).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] if the waveform is empty.
    pub fn to_waveform(&self, per_piece: usize) -> Result<Waveform> {
        if self.pieces.is_empty() {
            return Err(NumError::InvalidInput {
                context: "PiecewiseQuadratic::to_waveform",
                detail: "no pieces".to_string(),
            });
        }
        let per = per_piece.max(1);
        let mut samples = Vec::new();
        for p in &self.pieces {
            for j in 0..per {
                let t = p.t0 + (p.t1 - p.t0) * j as f64 / per as f64;
                samples.push((t, p.voltage(t)));
            }
        }
        let last = self.pieces.last().unwrap();
        samples.push((last.t1, last.end_voltage()));
        // Guard against degenerate duplicate times from tiny regions.
        samples.dedup_by(|b, a| b.0 <= a.0);
        Waveform::from_samples(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn piece(t0: f64, t1: f64, v0: f64, i0: f64, alpha: f64, cap: f64) -> QuadraticPiece {
        QuadraticPiece {
            t0,
            t1,
            v0,
            i0,
            alpha,
            cap,
        }
    }

    #[test]
    fn quadratic_evaluation_matches_closed_form() {
        // C dV/dt = I0 + α(t−t0); V(t) from Eq. (6).
        let p = piece(1e-12, 5e-12, 3.3, -1e-3, 2e8, 10e-15);
        let dt = 2e-12;
        let want = 3.3 + (-1e-3 * dt + 0.5 * 2e8 * dt * dt) / 10e-15;
        assert!((p.voltage(1e-12 + dt) - want).abs() < 1e-9);
        assert!((p.current(1e-12 + dt) - (-1e-3 + 2e8 * dt)).abs() < 1e-12);
    }

    #[test]
    fn crossing_linear_piece() {
        // Pure linear fall: alpha = 0, slope = i0/C = −1 V/ps.
        let p = piece(0.0, 4e-12, 4.0, -1e-3, 0.0, 1e-15);
        let t = p.crossing(2.0).unwrap();
        assert!((t - 2e-12).abs() < 1e-18);
        assert!(p.crossing(5.0).is_none());
    }

    #[test]
    fn crossing_picks_earliest_root_in_span() {
        // Parabola dipping then rising: v = 1 − t + t²-ish scaled.
        let p = piece(0.0, 2.0, 1.0, -1.0, 1.0, 1.0);
        // v(t) = 1 − t + 0.5 t²; crosses 0.6: t² /2 − t + 0.4 = 0 →
        // t = 1 ± √0.2 → earliest ≈ 0.5528.
        let t = p.crossing(0.6).unwrap();
        assert!((t - (1.0 - 0.2f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn push_enforces_continuity_in_time() {
        let mut w = PiecewiseQuadratic::new();
        w.push(piece(0.0, 1e-12, 3.3, 0.0, 0.0, 1e-15)).unwrap();
        assert!(w.push(piece(2e-12, 3e-12, 3.3, 0.0, 0.0, 1e-15)).is_err());
        assert!(w.push(piece(1e-12, 1e-12, 3.3, 0.0, 0.0, 1e-15)).is_err());
        w.push(piece(1e-12, 3e-12, 3.3, -1e-4, 0.0, 1e-15)).unwrap();
        assert_eq!(w.pieces().len(), 2);
        assert!(!w.is_empty());
    }

    #[test]
    fn waveform_lookup_spans_pieces() {
        let mut w = PiecewiseQuadratic::new();
        w.push(piece(0.0, 1e-12, 3.3, 0.0, 0.0, 1e-15)).unwrap();
        w.push(piece(1e-12, 3e-12, 3.3, -1e-3, 0.0, 1e-15)).unwrap();
        assert_eq!(w.voltage(-1.0), 3.3);
        assert_eq!(w.voltage(0.5e-12), 3.3);
        let v_end = 3.3 + (-1e-3 * 2e-12) / 1e-15;
        assert!((w.voltage(10.0) - v_end).abs() < 1e-9);
        assert_eq!(w.current(0.5e-12), 0.0);
        assert!((w.current(2e-12) + 1e-3).abs() < 1e-12);
        assert_eq!(w.current(1.0), 0.0, "outside span");
    }

    #[test]
    fn breakpoints_and_global_crossing() {
        let mut w = PiecewiseQuadratic::new();
        w.push(piece(0.0, 1e-12, 3.3, 0.0, 0.0, 1e-15)).unwrap();
        w.push(piece(1e-12, 3e-12, 3.3, -1e-3, 0.0, 1e-15)).unwrap();
        let bp = w.breakpoints();
        assert_eq!(bp.len(), 3);
        assert_eq!(bp[0], (0.0, 3.3));
        assert_eq!(bp[1].0, 1e-12);
        // Crossing 2.3 V: 1 V drop at 1 V/ps after t = 1 ps.
        let t = w.crossing(2.3).unwrap();
        assert!((t - 2e-12).abs() < 1e-16);
    }

    #[test]
    fn sampling_into_pwl() {
        let mut w = PiecewiseQuadratic::new();
        w.push(piece(0.0, 2e-12, 3.3, -1e-3, 1e8, 1e-15)).unwrap();
        let pwl = w.to_waveform(8).unwrap();
        for j in 0..=16 {
            let t = 2e-12 * j as f64 / 16.0;
            assert!((pwl.value(t) - w.voltage(t)).abs() < 0.2, "t={t}");
        }
        assert!(PiecewiseQuadratic::new().to_waveform(4).is_err());
    }
}
