//! The per-region algebraic solve (paper Eq. (7) and §IV-B).
//!
//! Between two critical points each node current is linear in time, so
//! the region's unknowns reduce to the node voltages at the region end
//! `V′₁ … V′_K` plus the end time τ′ itself. The K current-matching
//! equations plus one region-end condition (a transistor turn-on, an
//! output level crossing, or a fixed time) close the system, which is
//! solved by Newton–Raphson.
//!
//! The Jacobian is tridiagonal in the voltages with one extra dense
//! column (∂/∂τ′) and one extra dense row (the end condition) — an
//! arrowhead matrix. We solve each Newton update with the bordered
//! (block-elimination) method: two Thomas solves plus a scalar, the same
//! O(K) trick the paper gets from the Sherman–Morrison formula. A dense
//! LU path is kept for the solver ablation bench.

use crate::chain::Chain;
use qwm_circuit::stage::{DeviceKind, LogicStage, NodeId};
use qwm_circuit::waveform::Waveform;
use qwm_device::model::{Geometry, IvEval, ModelSet, TermVoltage};
use qwm_num::matrix::Matrix;
use qwm_num::tridiag::thomas_solve_into;
use qwm_num::{NumError, Result};
use std::cell::RefCell;

/// What terminates the region being solved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EndCondition {
    /// Transistor element `element` (1-based chain index) reaches zero
    /// gate overdrive — the paper's critical point (Eq. (7), last row).
    TurnOn {
        /// 1-based chain element index.
        element: usize,
    },
    /// Chain node `node` (1-based) crosses `level` — closes the final
    /// regions where delay/slew points are harvested (DESIGN.md §5.1).
    Crossing {
        /// 1-based chain node index.
        node: usize,
        /// Voltage level \[V\].
        level: f64,
    },
    /// The region ends at a known time (fallback for input-driven
    /// turn-ons whose time is already determined by the gate waveform).
    FixedTime {
        /// End time \[s\].
        t: f64,
    },
}

/// Linear-solver choice for the Newton update (the §IV-B ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearSolver {
    /// Two Thomas solves + scalar elimination — O(K).
    BorderedTridiagonal,
    /// Dense LU with partial pivoting — O(K³), the comparison baseline.
    DenseLu,
}

/// Newton controls for the region solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionOptions {
    /// Iteration budget.
    pub max_iterations: usize,
    /// Convergence tolerance on the current-matching rows \[A\].
    pub tol_current: f64,
    /// Convergence tolerance on voltage-valued end conditions \[V\].
    pub tol_condition_v: f64,
    /// Convergence tolerance on time-valued end conditions \[s\].
    pub tol_condition_t: f64,
    /// Per-iteration clamp on voltage updates \[V\].
    pub max_dv: f64,
    /// Region spans are kept above this \[s\].
    pub min_delta: f64,
    /// Linear solver for the Newton update.
    pub linear_solver: LinearSolver,
}

impl Default for RegionOptions {
    fn default() -> Self {
        RegionOptions {
            max_iterations: 48,
            tol_current: 1e-10,
            tol_condition_v: 1e-7,
            tol_condition_t: 1e-17,
            max_dv: 0.4,
            min_delta: 1e-15,
            linear_solver: LinearSolver::BorderedTridiagonal,
        }
    }
}

/// Chain state at a region boundary τ.
#[derive(Debug, Clone)]
pub struct RegionState {
    /// Boundary time τ \[s\].
    pub tau: f64,
    /// Node voltages `V₁ … V_K` at τ \[V\].
    pub v: Vec<f64>,
    /// Node currents `I₁ … I_K` at τ \[A\] (Eq. (2)).
    pub i: Vec<f64>,
    /// Frozen node capacitances for the upcoming region \[F\].
    pub caps: Vec<f64>,
}

/// A converged region.
///
/// `Default` builds an empty solution whose buffers are filled by
/// [`solve_region_into`] — callers on the hot path keep one around and
/// let the solver overwrite it, so a warm solve allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct RegionSolution {
    /// Region end time τ′.
    pub tau_next: f64,
    /// Node voltages at τ′.
    pub v_next: Vec<f64>,
    /// Node currents at τ′ (device-consistent).
    pub i_next: Vec<f64>,
    /// The per-node current slopes α (Eq. (6) parameters).
    pub alphas: Vec<f64>,
    /// Newton iterations spent.
    pub iterations: usize,
}

impl RegionSolution {
    /// Pre-reserves the solution buffers for chains of up to `n`
    /// elements (see [`SolveScratch::reserve`]).
    pub fn reserve(&mut self, n: usize) {
        self.v_next.reserve(n);
        self.i_next.reserve(n);
        self.alphas.reserve(n);
    }
}

/// Reusable workspace for the region solve (DESIGN.md §16).
///
/// One `SolveScratch` holds every intermediate buffer a Newton region
/// solve needs — Jacobian bands, Thomas scratch, finite-difference probe
/// vectors, batched device-evaluation lanes, and the capacitance-merge
/// BFS frontier. The buffers grow to the chain length on first use and
/// are reused verbatim afterwards, so a warm [`solve_region_into`] call
/// performs zero heap allocations. The struct is cheap to construct
/// (empty vectors) and is typically kept one-per-worker-thread; it is
/// deliberately opaque — contents are an implementation detail.
#[derive(Debug, Default)]
pub struct SolveScratch {
    /// Branch-current bundles `(J, ∂J/∂V_k, ∂J/∂V_{k−1}, ∂J/∂G)`,
    /// 1-based with a zero guard entry at `n + 1`.
    j: Vec<(f64, f64, f64, f64)>,
    /// Batched device-evaluation lanes (geometry + terminal voltages).
    lanes: Vec<(Geometry, TermVoltage)>,
    /// Batched device-evaluation outputs.
    lane_out: Vec<IvEval>,
    /// Current-matching residuals.
    f: Vec<f64>,
    /// Jacobian sub-diagonal.
    sub: Vec<f64>,
    /// Jacobian diagonal.
    diag: Vec<f64>,
    /// Jacobian super-diagonal.
    sup: Vec<f64>,
    /// Dense ∂F/∂τ′ column.
    tcol: Vec<f64>,
    /// Dense end-condition row.
    row: Vec<f64>,
    /// Thomas forward-elimination scratch.
    c: Vec<f64>,
    /// Bordered solve: `A⁻¹ f`.
    y: Vec<f64>,
    /// Bordered solve: `A⁻¹ tcol`.
    z: Vec<f64>,
    /// Assembled voltage update.
    dv: Vec<f64>,
    /// Finite-difference probe (+h).
    vp: Vec<f64>,
    /// Finite-difference probe (−h).
    vm: Vec<f64>,
    /// Follower-merge BFS visited set.
    visited: Vec<NodeId>,
    /// Follower-merge BFS frontier.
    frontier: Vec<NodeId>,
}

impl SolveScratch {
    /// An empty workspace; buffers grow on first solve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserves every buffer for chains of up to `n` elements, so
    /// even the first solve on this workspace allocates nothing.
    pub fn reserve(&mut self, n: usize) {
        self.j.reserve(n + 2);
        self.lanes.reserve(n);
        self.lane_out.reserve(n);
        for b in [
            &mut self.f,
            &mut self.sub,
            &mut self.diag,
            &mut self.sup,
            &mut self.tcol,
            &mut self.row,
            &mut self.c,
            &mut self.y,
            &mut self.z,
            &mut self.dv,
            &mut self.vp,
            &mut self.vm,
        ] {
            b.reserve(n);
        }
        self.visited.reserve(n + 8);
        self.frontier.reserve(n + 8);
    }
}

thread_local! {
    /// Per-thread workspace backing the allocating [`solve_region_counted`]
    /// wrapper, so existing callers get buffer reuse without threading a
    /// scratch through every signature. Workers in the `qwm-exec` pool are
    /// plain OS threads, so this is genuinely per-worker state.
    static REGION_SCRATCH: RefCell<SolveScratch> = RefCell::new(SolveScratch::new());
}

/// Everything a region solve needs to evaluate devices along the chain.
pub struct ChainContext<'a> {
    /// The stage the chain came from (capacitance bookkeeping).
    pub stage: &'a LogicStage,
    /// The extracted chain.
    pub chain: &'a Chain,
    /// Device models.
    pub models: &'a ModelSet,
    /// Gate waveforms, aligned with `stage.inputs()`.
    pub inputs: &'a [Waveform],
    /// Fixed rail voltage at chain node 0.
    pub rail_v: f64,
}

impl ChainContext<'_> {
    /// Gate voltage of element `k` (1-based) at time `t` (0 for wires).
    pub fn gate_value(&self, k: usize, t: f64) -> f64 {
        match self.chain.elements[k - 1].input {
            Some(i) => self.inputs[i.0].value(t),
            None => 0.0,
        }
    }

    fn gate_slope(&self, k: usize, t: f64) -> f64 {
        match self.chain.elements[k - 1].input {
            Some(i) => self.inputs[i.0].slope(t),
            None => 0.0,
        }
    }

    /// Chain node voltage lookup with `v[0] = rail`.
    fn node_v(&self, v: &[f64], idx: usize) -> f64 {
        if idx == 0 {
            self.rail_v
        } else {
            v[idx - 1]
        }
    }

    /// Branch current `J_k` (element `k`, 1-based) flowing from chain
    /// node `k` toward node `k−1`, with derivatives mapped to chain
    /// coordinates: `(J, ∂J/∂V_k, ∂J/∂V_{k−1}, ∂J/∂G)`.
    ///
    /// # Errors
    ///
    /// Propagates device-model evaluation failures.
    pub fn branch_current(&self, k: usize, v: &[f64], t: f64) -> Result<(f64, f64, f64, f64)> {
        let elem = &self.chain.elements[k - 1];
        let upper = self.node_v(v, k);
        let lower = self.node_v(v, k - 1);
        let g = self.gate_value(k, t);
        let (src, snk) = if elem.upper_is_src {
            (upper, lower)
        } else {
            (lower, upper)
        };
        let tv = TermVoltage::new(g, src, snk);
        let e: IvEval = match elem.kind {
            DeviceKind::Nmos => self
                .models
                .for_polarity(qwm_device::Polarity::Nmos)
                .iv_eval(&elem.geom, tv)?,
            DeviceKind::Pmos => self
                .models
                .for_polarity(qwm_device::Polarity::Pmos)
                .iv_eval(&elem.geom, tv)?,
            DeviceKind::Wire => {
                let r = qwm_device::caps::wire_res(self.models.tech(), elem.geom.w, elem.geom.l);
                IvEval {
                    i: (tv.src - tv.snk) / r,
                    d_input: 0.0,
                    d_src: 1.0 / r,
                    d_snk: -1.0 / r,
                }
            }
        };
        if elem.upper_is_src {
            Ok((e.i, e.d_src, e.d_snk, e.d_input))
        } else {
            Ok((-e.i, -e.d_snk, -e.d_src, -e.d_input))
        }
    }

    /// Evaluates every branch current along the chain into
    /// `scratch.j[1..=n]` (same bundles as [`ChainContext::branch_current`]),
    /// batching maximal runs of same-polarity transistors through
    /// [`qwm_device::model::DeviceModel::iv_eval_batch`] so a batch-aware
    /// model (the tabular SoA kernel) amortizes its per-call bookkeeping.
    ///
    /// Bitwise-identical to `n` scalar `branch_current` calls, including
    /// the order of fault-injection checks (the batch entry point checks
    /// each lane in lane order before evaluating).
    ///
    /// # Errors
    ///
    /// Propagates device-model evaluation failures.
    fn branch_currents_into(&self, v: &[f64], t: f64, scratch: &mut SolveScratch) -> Result<()> {
        let n = self.chain.len();
        scratch.j.clear();
        scratch.j.resize(n + 2, (0.0, 0.0, 0.0, 0.0));
        let mut k = 1;
        while k <= n {
            let kind = self.chain.elements[k - 1].kind;
            let Some(polarity) = kind.polarity() else {
                // Wire: closed-form conductance, no model call to batch.
                scratch.j[k] = self.branch_current(k, v, t)?;
                k += 1;
                continue;
            };
            let run_start = k;
            while k <= n && self.chain.elements[k - 1].kind == kind {
                k += 1;
            }
            scratch.lanes.clear();
            for kk in run_start..k {
                let elem = &self.chain.elements[kk - 1];
                let upper = self.node_v(v, kk);
                let lower = self.node_v(v, kk - 1);
                let g = self.gate_value(kk, t);
                let (src, snk) = if elem.upper_is_src {
                    (upper, lower)
                } else {
                    (lower, upper)
                };
                scratch
                    .lanes
                    .push((elem.geom, TermVoltage::new(g, src, snk)));
            }
            scratch.lane_out.clear();
            scratch
                .lane_out
                .resize(scratch.lanes.len(), IvEval::default());
            self.models
                .for_polarity(polarity)
                .iv_eval_batch(&scratch.lanes, &mut scratch.lane_out)?;
            for (off, kk) in (run_start..k).enumerate() {
                let e = scratch.lane_out[off];
                scratch.j[kk] = if self.chain.elements[kk - 1].upper_is_src {
                    (e.i, e.d_src, e.d_snk, e.d_input)
                } else {
                    (-e.i, -e.d_snk, -e.d_src, -e.d_input)
                };
            }
        }
        Ok(())
    }

    /// Gate-overdrive excess of element `k` at node voltages `v`, time
    /// `t` (infinite for wires, which never gate a critical point).
    pub fn excess(&self, k: usize, v: &[f64], t: f64) -> f64 {
        let elem = &self.chain.elements[k - 1];
        if elem.kind == DeviceKind::Wire {
            return f64::INFINITY;
        }
        let upper = self.node_v(v, k);
        let lower = self.node_v(v, k - 1);
        let g = self.gate_value(k, t);
        let (src, snk) = if elem.upper_is_src {
            (upper, lower)
        } else {
            (lower, upper)
        };
        let tv = TermVoltage::new(g, src, snk);
        let model = match elem.kind {
            DeviceKind::Nmos => self.models.for_polarity(qwm_device::Polarity::Nmos),
            DeviceKind::Pmos => self.models.for_polarity(qwm_device::Polarity::Pmos),
            DeviceKind::Wire => unreachable!(),
        };
        model.turn_on_excess(tv)
    }

    /// Device-consistent node currents `I_k = J_{k+1} − J_k` (Eqs. (4),
    /// (5)) at node voltages `v` and time `t`.
    ///
    /// # Errors
    ///
    /// Propagates device-model evaluation failures.
    pub fn node_currents(&self, v: &[f64], t: f64) -> Result<Vec<f64>> {
        let k_max = self.chain.len();
        let mut j = Vec::with_capacity(k_max + 1);
        for k in 1..=k_max {
            j.push(self.branch_current(k, v, t)?.0);
        }
        let mut out = vec![0.0; k_max];
        for k in 1..=k_max {
            let upper = if k < k_max { j[k] } else { 0.0 };
            out[k - 1] = upper - j[k - 1];
        }
        Ok(out)
    }

    /// [`ChainContext::node_currents`] into a caller-provided buffer,
    /// with branch currents batched through `scratch` — the zero-alloc
    /// hot-path variant.
    ///
    /// # Errors
    ///
    /// Propagates device-model evaluation failures.
    pub fn node_currents_into(
        &self,
        v: &[f64],
        t: f64,
        scratch: &mut SolveScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let n = self.chain.len();
        self.branch_currents_into(v, t, scratch)?;
        out.clear();
        for k in 1..=n {
            let upper = if k < n { scratch.j[k + 1].0 } else { 0.0 };
            out.push(upper - scratch.j[k].0);
        }
        Ok(())
    }

    /// Node currents together with their sparsity-structured
    /// derivatives — the bundle the `r = 2` solver consumes.
    ///
    /// # Errors
    ///
    /// Propagates device-model evaluation failures.
    #[allow(clippy::needless_range_loop)] // 1-based chain indexing mirrors the paper
    pub fn node_currents_with_derivs(&self, v: &[f64], t: f64) -> Result<NodeCurrentEval> {
        let n = self.chain.len();
        let mut j = vec![(0.0, 0.0, 0.0, 0.0); n + 2];
        for k in 1..=n {
            j[k] = self.branch_current(k, v, t)?;
        }
        let mut i = vec![0.0; n];
        let mut d_sub = vec![0.0; n];
        let mut d_diag = vec![0.0; n];
        let mut d_sup = vec![0.0; n];
        let mut d_t = vec![0.0; n];
        for k in 1..=n {
            let upper = if k < n {
                j[k + 1]
            } else {
                (0.0, 0.0, 0.0, 0.0)
            };
            i[k - 1] = upper.0 - j[k].0;
            d_diag[k - 1] = upper.2 - j[k].1;
            if k < n {
                d_sup[k - 1] = upper.1;
            }
            if k >= 2 {
                d_sub[k - 1] = -j[k].2;
            }
            let g_upper = if k < n {
                self.gate_slope(k + 1, t)
            } else {
                0.0
            };
            let g_lower = self.gate_slope(k, t);
            d_t[k - 1] = upper.3 * g_upper - j[k].3 * g_lower;
        }
        Ok(NodeCurrentEval {
            i,
            d_t,
            d_sub,
            d_diag,
            d_sup,
        })
    }

    /// Frozen node capacitances at node voltages `v` (Eq. (1)), plus
    /// **follower merging**: capacitance of side nodes reachable through
    /// conducting non-chain transistors is lumped onto the chain node
    /// (the switch-level transparent-node treatment). A held-high NMOS
    /// hanging off the chain couples its far node's charge into the
    /// transient; ignoring it makes QWM optimistic on gates with
    /// conducting side branches (NAND pull-ups, AOI).
    pub fn node_caps(&self, v: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.chain.len());
        let mut visited = Vec::new();
        let mut frontier = Vec::new();
        self.node_caps_core(v, &mut visited, &mut frontier, &mut out);
        out
    }

    /// [`ChainContext::node_caps`] into a caller-provided buffer, reusing
    /// the BFS bookkeeping in `scratch` — the zero-alloc hot-path variant.
    pub fn node_caps_into(&self, v: &[f64], scratch: &mut SolveScratch, out: &mut Vec<f64>) {
        self.node_caps_core(v, &mut scratch.visited, &mut scratch.frontier, out);
    }

    fn node_caps_core(
        &self,
        v: &[f64],
        visited: &mut Vec<NodeId>,
        frontier: &mut Vec<NodeId>,
        out: &mut Vec<f64>,
    ) {
        let chain_nodes = &self.chain.nodes;
        out.clear();
        for k in 1..=self.chain.len() {
            let id = self.chain.nodes[k];
            let vk = v[k - 1];
            let mut c = self.stage.node_cap(id, self.models, vk);
            // BFS through conducting side transistors.
            visited.clear();
            visited.push(id);
            frontier.clear();
            frontier.push(id);
            while let Some(at) = frontier.pop() {
                for &(e, neighbor) in self.stage.incident(at) {
                    let edge = self.stage.edge(e);
                    if visited.contains(&neighbor)
                        || chain_nodes.contains(&neighbor)
                        || neighbor == self.stage.source()
                        || neighbor == self.stage.sink()
                    {
                        continue;
                    }
                    let Some(polarity) = edge.kind.polarity() else {
                        continue; // side wires are rare; treat as cut
                    };
                    let Some(input) = edge.input else { continue };
                    // Is this side device conducting near the chain
                    // node's voltage with its settled gate value?
                    let g = self.inputs[input.0].final_value();
                    let model = self.models.for_polarity(polarity);
                    let tv = TermVoltage::new(g, vk, vk);
                    if model.turn_on_excess(tv) <= 0.0 {
                        continue;
                    }
                    visited.push(neighbor);
                    frontier.push(neighbor);
                    c += self.stage.node_cap(neighbor, self.models, vk);
                }
            }
            out.push(c);
        }
    }
}

/// Node currents plus structured derivatives (see
/// [`ChainContext::node_currents_with_derivs`]).
#[derive(Debug, Clone)]
pub struct NodeCurrentEval {
    /// Node currents `I_k` (0-based over chain nodes 1..=K).
    pub i: Vec<f64>,
    /// ∂I_k/∂t through the gate waveforms.
    pub d_t: Vec<f64>,
    d_sub: Vec<f64>,
    d_diag: Vec<f64>,
    d_sup: Vec<f64>,
}

impl NodeCurrentEval {
    /// The nonzero voltage derivatives of `I_k` (0-based `k`) as
    /// `(column, value)` pairs over the chain-voltage columns.
    pub fn deriv_triplet(&self, k: usize) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(3);
        if k >= 1 {
            out.push((k - 1, self.d_sub[k]));
        }
        out.push((k, self.d_diag[k]));
        if k + 1 < self.d_diag.len() {
            out.push((k + 1, self.d_sup[k]));
        }
        out
    }
}

/// Residual of the end condition at `(v, t)`.
fn condition_residual(ctx: &ChainContext<'_>, cond: EndCondition, v: &[f64], t: f64) -> f64 {
    match cond {
        EndCondition::TurnOn { element } => ctx.excess(element, v, t),
        EndCondition::Crossing { node, level } => v[node - 1] - level,
        EndCondition::FixedTime { t: t_end } => t - t_end,
    }
}

/// Solves one region from `state` to the given end condition.
///
/// `dt_guess` seeds τ′ = τ + dt_guess. On success the returned solution
/// satisfies the current matching of Eqs. (4)–(5) at τ′ and the end
/// condition to within the configured tolerances.
///
/// # Errors
///
/// Returns [`NumError::NoConvergence`] when Newton stalls and
/// [`NumError::Singular`] when the bordered elimination degenerates
/// (e.g. a condition with no sensitivity); callers fall back to other
/// candidates or a [`EndCondition::FixedTime`] solve.
pub fn solve_region(
    ctx: &ChainContext<'_>,
    state: &RegionState,
    cond: EndCondition,
    dt_guess: f64,
    opts: &RegionOptions,
) -> Result<RegionSolution> {
    solve_region_counted(ctx, state, cond, dt_guess, opts, &mut 0)
}

/// [`solve_region`] variant that accumulates Newton iterations into
/// `spent` even when the solve fails — the honest cost accounting the
/// speedup tables use.
///
/// Delegates to [`solve_region_into`] with a per-thread workspace, so
/// the only steady-state allocations are the returned solution's three
/// vectors.
///
/// # Errors
///
/// Same contract as [`solve_region`].
pub fn solve_region_counted(
    ctx: &ChainContext<'_>,
    state: &RegionState,
    cond: EndCondition,
    dt_guess: f64,
    opts: &RegionOptions,
    spent: &mut usize,
) -> Result<RegionSolution> {
    let mut out = RegionSolution::default();
    REGION_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => solve_region_into(
            ctx,
            state,
            cond,
            dt_guess,
            opts,
            spent,
            &mut scratch,
            &mut out,
        ),
        // Re-entrant call (a model callback solving regions of its own):
        // fall back to a fresh workspace rather than panicking.
        Err(_) => {
            let mut scratch = SolveScratch::new();
            solve_region_into(
                ctx,
                state,
                cond,
                dt_guess,
                opts,
                spent,
                &mut scratch,
                &mut out,
            )
        }
    })?;
    Ok(out)
}

/// The zero-alloc region solve: identical math to [`solve_region`], but
/// every intermediate lives in `scratch` and the solution is written
/// into `out` (whose buffers are reused). A warm call — same chain
/// length as the previous one — performs no heap allocation; see the
/// `alloc_steady` integration test.
///
/// `out` is only meaningful when the call returns `Ok`.
///
/// # Errors
///
/// Same contract as [`solve_region`].
#[allow(clippy::needless_range_loop)] // 1-based chain indexing mirrors the paper's equations
#[allow(clippy::too_many_arguments)] // the explicit hot-path entry point
pub fn solve_region_into(
    ctx: &ChainContext<'_>,
    state: &RegionState,
    cond: EndCondition,
    dt_guess: f64,
    opts: &RegionOptions,
    spent: &mut usize,
    scratch: &mut SolveScratch,
    out: &mut RegionSolution,
) -> Result<()> {
    if let Some(e) = qwm_fault::check("qwm.region") {
        return Err(e);
    }
    let n = ctx.chain.len();
    debug_assert_eq!(state.v.len(), n);
    let vdd = ctx.models.tech().vdd;
    let mut t = state.tau + dt_guess.max(opts.min_delta);
    // Explicit-Euler predictor as the Newton seed. Starting from
    // v′ = v exactly would zero the ∂F/∂τ′ column (it scales with
    // v′ − v) and degenerate the bordered elimination.
    let dt0 = t - state.tau;
    let RegionSolution {
        tau_next,
        v_next,
        i_next,
        alphas,
        iterations: out_iterations,
    } = out;
    v_next.clear();
    v_next.extend(
        state
            .v
            .iter()
            .zip(&state.i)
            .zip(&state.caps)
            .map(|((&vk, &ik), &ck)| (vk + ik * dt0 / ck).clamp(-0.5, vdd + 0.5)),
    );
    let v = v_next;
    if let EndCondition::FixedTime { t: t_end } = cond {
        t = t_end;
        if t <= state.tau + opts.min_delta {
            return Err(NumError::InvalidInput {
                context: "solve_region",
                detail: "fixed end time not after region start".to_string(),
            });
        }
    }
    let mut iterations = 0;

    // Size the iteration buffers once; every entry is overwritten below
    // (`row` only at its condition-dependent slots, hence the zero fill).
    scratch.f.clear();
    scratch.f.resize(n, 0.0);
    scratch.sub.clear();
    scratch.sub.resize(n.saturating_sub(1), 0.0);
    scratch.diag.clear();
    scratch.diag.resize(n, 0.0);
    scratch.sup.clear();
    scratch.sup.resize(n.saturating_sub(1), 0.0);
    scratch.tcol.clear();
    scratch.tcol.resize(n, 0.0);
    scratch.row.clear();
    scratch.row.resize(n, 0.0);
    scratch.c.clear();
    scratch.c.resize(n, 0.0);
    scratch.y.clear();
    scratch.y.resize(n, 0.0);
    scratch.z.clear();
    scratch.z.resize(n, 0.0);

    for _ in 0..opts.max_iterations {
        iterations += 1;
        *spent += 1;
        let delta = (t - state.tau).max(opts.min_delta);

        // Branch currents and derivatives at the candidate end point
        // (batched per polarity run; 1-based in `scratch.j`, guard zero
        // at n + 1).
        ctx.branch_currents_into(v, t, scratch)?;

        // Residuals.
        for k in 1..=n {
            let i_prime =
                2.0 * state.caps[k - 1] * (v[k - 1] - state.v[k - 1]) / delta - state.i[k - 1];
            let upper_j = if k < n { scratch.j[k + 1].0 } else { 0.0 };
            scratch.f[k - 1] = i_prime - (upper_j - scratch.j[k].0);
        }
        let g_res = condition_residual(ctx, cond, v, t);

        // Convergence test (per-row tolerances).
        let f_norm = scratch.f.iter().fold(0.0_f64, |m, x| m.max(x.abs()));
        let cond_ok = match cond {
            EndCondition::FixedTime { .. } => true,
            EndCondition::TurnOn { .. } | EndCondition::Crossing { .. } => {
                g_res.abs() < opts.tol_condition_v
            }
        };
        if f_norm < opts.tol_current && cond_ok {
            ctx.node_currents_into(v, t, scratch, i_next)?;
            alphas.clear();
            alphas.extend((0..n).map(|k| (i_next[k] - state.i[k]) / delta));
            *tau_next = t;
            *out_iterations = iterations;
            qwm_obs::histogram!("qwm.region.iterations", qwm_obs::ITER_BOUNDS)
                .record(iterations as u64);
            return Ok(());
        }

        // Jacobian bands over voltages.
        for k in 1..=n {
            let (_, dj_vk, dj_vkm1, dj_g) = scratch.j[k];
            let (dju_vk1, dju_vk, dju_g) = if k < n {
                (scratch.j[k + 1].1, scratch.j[k + 1].2, scratch.j[k + 1].3)
            } else {
                (0.0, 0.0, 0.0)
            };
            // F_k = I′_k − J_{k+1} + J_k.
            scratch.diag[k - 1] = 2.0 * state.caps[k - 1] / delta - dju_vk + dj_vk;
            if k >= 2 {
                scratch.sub[k - 2] = dj_vkm1;
            }
            if k < n {
                scratch.sup[k - 1] = -dju_vk1;
            }
            let dtau_dyn = -2.0 * state.caps[k - 1] * (v[k - 1] - state.v[k - 1]) / (delta * delta);
            let g_upper = if k < n { ctx.gate_slope(k + 1, t) } else { 0.0 };
            let g_lower = ctx.gate_slope(k, t);
            scratch.tcol[k - 1] = dtau_dyn - (dju_g * g_upper - dj_g * g_lower);
        }

        // Last row: ∂(condition)/∂V and ∂/∂τ′ (finite differences keep
        // this model-agnostic, matching the tabular-model spirit). The
        // condition is fixed for the whole solve, so the row's live
        // slots are the same every iteration and the zero fill above
        // covers the rest.
        let mut d_tau = 0.0;
        match cond {
            EndCondition::TurnOn { element } => {
                let h = 1e-6;
                for idx in [element.saturating_sub(1), element] {
                    if idx == 0 || idx > n {
                        continue;
                    }
                    scratch.vp.clear();
                    scratch.vp.extend_from_slice(v);
                    scratch.vp[idx - 1] += h;
                    scratch.vm.clear();
                    scratch.vm.extend_from_slice(v);
                    scratch.vm[idx - 1] -= h;
                    scratch.row[idx - 1] = (ctx.excess(element, &scratch.vp, t)
                        - ctx.excess(element, &scratch.vm, t))
                        / (2.0 * h);
                }
                let ht = 1e-15;
                d_tau =
                    (ctx.excess(element, v, t + ht) - ctx.excess(element, v, t - ht)) / (2.0 * ht);
            }
            EndCondition::Crossing { node, .. } => {
                scratch.row[node - 1] = 1.0;
            }
            EndCondition::FixedTime { .. } => {
                d_tau = 1.0;
            }
        }

        // Newton update via the chosen linear solver; the voltage update
        // lands in `scratch.dv`.
        let dt = match opts.linear_solver {
            LinearSolver::BorderedTridiagonal => {
                // One Sherman–Morrison-style bordered solve: two Thomas
                // back-solves replace a dense factorization.
                qwm_obs::counter!("qwm.solver.sherman_morrison_solves").incr();
                thomas_solve_into(
                    &scratch.sub,
                    &scratch.diag,
                    &scratch.sup,
                    &scratch.f,
                    &mut scratch.c,
                    &mut scratch.y,
                )?;
                thomas_solve_into(
                    &scratch.sub,
                    &scratch.diag,
                    &scratch.sup,
                    &scratch.tcol,
                    &mut scratch.c,
                    &mut scratch.z,
                )?;
                let ry: f64 = scratch.row.iter().zip(&scratch.y).map(|(a, b)| a * b).sum();
                let rz: f64 = scratch.row.iter().zip(&scratch.z).map(|(a, b)| a * b).sum();
                let denom = d_tau - rz;
                if !denom.is_finite() {
                    return Err(NumError::Singular {
                        index: n,
                        pivot: denom,
                    });
                }
                if denom.abs() < 1e-300 {
                    // Degenerate τ′ sensitivity (e.g. the iterate sits
                    // exactly at a conduction edge with zero currents):
                    // take a voltage-only step; the sensitivity
                    // reappears once the voltages move.
                    scratch.dv.clear();
                    scratch.dv.extend_from_slice(&scratch.y);
                    0.0
                } else {
                    let dt = (g_res - ry) / denom;
                    scratch.dv.clear();
                    scratch.dv.extend(
                        scratch
                            .y
                            .iter()
                            .zip(&scratch.z)
                            .map(|(yi, zi)| yi - dt * zi),
                    );
                    dt
                }
            }
            LinearSolver::DenseLu => {
                // The O(K³) ablation baseline — allocation-freedom is not
                // part of its contract.
                let m = n + 1;
                let mut a = Matrix::zeros(m, m)?;
                for k in 0..n {
                    a.set(k, k, scratch.diag[k]);
                    if k > 0 {
                        a.set(k, k - 1, scratch.sub[k - 1]);
                    }
                    if k + 1 < n {
                        a.set(k, k + 1, scratch.sup[k]);
                    }
                    a.set(k, n, scratch.tcol[k]);
                    a.set(n, k, scratch.row[k]);
                }
                a.set(n, n, d_tau);
                let mut rhs = scratch.f.clone();
                rhs.push(g_res);
                let sol = a.solve(&rhs)?;
                scratch.dv.clear();
                scratch.dv.extend_from_slice(&sol[..n]);
                sol[n]
            }
        };

        // Damped, clamped update.
        for k in 0..n {
            let step = scratch.dv[k].clamp(-opts.max_dv, opts.max_dv);
            v[k] = (v[k] - step).clamp(-0.5, vdd + 0.5);
        }
        if !matches!(cond, EndCondition::FixedTime { .. }) {
            // Keep τ′ on the right side of τ and damp large jumps.
            let max_dt_step = 2.0 * delta + 1e-12;
            let step = dt.clamp(-max_dt_step, max_dt_step);
            t = (t - step).max(state.tau + opts.min_delta);
        }
    }

    qwm_obs::counter!("qwm.region.failures").incr();
    Err(NumError::NoConvergence {
        method: "qwm region",
        iterations,
        residual: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Chain;
    use qwm_circuit::cells;
    use qwm_circuit::waveform::TransitionKind;
    use qwm_device::{analytic_models, Technology};

    /// Single NMOS discharging a capacitor: the region from "on" to the
    /// 50 % crossing has a closed-form-ish sanity envelope.
    #[test]
    fn single_transistor_crossing_region() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let stage = cells::nmos_stack(&tech, &[1.5e-6], 20e-15).unwrap();
        let out = stage.node_by_name("out").unwrap();
        let chain = Chain::extract(&stage, out, TransitionKind::Fall).unwrap();
        let inputs = vec![Waveform::constant(tech.vdd)];
        let ctx = ChainContext {
            stage: &stage,
            chain: &chain,
            models: &models,
            inputs: &inputs,
            rail_v: 0.0,
        };
        let v0 = vec![tech.vdd];
        let caps = ctx.node_caps(&v0);
        let i0 = ctx.node_currents(&v0, 0.0).unwrap();
        assert!(i0[0] < 0.0, "discharging: {i0:?}");
        let state = RegionState {
            tau: 0.0,
            v: v0,
            i: i0,
            caps: caps.clone(),
        };
        let sol = solve_region(
            &ctx,
            &state,
            EndCondition::Crossing {
                node: 1,
                level: tech.vdd / 2.0,
            },
            10e-12,
            &RegionOptions::default(),
        )
        .unwrap();
        assert!((sol.v_next[0] - tech.vdd / 2.0).abs() < 1e-6);
        assert!(sol.tau_next > 0.0);
        // Crude envelope: C ΔV / I_peak < t < C ΔV / I_half-ish.
        let c = caps[0];
        let dv = tech.vdd / 2.0;
        let i_peak = state.i[0].abs();
        assert!(sol.tau_next > 0.5 * c * dv / i_peak);
        assert!(sol.tau_next < 10.0 * c * dv / i_peak);
    }

    #[test]
    fn dense_lu_matches_bordered_solver() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let stage = cells::nmos_stack(&tech, &[1.5e-6, 2.0e-6, 1.0e-6], 20e-15).unwrap();
        let out = stage.node_by_name("out").unwrap();
        let chain = Chain::extract(&stage, out, TransitionKind::Fall).unwrap();
        let inputs: Vec<Waveform> = (0..3).map(|_| Waveform::constant(tech.vdd)).collect();
        let ctx = ChainContext {
            stage: &stage,
            chain: &chain,
            models: &models,
            inputs: &inputs,
            rail_v: 0.0,
        };
        // Mid-discharge state.
        let v0 = vec![1.0, 2.5, 3.1];
        let caps = ctx.node_caps(&v0);
        let i0 = ctx.node_currents(&v0, 0.0).unwrap();
        let state = RegionState {
            tau: 0.0,
            v: v0,
            i: i0,
            caps,
        };
        let cond = EndCondition::Crossing {
            node: 3,
            level: 2.0,
        };
        let a = solve_region(&ctx, &state, cond, 5e-12, &RegionOptions::default()).unwrap();
        let lu_opts = RegionOptions {
            linear_solver: LinearSolver::DenseLu,
            ..RegionOptions::default()
        };
        let b = solve_region(&ctx, &state, cond, 5e-12, &lu_opts).unwrap();
        assert!((a.tau_next - b.tau_next).abs() < 1e-15 + 1e-6 * a.tau_next);
        for (x, y) in a.v_next.iter().zip(&b.v_next) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn fixed_time_region_advances_state() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let stage = cells::nmos_stack(&tech, &[1.5e-6, 1.5e-6], 20e-15).unwrap();
        let out = stage.node_by_name("out").unwrap();
        let chain = Chain::extract(&stage, out, TransitionKind::Fall).unwrap();
        let inputs: Vec<Waveform> = (0..2).map(|_| Waveform::constant(tech.vdd)).collect();
        let ctx = ChainContext {
            stage: &stage,
            chain: &chain,
            models: &models,
            inputs: &inputs,
            rail_v: 0.0,
        };
        let v0 = vec![2.0, 3.3];
        let caps = ctx.node_caps(&v0);
        let i0 = ctx.node_currents(&v0, 0.0).unwrap();
        let state = RegionState {
            tau: 0.0,
            v: v0.clone(),
            i: i0,
            caps,
        };
        let sol = solve_region(
            &ctx,
            &state,
            EndCondition::FixedTime { t: 20e-12 },
            0.0,
            &RegionOptions::default(),
        )
        .unwrap();
        assert_eq!(sol.tau_next, 20e-12);
        // Both nodes moved downward.
        assert!(sol.v_next[0] < v0[0]);
        assert!(sol.v_next[1] <= v0[1] + 1e-9);
        // Bad fixed time rejected.
        assert!(solve_region(
            &ctx,
            &state,
            EndCondition::FixedTime { t: -1.0 },
            0.0,
            &RegionOptions::default()
        )
        .is_err());
    }

    #[test]
    fn turn_on_condition_node_driven() {
        // Two-stack: M2's turn-on is driven by node 1 falling.
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let stage = cells::nmos_stack(&tech, &[1.5e-6, 1.5e-6], 20e-15).unwrap();
        let out = stage.node_by_name("out").unwrap();
        let chain = Chain::extract(&stage, out, TransitionKind::Fall).unwrap();
        let inputs: Vec<Waveform> = (0..2).map(|_| Waveform::constant(tech.vdd)).collect();
        let ctx = ChainContext {
            stage: &stage,
            chain: &chain,
            models: &models,
            inputs: &inputs,
            rail_v: 0.0,
        };
        // Start with both nodes precharged; M1 on, M2 off (V1 = Vdd).
        let v0 = vec![tech.vdd, tech.vdd];
        assert!(ctx.excess(1, &v0, 0.0) > 0.0, "M1 on");
        assert!(ctx.excess(2, &v0, 0.0) < 0.0, "M2 off");
        let caps = ctx.node_caps(&v0);
        let i0 = ctx.node_currents(&v0, 0.0).unwrap();
        let state = RegionState {
            tau: 0.0,
            v: v0,
            i: i0,
            caps,
        };
        let sol = solve_region(
            &ctx,
            &state,
            EndCondition::TurnOn { element: 2 },
            5e-12,
            &RegionOptions::default(),
        )
        .unwrap();
        // At τ′, M2's overdrive is ~zero and node 1 has fallen to
        // ~Vdd − Vt(body).
        let ex = ctx.excess(2, &sol.v_next, sol.tau_next);
        assert!(ex.abs() < 1e-5, "excess {ex}");
        assert!(sol.v_next[0] < tech.vdd - 0.5);
        assert!(sol.v_next[0] > 1.0);
        // Output node hasn't moved (M2 was off).
        assert!((sol.v_next[1] - tech.vdd).abs() < 0.05);
    }

    /// Reusing one `SolveScratch`/`RegionSolution` pair across repeated
    /// solves — including after a *different* end condition dirtied the
    /// buffers — must reproduce the allocating `solve_region` to the
    /// last bit. This is the whole determinism contract of the
    /// workspace path (DESIGN.md §16).
    #[test]
    fn reused_scratch_is_bitwise_identical_to_fresh() {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        let stage = cells::nmos_stack(&tech, &[1.5e-6, 2.0e-6, 1.0e-6], 20e-15).unwrap();
        let out = stage.node_by_name("out").unwrap();
        let chain = Chain::extract(&stage, out, TransitionKind::Fall).unwrap();
        let inputs: Vec<Waveform> = (0..3).map(|_| Waveform::constant(tech.vdd)).collect();
        let ctx = ChainContext {
            stage: &stage,
            chain: &chain,
            models: &models,
            inputs: &inputs,
            rail_v: 0.0,
        };
        let v0 = vec![1.0, 2.5, 3.1];
        let caps = ctx.node_caps(&v0);
        let i0 = ctx.node_currents(&v0, 0.0).unwrap();
        let state = RegionState {
            tau: 0.0,
            v: v0,
            i: i0,
            caps,
        };
        let cond = EndCondition::Crossing {
            node: 3,
            level: 2.0,
        };
        let opts = RegionOptions::default();
        let fresh = solve_region(&ctx, &state, cond, 5e-12, &opts).unwrap();

        let assert_same = |sol: &RegionSolution| {
            assert_eq!(sol.tau_next.to_bits(), fresh.tau_next.to_bits());
            assert_eq!(sol.iterations, fresh.iterations);
            for (got, want) in [
                (&sol.v_next, &fresh.v_next),
                (&sol.i_next, &fresh.i_next),
                (&sol.alphas, &fresh.alphas),
            ] {
                assert_eq!(got.len(), want.len());
                for (a, b) in got.iter().zip(want) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        };

        let mut scratch = SolveScratch::new();
        let mut sol = RegionSolution::default();
        let mut spent = 0usize;
        for _ in 0..3 {
            solve_region_into(
                &ctx,
                &state,
                cond,
                5e-12,
                &opts,
                &mut spent,
                &mut scratch,
                &mut sol,
            )
            .unwrap();
            assert_same(&sol);
        }
        // Dirty every buffer with a different condition, then re-solve.
        solve_region_into(
            &ctx,
            &state,
            EndCondition::FixedTime { t: 3e-12 },
            0.0,
            &opts,
            &mut spent,
            &mut scratch,
            &mut sol,
        )
        .unwrap();
        solve_region_into(
            &ctx,
            &state,
            cond,
            5e-12,
            &opts,
            &mut spent,
            &mut scratch,
            &mut sol,
        )
        .unwrap();
        assert_same(&sol);
    }
}
