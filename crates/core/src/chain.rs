//! Charge/discharge chain extraction.
//!
//! Static timing analysis only needs the worst case: "charging or
//! discharging along the longest paths" (paper §III-C). For a falling
//! output that path is the series chain of NMOS transistors (and wire
//! segments) from the output node to ground; for a rising output, the
//! PMOS chain from the supply. Devices hanging off the chain (the
//! complementary network, side branches) are cut off in the worst case
//! and contribute only their parasitic capacitance, which
//! [`qwm_circuit::LogicStage::node_cap`] already accounts for.
//!
//! Chain indexing follows paper Fig. 6: element `k` (1-based) connects
//! chain node `k` to chain node `k−1`; node 0 is the rail and node `K`
//! is the analyzed output.

use qwm_circuit::stage::{DeviceKind, EdgeId, InputId, LogicStage, NodeId};
use qwm_circuit::waveform::TransitionKind;
use qwm_device::model::Geometry;
use qwm_num::{NumError, Result};

/// One element of the extracted chain.
#[derive(Debug, Clone, Copy)]
pub struct ChainElement {
    /// The stage edge this element came from.
    pub edge: EdgeId,
    /// Element kind (the chain's conduction devices or wires).
    pub kind: DeviceKind,
    /// Geometry, copied from the edge.
    pub geom: Geometry,
    /// Gate input (`None` for wires).
    pub input: Option<InputId>,
    /// True when the stage edge's `src` is the chain's *upper* node
    /// (chain node `k`); false when the edge is oriented the other way.
    pub upper_is_src: bool,
}

/// An extracted series charge/discharge chain.
#[derive(Debug, Clone)]
pub struct Chain {
    /// Transition direction this chain serves.
    pub direction: TransitionKind,
    /// Stage nodes, `nodes[0]` the rail, `nodes[K]` the output.
    pub nodes: Vec<NodeId>,
    /// Elements, `elements[k-1]` connecting nodes `k` and `k−1`.
    pub elements: Vec<ChainElement>,
}

impl Chain {
    /// Number of elements `K`.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the chain is empty (never true for a valid extraction).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Number of transistors along the chain (wires excluded) — the `K`
    /// in the paper's "K DC operating point calculations".
    pub fn transistor_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| e.kind != DeviceKind::Wire)
            .count()
    }

    /// Extracts the chain driving `output` for the given transition.
    ///
    /// Walks from the output toward the conduction rail (ground for
    /// [`TransitionKind::Fall`], supply for [`TransitionKind::Rise`])
    /// following edges of the conduction kind (NMOS for fall, PMOS for
    /// rise) and wires. The walk must be unambiguous: exactly one
    /// unvisited continuation per node. Parallel conduction networks are
    /// rejected — pick the worst single path upstream (as STA does).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] when no path exists, the path
    /// branches, or the output is a rail.
    pub fn extract(stage: &LogicStage, output: NodeId, direction: TransitionKind) -> Result<Self> {
        let rail = match direction {
            TransitionKind::Fall => stage.sink(),
            TransitionKind::Rise => stage.source(),
        };
        let conduction = match direction {
            TransitionKind::Fall => DeviceKind::Nmos,
            TransitionKind::Rise => DeviceKind::Pmos,
        };
        let other_rail = match direction {
            TransitionKind::Fall => stage.source(),
            TransitionKind::Rise => stage.sink(),
        };
        if output == rail || output == other_rail {
            return Err(NumError::InvalidInput {
                context: "Chain::extract",
                detail: "output is a rail".to_string(),
            });
        }

        // Walk output → rail, collecting in reverse.
        let mut rev_nodes = vec![output];
        let mut rev_elems: Vec<ChainElement> = Vec::new();
        let mut at = output;
        let mut visited = vec![output];
        loop {
            let mut next: Option<(EdgeId, NodeId)> = None;
            for &(e, neighbor) in stage.incident(at) {
                let edge = stage.edge(e);
                if edge.kind != conduction && edge.kind != DeviceKind::Wire {
                    continue;
                }
                if neighbor == other_rail || visited.contains(&neighbor) {
                    continue;
                }
                if next.is_some() {
                    return Err(NumError::InvalidInput {
                        context: "Chain::extract",
                        detail: format!(
                            "path branches at node {:?} — pick a single worst-case path",
                            stage.node(at).name
                        ),
                    });
                }
                next = Some((e, neighbor));
            }
            let (e, neighbor) = next.ok_or_else(|| NumError::InvalidInput {
                context: "Chain::extract",
                detail: format!(
                    "no {conduction:?}/wire continuation from node {:?}",
                    stage.node(at).name
                ),
            })?;
            let edge = stage.edge(e);
            rev_elems.push(ChainElement {
                edge: e,
                kind: edge.kind,
                geom: edge.geom,
                input: edge.input,
                // In the reversed walk, `at` is the upper chain node.
                upper_is_src: edge.src == at,
            });
            if neighbor == rail {
                rev_nodes.push(neighbor);
                break;
            }
            visited.push(neighbor);
            rev_nodes.push(neighbor);
            at = neighbor;
        }
        rev_nodes.reverse();
        rev_elems.reverse();
        Ok(Chain {
            direction,
            nodes: rev_nodes,
            elements: rev_elems,
        })
    }
}

impl Chain {
    /// Extracts the **worst** (slowest) conduction path when the network
    /// branches: enumerates all simple paths from the output to the
    /// conduction rail over conduction-kind/wire edges and keeps the one
    /// with the most transistors, breaking ties by the largest total
    /// `L/W` (weakest drive). This is the single path static timing
    /// sensitizes; side branches contribute capacitance only.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] when no path exists or the
    /// output is a rail.
    pub fn extract_worst(
        stage: &LogicStage,
        output: NodeId,
        direction: TransitionKind,
    ) -> Result<Self> {
        // Fast path: unambiguous chains go through the plain walk.
        if let Ok(chain) = Chain::extract(stage, output, direction) {
            return Ok(chain);
        }
        let rail = match direction {
            TransitionKind::Fall => stage.sink(),
            TransitionKind::Rise => stage.source(),
        };
        let conduction = match direction {
            TransitionKind::Fall => DeviceKind::Nmos,
            TransitionKind::Rise => DeviceKind::Pmos,
        };
        let other_rail = match direction {
            TransitionKind::Fall => stage.source(),
            TransitionKind::Rise => stage.sink(),
        };
        if output == rail || output == other_rail {
            return Err(NumError::InvalidInput {
                context: "Chain::extract_worst",
                detail: "output is a rail".to_string(),
            });
        }

        /// (transistor count, total L/W weakness, edges with their upper nodes).
        type BestPath = (usize, f64, Vec<(EdgeId, NodeId)>);
        struct Dfs<'a> {
            stage: &'a LogicStage,
            rail: NodeId,
            other_rail: NodeId,
            conduction: DeviceKind,
            best: Option<BestPath>,
        }
        impl Dfs<'_> {
            fn walk(
                &mut self,
                at: NodeId,
                visited: &mut Vec<NodeId>,
                path: &mut Vec<(EdgeId, NodeId)>,
            ) {
                for &(e, neighbor) in self.stage.incident(at) {
                    let edge = self.stage.edge(e);
                    if edge.kind != self.conduction && edge.kind != DeviceKind::Wire {
                        continue;
                    }
                    if neighbor == self.other_rail || visited.contains(&neighbor) {
                        continue;
                    }
                    path.push((e, at));
                    if neighbor == self.rail {
                        let transistors = path
                            .iter()
                            .filter(|(pe, _)| self.stage.edge(*pe).kind != DeviceKind::Wire)
                            .count();
                        let weakness: f64 = path
                            .iter()
                            .map(|(pe, _)| {
                                let g = &self.stage.edge(*pe).geom;
                                g.l / g.w
                            })
                            .sum();
                        let better = match &self.best {
                            None => true,
                            Some((bt, bw, _)) => {
                                transistors > *bt || (transistors == *bt && weakness > *bw)
                            }
                        };
                        if better {
                            self.best = Some((transistors, weakness, path.clone()));
                        }
                    } else {
                        visited.push(neighbor);
                        self.walk(neighbor, visited, path);
                        visited.pop();
                    }
                    path.pop();
                }
            }
        }
        let mut dfs = Dfs {
            stage,
            rail,
            other_rail,
            conduction,
            best: None,
        };
        dfs.walk(output, &mut vec![output], &mut Vec::new());
        let (_, _, path) = dfs.best.ok_or_else(|| NumError::InvalidInput {
            context: "Chain::extract_worst",
            detail: format!(
                "no {conduction:?}/wire path from {:?} to the rail",
                stage.node(output).name
            ),
        })?;

        // The DFS path runs output → rail; rebuild in rail-first order.
        let mut nodes = vec![output];
        let mut elements = Vec::new();
        for (e, upper) in &path {
            let edge = stage.edge(*e);
            let lower = if edge.src == *upper {
                edge.snk
            } else {
                edge.src
            };
            elements.push(ChainElement {
                edge: *e,
                kind: edge.kind,
                geom: edge.geom,
                input: edge.input,
                upper_is_src: edge.src == *upper,
            });
            nodes.push(lower);
        }
        nodes.reverse();
        elements.reverse();
        Ok(Chain {
            direction,
            nodes,
            elements,
        })
    }

    /// The set of stage inputs gating elements of this chain — the
    /// inputs a worst-case stimulus must switch; all others are held at
    /// their non-conducting value so side paths stay off.
    pub fn gating_inputs(&self) -> Vec<InputId> {
        let mut out: Vec<InputId> = Vec::new();
        for e in &self.elements {
            if let Some(i) = e.input {
                if !out.contains(&i) {
                    out.push(i);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qwm_circuit::cells;
    use qwm_device::tech::Technology;

    fn tech() -> Technology {
        Technology::cmosp35()
    }

    #[test]
    fn nand3_fall_chain_is_three_nmos() {
        let g = cells::nand(&tech(), 3, cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        let chain = Chain::extract(&g, out, TransitionKind::Fall).unwrap();
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.transistor_count(), 3);
        assert_eq!(chain.nodes[0], g.sink());
        assert_eq!(*chain.nodes.last().unwrap(), out);
        assert!(chain
            .elements
            .iter()
            .all(|e| e.kind == DeviceKind::Nmos && e.input.is_some()));
        assert!(!chain.is_empty());
    }

    #[test]
    fn element_orientation_tracks_stage_edges() {
        // cells::nmos_stack builds edges with src = upper node.
        let s = cells::nmos_stack(&tech(), &[1e-6, 1e-6], cells::DEFAULT_LOAD).unwrap();
        let out = s.node_by_name("out").unwrap();
        let chain = Chain::extract(&s, out, TransitionKind::Fall).unwrap();
        assert!(chain.elements.iter().all(|e| e.upper_is_src));
    }

    #[test]
    fn inverter_rise_chain_is_one_pmos() {
        let g = cells::inverter(&tech(), cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        let chain = Chain::extract(&g, out, TransitionKind::Rise).unwrap();
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.elements[0].kind, DeviceKind::Pmos);
        assert_eq!(chain.nodes[0], g.source());
    }

    #[test]
    fn nand_rise_rejects_parallel_pullup() {
        // NAND2's pull-up is two parallel PMOS: ambiguous, must error.
        let g = cells::nand(&tech(), 2, cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        let err = Chain::extract(&g, out, TransitionKind::Rise).unwrap_err();
        assert!(err.to_string().contains("branches"));
    }

    #[test]
    fn decoder_path_mixes_wires_and_transistors() {
        let d = cells::decoder_path(&tech(), 3, 20e-6, cells::DEFAULT_LOAD).unwrap();
        let out = d.node_by_name("out").unwrap();
        let chain = Chain::extract(&d, out, TransitionKind::Fall).unwrap();
        assert_eq!(chain.len(), 6, "3 transistors + 3 wires");
        assert_eq!(chain.transistor_count(), 3);
        // Alternating from the rail: transistor, wire, transistor, ...
        assert_eq!(chain.elements[0].kind, DeviceKind::Nmos);
        assert_eq!(chain.elements[1].kind, DeviceKind::Wire);
    }

    #[test]
    fn extract_worst_picks_the_series_branch() {
        // AOI21 pull-down branches at the output: the 2-series a·b path
        // must win over the single-transistor c path.
        let g = cells::aoi21(&tech(), cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        assert!(Chain::extract(&g, out, TransitionKind::Fall).is_err());
        let chain = Chain::extract_worst(&g, out, TransitionKind::Fall).unwrap();
        assert_eq!(chain.transistor_count(), 2, "a·b series path");
        let inputs = chain.gating_inputs();
        assert_eq!(inputs.len(), 2);
        let names: Vec<&str> = inputs.iter().map(|&i| g.input(i).name.as_str()).collect();
        assert!(names.contains(&"a") && names.contains(&"b"));
    }

    #[test]
    fn extract_worst_handles_parallel_pullup() {
        // NAND2 rise: two parallel single-PMOS paths; either is "worst"
        // (tie broken by weakness) — must not error.
        let g = cells::nand(&tech(), 2, cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        let chain = Chain::extract_worst(&g, out, TransitionKind::Rise).unwrap();
        assert_eq!(chain.transistor_count(), 1);
    }

    #[test]
    fn extract_worst_matches_extract_on_chains() {
        let s = cells::nmos_stack(&tech(), &[1e-6, 2e-6, 1e-6], cells::DEFAULT_LOAD).unwrap();
        let out = s.node_by_name("out").unwrap();
        let a = Chain::extract(&s, out, TransitionKind::Fall).unwrap();
        let b = Chain::extract_worst(&s, out, TransitionKind::Fall).unwrap();
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn rail_output_rejected() {
        let g = cells::inverter(&tech(), cells::DEFAULT_LOAD).unwrap();
        assert!(Chain::extract(&g, g.sink(), TransitionKind::Fall).is_err());
        assert!(Chain::extract(&g, g.source(), TransitionKind::Fall).is_err());
    }

    #[test]
    fn fall_chain_through_nand_ignores_pmos() {
        // The PMOS edges at the output must not be walked for Fall.
        let g = cells::nand(&tech(), 4, cells::DEFAULT_LOAD).unwrap();
        let out = g.node_by_name("out").unwrap();
        let chain = Chain::extract(&g, out, TransitionKind::Fall).unwrap();
        assert_eq!(chain.len(), 4);
    }
}
