//! Waveform evaluation by piecewise quadratic waveform matching — the
//! paper's top-level algorithm (Definition 3 + §IV).
//!
//! The transient is divided into regions separated by critical points.
//! The evaluator maintains the chain state `(τ, V, I)` and repeatedly
//! asks: *which event ends the current region first?* Candidate events
//! are
//!
//! * the turn-on of each still-off transistor along the chain (the
//!   paper's critical points), and
//! * the next monitored output-level crossing (50 % for delay, 10/90 %
//!   for slew — how we close the post-turn-on regions, DESIGN.md §5.1).
//!
//! Each candidate is solved as a region-末 algebraic system
//! ([`crate::solver`]); the earliest converged τ′ wins and is committed
//! as one quadratic piece per node. Input-driven turn-ons whose Newton
//! solve degenerates (constant gate ⇒ no τ′ sensitivity) fall back to a
//! frozen-voltage gate-waveform crossing followed by a fixed-time solve.
//!
//! Total cost: one small Newton solve per transistor plus one per
//! monitored level — the paper's "K DC operating point calculations".

use crate::chain::Chain;
use crate::piecewise::{PiecewiseQuadratic, QuadraticPiece};
use crate::solver::{
    solve_region_counted, solve_region_into, ChainContext, EndCondition, RegionOptions,
    RegionSolution, RegionState, SolveScratch,
};
use crate::solver2::solve_region_two_point;
use qwm_circuit::stage::{DeviceKind, LogicStage, NodeId};
use qwm_circuit::waveform::{TransitionKind, Waveform};
use qwm_device::model::ModelSet;
use qwm_num::{NumError, Result};
use std::cell::RefCell;
use std::time::{Duration, Instant};

/// Per-worker evaluation workspace: the region-solve scratch plus the
/// candidate/winner solution double buffer and the retry-guess ladder.
/// Kept in a thread local so consecutive arcs evaluated on one worker —
/// a `qwm-exec` DAG worker or server pool thread — reuse the same
/// buffers; steady-state arc evaluation then allocates only its result
/// vectors (DESIGN.md §16).
#[derive(Debug, Default)]
struct EvalScratch {
    solve: SolveScratch,
    cand: RegionSolution,
    best: RegionSolution,
    guesses: Vec<f64>,
}

thread_local! {
    static EVAL_SCRATCH: RefCell<EvalScratch> = RefCell::new(EvalScratch::default());
}

/// Pre-touches this thread's evaluation workspace (sizing it for chains
/// of up to `chain_len` elements), so a worker's first arc is as
/// allocation-free as its steady state. Wired into worker start-up via
/// `ThreadPool::new_with_init`; calling it is never required for
/// correctness.
pub fn warm_worker(chain_len: usize) {
    EVAL_SCRATCH.with(|cell| {
        if let Ok(mut ws) = cell.try_borrow_mut() {
            ws.solve.reserve(chain_len);
            ws.cand.reserve(chain_len);
            ws.best.reserve(chain_len);
        }
    });
}

/// Why a region ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CriticalPointKind {
    /// Chain element `k` turned on.
    TurnOn(usize),
    /// The monitored output crossed a level \[V\].
    OutputCrossing(f64),
    /// Fallback fixed-time boundary (input-driven turn-on of element).
    TimedTurnOn(usize),
    /// Region boundary at an input-waveform breakpoint: gate slews end
    /// there, and splitting the region lets the next one start from the
    /// settled drive current (the paper's instantaneous-step behaviour).
    InputBreakpoint,
}

/// One committed critical point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalPoint {
    /// Time of the event \[s\].
    pub t: f64,
    /// What happened.
    pub kind: CriticalPointKind,
}

/// Evaluator configuration.
#[derive(Debug, Clone)]
pub struct QwmConfig {
    /// Monitored output levels as fractions of Vdd, harvested in
    /// transition order (default `[0.9, 0.5, 0.1]` — slew + delay
    /// points).
    pub crossing_fractions: Vec<f64>,
    /// Hard cap on committed regions (safety).
    pub max_regions: usize,
    /// Analysis horizon \[s\]; events beyond it abort the run.
    pub t_max: f64,
    /// Seed guesses for the region span, tried in order until a
    /// candidate solve converges.
    pub dt_guesses: Vec<f64>,
    /// Newton controls for each region solve.
    pub region: RegionOptions,
    /// Freeze node capacitances at their `t = 0` values instead of
    /// re-evaluating per region (the paper's simplifying assumption 3;
    /// kept as an ablation switch).
    pub freeze_caps: bool,
    /// Adaptive refinement (an extension along the paper's future-work
    /// axis): before committing an output-crossing region, the
    /// linear-current model is checked at the region midpoint against
    /// the device models; a relative mismatch above this tolerance
    /// splits the region at an intermediate level. `f64::INFINITY`
    /// disables refinement (the paper's plain behaviour and the
    /// default).
    pub midpoint_tolerance: f64,
    /// Minimum level separation for adaptive splits \[V\].
    pub min_split: f64,
    /// Re-solve each committed region with capacitances evaluated at
    /// the mean of its endpoint voltages (one extra Newton solve per
    /// region). Off by default; part of [`QwmConfig::refined`].
    pub midpoint_caps: bool,
    /// Waveform parameters per node per region (the paper's `r`): 1 for
    /// the paper's piecewise-quadratic model, 2 for the two-collocation
    /// extension (each region carries a matched midpoint as well,
    /// committed as two quadratic pieces).
    pub waveform_order: usize,
    /// Input-waveform breakpoints closer to the running region start
    /// than this are not promoted to region boundaries — keeps densely
    /// sampled (measured) input waveforms from flooding the region
    /// budget \[s\].
    pub min_breakpoint_span: f64,
}

impl Default for QwmConfig {
    fn default() -> Self {
        QwmConfig {
            crossing_fractions: vec![0.9, 0.5, 0.1],
            max_regions: 256,
            t_max: 100e-9,
            dt_guesses: vec![2e-12, 10e-12, 50e-12, 250e-12, 1.25e-9],
            region: RegionOptions::default(),
            freeze_caps: false,
            midpoint_tolerance: f64::INFINITY,
            min_split: 0.15,
            midpoint_caps: false,
            waveform_order: 1,
            min_breakpoint_span: 0.25e-12,
        }
    }
}

impl QwmConfig {
    /// The accuracy-refined preset (an extension beyond the paper, per
    /// its future-work note): midpoint-capacitance second passes plus
    /// adaptive region splitting. Roughly halves the worst-case delay
    /// error at ~2× the evaluation cost.
    pub fn refined() -> Self {
        QwmConfig {
            midpoint_tolerance: 0.5,
            midpoint_caps: true,
            ..QwmConfig::default()
        }
    }

    /// The `r = 2` preset: two collocation points per region (the
    /// paper's higher-`r` variant) plus midpoint capacitances. Reaches
    /// near-baseline accuracy (sub-percent even on the method's worst
    /// cases) at roughly 4× the default evaluation cost — still several
    /// times faster than the 1 ps transient.
    pub fn high_accuracy() -> Self {
        QwmConfig {
            waveform_order: 2,
            midpoint_caps: true,
            ..QwmConfig::default()
        }
    }
}

/// The outcome of a QWM waveform evaluation.
#[derive(Debug, Clone)]
pub struct QwmResult {
    /// The analyzed chain.
    pub chain: Chain,
    /// Piecewise-quadratic waveforms for chain nodes `1 … K`
    /// (`waveforms[k-1]` is node `k`; the output is the last entry).
    pub waveforms: Vec<PiecewiseQuadratic>,
    /// Committed critical points in time order.
    pub critical_points: Vec<CriticalPoint>,
    /// `(level, time)` pairs for each harvested output crossing.
    pub output_crossings: Vec<(f64, f64)>,
    /// Total Newton iterations across all region solves (including
    /// discarded candidates — the honest cost).
    pub iterations: usize,
    /// Committed regions.
    pub regions: usize,
    /// Wall-clock time of the evaluation.
    pub elapsed: Duration,
}

impl QwmResult {
    /// The output node's waveform.
    ///
    /// # Panics
    ///
    /// Panics if the result is empty (never after a successful run).
    pub fn output_waveform(&self) -> &PiecewiseQuadratic {
        self.waveforms.last().expect("chain has at least one node")
    }

    /// 50 % propagation delay relative to `t_ref`, if the 50 % level was
    /// monitored and reached.
    pub fn delay_50(&self, vdd: f64, t_ref: f64) -> Option<f64> {
        let half = 0.5 * vdd;
        self.output_crossings
            .iter()
            .find(|(lvl, _)| (lvl - half).abs() < 1e-9)
            .map(|&(_, t)| t - t_ref)
    }

    /// Output transition time between the 90 % and 10 % monitored levels
    /// (order-independent), if both were reached.
    pub fn slew(&self, vdd: f64) -> Option<f64> {
        let find = |frac: f64| {
            self.output_crossings
                .iter()
                .find(|(lvl, _)| (lvl - frac * vdd).abs() < 1e-9)
                .map(|&(_, t)| t)
        };
        match (find(0.9), find(0.1)) {
            (Some(a), Some(b)) => Some((a - b).abs()),
            _ => None,
        }
    }
}

/// Runs piecewise quadratic waveform matching on the charge/discharge
/// chain of `output` in the given direction.
///
/// `inputs` holds one waveform per stage input; `initial` holds node
/// voltages for every stage node (rails overridden internally).
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on malformed arguments or an
/// inextractable chain, and [`NumError::NoConvergence`] if no candidate
/// region solve converges from some state (the QWM failure mode; the
/// SPICE engine remains the fallback in a production flow).
pub fn evaluate(
    stage: &LogicStage,
    models: &ModelSet,
    inputs: &[Waveform],
    initial: &[f64],
    output: NodeId,
    direction: TransitionKind,
    config: &QwmConfig,
) -> Result<QwmResult> {
    EVAL_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => evaluate_with(
            stage, models, inputs, initial, output, direction, config, &mut ws,
        ),
        // Re-entrant call on this thread (the workspace is already in
        // use further up the stack): fall back to a fresh workspace
        // rather than panicking on the borrow.
        Err(_) => evaluate_with(
            stage,
            models,
            inputs,
            initial,
            output,
            direction,
            config,
            &mut EvalScratch::default(),
        ),
    })
}

#[allow(clippy::too_many_arguments)]
fn evaluate_with(
    stage: &LogicStage,
    models: &ModelSet,
    inputs: &[Waveform],
    initial: &[f64],
    output: NodeId,
    direction: TransitionKind,
    config: &QwmConfig,
    ws: &mut EvalScratch,
) -> Result<QwmResult> {
    if inputs.len() != stage.inputs().len() {
        return Err(NumError::InvalidInput {
            context: "qwm::evaluate",
            detail: format!(
                "{} input waveforms for {} inputs",
                inputs.len(),
                stage.inputs().len()
            ),
        });
    }
    if initial.len() != stage.node_count() {
        return Err(NumError::InvalidInput {
            context: "qwm::evaluate",
            detail: format!(
                "{} initial voltages for {} nodes",
                initial.len(),
                stage.node_count()
            ),
        });
    }
    let start = Instant::now();
    let _span = qwm_obs::span!("qwm.evaluate");
    let vdd = models.tech().vdd;
    let chain = Chain::extract_worst(stage, output, direction)?;
    let rail_v = match direction {
        TransitionKind::Fall => 0.0,
        TransitionKind::Rise => vdd,
    };
    let ctx = ChainContext {
        stage,
        chain: &chain,
        models,
        inputs,
        rail_v,
    };
    let n = chain.len();

    // One workspace for every region solve and capacitance merge of
    // this evaluation — the buffers live in the worker's thread-local
    // `EvalScratch`, so they grow to the chain length once and are
    // reused across every arc this worker evaluates (DESIGN.md §16).
    let EvalScratch {
        solve: scratch,
        cand,
        best,
        guesses,
    } = ws;

    // Initial chain state.
    let v0: Vec<f64> = (1..=n).map(|k| initial[chain.nodes[k].0]).collect();
    let mut caps0 = Vec::new();
    ctx.node_caps_into(&v0, scratch, &mut caps0);
    let i0 = ctx.node_currents(&v0, 0.0)?;
    // Region-start caps are only re-cloned per region under the
    // `freeze_caps` ablation; the default path copies in place.
    let frozen_caps: Option<Vec<f64>> = config.freeze_caps.then(|| caps0.clone());
    let mut state = RegionState {
        tau: 0.0,
        v: v0,
        i: i0,
        caps: caps0,
    };

    // Conduction bookkeeping: which transistor elements are on.
    let mut on: Vec<bool> = (1..=n)
        .map(|k| ctx.excess(k, &state.v, 0.0) > 0.0)
        .collect();
    // Wires are always "on".
    for (k, e) in chain.elements.iter().enumerate() {
        if e.kind == DeviceKind::Wire {
            on[k] = true;
        }
    }

    // Monitored levels, ordered along the transition.
    let out_v0 = *state.v.last().expect("non-empty chain");
    let mut targets: Vec<f64> = config
        .crossing_fractions
        .iter()
        .map(|f| f * vdd)
        .filter(|&lvl| match direction {
            TransitionKind::Fall => lvl < out_v0 - 1e-6,
            TransitionKind::Rise => lvl > out_v0 + 1e-6,
        })
        .collect();
    targets.sort_by(|a, b| match direction {
        TransitionKind::Fall => b.partial_cmp(a).unwrap(),
        TransitionKind::Rise => a.partial_cmp(b).unwrap(),
    });

    let mut waveforms = vec![PiecewiseQuadratic::new(); n];
    let mut critical_points = Vec::new();
    let mut output_crossings = Vec::new();
    let mut iterations = 0usize;
    let mut regions = 0usize;
    let mut last_span = 0.0_f64;
    // Candidate/winner double buffer (`cand`/`best` from the worker's
    // workspace): each candidate solve writes into `cand`; a winning
    // candidate is swapped into `best` (a vector swap, no allocation).
    // `best_kind` doubles as the "have a winner" flag, so stale contents
    // from a previous arc are never read.
    while !targets.is_empty() {
        if regions >= config.max_regions {
            return Err(NumError::NoConvergence {
                method: "qwm::evaluate (region cap)",
                iterations: regions,
                residual: state.tau,
            });
        }
        // Gather candidates.
        let mut best_kind: Option<CriticalPointKind> = None;
        let tau0 = state.tau;
        let t_max = config.t_max;
        let consider = |cand: &mut RegionSolution,
                        best: &mut RegionSolution,
                        best_kind: &mut Option<CriticalPointKind>,
                        kind: CriticalPointKind| {
            if cand.tau_next > tau0
                && cand.tau_next <= t_max
                && (best_kind.is_none() || cand.tau_next < best.tau_next)
            {
                std::mem::swap(best, cand);
                *best_kind = Some(kind);
            }
        };

        // The cascade is driven by the conduction front: only the
        // lowest-indexed off transistor can be turned on by *node*
        // motion, so it alone gets the full Newton treatment. Higher
        // off transistors can only be switched by their *gates*, whose
        // crossing times are read straight off the input waveforms.
        if let Some(k) = (1..=n).find(|&k| !on[k - 1]) {
            // Gate-driven turn-ons (the driving channel terminal is
            // quiescent and the gate waveform does the work) are read
            // straight off the input waveform — no Newton needed.
            let driver_quiescent =
                k == 1 || state.i[k - 2].abs() < 1e-9 || gate_still_switching(&ctx, k, state.tau);
            let frozen = if driver_quiescent {
                frozen_turn_on_time(&ctx, &state, k, config.t_max)
                    .filter(|&t| t > state.tau + config.region.min_delta)
            } else {
                None
            };
            let mut solved = false;
            if let Some(t_on) = frozen {
                if solve_region_into(
                    &ctx,
                    &state,
                    EndCondition::FixedTime { t: t_on },
                    0.0,
                    &config.region,
                    &mut iterations,
                    scratch,
                    cand,
                )
                .is_ok()
                {
                    consider(
                        cand,
                        best,
                        &mut best_kind,
                        CriticalPointKind::TimedTurnOn(k),
                    );
                    solved = true;
                }
            }
            if !solved {
                // Node-driven turn-on: full Newton, seeded with the
                // previous region's span (cascade events are roughly
                // evenly spaced) before the generic ladder.
                let cond = EndCondition::TurnOn { element: k };
                guesses.clear();
                if last_span > 0.0 {
                    guesses.push(last_span);
                }
                guesses.extend_from_slice(&config.dt_guesses);
                for (attempt, &dt) in guesses.iter().enumerate() {
                    if attempt > 0 {
                        qwm_obs::counter!("qwm.region.retries").incr();
                    }
                    match solve_region_into(
                        &ctx,
                        &state,
                        cond,
                        dt,
                        &config.region,
                        &mut iterations,
                        scratch,
                        cand,
                    ) {
                        Ok(()) => {
                            consider(cand, best, &mut best_kind, CriticalPointKind::TurnOn(k));
                            break;
                        }
                        Err(_) => continue,
                    }
                }
            }
        }
        // Gate-driven events for the remaining off transistors: their
        // channel neighbourhood is quiescent, so the frozen-voltage
        // estimate is exact; commit via a fixed-time region if one lands
        // before everything else.
        let gate_driven: Option<(usize, f64)> = (1..=n)
            .filter(|&k| !on[k - 1])
            .skip(1)
            .filter_map(|k| {
                frozen_turn_on_time(&ctx, &state, k, config.t_max)
                    .filter(|&t| t > state.tau + config.region.min_delta)
                    .map(|t| (k, t))
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));
        if let Some((k, t_on)) = gate_driven {
            let beats_best = best_kind.is_none() || t_on < best.tau_next;
            if beats_best
                && solve_region_into(
                    &ctx,
                    &state,
                    EndCondition::FixedTime { t: t_on },
                    0.0,
                    &config.region,
                    &mut iterations,
                    scratch,
                    cand,
                )
                .is_ok()
            {
                consider(
                    cand,
                    best,
                    &mut best_kind,
                    CriticalPointKind::TimedTurnOn(k),
                );
            }
        }

        // The next monitored output level — only worth solving once the
        // output node is actually moving (before the top element
        // conducts, the crossing system has no solution and every Newton
        // attempt would burn its full budget).
        let output_active = state.i[n - 1].abs() > 1e-7 || on.iter().all(|&x| x);
        if output_active {
            if let Some(&level) = targets.first() {
                let cond = EndCondition::Crossing { node: n, level };
                // Linear-extrapolation seed Δt ≈ C (level − V)/I, with
                // the previous region span as a sanity backstop.
                guesses.clear();
                let i_out = state.i[n - 1];
                if i_out.abs() > 1e-12 {
                    let est = state.caps[n - 1] * (level - state.v[n - 1]) / i_out;
                    if est.is_finite() && est > 0.0 && (last_span == 0.0 || est < 20.0 * last_span)
                    {
                        guesses.push(est);
                    }
                }
                if last_span > 0.0 {
                    guesses.push(last_span);
                }
                guesses.extend_from_slice(&config.dt_guesses);
                for (attempt, &dt) in guesses.iter().enumerate() {
                    if attempt > 0 {
                        qwm_obs::counter!("qwm.region.retries").incr();
                    }
                    match solve_region_into(
                        &ctx,
                        &state,
                        cond,
                        dt,
                        &config.region,
                        &mut iterations,
                        scratch,
                        cand,
                    ) {
                        Ok(()) => {
                            consider(
                                cand,
                                best,
                                &mut best_kind,
                                CriticalPointKind::OutputCrossing(level),
                            );
                            break;
                        }
                        Err(_) => continue,
                    }
                }
            }
        }

        // Input-waveform breakpoints bound every region: a gate still
        // slewing makes the linear-current model a poor fit, so the
        // region is split where the slewing stops/changes.
        let next_break = chain
            .elements
            .iter()
            .filter_map(|e| e.input)
            .flat_map(|i| inputs[i.0].samples().iter().map(|&(t, _)| t))
            .filter(|&t| t > state.tau + config.region.min_delta.max(config.min_breakpoint_span))
            .fold(f64::INFINITY, f64::min);
        if next_break.is_finite()
            && (best_kind.is_none() || next_break < best.tau_next - config.region.min_delta)
            && solve_region_into(
                &ctx,
                &state,
                EndCondition::FixedTime { t: next_break },
                0.0,
                &config.region,
                &mut iterations,
                scratch,
                cand,
            )
            .is_ok()
        {
            consider(
                cand,
                best,
                &mut best_kind,
                CriticalPointKind::InputBreakpoint,
            );
        }

        let kind = best_kind.ok_or(NumError::NoConvergence {
            method: "qwm::evaluate (no candidate converged)",
            iterations: regions,
            residual: state.tau,
        })?;
        let sol = &mut *best;

        // Adaptive refinement: if the winning region is an output
        // crossing whose linear-current model disagrees with the device
        // models at the region midpoint, split it at an intermediate
        // level instead of committing.
        if let CriticalPointKind::OutputCrossing(level) = kind {
            let out_v = state.v[n - 1];
            // The default tolerance is infinite, so gate the midpoint
            // probe (a full device-model sweep) on a finite tolerance —
            // otherwise the comparison can never fire.
            if (out_v - level).abs() > config.min_split
                && config.midpoint_tolerance.is_finite()
                && midpoint_mismatch(&ctx, &state, sol)? > config.midpoint_tolerance
                && regions + targets.len() + 2 < config.max_regions
            {
                targets.insert(0, 0.5 * (out_v + level));
                continue;
            }
        }

        // Re-express the winning end condition (shared by the r = 2 and
        // midpoint-caps passes).
        let winning_cond = match kind {
            CriticalPointKind::TurnOn(k) => EndCondition::TurnOn { element: k },
            CriticalPointKind::OutputCrossing(level) => EndCondition::Crossing { node: n, level },
            CriticalPointKind::TimedTurnOn(_) | CriticalPointKind::InputBreakpoint => {
                EndCondition::FixedTime { t: sol.tau_next }
            }
        };

        // r = 2: re-solve the winning region with two collocation points
        // and commit two exactly-representable quadratic pieces.
        if config.waveform_order >= 2 {
            let first_pass = solve_region_two_point(
                &ctx,
                &state,
                winning_cond,
                sol.tau_next - state.tau,
                &config.region,
                &mut iterations,
            );
            // Optional cap refinement: re-solve with capacitances at the
            // mean of the region's endpoint voltages. The committed
            // pieces must carry whichever caps the accepted solve used.
            let refined = match (&first_pass, config.midpoint_caps && !config.freeze_caps) {
                (Ok(tp0), true) => {
                    let v_mid: Vec<f64> = state
                        .v
                        .iter()
                        .zip(&tp0.end.v_next)
                        .map(|(a, b)| 0.5 * (a + b))
                        .collect();
                    let caps2 = ctx.node_caps(&v_mid);
                    let state2 = RegionState {
                        tau: state.tau,
                        v: state.v.clone(),
                        i: state.i.clone(),
                        caps: caps2.clone(),
                    };
                    solve_region_two_point(
                        &ctx,
                        &state2,
                        winning_cond,
                        tp0.end.tau_next - state.tau,
                        &config.region,
                        &mut iterations,
                    )
                    .ok()
                    .map(|tp| (tp, caps2))
                }
                _ => None,
            };
            let chosen = match refined {
                Some((tp, caps2)) => Ok((tp, caps2)),
                None => first_pass.map(|tp| (tp, state.caps.clone())),
            };
            if let Ok((tp, commit_caps)) = chosen {
                for k in 0..n {
                    waveforms[k].push(QuadraticPiece {
                        t0: state.tau,
                        t1: tp.tau_mid,
                        v0: state.v[k],
                        i0: state.i[k],
                        alpha: tp.alphas_first[k],
                        cap: commit_caps[k],
                    })?;
                    waveforms[k].push(QuadraticPiece {
                        t0: tp.tau_mid,
                        t1: tp.end.tau_next,
                        v0: tp.v_mid[k],
                        i0: tp.i_mid[k],
                        alpha: tp.end.alphas[k],
                        cap: commit_caps[k],
                    })?;
                }
                regions += 1;
                last_span = tp.end.tau_next - state.tau;
                critical_points.push(CriticalPoint {
                    t: tp.end.tau_next,
                    kind,
                });
                match kind {
                    CriticalPointKind::TurnOn(k) | CriticalPointKind::TimedTurnOn(k) => {
                        on[k - 1] = true;
                    }
                    CriticalPointKind::InputBreakpoint => {}
                    CriticalPointKind::OutputCrossing(level) => {
                        output_crossings.push((level, tp.end.tau_next));
                        targets.remove(0);
                    }
                }
                state.tau = tp.end.tau_next;
                match &frozen_caps {
                    Some(c) => {
                        state.caps.clear();
                        state.caps.extend_from_slice(c);
                    }
                    None => ctx.node_caps_into(&tp.end.v_next, scratch, &mut state.caps),
                }
                state.v = tp.end.v_next;
                state.i = tp.end.i_next;
                for k in 1..=n {
                    if !on[k - 1] && ctx.excess(k, &state.v, state.tau) >= 0.0 {
                        on[k - 1] = true;
                    }
                }
                continue;
            }
        }

        // Second pass with midpoint capacitances: junction caps grow as
        // nodes discharge, so region-start caps bias long regions fast.
        // Re-solving with caps at the mean of the endpoint voltages is a
        // one-extra-solve correction (skipped under freeze_caps). The
        // default path commits with the region-start caps borrowed in
        // place — no per-region clone.
        let mid_caps: Option<Vec<f64>> = if !config.midpoint_caps || config.freeze_caps {
            None
        } else {
            let v_mid: Vec<f64> = state
                .v
                .iter()
                .zip(&sol.v_next)
                .map(|(a, b)| 0.5 * (a + b))
                .collect();
            let mid_caps = ctx.node_caps(&v_mid);
            let drift = state
                .caps
                .iter()
                .zip(&mid_caps)
                .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs() / b));
            if drift > 0.002 {
                let state2 = RegionState {
                    tau: state.tau,
                    v: state.v.clone(),
                    i: state.i.clone(),
                    caps: mid_caps.clone(),
                };
                match solve_region_counted(
                    &ctx,
                    &state2,
                    winning_cond,
                    sol.tau_next - state2.tau,
                    &config.region,
                    &mut iterations,
                ) {
                    Ok(sol2) => {
                        *sol = sol2;
                        Some(mid_caps)
                    }
                    Err(_) => None,
                }
            } else {
                None
            }
        };
        let used_caps: &[f64] = mid_caps.as_deref().unwrap_or(&state.caps);

        // Commit the region: one quadratic piece per node.
        for k in 0..n {
            waveforms[k].push(QuadraticPiece {
                t0: state.tau,
                t1: sol.tau_next,
                v0: state.v[k],
                i0: state.i[k],
                alpha: sol.alphas[k],
                cap: used_caps[k],
            })?;
        }
        regions += 1;
        last_span = sol.tau_next - state.tau;
        critical_points.push(CriticalPoint {
            t: sol.tau_next,
            kind,
        });
        match kind {
            CriticalPointKind::TurnOn(k) | CriticalPointKind::TimedTurnOn(k) => {
                on[k - 1] = true;
            }
            CriticalPointKind::InputBreakpoint => {}
            CriticalPointKind::OutputCrossing(level) => {
                output_crossings.push((level, sol.tau_next));
                targets.remove(0);
            }
        }
        // Opportunistically mark anything else that crossed its turn-on
        // during this region (simultaneous switching). The winner's
        // buffers are swapped into the running state (and its spent
        // vectors recycled as the next region's winner buffers).
        state.tau = sol.tau_next;
        std::mem::swap(&mut state.v, &mut sol.v_next);
        std::mem::swap(&mut state.i, &mut sol.i_next);
        match &frozen_caps {
            Some(c) => {
                state.caps.clear();
                state.caps.extend_from_slice(c);
            }
            None => ctx.node_caps_into(&state.v, scratch, &mut state.caps),
        }
        for k in 1..=n {
            if !on[k - 1] && ctx.excess(k, &state.v, state.tau) >= 0.0 {
                on[k - 1] = true;
            }
        }
    }

    qwm_obs::counter!("qwm.solver.nr_iterations").add(iterations as u64);
    qwm_obs::counter!("qwm.solver.regions").add(regions as u64);
    qwm_obs::counter!("qwm.solver.critical_points").add(critical_points.len() as u64);
    qwm_obs::histogram!("qwm.solver.regions_per_eval", qwm_obs::SIZE_BOUNDS).record(regions as u64);
    Ok(QwmResult {
        chain,
        waveforms,
        critical_points,
        output_crossings,
        iterations,
        regions,
        elapsed: start.elapsed(),
    })
}

/// Relative disagreement between the committed linear-current model and
/// the device models at the region midpoint (the adaptive-refinement
/// oracle).
fn midpoint_mismatch(
    ctx: &ChainContext<'_>,
    state: &RegionState,
    sol: &RegionSolution,
) -> Result<f64> {
    let h = 0.5 * (sol.tau_next - state.tau);
    let t_mid = state.tau + h;
    let n = state.v.len();
    let mut v_mid = vec![0.0; n];
    let mut i_model = vec![0.0; n];
    for k in 0..n {
        v_mid[k] = state.v[k] + (state.i[k] * h + 0.5 * sol.alphas[k] * h * h) / state.caps[k];
        i_model[k] = state.i[k] + sol.alphas[k] * h;
    }
    let i_dev = ctx.node_currents(&v_mid, t_mid)?;
    // Only the monitored output node matters for the crossing time;
    // internal nodes naturally slosh around turn-on events.
    let k = n - 1;
    let scale = i_dev[k].abs().max(i_model[k].abs()).max(1e-9);
    Ok((i_model[k] - i_dev[k]).abs() / scale)
}

/// True when element `k`'s gate waveform is still slewing at time `t`
/// (an input-driven event may therefore be imminent).
fn gate_still_switching(ctx: &ChainContext<'_>, k: usize, t: f64) -> bool {
    match ctx.chain.elements[k - 1].input {
        Some(i) => ctx.inputs[i.0].slope(t) != 0.0,
        None => false,
    }
}

/// Frozen-voltage estimate of an input-driven turn-on time: the first
/// `t ∈ (τ, t_max]` at which element `k`'s excess crosses zero with the
/// node voltages held at their region-start values.
///
/// With the channel terminals frozen the excess is an affine function of
/// the gate waveform (`±(G − const)`), so the estimate is a direct
/// waveform crossing rather than a root search.
fn frozen_turn_on_time(
    ctx: &ChainContext<'_>,
    state: &RegionState,
    k: usize,
    t_max: f64,
) -> Option<f64> {
    if ctx.excess(k, &state.v, state.tau) >= 0.0 {
        return Some(state.tau);
    }
    let elem = &ctx.chain.elements[k - 1];
    let input = elem.input?;
    let wave = &ctx.inputs[input.0];
    // excess(t) = ±(G(t) − level): recover `level` from one probe.
    let probe_t = state.tau;
    let g0 = wave.value(probe_t);
    let e0 = ctx.excess(k, &state.v, probe_t);
    let rising = elem.kind == DeviceKind::Nmos; // NMOS gates rise to turn on
    let level = if rising { g0 - e0 } else { g0 + e0 };
    wave.crossing(level, rising).filter(|&t| t <= t_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qwm_circuit::cells;
    use qwm_device::{analytic_models, Technology};
    use qwm_spice_initial::initial_uniform_like;

    /// Tiny local replica of `qwm_spice::initial_uniform` to avoid a
    /// dev-dependency cycle.
    mod qwm_spice_initial {
        use qwm_circuit::stage::{LogicStage, NodeId, NodeKind};
        use qwm_device::model::ModelSet;

        pub fn initial_uniform_like(stage: &LogicStage, models: &ModelSet, v: f64) -> Vec<f64> {
            let vdd = models.tech().vdd;
            (0..stage.node_count())
                .map(|i| match stage.node(NodeId(i)).kind {
                    NodeKind::Supply => vdd,
                    NodeKind::Ground => 0.0,
                    NodeKind::Internal => v,
                })
                .collect()
        }
    }

    fn setup() -> (Technology, ModelSet) {
        let tech = Technology::cmosp35();
        let models = analytic_models(&tech);
        (tech, models)
    }

    #[test]
    fn four_stack_discharge_cascades() {
        let (tech, models) = setup();
        let stage = cells::nmos_stack(&tech, &[1.5e-6; 4], cells::DEFAULT_LOAD).unwrap();
        let out = stage.node_by_name("out").unwrap();
        let inputs: Vec<Waveform> = (0..4).map(|_| Waveform::step(0.0, 0.0, tech.vdd)).collect();
        let init = initial_uniform_like(&stage, &models, tech.vdd);
        let r = evaluate(
            &stage,
            &models,
            &inputs,
            &init,
            out,
            TransitionKind::Fall,
            &QwmConfig::default(),
        )
        .unwrap();
        // Turn-on events for elements 2..4 (element 1 is input-driven),
        // plus three output crossings.
        let turnons = r
            .critical_points
            .iter()
            .filter(|c| {
                matches!(
                    c.kind,
                    CriticalPointKind::TurnOn(_) | CriticalPointKind::TimedTurnOn(_)
                )
            })
            .count();
        assert!(
            turnons >= 3,
            "saw {turnons} turn-ons: {:?}",
            r.critical_points
        );
        // All requested levels harvested (refinement may add more).
        assert!(r.output_crossings.len() >= QwmConfig::default().crossing_fractions.len());
        assert!(r.delay_50(tech.vdd, 0.0).is_some());
        // Crossings harvested in falling order of level.
        let times: Vec<f64> = r.output_crossings.iter().map(|c| c.1).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        // Events strictly ordered in time.
        for w in r.critical_points.windows(2) {
            assert!(w[0].t <= w[1].t + 1e-18);
        }
        let d = r.delay_50(tech.vdd, 0.0).unwrap();
        assert!(d > 1e-12 && d < 5e-9, "delay {d}");
        assert!(r.slew(tech.vdd).unwrap() > 0.0);
        assert!(r.regions >= 4);
        assert!(r.iterations > 0);
    }

    #[test]
    fn output_waveform_is_monotone_fall() {
        let (tech, models) = setup();
        let stage = cells::nmos_stack(&tech, &[2.0e-6; 3], cells::DEFAULT_LOAD).unwrap();
        let out = stage.node_by_name("out").unwrap();
        let inputs: Vec<Waveform> = (0..3).map(|_| Waveform::step(0.0, 0.0, tech.vdd)).collect();
        let init = initial_uniform_like(&stage, &models, tech.vdd);
        let r = evaluate(
            &stage,
            &models,
            &inputs,
            &init,
            out,
            TransitionKind::Fall,
            &QwmConfig::default(),
        )
        .unwrap();
        let w = r.output_waveform();
        let span = w.breakpoints().last().unwrap().0;
        let mut prev = f64::INFINITY;
        for i in 0..=100 {
            let t = span * i as f64 / 100.0;
            let v = w.voltage(t);
            assert!(v <= prev + 0.02, "non-monotone at t={t}: {v} > {prev}");
            prev = v;
        }
    }

    #[test]
    fn inverter_fall_single_region_family() {
        let (tech, models) = setup();
        let stage = cells::inverter(&tech, cells::DEFAULT_LOAD).unwrap();
        let out = stage.node_by_name("out").unwrap();
        let inputs = vec![Waveform::step(0.0, 0.0, tech.vdd)];
        let init = initial_uniform_like(&stage, &models, tech.vdd);
        let r = evaluate(
            &stage,
            &models,
            &inputs,
            &init,
            out,
            TransitionKind::Fall,
            &QwmConfig::default(),
        )
        .unwrap();
        // All requested levels harvested (refinement may add more).
        assert!(r.output_crossings.len() >= QwmConfig::default().crossing_fractions.len());
        assert!(r.delay_50(tech.vdd, 0.0).is_some());
        assert!(r.delay_50(tech.vdd, 0.0).unwrap() < 500e-12);
    }

    #[test]
    fn pmos_stack_charges_symmetrically() {
        let (tech, models) = setup();
        let stage = cells::pmos_stack(&tech, &[3.0e-6; 3], cells::DEFAULT_LOAD).unwrap();
        let out = stage.node_by_name("out").unwrap();
        // PMOS gates fall to turn on.
        let inputs: Vec<Waveform> = (0..3).map(|_| Waveform::step(0.0, tech.vdd, 0.0)).collect();
        let init = initial_uniform_like(&stage, &models, 0.0);
        let r = evaluate(
            &stage,
            &models,
            &inputs,
            &init,
            out,
            TransitionKind::Rise,
            &QwmConfig::default(),
        )
        .unwrap();
        // All requested levels harvested (refinement may add more).
        assert!(r.output_crossings.len() >= QwmConfig::default().crossing_fractions.len());
        assert!(r.delay_50(tech.vdd, 0.0).is_some());
        let w = r.output_waveform();
        let t_end = w.breakpoints().last().unwrap().0;
        assert!(w.voltage(t_end) > 0.85 * tech.vdd);
        // Rising crossings harvested in rising order of level.
        let times: Vec<f64> = r.output_crossings.iter().map(|c| c.1).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn argument_validation() {
        let (tech, models) = setup();
        let stage = cells::inverter(&tech, cells::DEFAULT_LOAD).unwrap();
        let out = stage.node_by_name("out").unwrap();
        let init = initial_uniform_like(&stage, &models, tech.vdd);
        let cfg = QwmConfig::default();
        assert!(evaluate(&stage, &models, &[], &init, out, TransitionKind::Fall, &cfg).is_err());
        let inputs = vec![Waveform::constant(0.0)];
        assert!(evaluate(
            &stage,
            &models,
            &inputs,
            &[0.0],
            out,
            TransitionKind::Fall,
            &cfg
        )
        .is_err());
    }

    #[test]
    fn tabular_model_drives_qwm_too() {
        // The paper's actual configuration: QWM over the compressed
        // tabular model.
        let tech = Technology::cmosp35();
        let models = qwm_device::tabular_models(&tech).unwrap();
        let stage = cells::nmos_stack(&tech, &[1.5e-6; 3], cells::DEFAULT_LOAD).unwrap();
        let out = stage.node_by_name("out").unwrap();
        let inputs: Vec<Waveform> = (0..3).map(|_| Waveform::step(0.0, 0.0, tech.vdd)).collect();
        let init = qwm_spice_initial::initial_uniform_like(&stage, &models, tech.vdd);
        let r = evaluate(
            &stage,
            &models,
            &inputs,
            &init,
            out,
            TransitionKind::Fall,
            &QwmConfig::default(),
        )
        .unwrap();
        // All requested levels harvested (refinement may add more).
        assert!(r.output_crossings.len() >= QwmConfig::default().crossing_fractions.len());
        assert!(r.delay_50(tech.vdd, 0.0).is_some());
    }

    #[test]
    fn concurrent_evaluations_of_one_stage_are_identical() {
        // The parallel STA engine calls `evaluate` from several workers
        // against one shared stage/model set; the solve keeps all its
        // scratch on the stack, so racing evaluations must agree to the
        // last bit with a lone serial one.
        let (tech, models) = setup();
        let stage = cells::nand(&tech, 2, cells::DEFAULT_LOAD).unwrap();
        let out = stage.node_by_name("out").unwrap();
        let inputs: Vec<Waveform> = (0..2)
            .map(|_| Waveform::ramp(0.0, 40e-12, 0.0, tech.vdd))
            .collect();
        let init = initial_uniform_like(&stage, &models, tech.vdd);
        let cfg = QwmConfig::default();
        let run = || {
            evaluate(
                &stage,
                &models,
                &inputs,
                &init,
                out,
                TransitionKind::Fall,
                &cfg,
            )
            .unwrap()
            .delay_50(tech.vdd, 0.0)
            .unwrap()
        };
        let expect = run();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let run = &run;
                s.spawn(move || {
                    for _ in 0..16 {
                        assert_eq!(run().to_bits(), expect.to_bits());
                    }
                });
            }
        });
    }
}
