//! Steady-state allocation contract for the region solve (DESIGN.md
//! §16): once a `SolveScratch`/`RegionSolution` pair has been warmed on
//! a chain, repeated `solve_region_into` calls must allocate **zero**
//! times — not "few", zero. A counting global allocator makes the
//! assertion exact; any future `Vec`, `Box`, or format sneaking into
//! the hot path fails this test by name.
//!
//! This file intentionally holds a single test: the allocation counter
//! is process-global, so a sibling test running concurrently would
//! pollute the measurement window.

use qwm_circuit::cells;
use qwm_circuit::waveform::{TransitionKind, Waveform};
use qwm_core::chain::Chain;
use qwm_core::solver::{
    solve_region_into, ChainContext, EndCondition, RegionOptions, RegionSolution, RegionState,
    SolveScratch,
};
use qwm_device::{analytic_models, Technology};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts every allocation (alloc / alloc_zeroed / realloc) while
/// delegating the actual work to the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_region_solve_allocates_zero() {
    // A 3-stack with a mid-discharge state whose 50 %-level crossing
    // converges from a short dt seed (the kernel-bench micro-setup).
    let tech = Technology::cmosp35();
    let models = analytic_models(&tech);
    let stage = cells::nmos_stack(&tech, &[1.5e-6, 2.0e-6, 1.0e-6], 20e-15).unwrap();
    let out = stage.node_by_name("out").unwrap();
    let chain = Chain::extract(&stage, out, TransitionKind::Fall).unwrap();
    let inputs: Vec<Waveform> = (0..3).map(|_| Waveform::constant(tech.vdd)).collect();
    let ctx = ChainContext {
        stage: &stage,
        chain: &chain,
        models: &models,
        inputs: &inputs,
        rail_v: 0.0,
    };
    let v0 = vec![1.0, 2.5, 3.1];
    let caps = ctx.node_caps(&v0);
    let i0 = ctx.node_currents(&v0, 0.0).unwrap();
    let state = RegionState {
        tau: 0.0,
        v: v0,
        i: i0,
        caps,
    };
    let cond = EndCondition::Crossing {
        node: 3,
        level: 2.0,
    };
    let opts = RegionOptions::default();

    let mut scratch = SolveScratch::new();
    let mut sol = RegionSolution::default();
    let mut spent = 0usize;
    // Warm-up: grows every workspace buffer to the chain size and
    // registers the observability counters/histograms.
    for _ in 0..4 {
        solve_region_into(
            &ctx,
            &state,
            cond,
            5e-12,
            &opts,
            &mut spent,
            &mut scratch,
            &mut sol,
        )
        .unwrap();
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..32 {
        solve_region_into(
            &ctx,
            &state,
            cond,
            5e-12,
            &opts,
            &mut spent,
            &mut scratch,
            &mut sol,
        )
        .unwrap();
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "warm solve_region_into allocated {} times over 32 solves",
        after - before
    );
}
