//! The versioned binary codec for domain records.
//!
//! Everything is little-endian; every `f64` travels as its exact
//! [`f64::to_bits`] pattern, so a decode → re-encode round trip is
//! byte-identical and restored timing state reproduces the original
//! bitwise — the property the warm-restart contract stands on.
//! Strings are `u32` length + UTF-8; `Option` is a one-byte tag.
//!
//! Decoders validate everything they read (lengths, enum tags, net
//! and stage references, finiteness where the engine requires it)
//! and fail with [`StoreError::Codec`] — a CRC-valid record whose
//! payload is semantically impossible is corruption too.

use crate::{Result, StoreError};
use qwm_circuit::netlist::{NetId, Netlist};
use qwm_circuit::stage::DeviceKind;
use qwm_circuit::waveform::TransitionKind;
use qwm_device::model::{Geometry, Polarity};
use qwm_device::table::{FitPoint, TableModel};
use qwm_device::tech::Technology;
use qwm_sta::snapshot::{CommitSnapshot, CornerCommitSnapshot};

/// Record kind tags (`payload[0]` in the log).
pub(crate) const KIND_DEVICE_TABLE: u8 = 1;
pub(crate) const KIND_SNAPSHOT: u8 = 2;
pub(crate) const KIND_EDITS: u8 = 3;
pub(crate) const KIND_CLOSE: u8 = 4;

fn bad(context: &'static str, detail: impl Into<String>) -> StoreError {
    StoreError::Codec {
        context,
        detail: detail.into(),
    }
}

/// The [`Technology`] fields in canonical codec order. Adding a field
/// to `Technology` without extending this list is a compile error.
fn tech_fields(t: &Technology) -> [f64; 21] {
    let Technology {
        vdd,
        kp_n,
        kp_p,
        vt0_n,
        vt0_p,
        gamma,
        phi,
        lambda,
        cox,
        c_overlap,
        cj,
        cjsw,
        pb,
        mj,
        mjsw,
        l_min,
        w_min,
        l_diff,
        wire_r_sq,
        wire_c_area,
        wire_c_fringe,
    } = *t;
    [
        vdd,
        kp_n,
        kp_p,
        vt0_n,
        vt0_p,
        gamma,
        phi,
        lambda,
        cox,
        c_overlap,
        cj,
        cjsw,
        pb,
        mj,
        mjsw,
        l_min,
        w_min,
        l_diff,
        wire_r_sq,
        wire_c_area,
        wire_c_fringe,
    ]
}

fn tech_from_fields(f: &[f64; 21]) -> Technology {
    Technology {
        vdd: f[0],
        kp_n: f[1],
        kp_p: f[2],
        vt0_n: f[3],
        vt0_p: f[4],
        gamma: f[5],
        phi: f[6],
        lambda: f[7],
        cox: f[8],
        c_overlap: f[9],
        cj: f[10],
        cjsw: f[11],
        pb: f[12],
        mj: f[13],
        mjsw: f[14],
        l_min: f[15],
        w_min: f[16],
        l_diff: f[17],
        wire_r_sq: f[18],
        wire_c_area: f[19],
        wire_c_fringe: f[20],
    }
}

/// Identity of one characterized table: FNV-1a over the exact bit
/// patterns of every [`Technology`] field, the polarity, and the grid
/// step. Tables are pure functions of these inputs, so fingerprint
/// equality means the stored fits reproduce a fresh characterization
/// bit for bit.
pub fn tech_fingerprint(tech: &Technology, polarity: Polarity, step: f64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for v in tech_fields(tech) {
        mix(v.to_bits());
    }
    mix(match polarity {
        Polarity::Nmos => 0,
        Polarity::Pmos => 1,
    });
    mix(step.to_bits());
    h
}

// ---------------------------------------------------------------
// Primitive cursor encoders/decoders.
// ---------------------------------------------------------------

/// Append-only byte sink for record payloads.
#[derive(Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }

    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
        }
    }

    pub fn opt_str(&mut self, v: Option<&str>) {
        match v {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }
}

/// Bounds-checked read cursor over a record payload.
pub(crate) struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Dec<'a> {
    pub fn new(data: &'a [u8], context: &'static str) -> Self {
        Dec {
            data,
            pos: 0,
            context,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.data.len() - self.pos < n {
            return Err(bad(
                self.context,
                format!(
                    "truncated payload: wanted {n} bytes at {}, have {}",
                    self.pos,
                    self.data.len() - self.pos
                ),
            ));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn done(&self) -> Result<()> {
        if self.pos != self.data.len() {
            return Err(bad(
                self.context,
                format!("{} trailing bytes after payload", self.remaining()),
            ));
        }
        Ok(())
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| bad(self.context, format!("invalid utf-8 string: {e}")))
    }

    fn tag(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(bad(self.context, format!("invalid option tag {t}"))),
        }
    }

    pub fn opt_u64(&mut self) -> Result<Option<u64>> {
        Ok(if self.tag()? { Some(self.u64()?) } else { None })
    }

    pub fn opt_f64(&mut self) -> Result<Option<f64>> {
        Ok(if self.tag()? { Some(self.f64()?) } else { None })
    }

    pub fn opt_str(&mut self) -> Result<Option<String>> {
        Ok(if self.tag()? { Some(self.str()?) } else { None })
    }

    /// A declared element count, sanity-bounded by the bytes left
    /// (`min_elem_bytes` per element) so a corrupt length can never
    /// drive a huge allocation.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        let cap = self.remaining() / min_elem_bytes.max(1);
        if n > cap {
            return Err(bad(
                self.context,
                format!("element count {n} exceeds payload capacity {cap}"),
            ));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------
// Device tables.
// ---------------------------------------------------------------

/// One characterized device table plus its identity fingerprint.
#[derive(Debug, Clone)]
pub struct DeviceTableRecord {
    /// [`tech_fingerprint`] of (technology, polarity, step).
    pub fingerprint: u64,
    /// The characterized table.
    pub model: TableModel,
}

impl DeviceTableRecord {
    /// Builds the record for a table, fingerprinting its inputs.
    pub fn of(model: &TableModel) -> DeviceTableRecord {
        DeviceTableRecord {
            fingerprint: tech_fingerprint(model.tech(), model.polarity(), model.step()),
            model: model.clone(),
        }
    }

    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.u64(self.fingerprint);
        for v in tech_fields(self.model.tech()) {
            e.f64(v);
        }
        e.u8(match self.model.polarity() {
            Polarity::Nmos => 0,
            Polarity::Pmos => 1,
        });
        e.f64(self.model.step());
        let points = self.model.points();
        e.u32(points.len() as u32);
        for p in points {
            for v in [p.t0, p.t1, p.t2, p.s0, p.s1, p.vth, p.vdsat] {
                e.f64(v);
            }
        }
        e.finish()
    }

    pub(crate) fn decode(body: &[u8]) -> Result<DeviceTableRecord> {
        const CTX: &str = "device table";
        let mut d = Dec::new(body, CTX);
        let fingerprint = d.u64()?;
        let mut fields = [0.0f64; 21];
        for f in &mut fields {
            *f = d.f64()?;
        }
        let tech = tech_from_fields(&fields);
        let polarity = match d.u8()? {
            0 => Polarity::Nmos,
            1 => Polarity::Pmos,
            t => return Err(bad(CTX, format!("invalid polarity tag {t}"))),
        };
        let step = d.f64()?;
        let n = d.count(56)?;
        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            points.push(FitPoint {
                t0: d.f64()?,
                t1: d.f64()?,
                t2: d.f64()?,
                s0: d.f64()?,
                s1: d.f64()?,
                vth: d.f64()?,
                vdsat: d.f64()?,
            });
        }
        d.done()?;
        let model = TableModel::from_parts(tech, polarity, step, points)
            .map_err(|e| bad(CTX, e.to_string()))?;
        let want = tech_fingerprint(model.tech(), model.polarity(), model.step());
        if want != fingerprint {
            return Err(bad(
                CTX,
                format!("fingerprint mismatch: stored {fingerprint:#x}, computed {want:#x}"),
            ));
        }
        Ok(DeviceTableRecord { fingerprint, model })
    }
}

// ---------------------------------------------------------------
// Netlists.
// ---------------------------------------------------------------

pub(crate) fn encode_netlist(e: &mut Enc, nl: &Netlist) {
    e.u32(nl.net_count() as u32);
    for i in 0..nl.net_count() {
        e.str(nl.net_name(NetId(i)));
    }
    let devices = nl.devices();
    e.u32(devices.len() as u32);
    for d in devices {
        e.str(&d.name);
        e.u8(match d.kind {
            DeviceKind::Nmos => 0,
            DeviceKind::Pmos => 1,
            DeviceKind::Wire => 2,
        });
        e.opt_u64(d.gate.map(|g| g.0 as u64));
        e.u64(d.src.0 as u64);
        e.u64(d.snk.0 as u64);
        encode_geometry(e, &d.geom);
    }
    let caps: Vec<(usize, f64)> = (0..nl.net_count())
        .filter_map(|i| {
            let c = nl.cap(NetId(i));
            (c != 0.0).then_some((i, c))
        })
        .collect();
    e.u32(caps.len() as u32);
    for (net, cap) in caps {
        e.u64(net as u64);
        e.f64(cap);
    }
    e.u32(nl.primary_inputs().len() as u32);
    for pi in nl.primary_inputs() {
        e.u64(pi.0 as u64);
    }
    e.u32(nl.primary_outputs().len() as u32);
    for po in nl.primary_outputs() {
        e.u64(po.0 as u64);
    }
}

fn encode_geometry(e: &mut Enc, g: &Geometry) {
    e.f64(g.w);
    e.f64(g.l);
    e.opt_f64(g.area_src);
    e.opt_f64(g.perim_src);
    e.opt_f64(g.area_snk);
    e.opt_f64(g.perim_snk);
}

fn decode_geometry(d: &mut Dec<'_>) -> Result<Geometry> {
    let w = d.f64()?;
    let l = d.f64()?;
    let mut g = Geometry::new(w, l);
    g.area_src = d.opt_f64()?;
    g.perim_src = d.opt_f64()?;
    g.area_snk = d.opt_f64()?;
    g.perim_snk = d.opt_f64()?;
    Ok(g)
}

pub(crate) fn decode_netlist(d: &mut Dec<'_>) -> Result<Netlist> {
    const CTX: &str = "netlist";
    let net_count = d.count(5)?;
    if net_count < 2 {
        return Err(bad(
            CTX,
            format!("net count {net_count} < 2 (rails missing)"),
        ));
    }
    let mut names = Vec::with_capacity(net_count);
    for _ in 0..net_count {
        names.push(d.str()?);
    }
    if names[0] != "vdd" || names[1] != "gnd" {
        return Err(bad(
            CTX,
            format!(
                "rails out of place: net 0 {:?}, net 1 {:?}",
                names[0], names[1]
            ),
        ));
    }
    let mut nl = Netlist::new();
    for (i, name) in names.iter().enumerate().skip(2) {
        let id = nl.net(name);
        if id.0 != i {
            return Err(bad(
                CTX,
                format!("net {name:?} decoded to id {} instead of {i}", id.0),
            ));
        }
    }
    let net = |d: &mut Dec<'_>| -> Result<NetId> {
        let i = d.u64()? as usize;
        if i >= net_count {
            return Err(bad(CTX, format!("net id {i} out of range {net_count}")));
        }
        Ok(NetId(i))
    };
    let n_dev = d.count(30)?;
    for _ in 0..n_dev {
        let name = d.str()?;
        let kind = match d.u8()? {
            0 => DeviceKind::Nmos,
            1 => DeviceKind::Pmos,
            2 => DeviceKind::Wire,
            t => return Err(bad(CTX, format!("invalid device kind tag {t}"))),
        };
        let gate = match d.opt_u64()? {
            None => None,
            Some(g) => {
                let g = g as usize;
                if g >= net_count {
                    return Err(bad(CTX, format!("gate net {g} out of range {net_count}")));
                }
                Some(NetId(g))
            }
        };
        let src = net(d)?;
        let snk = net(d)?;
        let geom = decode_geometry(d)?;
        match kind {
            DeviceKind::Wire => {
                nl.add_wire(name, src, snk, geom.w, geom.l);
            }
            _ => {
                let gate = gate.ok_or_else(|| bad(CTX, "transistor without a gate net"))?;
                nl.add_transistor(name, kind, gate, src, snk, geom);
            }
        }
    }
    let n_caps = d.count(16)?;
    for _ in 0..n_caps {
        let n = net(d)?;
        let cap = d.f64()?;
        nl.set_cap(n, cap).map_err(|e| bad(CTX, e.to_string()))?;
    }
    let n_pi = d.count(8)?;
    for _ in 0..n_pi {
        let n = net(d)?;
        nl.add_primary_input(n);
    }
    let n_po = d.count(8)?;
    for _ in 0..n_po {
        let n = net(d)?;
        nl.add_primary_output(n);
    }
    Ok(nl)
}

// ---------------------------------------------------------------
// Commit snapshots.
// ---------------------------------------------------------------

/// One committed slot per net: `(arrival, slew, predecessor)`.
type BookSlot = Option<(f64, f64, Option<usize>)>;

fn encode_book(e: &mut Enc, book: &[BookSlot]) {
    e.u32(book.len() as u32);
    for slot in book {
        match slot {
            None => e.u8(0),
            Some((arr, slew, pred)) => {
                e.u8(1);
                e.f64(*arr);
                e.f64(*slew);
                e.opt_u64(pred.map(|p| p as u64));
            }
        }
    }
}

fn decode_book(d: &mut Dec<'_>) -> Result<Vec<BookSlot>> {
    let n = d.count(1)?;
    let mut book = Vec::with_capacity(n);
    for _ in 0..n {
        book.push(match d.u8()? {
            0 => None,
            1 => {
                let arr = d.f64()?;
                let slew = d.f64()?;
                let pred = d.opt_u64()?.map(|p| p as usize);
                Some((arr, slew, pred))
            }
            t => return Err(bad("commit book", format!("invalid commit slot tag {t}"))),
        });
    }
    Ok(book)
}

fn encode_commit(e: &mut Enc, s: &CommitSnapshot) {
    e.str(&s.evaluator);
    e.f64(s.input_slew);
    encode_book(e, &s.book);
}

fn decode_commit(d: &mut Dec<'_>) -> Result<CommitSnapshot> {
    Ok(CommitSnapshot {
        evaluator: d.str()?,
        input_slew: d.f64()?,
        book: decode_book(d)?,
    })
}

fn encode_corner_commit(e: &mut Enc, s: &CornerCommitSnapshot) {
    e.u32(s.corners.len() as u32);
    for c in &s.corners {
        e.str(c);
    }
    e.u32(s.evaluators.len() as u32);
    for ev in &s.evaluators {
        e.str(ev);
    }
    e.f64(s.input_slew);
    e.u32(s.books.len() as u32);
    for b in &s.books {
        encode_book(e, b);
    }
}

fn decode_corner_commit(d: &mut Dec<'_>) -> Result<CornerCommitSnapshot> {
    let nc = d.count(5)?;
    let mut corners = Vec::with_capacity(nc);
    for _ in 0..nc {
        corners.push(d.str()?);
    }
    let ne = d.count(5)?;
    let mut evaluators = Vec::with_capacity(ne);
    for _ in 0..ne {
        evaluators.push(d.str()?);
    }
    let input_slew = d.f64()?;
    let nb = d.count(5)?;
    let mut books = Vec::with_capacity(nb);
    for _ in 0..nb {
        books.push(decode_book(d)?);
    }
    Ok(CornerCommitSnapshot {
        corners,
        evaluators,
        input_slew,
        books,
    })
}

// ---------------------------------------------------------------
// Sessions.
// ---------------------------------------------------------------

/// Everything needed to rebuild one warm session: the parsed design,
/// the committed incremental state (single-corner and per-corner),
/// and the session metadata the protocol exposes.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// Session id.
    pub sid: String,
    /// Analyzed transition the engine was built for.
    pub direction: TransitionKind,
    /// The engine's seed input slew \[s\].
    pub input_slew: f64,
    /// Completed run count at snapshot time.
    pub runs: u64,
    /// Fallback budget: QWM retry count.
    pub qwm_retries: u64,
    /// Fallback budget: per-stage wall clock, nanoseconds.
    pub stage_wall_ns: Option<u64>,
    /// Last formatted report served (byte-exact).
    pub last_report: Option<String>,
    /// The parsed design.
    pub netlist: Netlist,
    /// Committed single-corner book, if any run committed one.
    pub committed: Option<CommitSnapshot>,
    /// Committed per-corner books, if a corner run committed them.
    pub committed_corners: Option<CornerCommitSnapshot>,
}

impl SessionSnapshot {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.str(&self.sid);
        e.u8(match self.direction {
            TransitionKind::Fall => 0,
            TransitionKind::Rise => 1,
        });
        e.f64(self.input_slew);
        e.u64(self.runs);
        e.u64(self.qwm_retries);
        e.opt_u64(self.stage_wall_ns);
        e.opt_str(self.last_report.as_deref());
        encode_netlist(&mut e, &self.netlist);
        match &self.committed {
            None => e.u8(0),
            Some(c) => {
                e.u8(1);
                encode_commit(&mut e, c);
            }
        }
        match &self.committed_corners {
            None => e.u8(0),
            Some(c) => {
                e.u8(1);
                encode_corner_commit(&mut e, c);
            }
        }
        e.finish()
    }

    pub(crate) fn decode(body: &[u8]) -> Result<SessionSnapshot> {
        const CTX: &str = "session snapshot";
        let mut d = Dec::new(body, CTX);
        let sid = d.str()?;
        let direction = match d.u8()? {
            0 => TransitionKind::Fall,
            1 => TransitionKind::Rise,
            t => return Err(bad(CTX, format!("invalid direction tag {t}"))),
        };
        let input_slew = d.f64()?;
        if !input_slew.is_finite() || input_slew < 0.0 {
            return Err(bad(CTX, format!("invalid input slew {input_slew}")));
        }
        let runs = d.u64()?;
        let qwm_retries = d.u64()?;
        let stage_wall_ns = d.opt_u64()?;
        let last_report = d.opt_str()?;
        let netlist = decode_netlist(&mut d)?;
        let committed = match d.u8()? {
            0 => None,
            1 => Some(decode_commit(&mut d)?),
            t => return Err(bad(CTX, format!("invalid committed tag {t}"))),
        };
        let committed_corners = match d.u8()? {
            0 => None,
            1 => Some(decode_corner_commit(&mut d)?),
            t => return Err(bad(CTX, format!("invalid corner tag {t}"))),
        };
        d.done()?;
        Ok(SessionSnapshot {
            sid,
            direction,
            input_slew,
            runs,
            qwm_retries,
            stage_wall_ns,
            last_report,
            netlist,
            committed,
            committed_corners,
        })
    }
}

pub(crate) fn encode_sid_text(sid: &str, text: &str) -> Vec<u8> {
    let mut e = Enc::default();
    e.str(sid);
    e.str(text);
    e.finish()
}

pub(crate) fn decode_sid_text(body: &[u8], context: &'static str) -> Result<(String, String)> {
    let mut d = Dec::new(body, context);
    let sid = d.str()?;
    let text = d.str()?;
    d.done()?;
    Ok((sid, text))
}

pub(crate) fn encode_sid(sid: &str) -> Vec<u8> {
    let mut e = Enc::default();
    e.str(sid);
    e.finish()
}

pub(crate) fn decode_sid(body: &[u8], context: &'static str) -> Result<String> {
    let mut d = Dec::new(body, context);
    let sid = d.str()?;
    d.done()?;
    Ok(sid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_tech_polarity_step() {
        let t35 = Technology::cmosp35();
        let t18 = Technology::cmos018();
        let base = tech_fingerprint(&t35, Polarity::Nmos, 0.1);
        assert_ne!(base, tech_fingerprint(&t18, Polarity::Nmos, 0.1));
        assert_ne!(base, tech_fingerprint(&t35, Polarity::Pmos, 0.1));
        assert_ne!(base, tech_fingerprint(&t35, Polarity::Nmos, 0.2));
        let varied = t35.with_variation(0.03, 0.0, 1.0, 1.0);
        assert_ne!(base, tech_fingerprint(&varied, Polarity::Nmos, 0.1));
        assert_eq!(
            base,
            tech_fingerprint(&Technology::cmosp35(), Polarity::Nmos, 0.1)
        );
    }

    #[test]
    fn device_table_roundtrips_bitwise() {
        let model = TableModel::characterize(Technology::cmosp35(), Polarity::Pmos, 0.55).unwrap();
        let rec = DeviceTableRecord::of(&model);
        let bytes = rec.encode();
        let back = DeviceTableRecord::decode(&bytes).unwrap();
        assert_eq!(back.fingerprint, rec.fingerprint);
        assert_eq!(back.model.grid_points(), model.grid_points());
        for (a, b) in model.points().iter().zip(back.model.points()) {
            assert_eq!(a.t0.to_bits(), b.t0.to_bits());
            assert_eq!(a.vdsat.to_bits(), b.vdsat.to_bits());
        }
        // Re-encoding the decoded record is byte-identical.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn corrupt_table_payload_is_a_codec_error() {
        let model = TableModel::characterize(Technology::cmosp35(), Polarity::Nmos, 0.55).unwrap();
        let mut bytes = DeviceTableRecord::of(&model).encode();
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(
            DeviceTableRecord::decode(&bytes),
            Err(StoreError::Codec { .. })
        ));
    }

    fn sample_netlist() -> Netlist {
        use qwm_device::Technology;
        let tech = Technology::cmosp35();
        let mut nl = qwm_sta::graph::inverter_chain(&tech, 3, 12e-15);
        let out = nl.find_net("n3").unwrap();
        nl.add_cap(out, 3.25e-15);
        nl
    }

    #[test]
    fn netlist_roundtrips_exactly() {
        let nl = sample_netlist();
        let mut e = Enc::default();
        encode_netlist(&mut e, &nl);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes, "netlist");
        let back = decode_netlist(&mut d).unwrap();
        d.done().unwrap();
        assert_eq!(back.net_count(), nl.net_count());
        for i in 0..nl.net_count() {
            assert_eq!(back.net_name(NetId(i)), nl.net_name(NetId(i)));
            assert_eq!(back.cap(NetId(i)).to_bits(), nl.cap(NetId(i)).to_bits());
        }
        assert_eq!(back.devices().len(), nl.devices().len());
        for (a, b) in nl.devices().iter().zip(back.devices()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.gate, b.gate);
            assert_eq!(a.geom.w.to_bits(), b.geom.w.to_bits());
        }
        assert_eq!(back.primary_inputs(), nl.primary_inputs());
        assert_eq!(back.primary_outputs(), nl.primary_outputs());
        back.validate().unwrap();
    }

    #[test]
    fn session_snapshot_roundtrips() {
        let snap = SessionSnapshot {
            sid: "s1".into(),
            direction: TransitionKind::Fall,
            input_slew: 20e-12,
            runs: 3,
            qwm_retries: 1,
            stage_wall_ns: Some(5_000_000),
            last_report: Some("worst arrival 1.23e-10\n".into()),
            netlist: sample_netlist(),
            committed: Some(CommitSnapshot {
                evaluator: "qwm".into(),
                input_slew: 20e-12,
                book: vec![
                    None,
                    Some((1.5e-10, 2.0e-11, Some(2))),
                    Some((0.0, 2.0e-11, None)),
                ],
            }),
            committed_corners: Some(CornerCommitSnapshot {
                corners: vec!["tt".into(), "ss".into()],
                evaluators: vec!["qwm".into(), "qwm".into()],
                input_slew: 20e-12,
                books: vec![vec![None; 3], vec![Some((1.0e-10, 1.0e-11, None)); 3]],
            }),
        };
        let bytes = snap.encode();
        let back = SessionSnapshot::decode(&bytes).unwrap();
        assert_eq!(back.sid, snap.sid);
        assert_eq!(back.runs, 3);
        assert_eq!(back.stage_wall_ns, Some(5_000_000));
        assert_eq!(back.last_report, snap.last_report);
        let c = back.committed.as_ref().unwrap();
        assert_eq!(c.evaluator, "qwm");
        assert_eq!(c.book[1], Some((1.5e-10, 2.0e-11, Some(2))));
        let cc = back.committed_corners.as_ref().unwrap();
        assert_eq!(cc.corners, vec!["tt", "ss"]);
        assert_eq!(cc.books.len(), 2);
        // Byte-stable re-encode.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn truncated_snapshot_is_a_codec_error() {
        let snap = SessionSnapshot {
            sid: "s1".into(),
            direction: TransitionKind::Rise,
            input_slew: 0.0,
            runs: 0,
            qwm_retries: 1,
            stage_wall_ns: None,
            last_report: None,
            netlist: sample_netlist(),
            committed: None,
            committed_corners: None,
        };
        let bytes = snap.encode();
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    SessionSnapshot::decode(&bytes[..cut]),
                    Err(StoreError::Codec { .. })
                ),
                "cut at {cut} must be a structured error"
            );
        }
    }
}
