//! The high-level design store the server drives.
//!
//! One [`DesignStore`] owns one record log (`qwm.store` inside the
//! configured directory) and interprets its records:
//!
//! | kind | record | semantics |
//! |---|---|---|
//! | 1 | device table | latest per fingerprint wins |
//! | 2 | session snapshot | replaces the session's prior snapshot and voids its logged edits |
//! | 3 | session edits | an edit script applied *after* the session's latest snapshot |
//! | 4 | session close | tombstone: the session is gone |
//!
//! Restore-on-boot is therefore: latest snapshot per live session,
//! plus the edit scripts logged after it (replayed to re-mark the
//! dirty cone). A session becomes durable at its first committed
//! run — edits before any snapshot have nothing to attach to and
//! are dropped on recovery, exactly like a never-run session.

use crate::codec::{
    decode_sid, decode_sid_text, encode_sid, encode_sid_text, DeviceTableRecord, SessionSnapshot,
    KIND_CLOSE, KIND_DEVICE_TABLE, KIND_EDITS, KIND_SNAPSHOT,
};
use crate::log::RecordLog;
use crate::{tech_fingerprint, Result, StoreError};
use qwm_device::table::TableModel;
use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};

/// File name of the record log inside the store directory.
pub const STORE_FILE: &str = "qwm.store";

/// One recoverable session: its latest snapshot plus the edit
/// scripts logged after it, in append order.
#[derive(Debug)]
pub struct RecoveredSession {
    /// The latest snapshot.
    pub snapshot: SessionSnapshot,
    /// Edit scripts (shared `resize`/`load`/`slew` grammar) appended
    /// after the snapshot; replaying them re-marks the dirty cone.
    pub edits: Vec<String>,
}

/// Everything [`DesignStore::open`] recovered from the log.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Characterized device tables, deduplicated by fingerprint.
    pub device_tables: Vec<TableModel>,
    /// Live sessions, ordered by session id for determinism.
    pub sessions: Vec<RecoveredSession>,
}

/// Point-in-time store counters for `store status` and the gauges.
#[derive(Debug, Clone)]
pub struct StoreStatus {
    /// The store directory.
    pub dir: PathBuf,
    /// Log file size in bytes.
    pub bytes: u64,
    /// Complete records in the log.
    pub records: u64,
    /// Snapshot records appended over this store's lifetime in the
    /// log (survivors at open, plus appends since).
    pub snapshots: u64,
    /// Sessions restored from this store at boot.
    pub restores: u64,
    /// Torn tails truncated when the log was opened (0 or 1).
    pub truncated_tails: u64,
    /// Distinct device-table fingerprints currently stored.
    pub device_tables: u64,
}

/// The durable design store: an open record log plus the indexes
/// needed to append without re-reading it.
#[derive(Debug)]
pub struct DesignStore {
    log: RecordLog,
    dir: PathBuf,
    table_index: HashSet<u64>,
    snapshots: u64,
    restores: u64,
}

impl DesignStore {
    /// Opens (creating if absent) the store in `dir` and replays its
    /// log into a [`RecoveredState`].
    ///
    /// # Errors
    ///
    /// Structured [`StoreError`] on I/O failure or corruption — a
    /// corrupted store must *open with an error*, never panic and
    /// never serve partial state silently. Torn tails recover.
    pub fn open(dir: &Path) -> Result<(DesignStore, RecoveredState)> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io("create_dir", e))?;
        let opened = RecordLog::open(&dir.join(STORE_FILE))?;
        let mut tables: BTreeMap<u64, TableModel> = BTreeMap::new();
        let mut sessions: BTreeMap<String, RecoveredSession> = BTreeMap::new();
        let mut snapshots = 0u64;
        for rec in &opened.records {
            match rec.kind {
                KIND_DEVICE_TABLE => {
                    let t = DeviceTableRecord::decode(&rec.body)?;
                    tables.insert(t.fingerprint, t.model);
                }
                KIND_SNAPSHOT => {
                    let snap = SessionSnapshot::decode(&rec.body)?;
                    snapshots += 1;
                    sessions.insert(
                        snap.sid.clone(),
                        RecoveredSession {
                            snapshot: snap,
                            edits: Vec::new(),
                        },
                    );
                }
                KIND_EDITS => {
                    let (sid, script) = decode_sid_text(&rec.body, "session edits")?;
                    if let Some(s) = sessions.get_mut(&sid) {
                        s.edits.push(script);
                    }
                }
                KIND_CLOSE => {
                    let sid = decode_sid(&rec.body, "session close")?;
                    sessions.remove(&sid);
                }
                other => {
                    return Err(StoreError::Codec {
                        context: "record",
                        detail: format!("unknown record kind {other}"),
                    });
                }
            }
        }
        let table_index: HashSet<u64> = tables.keys().copied().collect();
        let state = RecoveredState {
            device_tables: tables.into_values().collect(),
            sessions: sessions.into_values().collect(),
        };
        Ok((
            DesignStore {
                log: opened.log,
                dir: dir.to_path_buf(),
                table_index,
                snapshots,
                restores: 0,
            },
            state,
        ))
    }

    /// Appends every table whose fingerprint is not yet stored.
    /// Returns how many were appended (cheap no-op when none are new).
    ///
    /// # Errors
    ///
    /// Propagates log append failures.
    pub fn sync_tables(&mut self, tables: &[TableModel]) -> Result<usize> {
        let mut appended = 0;
        for t in tables {
            let fp = tech_fingerprint(t.tech(), t.polarity(), t.step());
            if self.table_index.contains(&fp) {
                continue;
            }
            let rec = DeviceTableRecord {
                fingerprint: fp,
                model: t.clone(),
            };
            self.log.append(KIND_DEVICE_TABLE, &rec.encode())?;
            self.table_index.insert(fp);
            appended += 1;
        }
        Ok(appended)
    }

    /// Appends a session snapshot (superseding the session's prior
    /// snapshot and voiding its logged edits on the next recovery).
    ///
    /// # Errors
    ///
    /// Propagates log append failures.
    pub fn append_snapshot(&mut self, snap: &SessionSnapshot) -> Result<()> {
        self.log.append(KIND_SNAPSHOT, &snap.encode())?;
        self.snapshots += 1;
        qwm_obs::counter!("store.snapshots").incr();
        Ok(())
    }

    /// Appends an edit script applied to `sid` after its latest
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Propagates log append failures.
    pub fn append_edits(&mut self, sid: &str, script: &str) -> Result<()> {
        self.log.append(KIND_EDITS, &encode_sid_text(sid, script))
    }

    /// Appends a close tombstone for `sid`.
    ///
    /// # Errors
    ///
    /// Propagates log append failures.
    pub fn append_close(&mut self, sid: &str) -> Result<()> {
        self.log.append(KIND_CLOSE, &encode_sid(sid))
    }

    /// Records that `n` sessions were restored from this store at
    /// boot (surfaced in [`StoreStatus`] and `store.restores`).
    pub fn note_restored(&mut self, n: u64) {
        self.restores += n;
        qwm_obs::counter!("store.restores").add(n);
    }

    /// Explicit compaction: rewrites the log keeping only live
    /// records — the latest device table per fingerprint, and for
    /// each un-closed session its latest snapshot plus subsequent
    /// edit scripts, in original append order.
    ///
    /// # Errors
    ///
    /// Propagates scan/rewrite failures; the log is replaced
    /// atomically (temp file + rename), so a failure leaves the
    /// original intact.
    pub fn compact(&mut self) -> Result<()> {
        let opened = RecordLog::open(self.log.path())?;
        // Pass 1: find the latest snapshot offset per live session
        // and the latest table record per fingerprint.
        let mut latest_table: BTreeMap<u64, usize> = BTreeMap::new();
        let mut latest_snapshot: BTreeMap<String, usize> = BTreeMap::new();
        for (i, rec) in opened.records.iter().enumerate() {
            match rec.kind {
                KIND_DEVICE_TABLE => {
                    let t = DeviceTableRecord::decode(&rec.body)?;
                    latest_table.insert(t.fingerprint, i);
                }
                KIND_SNAPSHOT => {
                    let snap = SessionSnapshot::decode(&rec.body)?;
                    latest_snapshot.insert(snap.sid, i);
                }
                KIND_CLOSE => {
                    let sid = decode_sid(&rec.body, "session close")?;
                    latest_snapshot.remove(&sid);
                }
                _ => {}
            }
        }
        let live_tables: HashSet<usize> = latest_table.values().copied().collect();
        // Pass 2: keep live records in original order.
        let mut keep: Vec<(u8, Vec<u8>)> = Vec::new();
        for (i, rec) in opened.records.iter().enumerate() {
            let live = match rec.kind {
                KIND_DEVICE_TABLE => live_tables.contains(&i),
                KIND_SNAPSHOT => latest_snapshot.values().any(|&s| s == i),
                KIND_EDITS => {
                    let (sid, _) = decode_sid_text(&rec.body, "session edits")?;
                    latest_snapshot.get(&sid).is_some_and(|&s| i > s)
                }
                KIND_CLOSE => false,
                _ => false,
            };
            if live {
                keep.push((rec.kind, rec.body.clone()));
            }
        }
        drop(opened);
        self.log.rewrite(&keep)?;
        self.snapshots = latest_snapshot.len() as u64;
        Ok(())
    }

    /// Current counters.
    pub fn status(&self) -> StoreStatus {
        StoreStatus {
            dir: self.dir.clone(),
            bytes: self.log.bytes(),
            records: self.log.records(),
            snapshots: self.snapshots,
            restores: self.restores,
            truncated_tails: self.log.truncated_tails(),
            device_tables: self.table_index.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qwm_circuit::waveform::TransitionKind;
    use qwm_device::model::Polarity;
    use qwm_device::Technology;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qwm-store-design-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn snap(sid: &str, runs: u64) -> SessionSnapshot {
        let tech = Technology::cmosp35();
        SessionSnapshot {
            sid: sid.into(),
            direction: TransitionKind::Fall,
            input_slew: 20e-12,
            runs,
            qwm_retries: 1,
            stage_wall_ns: None,
            last_report: Some(format!("report after run {runs}\n")),
            netlist: qwm_sta::graph::inverter_chain(&tech, 3, 10e-15),
            committed: None,
            committed_corners: None,
        }
    }

    // A coarse grid keeps table characterization fast in tests.
    fn table(step: f64) -> TableModel {
        TableModel::characterize(Technology::cmosp35(), Polarity::Nmos, step).unwrap()
    }

    #[test]
    fn snapshot_edit_close_lifecycle_recovers() {
        let dir = tmp("lifecycle");
        {
            let (mut store, state) = DesignStore::open(&dir).unwrap();
            assert!(state.sessions.is_empty());
            store.sync_tables(&[table(1.1)]).unwrap();
            store.append_snapshot(&snap("a", 1)).unwrap();
            store.append_edits("a", "resize MN2 1.2u\n").unwrap();
            store.append_snapshot(&snap("b", 1)).unwrap();
            store.append_edits("b", "load n2 20f\n").unwrap();
            store.append_snapshot(&snap("b", 2)).unwrap(); // supersedes, voids the edit
            store.append_edits("b", "slew 40\n").unwrap();
            store.append_snapshot(&snap("c", 1)).unwrap();
            store.append_close("c").unwrap();
        }
        let (store, state) = DesignStore::open(&dir).unwrap();
        assert_eq!(state.device_tables.len(), 1);
        assert_eq!(state.sessions.len(), 2, "c was closed");
        let a = &state.sessions[0];
        assert_eq!(a.snapshot.sid, "a");
        assert_eq!(a.edits, vec!["resize MN2 1.2u\n"]);
        let b = &state.sessions[1];
        assert_eq!(b.snapshot.runs, 2);
        assert_eq!(b.edits, vec!["slew 40\n"], "pre-snapshot edit voided");
        let st = store.status();
        assert_eq!(st.snapshots, 4);
        assert_eq!(st.truncated_tails, 0);
        assert_eq!(st.device_tables, 1);
    }

    #[test]
    fn sync_tables_dedupes_by_fingerprint() {
        let dir = tmp("dedupe");
        let (mut store, _) = DesignStore::open(&dir).unwrap();
        let t = table(1.1);
        assert_eq!(store.sync_tables(std::slice::from_ref(&t)).unwrap(), 1);
        assert_eq!(store.sync_tables(std::slice::from_ref(&t)).unwrap(), 0);
        let other = table(0.55);
        assert_eq!(store.sync_tables(&[t, other]).unwrap(), 1);
        // The dedupe index survives a reopen.
        drop(store);
        let (mut store, state) = DesignStore::open(&dir).unwrap();
        assert_eq!(state.device_tables.len(), 2);
        assert_eq!(store.sync_tables(&[table(1.1)]).unwrap(), 0);
    }

    #[test]
    fn compaction_drops_dead_records_and_preserves_state() {
        let dir = tmp("compact");
        let (mut store, _) = DesignStore::open(&dir).unwrap();
        store.sync_tables(&[table(1.1)]).unwrap();
        for run in 1..=5 {
            store.append_snapshot(&snap("a", run)).unwrap();
            store.append_edits("a", &format!("slew {run}\n")).unwrap();
        }
        store.append_snapshot(&snap("dead", 1)).unwrap();
        store.append_close("dead").unwrap();
        let before = store.status();
        store.compact().unwrap();
        let after = store.status();
        assert!(after.bytes < before.bytes);
        // 1 table + a's latest snapshot + its one post-snapshot edit.
        assert_eq!(after.records, 3);
        let (_, state) = DesignStore::open(&dir).unwrap();
        assert_eq!(state.sessions.len(), 1);
        assert_eq!(state.sessions[0].snapshot.runs, 5);
        assert_eq!(state.sessions[0].edits, vec!["slew 5\n"]);
        assert_eq!(state.device_tables.len(), 1);
    }

    #[test]
    fn corrupted_store_opens_with_structured_error() {
        let dir = tmp("corrupt");
        {
            let (mut store, _) = DesignStore::open(&dir).unwrap();
            store.append_snapshot(&snap("a", 1)).unwrap();
            store.append_snapshot(&snap("b", 1)).unwrap();
        }
        let path = dir.join(STORE_FILE);
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 3;
        data[mid] ^= 0x10;
        std::fs::write(&path, &data).unwrap();
        let err = DesignStore::open(&dir).expect_err("corruption must surface");
        let msg = err.to_string();
        assert!(msg.contains("store"), "structured message, got: {msg}");
    }
}
