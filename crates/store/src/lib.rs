//! # qwm-store — the durable design store
//!
//! Everything that makes a warm `qwm serve` fast is expensive to
//! rebuild: characterized device tables (34×34 grid fits per
//! polarity per corner), parsed netlists, and the per-net commit
//! books the incremental flow early-stops against. This crate
//! persists exactly that state in an append-only, checksummed,
//! single-file record log so a killed-and-restarted server answers
//! its first query via the dirty-cone incremental path with reports
//! bitwise-identical to a never-restarted reference (DESIGN.md §17).
//!
//! Layers, bottom up:
//!
//! * [`log`] — the framed record log: fixed header (magic +
//!   version), per-record CRC-32 + length framing, torn-tail
//!   truncation on open, explicit compaction. Knows nothing about
//!   timing.
//! * [`codec`] — the versioned binary codec for the domain records:
//!   netlists, single-corner and per-corner commit snapshots,
//!   session metadata, and characterized device tables keyed by a
//!   technology fingerprint.
//! * [`DesignStore`] — the high-level API the server drives:
//!   `open` replays the log into a [`RecoveredState`],
//!   `append_*` persist new state, `compact` rewrites the log
//!   keeping only live records.
//!
//! Zero external dependencies, like every other crate in the
//! workspace; durability is plain `write_all` + flush (crash-safety
//! targets process death, not power loss).

pub mod codec;
pub mod design;
pub mod log;

pub use codec::{tech_fingerprint, DeviceTableRecord, SessionSnapshot};
pub use design::{DesignStore, RecoveredSession, RecoveredState, StoreStatus};
pub use log::{RecordLog, MAX_RECORD};

use std::fmt;

/// Structured failure of any store operation. Corruption is always
/// an error, never a panic and never silently bad data; the one
/// sanctioned data loss is torn-tail truncation on open (the
/// append-in-flight-at-kill case), which is counted, not erred.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io {
        /// Operation that failed (open/read/write/rename/...).
        op: &'static str,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file does not start with the `QWMSTORE` magic.
    BadMagic,
    /// The header version is not one this build can read.
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// A fully-contained record failed validation (CRC mismatch,
    /// unknown kind, malformed payload).
    Corrupt {
        /// Byte offset of the offending record's frame.
        offset: u64,
        /// What exactly failed.
        detail: String,
    },
    /// A record frame declared a zero-length payload.
    ZeroLength {
        /// Byte offset of the offending frame.
        offset: u64,
    },
    /// A record frame declared a payload larger than [`MAX_RECORD`].
    Oversized {
        /// Byte offset of the offending frame.
        offset: u64,
        /// The declared payload length.
        len: u64,
    },
    /// A domain payload failed to decode or re-validate.
    Codec {
        /// Which record kind was being decoded.
        context: &'static str,
        /// What exactly failed.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, source } => write!(f, "store io ({op}): {source}"),
            StoreError::BadMagic => write!(f, "store: bad magic (not a QWMSTORE file)"),
            StoreError::BadVersion { found } => {
                write!(f, "store: unsupported format version {found}")
            }
            StoreError::Corrupt { offset, detail } => {
                write!(f, "store: corrupt record at offset {offset}: {detail}")
            }
            StoreError::ZeroLength { offset } => {
                write!(f, "store: zero-length record at offset {offset}")
            }
            StoreError::Oversized { offset, len } => write!(
                f,
                "store: oversized record at offset {offset}: {len} bytes exceeds the \
                 {MAX_RECORD}-byte cap"
            ),
            StoreError::Codec { context, detail } => {
                write!(f, "store: {context} payload: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StoreError {
    pub(crate) fn io(op: &'static str, source: std::io::Error) -> Self {
        StoreError::Io { op, source }
    }
}

/// Store-level result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
