//! The append-only checksummed record log — the durability substrate.
//!
//! One file, one writer. Layout:
//!
//! ```text
//! offset 0   8 bytes   magic  b"QWMSTORE"
//! offset 8   4 bytes   format version, u32 LE (currently 1)
//! offset 12  records   [u32 LE len][u32 LE crc][payload: len bytes]
//! ```
//!
//! `payload[0]` is the record kind; `crc` is CRC-32 (IEEE) over the
//! whole payload, kind byte included. `len` counts the payload only,
//! must be at least 1 (the kind byte) and at most [`MAX_RECORD`].
//!
//! # Recovery contract
//!
//! [`RecordLog::open`] scans the whole file once:
//!
//! * an *incomplete* record at EOF — a frame header with fewer than
//!   `len` payload bytes behind it, or fewer than 8 trailing bytes —
//!   is a **torn tail** (an append was in flight when the process
//!   died): the file is truncated back to the last complete record
//!   and the event counted, never erred;
//! * a CRC mismatch on the **final** complete record is treated the
//!   same way (a torn write can fill the full declared length with
//!   garbage), so the tail rule has no blind spot;
//! * everything else — CRC mismatch on an interior record, a
//!   zero-length frame, an oversized frame — is a structured
//!   [`StoreError`], never a panic and never silently skipped data.

use crate::{Result, StoreError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Largest accepted record payload (64 MiB). A frame declaring more
/// is corruption by definition — the biggest legitimate record (a
/// characterized device table) is under 100 KiB.
pub const MAX_RECORD: u64 = 64 * 1024 * 1024;

const MAGIC: &[u8; 8] = b"QWMSTORE";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 12;
const FRAME_LEN: u64 = 8;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// One complete record read back from the log.
#[derive(Debug, Clone)]
pub struct Record {
    /// Record kind (`payload[0]`).
    pub kind: u8,
    /// Payload after the kind byte.
    pub body: Vec<u8>,
}

/// The log plus every complete record it held at open time.
#[derive(Debug)]
pub struct OpenLog {
    /// The log, positioned for appending.
    pub log: RecordLog,
    /// All complete records, in append order.
    pub records: Vec<Record>,
}

/// An open record log positioned at its end, ready to append.
#[derive(Debug)]
pub struct RecordLog {
    file: File,
    path: PathBuf,
    bytes: u64,
    records: u64,
    truncated_tails: u64,
}

impl RecordLog {
    /// Opens (creating if absent) and replays the log at `path`,
    /// applying the recovery contract above.
    ///
    /// # Errors
    ///
    /// Structured [`StoreError`] on I/O failure, bad magic/version,
    /// or interior corruption. Torn tails recover, they don't err.
    pub fn open(path: &Path) -> Result<OpenLog> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StoreError::io("open", e))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)
            .map_err(|e| StoreError::io("read", e))?;
        if data.is_empty() {
            file.write_all(MAGIC)
                .map_err(|e| StoreError::io("write", e))?;
            file.write_all(&VERSION.to_le_bytes())
                .map_err(|e| StoreError::io("write", e))?;
            file.flush().map_err(|e| StoreError::io("flush", e))?;
            return Ok(OpenLog {
                log: RecordLog {
                    file,
                    path: path.to_path_buf(),
                    bytes: HEADER_LEN,
                    records: 0,
                    truncated_tails: 0,
                },
                records: Vec::new(),
            });
        }
        if data.len() < HEADER_LEN as usize || &data[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(StoreError::BadVersion { found: version });
        }

        let mut records = Vec::new();
        let mut offset = HEADER_LEN;
        let total = data.len() as u64;
        let mut truncate_at: Option<u64> = None;
        while offset < total {
            if total - offset < FRAME_LEN {
                truncate_at = Some(offset);
                break;
            }
            let o = offset as usize;
            let len = u32::from_le_bytes(data[o..o + 4].try_into().expect("4 bytes")) as u64;
            let crc = u32::from_le_bytes(data[o + 4..o + 8].try_into().expect("4 bytes"));
            if len == 0 {
                return Err(StoreError::ZeroLength { offset });
            }
            if len > MAX_RECORD {
                return Err(StoreError::Oversized { offset, len });
            }
            if total - offset - FRAME_LEN < len {
                truncate_at = Some(offset);
                break;
            }
            let payload = &data[o + FRAME_LEN as usize..o + FRAME_LEN as usize + len as usize];
            if crc32(payload) != crc {
                let is_last = offset + FRAME_LEN + len == total;
                if is_last {
                    // A torn write can fill the declared length with
                    // garbage; the tail record is the only one an
                    // in-flight append can half-write.
                    truncate_at = Some(offset);
                    break;
                }
                return Err(StoreError::Corrupt {
                    offset,
                    detail: format!("crc mismatch ({crc:#010x} stored)"),
                });
            }
            records.push(Record {
                kind: payload[0],
                body: payload[1..].to_vec(),
            });
            offset += FRAME_LEN + len;
        }

        let mut truncated_tails = 0;
        let end = match truncate_at {
            Some(at) => {
                file.set_len(at)
                    .map_err(|e| StoreError::io("truncate", e))?;
                truncated_tails = 1;
                qwm_obs::counter!("store.truncated_tails").incr();
                at
            }
            None => total,
        };
        file.seek(SeekFrom::Start(end))
            .map_err(|e| StoreError::io("seek", e))?;
        Ok(OpenLog {
            log: RecordLog {
                file,
                path: path.to_path_buf(),
                bytes: end,
                records: records.len() as u64,
                truncated_tails,
            },
            records,
        })
    }

    /// Appends one record (kind byte + body), flushing to the OS so
    /// the bytes survive process death.
    ///
    /// # Errors
    ///
    /// Rejects an oversized body; propagates I/O failures.
    pub fn append(&mut self, kind: u8, body: &[u8]) -> Result<()> {
        let len = 1 + body.len() as u64;
        if len > MAX_RECORD {
            return Err(StoreError::Oversized {
                offset: self.bytes,
                len,
            });
        }
        let mut payload = Vec::with_capacity(len as usize);
        payload.push(kind);
        payload.extend_from_slice(body);
        let crc = crc32(&payload);
        let mut frame = Vec::with_capacity((FRAME_LEN + len) as usize);
        frame.extend_from_slice(&(len as u32).to_le_bytes());
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| StoreError::io("write", e))?;
        self.file.flush().map_err(|e| StoreError::io("flush", e))?;
        self.bytes += frame.len() as u64;
        self.records += 1;
        qwm_obs::counter!("store.records").incr();
        qwm_obs::counter!("store.bytes").add(frame.len() as u64);
        Ok(())
    }

    /// Atomically replaces the log's contents with `records`
    /// (compaction): writes a sibling temp file, fsyncs it, renames
    /// it over the log, and repositions for appending.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the original log is untouched unless
    /// the rename succeeded.
    pub fn rewrite(&mut self, records: &[(u8, Vec<u8>)]) -> Result<()> {
        let tmp = self.path.with_extension("compact");
        let mut out = File::create(&tmp).map_err(|e| StoreError::io("create", e))?;
        out.write_all(MAGIC)
            .map_err(|e| StoreError::io("write", e))?;
        out.write_all(&VERSION.to_le_bytes())
            .map_err(|e| StoreError::io("write", e))?;
        let mut bytes = HEADER_LEN;
        for (kind, body) in records {
            let mut payload = Vec::with_capacity(1 + body.len());
            payload.push(*kind);
            payload.extend_from_slice(body);
            let crc = crc32(&payload);
            out.write_all(&(payload.len() as u32).to_le_bytes())
                .map_err(|e| StoreError::io("write", e))?;
            out.write_all(&crc.to_le_bytes())
                .map_err(|e| StoreError::io("write", e))?;
            out.write_all(&payload)
                .map_err(|e| StoreError::io("write", e))?;
            bytes += FRAME_LEN + payload.len() as u64;
        }
        out.sync_all().map_err(|e| StoreError::io("sync", e))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| StoreError::io("rename", e))?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| StoreError::io("open", e))?;
        file.seek(SeekFrom::Start(bytes))
            .map_err(|e| StoreError::io("seek", e))?;
        self.file = file;
        self.bytes = bytes;
        self.records = records.len() as u64;
        Ok(())
    }

    /// Current file size in bytes (header + frames).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Complete records currently in the file.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Torn tails truncated by [`RecordLog::open`] (0 or 1).
    pub fn truncated_tails(&self) -> u64 {
        self.truncated_tails
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qwm-store-log-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("qwm.store")
    }

    #[test]
    fn crc_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn roundtrip_and_reopen() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut open = RecordLog::open(&path).unwrap();
        assert_eq!(open.log.records(), 0);
        open.log.append(1, b"alpha").unwrap();
        open.log.append(2, b"").unwrap();
        open.log.append(3, &[0xff; 1000]).unwrap();
        let reopened = RecordLog::open(&path).unwrap();
        assert_eq!(reopened.log.records(), 3);
        assert_eq!(reopened.log.truncated_tails(), 0);
        assert_eq!(reopened.records[0].kind, 1);
        assert_eq!(reopened.records[0].body, b"alpha");
        assert_eq!(reopened.records[1].kind, 2);
        assert!(reopened.records[1].body.is_empty());
        assert_eq!(reopened.records[2].body.len(), 1000);
    }

    #[test]
    fn torn_tail_truncates_cleanly() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let mut open = RecordLog::open(&path).unwrap();
        open.log.append(1, b"keep me").unwrap();
        open.log.append(2, b"torn away").unwrap();
        let full = std::fs::read(&path).unwrap();
        // Chop mid-way through the second record's payload.
        std::fs::write(&path, &full[..full.len() - 4]).unwrap();
        let reopened = RecordLog::open(&path).unwrap();
        assert_eq!(reopened.log.truncated_tails(), 1);
        assert_eq!(reopened.records.len(), 1);
        assert_eq!(reopened.records[0].body, b"keep me");
        // The truncation is durable: a third open sees a clean file.
        let again = RecordLog::open(&path).unwrap();
        assert_eq!(again.log.truncated_tails(), 0);
        assert_eq!(again.records.len(), 1);
    }

    #[test]
    fn interior_corruption_is_a_structured_error() {
        let path = tmp("interior");
        let _ = std::fs::remove_file(&path);
        let mut open = RecordLog::open(&path).unwrap();
        open.log.append(1, b"first record").unwrap();
        open.log.append(2, b"second record").unwrap();
        let mut data = std::fs::read(&path).unwrap();
        // Flip a payload bit of the *first* record.
        data[HEADER_LEN as usize + FRAME_LEN as usize + 3] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        match RecordLog::open(&path) {
            Err(StoreError::Corrupt { offset, .. }) => assert_eq!(offset, HEADER_LEN),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn tail_crc_mismatch_recovers_as_torn() {
        let path = tmp("tailcrc");
        let _ = std::fs::remove_file(&path);
        let mut open = RecordLog::open(&path).unwrap();
        open.log.append(1, b"first record").unwrap();
        open.log.append(2, b"last record").unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 2] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        let reopened = RecordLog::open(&path).unwrap();
        assert_eq!(reopened.log.truncated_tails(), 1);
        assert_eq!(reopened.records.len(), 1);
    }

    #[test]
    fn zero_and_oversized_frames_err() {
        let path = tmp("frames");
        let _ = std::fs::remove_file(&path);
        let mut open = RecordLog::open(&path).unwrap();
        open.log.append(1, b"victim").unwrap();
        let data = std::fs::read(&path).unwrap();
        let mut zeroed = data.clone();
        zeroed[HEADER_LEN as usize..HEADER_LEN as usize + 4].fill(0);
        std::fs::write(&path, &zeroed).unwrap();
        assert!(matches!(
            RecordLog::open(&path),
            Err(StoreError::ZeroLength { .. })
        ));
        let mut huge = data.clone();
        huge[HEADER_LEN as usize..HEADER_LEN as usize + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &huge).unwrap();
        assert!(matches!(
            RecordLog::open(&path),
            Err(StoreError::Oversized { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_err() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTASTORE-file").unwrap();
        assert!(matches!(RecordLog::open(&path), Err(StoreError::BadMagic)));
        let mut hdr = Vec::new();
        hdr.extend_from_slice(MAGIC);
        hdr.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &hdr).unwrap();
        assert!(matches!(
            RecordLog::open(&path),
            Err(StoreError::BadVersion { found: 99 })
        ));
    }

    #[test]
    fn rewrite_compacts_and_stays_readable() {
        let path = tmp("rewrite");
        let _ = std::fs::remove_file(&path);
        let mut open = RecordLog::open(&path).unwrap();
        for i in 0..10u8 {
            open.log.append(i, &[i; 64]).unwrap();
        }
        let before = open.log.bytes();
        open.log
            .rewrite(&[(7, vec![7; 64]), (9, vec![9; 64])])
            .unwrap();
        assert!(open.log.bytes() < before);
        assert_eq!(open.log.records(), 2);
        // Appends after a rewrite land after the compacted records.
        open.log.append(11, b"after compaction").unwrap();
        let reopened = RecordLog::open(&path).unwrap();
        assert_eq!(reopened.records.len(), 3);
        assert_eq!(reopened.records[0].kind, 7);
        assert_eq!(reopened.records[2].body, b"after compaction");
    }
}
