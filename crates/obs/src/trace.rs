//! Per-query hierarchical traces and hot-arc attribution.
//!
//! The flat [`crate::span!`] layer aggregates wall time by *path*; this
//! module records individual *events* with explicit parent ids so a
//! single server query can be reconstructed as a tree (accept →
//! admission wait → levelize → level → stage → arc → evaluator rung)
//! even when the work crosses `qwm-exec` worker threads.
//!
//! Design constraints, in order:
//!
//! * **Tracing off is free.** Every entry point is gated on one relaxed
//!   atomic load ([`enabled`]); no clocks, no allocation, no locks.
//! * **Tracing on is bounded.** Records go into a fixed pool of
//!   fixed-capacity ring buffers (allocated once, on first enable).
//!   Pushing a record claims a slot with one `fetch_add` and fills it
//!   through a per-slot `try_lock` that never blocks: a slot contended
//!   by a concurrent reader is simply skipped (the record it would have
//!   displaced was about to be overwritten anyway). Nothing on the hot
//!   path allocates or waits.
//! * **Parent ids are explicit.** A [`TraceGuard`] stamps records with
//!   the ambient parent from a thread-local; [`adopt`] re-installs a
//!   captured parent on a worker thread so the tree survives the
//!   `run_dag` thread crossing.
//!
//! Rings are shared by every traced query in the process; collection
//! ([`take_tree`]) filters by reachability from the query's root id.
//! The rings are a *window*, not an archive: a query whose records were
//! overwritten before collection yields a partial tree. Callers collect
//! immediately after the traced region ends, which in practice keeps
//! the window loss at zero.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Rings in the pool; worker threads are assigned round-robin.
const RING_COUNT: usize = 16;
/// Records per ring. The pool window is `RING_COUNT * RING_CAP`.
const RING_CAP: usize = 4096;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_RING: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Ambient parent id for new records (0 = no parent).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// This thread's assigned ring (lazily claimed).
    static RING_IDX: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Table-lookup time accrued since the last [`take_lookup_ns`].
    static LOOKUP_NS: Cell<u64> = const { Cell::new(0) };
    /// Rung note left by the innermost evaluator ladder: (rung, retries).
    static RUNG: Cell<Option<(&'static str, u64)>> = const { Cell::new(None) };
}

/// True when tracing is collecting. One relaxed atomic load — this is
/// the entire tracing-off cost of every instrumentation site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Switches tracing on or off (process-wide). The ring pool is
/// allocated on the first enable and reused afterwards.
pub fn set_enabled(on: bool) {
    if on {
        rings();
        epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Drops every buffered record (registration survives; the rings are
/// reused). Safe to call while tracing is live; a no-op (no
/// allocation) when tracing has never been enabled.
pub fn clear() {
    if !RINGS_BUILT.load(Ordering::Acquire) {
        return;
    }
    for r in rings() {
        r.head.store(0, Ordering::Relaxed);
    }
}

/// The ambient parent id on this thread (0 when tracing is off or no
/// guard is live). Capture before handing work to another thread, then
/// [`adopt`] it there.
#[inline]
pub fn current() -> u64 {
    if !enabled() {
        return 0;
    }
    CURRENT.get()
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn since_epoch(t: Instant) -> u64 {
    t.checked_duration_since(epoch())
        .unwrap_or(Duration::ZERO)
        .as_nanos() as u64
}

/// What a [`TraceRecord`] describes; drives rendering and aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A plain timing scope.
    Span,
    /// A per-stage scope: `meta = [stage id, level, 0]`. The renderer
    /// groups consecutive stage children under `level N` headers.
    Stage,
    /// One evaluated timing arc: `meta = [stage id, lookup ns,
    /// retries]`, `detail` names the rung that landed, `dur_ns` is the
    /// solve time.
    Arc,
}

impl TraceKind {
    fn label(self) -> &'static str {
        match self {
            TraceKind::Span => "span",
            TraceKind::Stage => "stage",
            TraceKind::Arc => "arc",
        }
    }
}

/// One trace event. `start_ns` is relative to the process trace epoch
/// (first enable), so records order consistently across threads.
#[derive(Debug, Clone, Copy)]
pub struct TraceRecord {
    /// Unique id (process-wide, never 0 for a real record).
    pub id: u64,
    /// Parent record id (0 = root).
    pub parent: u64,
    /// Record kind; fixes the meaning of `meta`/`detail`.
    pub kind: TraceKind,
    /// Static site name (`server.run`, `sta.stage`, …).
    pub name: &'static str,
    /// Kind-specific qualifier (the landed rung for arcs).
    pub detail: &'static str,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (solve time for arcs).
    pub dur_ns: u64,
    /// Kind-specific payload; see [`TraceKind`].
    pub meta: [u64; 3],
    /// Corner the record belongs to (batched multi-corner runs);
    /// empty for single-corner work.
    pub corner: &'static str,
}

const EMPTY: TraceRecord = TraceRecord {
    id: 0,
    parent: 0,
    kind: TraceKind::Span,
    name: "",
    detail: "",
    start_ns: 0,
    dur_ns: 0,
    meta: [0; 3],
    corner: "",
};

struct Ring {
    /// Total pushes ever; `min(head, RING_CAP)` slots are live.
    head: AtomicU64,
    slots: Vec<Mutex<TraceRecord>>,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            head: AtomicU64::new(0),
            slots: (0..RING_CAP).map(|_| Mutex::new(EMPTY)).collect(),
        }
    }

    fn push(&self, rec: TraceRecord) {
        let h = self.head.fetch_add(1, Ordering::Relaxed) as usize;
        // Never block: a slot held by a concurrent snapshot is skipped —
        // the record it held was due for overwrite regardless.
        if let Ok(mut slot) = self.slots[h % RING_CAP].try_lock() {
            *slot = rec;
        }
    }

    fn snapshot(&self, out: &mut Vec<TraceRecord>) {
        let live = (self.head.load(Ordering::Relaxed) as usize).min(RING_CAP);
        for slot in &self.slots[..live] {
            if let Ok(s) = slot.try_lock() {
                if s.id != 0 {
                    out.push(*s);
                }
            }
        }
    }
}

static RINGS_BUILT: AtomicBool = AtomicBool::new(false);

fn rings() -> &'static [Ring] {
    static RINGS: OnceLock<Vec<Ring>> = OnceLock::new();
    RINGS.get_or_init(|| {
        let r: Vec<Ring> = (0..RING_COUNT).map(|_| Ring::new()).collect();
        RINGS_BUILT.store(true, Ordering::Release);
        r
    })
}

fn my_ring() -> &'static Ring {
    let idx = RING_IDX.get();
    let idx = if idx == usize::MAX {
        let i = NEXT_RING.fetch_add(1, Ordering::Relaxed) % RING_COUNT;
        RING_IDX.set(i);
        i
    } else {
        idx
    };
    &rings()[idx]
}

fn push(rec: TraceRecord) {
    my_ring().push(rec);
}

/// RAII scope producing one [`TraceKind::Span`] (or [`TraceKind::Stage`])
/// record on drop, parented to the ambient id, and installing itself as
/// the ambient parent for the duration.
pub struct TraceGuard {
    state: Option<GuardState>,
    // Restoring CURRENT on another thread would corrupt the ambient
    // parent there; keep the guard on the thread that entered it.
    _not_send: std::marker::PhantomData<*const ()>,
}

struct GuardState {
    start: Instant,
    id: u64,
    prev: u64,
    kind: TraceKind,
    name: &'static str,
    meta: [u64; 3],
}

impl TraceGuard {
    /// Enters a span scope (inert when tracing is off).
    pub fn enter(name: &'static str) -> TraceGuard {
        Self::enter_kind(name, TraceKind::Span, [0; 3])
    }

    /// Enters a per-stage scope; `meta = [stage, level, 0]`.
    pub fn enter_stage(name: &'static str, stage: u64, level: u64) -> TraceGuard {
        Self::enter_kind(name, TraceKind::Stage, [stage, level, 0])
    }

    fn enter_kind(name: &'static str, kind: TraceKind, meta: [u64; 3]) -> TraceGuard {
        if !enabled() {
            return TraceGuard {
                state: None,
                _not_send: std::marker::PhantomData,
            };
        }
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT.replace(id);
        TraceGuard {
            state: Some(GuardState {
                start: Instant::now(),
                id,
                prev,
                kind,
                name,
                meta,
            }),
            _not_send: std::marker::PhantomData,
        }
    }

    /// The record id this guard will emit (0 when inert). Hand it to
    /// [`take_tree`] after the guard drops.
    pub fn id(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.id)
    }

    /// Replaces the record's meta payload (e.g. stats only known at the
    /// end of the scope).
    pub fn set_meta(&mut self, meta: [u64; 3]) {
        if let Some(s) = &mut self.state {
            s.meta = meta;
        }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let Some(s) = self.state.take() else { return };
        CURRENT.set(s.prev);
        push(TraceRecord {
            id: s.id,
            parent: s.prev,
            kind: s.kind,
            name: s.name,
            detail: "",
            start_ns: since_epoch(s.start),
            dur_ns: s.start.elapsed().as_nanos() as u64,
            meta: s.meta,
            corner: "",
        });
    }
}

/// Restores the previous ambient parent on drop; see [`adopt`].
pub struct AdoptGuard {
    prev: Option<u64>,
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Installs `parent` as this thread's ambient parent so records made
/// here attach to a tree rooted on another thread. Inert when tracing
/// is off or `parent` is 0.
pub fn adopt(parent: u64) -> AdoptGuard {
    if !enabled() || parent == 0 {
        return AdoptGuard {
            prev: None,
            _not_send: std::marker::PhantomData,
        };
    }
    AdoptGuard {
        prev: Some(CURRENT.replace(parent)),
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.set(prev);
        }
    }
}

/// Records a span whose start/duration were measured externally (e.g.
/// admission wait anchored before the tracing scope existed). Inert
/// when tracing is off or `parent` is 0.
pub fn record_manual(name: &'static str, parent: u64, start: Instant, dur: Duration) {
    if !enabled() || parent == 0 {
        return;
    }
    push(TraceRecord {
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        parent,
        kind: TraceKind::Span,
        name,
        detail: "",
        start_ns: since_epoch(start),
        dur_ns: dur.as_nanos() as u64,
        meta: [0; 3],
        corner: "",
    });
}

/// Records one evaluated arc under the ambient parent: the rung that
/// landed, solve wall time, table-lookup time attributed via
/// [`LookupTimer`], and ladder retries.
pub fn record_arc(stage: u64, rung: &'static str, start: Instant, lookup_ns: u64, retries: u64) {
    record_corner_arc(stage, "", rung, start, lookup_ns, retries);
}

/// Like [`record_arc`] but tags the arc with the corner it was evaluated
/// at; batched multi-corner sweeps use this so the trace tree shows one
/// record per `(arc, corner)` pair.
pub fn record_corner_arc(
    stage: u64,
    corner: &'static str,
    rung: &'static str,
    start: Instant,
    lookup_ns: u64,
    retries: u64,
) {
    if !enabled() {
        return;
    }
    push(TraceRecord {
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        parent: CURRENT.get(),
        kind: TraceKind::Arc,
        name: "sta.arc",
        detail: rung,
        start_ns: since_epoch(start),
        dur_ns: start.elapsed().as_nanos() as u64,
        meta: [stage, lookup_ns, retries],
        corner,
    });
}

/// Leaves a rung note for the enclosing arc recorder: which rung the
/// evaluator ladder landed on and how many retries it burned. Called by
/// the fallback ladder; read (and cleared) by [`take_rung`] in the STA
/// engine right after the evaluator returns, on the same thread.
pub fn note_rung(rung: &'static str, retries: u64) {
    if !enabled() {
        return;
    }
    RUNG.set(Some((rung, retries)));
}

/// Takes the pending rung note, if any.
pub fn take_rung() -> Option<(&'static str, u64)> {
    if !enabled() {
        return None;
    }
    RUNG.take()
}

/// Takes the table-lookup nanoseconds accrued on this thread since the
/// previous call. The STA engine brackets each evaluator call with a
/// take-before / take-after pair to attribute lookups to the arc.
pub fn take_lookup_ns() -> u64 {
    if !enabled() {
        return 0;
    }
    LOOKUP_NS.replace(0)
}

/// Times one table lookup and adds it to the thread's accumulator on
/// drop. Construct via [`time_lookup`]; inert (no clock read) when
/// tracing is off.
pub struct LookupTimer {
    start: Option<Instant>,
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Starts timing a table lookup (inert when tracing is off).
#[inline]
pub fn time_lookup() -> LookupTimer {
    LookupTimer {
        start: enabled().then(Instant::now),
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for LookupTimer {
    fn drop(&mut self) {
        if let Some(t0) = self.start.take() {
            let ns = t0.elapsed().as_nanos() as u64;
            LOOKUP_NS.set(LOOKUP_NS.get().saturating_add(ns));
        }
    }
}

/// A reconstructed per-query trace: the records reachable from `root`,
/// sorted by start time.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// Root record id.
    pub root: u64,
    /// Reachable records (including the root), ordered by
    /// `(start_ns, id)`.
    pub records: Vec<TraceRecord>,
}

/// Collects the tree rooted at `root` from the ring pool. Call after
/// the root guard has dropped. Records already overwritten by ring
/// wrap-around are absent (the tree is then partial).
pub fn take_tree(root: u64) -> TraceTree {
    let mut all = Vec::new();
    if root != 0 && RINGS_BUILT.load(Ordering::Acquire) {
        for r in rings() {
            r.snapshot(&mut all);
        }
    }
    // Reachability from the root via parent links.
    let mut keep: Vec<TraceRecord> = Vec::new();
    let mut frontier = vec![root];
    let mut reachable = std::collections::HashSet::new();
    reachable.insert(root);
    while let Some(p) = frontier.pop() {
        for rec in &all {
            if rec.parent == p && !reachable.contains(&rec.id) {
                reachable.insert(rec.id);
                frontier.push(rec.id);
            }
        }
    }
    for rec in all {
        if reachable.contains(&rec.id) {
            keep.push(rec);
        }
    }
    keep.sort_by_key(|r| (r.start_ns, r.id));
    TraceTree {
        root,
        records: keep,
    }
}

fn fmt_us(ns: u64) -> String {
    format!("{:.1}us", ns as f64 / 1_000.0)
}

impl TraceTree {
    /// True when nothing (not even the root) was collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Renders the tree as indented text. Stage records are grouped
    /// under `level N` headers; arcs show the landed rung and the
    /// solve/lookup split.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if let Some(root) = self.records.iter().find(|r| r.id == self.root) {
            self.render_node(root, 0, &mut out);
        } else {
            out.push_str("(no trace recorded)\n");
        }
        out
    }

    fn children_of(&self, id: u64) -> Vec<&TraceRecord> {
        self.records
            .iter()
            .filter(|r| r.parent == id && r.id != id)
            .collect()
    }

    fn render_node(&self, rec: &TraceRecord, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match rec.kind {
            TraceKind::Span => {
                out.push_str(&format!("{pad}{} {}", rec.name, fmt_us(rec.dur_ns)));
                if rec.meta != [0; 3] {
                    out.push_str(&format!(
                        " meta=[{},{},{}]",
                        rec.meta[0], rec.meta[1], rec.meta[2]
                    ));
                }
                out.push('\n');
            }
            TraceKind::Stage => {
                out.push_str(&format!(
                    "{pad}stage {} {}\n",
                    rec.meta[0],
                    fmt_us(rec.dur_ns)
                ));
            }
            TraceKind::Arc => {
                out.push_str(&format!(
                    "{pad}arc stage={} rung={} solve={} lookup={} retries={}",
                    rec.meta[0],
                    rec.detail,
                    fmt_us(rec.dur_ns),
                    fmt_us(rec.meta[1]),
                    rec.meta[2]
                ));
                if !rec.corner.is_empty() {
                    out.push_str(&format!(" corner={}", rec.corner));
                }
                out.push('\n');
                return; // arcs are leaves
            }
        }
        let children = self.children_of(rec.id);
        let stages: Vec<&&TraceRecord> = children
            .iter()
            .filter(|c| c.kind == TraceKind::Stage)
            .collect();
        if stages.is_empty() {
            for c in &children {
                self.render_node(c, depth + 1, out);
            }
            return;
        }
        // Non-stage children first (levelize etc.), then stages grouped
        // by level, ascending.
        for c in children.iter().filter(|c| c.kind != TraceKind::Stage) {
            self.render_node(c, depth + 1, out);
        }
        let mut levels: Vec<u64> = stages.iter().map(|s| s.meta[1]).collect();
        levels.sort_unstable();
        levels.dedup();
        let cpad = "  ".repeat(depth + 1);
        for lvl in levels {
            let members: Vec<&&&TraceRecord> = stages.iter().filter(|s| s.meta[1] == lvl).collect();
            let n = members.len();
            out.push_str(&format!(
                "{cpad}level {lvl} ({n} stage{})\n",
                if n == 1 { "" } else { "s" }
            ));
            for s in members {
                self.render_node(s, depth + 2, out);
            }
        }
    }

    /// Renders the tree as one JSON object per line (`"type":"trace"`),
    /// suitable for `qwm obs-report`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!(
                "{{\"type\":\"trace\",\"id\":{},\"parent\":{},\"kind\":\"{}\",\"name\":\"{}\",\"detail\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"m0\":{},\"m1\":{},\"m2\":{}",
                r.id,
                r.parent,
                r.kind.label(),
                crate::render::json_escape(r.name),
                crate::render::json_escape(r.detail),
                r.start_ns,
                r.dur_ns,
                r.meta[0],
                r.meta[1],
                r.meta[2]
            ));
            if !r.corner.is_empty() {
                out.push_str(&format!(
                    ",\"corner\":\"{}\"",
                    crate::render::json_escape(r.corner)
                ));
            }
            out.push_str("}\n");
        }
        out
    }
}

/// One row of the hot-arc profile: an `(stage, rung)` pair aggregated
/// over every arc record still in the ring window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Stage id.
    pub stage: u64,
    /// Landed rung name.
    pub rung: &'static str,
    /// Arc records aggregated.
    pub count: u64,
    /// Total solve nanoseconds.
    pub solve_ns: u64,
    /// Largest single solve.
    pub max_ns: u64,
    /// Total attributed table-lookup nanoseconds.
    pub lookup_ns: u64,
    /// Total ladder retries.
    pub retries: u64,
}

/// Aggregates every arc record in the ring window into `(stage, rung)`
/// rows, most expensive (by total solve time) first; ties break on
/// ascending stage then rung so the output is deterministic.
pub fn profile_entries() -> Vec<ProfileEntry> {
    let mut all = Vec::new();
    if RINGS_BUILT.load(Ordering::Acquire) {
        for r in rings() {
            r.snapshot(&mut all);
        }
    }
    let mut agg: std::collections::HashMap<(u64, &'static str), ProfileEntry> =
        std::collections::HashMap::new();
    for rec in all {
        if rec.kind != TraceKind::Arc {
            continue;
        }
        let e = agg
            .entry((rec.meta[0], rec.detail))
            .or_insert(ProfileEntry {
                stage: rec.meta[0],
                rung: rec.detail,
                count: 0,
                solve_ns: 0,
                max_ns: 0,
                lookup_ns: 0,
                retries: 0,
            });
        e.count += 1;
        e.solve_ns += rec.dur_ns;
        e.max_ns = e.max_ns.max(rec.dur_ns);
        e.lookup_ns += rec.meta[1];
        e.retries += rec.meta[2];
    }
    let mut rows: Vec<ProfileEntry> = agg.into_values().collect();
    rows.sort_by(|a, b| {
        b.solve_ns
            .cmp(&a.solve_ns)
            .then(a.stage.cmp(&b.stage))
            .then(a.rung.cmp(b.rung))
    });
    rows
}

/// Renders the top-`k` hot-arc table.
pub fn profile_top(k: usize) -> String {
    let rows = profile_entries();
    let total = rows.len();
    let mut out = format!(
        "hot arcs by total solve time ({total} arc/rung pair{} in window, top {})\n",
        if total == 1 { "" } else { "s" },
        k.min(total)
    );
    out.push_str(&format!(
        "{:>4}  {:>5}  {:<14} {:>6}  {:>12}  {:>10}  {:>10}  {:>7}\n",
        "rank", "stage", "rung", "count", "solve_us", "max_us", "lookup_us", "retries"
    ));
    for (i, e) in rows.iter().take(k).enumerate() {
        out.push_str(&format!(
            "{:>4}  {:>5}  {:<14} {:>6}  {:>12.1}  {:>10.1}  {:>10.1}  {:>7}\n",
            i + 1,
            e.stage,
            e.rung,
            e.count,
            e.solve_ns as f64 / 1_000.0,
            e.max_ns as f64 / 1_000.0,
            e.lookup_ns as f64 / 1_000.0,
            e.retries
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state (enable flag, rings) is process-global; serialize
    // the tests that toggle it.
    fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(true);
        clear();
        g
    }

    #[test]
    fn guards_build_parent_links_and_trees() {
        let _g = trace_lock();
        let root_id;
        {
            let root = TraceGuard::enter("t.root");
            root_id = root.id();
            assert_ne!(root_id, 0);
            {
                let _mid = TraceGuard::enter("t.mid");
                let _leaf = TraceGuard::enter_stage("t.stage", 7, 2);
                record_arc(7, "qwm", Instant::now(), 11, 1);
            }
        }
        let tree = take_tree(root_id);
        assert_eq!(tree.records.len(), 4);
        let root = tree.records.iter().find(|r| r.id == root_id).unwrap();
        assert_eq!(root.parent, 0);
        let arc = tree
            .records
            .iter()
            .find(|r| r.kind == TraceKind::Arc)
            .unwrap();
        assert_eq!(arc.detail, "qwm");
        assert_eq!(arc.meta, [7, 11, 1]);
        let text = tree.render_text();
        assert!(text.contains("t.root"), "{text}");
        assert!(text.contains("level 2 (1 stage)"), "{text}");
        assert!(text.contains("rung=qwm"), "{text}");
        for line in tree.render_json().lines() {
            assert!(line.starts_with("{\"type\":\"trace\""), "{line}");
        }
    }

    #[test]
    fn adopt_carries_context_across_threads() {
        let _g = trace_lock();
        let root_id;
        {
            let root = TraceGuard::enter("t.xthread");
            root_id = root.id();
            let ctx = current();
            assert_eq!(ctx, root_id);
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _a = adopt(ctx);
                    let _child = TraceGuard::enter("t.worker");
                });
            });
        }
        let tree = take_tree(root_id);
        let worker = tree.records.iter().find(|r| r.name == "t.worker").unwrap();
        assert_eq!(worker.parent, root_id);
    }

    #[test]
    fn disabled_records_nothing_and_costs_no_ids() {
        let _g = trace_lock();
        set_enabled(false);
        {
            let g = TraceGuard::enter("t.off");
            assert_eq!(g.id(), 0);
            assert_eq!(current(), 0);
            record_arc(1, "qwm", Instant::now(), 0, 0);
            let _t = time_lookup();
        }
        assert_eq!(take_lookup_ns(), 0);
        set_enabled(true);
        // Nothing from the disabled window is in the rings.
        assert!(profile_entries().is_empty());
    }

    #[test]
    fn profile_aggregates_by_stage_and_rung() {
        let _g = trace_lock();
        let t0 = Instant::now();
        record_arc(3, "qwm", t0, 100, 0);
        record_arc(3, "qwm", t0, 50, 0);
        record_arc(4, "spice-fixed", t0, 0, 2);
        let rows = profile_entries();
        assert_eq!(rows.len(), 2);
        let qwm = rows.iter().find(|r| r.rung == "qwm").unwrap();
        assert_eq!(qwm.count, 2);
        assert_eq!(qwm.lookup_ns, 150);
        let table = profile_top(10);
        assert!(table.contains("spice-fixed"), "{table}");
    }

    #[test]
    fn ring_wrap_is_bounded_and_lossy_not_fatal() {
        let _g = trace_lock();
        let t0 = Instant::now();
        for i in 0..(RING_CAP as u64 * 2) {
            record_arc(i % 5, "qwm", t0, 0, 0);
        }
        let rows = profile_entries();
        let total: u64 = rows.iter().map(|r| r.count).sum();
        assert!(total <= (RING_COUNT * RING_CAP) as u64);
        assert!(total >= RING_CAP as u64 / 2, "window kept too little");
    }

    #[test]
    fn lookup_timer_accumulates_per_thread() {
        let _g = trace_lock();
        {
            let _t = time_lookup();
            std::hint::black_box(0u64);
        }
        let ns = take_lookup_ns();
        // A clock pair ran; elapsed may legitimately round to zero on
        // coarse clocks, but the accumulator must reset either way.
        let _ = ns;
        assert_eq!(take_lookup_ns(), 0);
    }
}
