//! Structured warn/error events — the replacement for ad-hoc stderr
//! prints. Events carry a what-identifier plus free-form key/value
//! fields (stage id, node, time, error text) and are buffered in a
//! bounded ring for the report; in JSON mode they are also streamed to
//! stderr as they happen.

use crate::render::{json_escape, json_number};
use crate::{enabled, registry, ObsMode};
use std::fmt::Display;

/// Bounded event ring size: old events are dropped, the per-level
/// counters keep the true totals.
pub(crate) const EVENT_BUFFER_CAP: usize = 256;

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Degraded-but-continuing conditions (e.g. a waveform evaluation
    /// that was skipped).
    Warn,
    /// Hard failures worth surfacing even after the run completes.
    Error,
}

impl Level {
    pub(crate) fn label(self) -> &'static str {
        match self {
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A recorded structured event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Stable identifier of the emitting site (e.g.
    /// `"sta.run_waveform.eval_failed"`).
    pub what: &'static str,
    /// Key/value payload in emission order.
    pub fields: Vec<(&'static str, String)>,
}

impl Event {
    pub(crate) fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"type\":\"event\",\"level\":\"{}\",\"what\":\"{}\"",
            self.level.label(),
            json_escape(self.what)
        );
        for (k, v) in &self.fields {
            s.push_str(&format!(",\"{}\":{}", json_escape(k), json_number(v)));
        }
        s.push('}');
        s
    }
}

/// Builder returned by [`warn`]/[`error`]. Inert (no allocation) while
/// the layer is disabled.
#[must_use = "call .emit() to record the event"]
pub struct EventBuilder {
    event: Option<Event>,
}

impl EventBuilder {
    fn new(level: Level, what: &'static str) -> EventBuilder {
        if !enabled() {
            return EventBuilder { event: None };
        }
        EventBuilder {
            event: Some(Event {
                level,
                what,
                fields: Vec::new(),
            }),
        }
    }

    /// Attaches a key/value field.
    pub fn field(mut self, key: &'static str, value: impl Display) -> EventBuilder {
        if let Some(e) = &mut self.event {
            e.fields.push((key, value.to_string()));
        }
        self
    }

    /// Records the event: bumps the per-level counter, appends to the
    /// bounded ring, and streams a JSON line to stderr in JSON mode.
    pub fn emit(self) {
        let Some(event) = self.event else { return };
        match event.level {
            Level::Warn => crate::counter!("obs.events.warn").incr(),
            Level::Error => crate::counter!("obs.events.error").incr(),
        }
        if crate::mode() == ObsMode::Json {
            eprintln!("{}", event.to_json());
        }
        let mut ring = registry().events.lock().expect("obs registry");
        if ring.len() == EVENT_BUFFER_CAP {
            ring.pop_front();
        }
        ring.push_back(event);
    }
}

/// Starts a warn-level structured event.
pub fn warn(what: &'static str) -> EventBuilder {
    EventBuilder::new(Level::Warn, what)
}

/// Starts an error-level structured event.
pub fn error(what: &'static str) -> EventBuilder {
    EventBuilder::new(Level::Error, what)
}
