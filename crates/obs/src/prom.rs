//! Prometheus-style text exposition of the metric registry.
//!
//! [`render_prom`] walks every registered counter and histogram and
//! emits the classic text format: `# TYPE` headers, cumulative
//! `_bucket{le="..."}` samples from the explicit bucket bounds, and
//! `_sum`/`_count` per histogram. Metric names are sanitised to the
//! Prometheus charset (dots become underscores) and prefixed `qwm_`;
//! counters additionally get the conventional `_total` suffix. Flat
//! span aggregates export as `qwm_span_latency_ns` with the path as a
//! `path` label so one family covers every span.
//!
//! [`check_exposition`] is a small line-format validator used by the
//! test suite (and available to callers) to keep the output inside the
//! exposition grammar without an external dependency.

use crate::registry;
use std::sync::atomic::Ordering;

/// Maps a registry metric name onto the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixing `qwm_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("qwm_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn push_histogram(
    out: &mut String,
    family: &str,
    extra_label: Option<(&str, &str)>,
    bounds: &[u64],
    buckets: &[u64],
    sum: u64,
    count: u64,
) {
    let label = |le: &str| -> String {
        match extra_label {
            Some((k, v)) => format!("{{{}=\"{}\",le=\"{}\"}}", k, escape_label(v), le),
            None => format!("{{le=\"{}\"}}", le),
        }
    };
    let plain = match extra_label {
        Some((k, v)) => format!("{{{}=\"{}\"}}", k, escape_label(v)),
        None => String::new(),
    };
    let mut cum = 0u64;
    for (i, &b) in bounds.iter().enumerate() {
        cum += buckets[i];
        out.push_str(&format!("{family}_bucket{} {cum}\n", label(&b.to_string())));
    }
    out.push_str(&format!("{family}_bucket{} {count}\n", label("+Inf")));
    out.push_str(&format!("{family}_sum{plain} {sum}\n"));
    out.push_str(&format!("{family}_count{plain} {count}\n"));
}

/// Renders every registered counter and histogram as Prometheus text
/// exposition. Deterministic: families are emitted in lexicographic
/// name order.
pub fn render_prom() -> String {
    let reg = registry();
    let mut out = String::new();

    let mut counters: Vec<(&'static str, u64)> = reg
        .counters
        .lock()
        .expect("obs registry")
        .iter()
        .map(|c| (c.name, c.value.load(Ordering::Relaxed)))
        .collect();
    counters.sort_by_key(|&(name, _)| name);
    for (name, value) in counters {
        let fam = sanitize(name) + "_total";
        out.push_str(&format!("# TYPE {fam} counter\n{fam} {value}\n"));
    }

    let mut gauges: Vec<(&'static str, u64)> = reg
        .gauges
        .lock()
        .expect("obs registry")
        .iter()
        .map(|g| (g.name, g.value.load(Ordering::Relaxed)))
        .collect();
    gauges.sort_by_key(|&(name, _)| name);
    for (name, value) in gauges {
        let fam = sanitize(name);
        out.push_str(&format!("# TYPE {fam} gauge\n{fam} {value}\n"));
    }

    struct Hist {
        name: &'static str,
        bounds: &'static [u64],
        buckets: Vec<u64>,
        sum: u64,
        count: u64,
    }
    let hists: Vec<Hist> = reg
        .histograms
        .lock()
        .expect("obs registry")
        .iter()
        .map(|h| Hist {
            name: h.name,
            bounds: h.bounds,
            buckets: h
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: h.sum.load(Ordering::Relaxed),
            count: h.count.load(Ordering::Relaxed),
        })
        .collect();

    // Flat span aggregates share one family with a `path` label.
    let mut spans: Vec<&Hist> = hists
        .iter()
        .filter(|h| h.name.starts_with("span:"))
        .collect();
    spans.sort_by_key(|h| h.name);
    if !spans.is_empty() {
        out.push_str("# TYPE qwm_span_latency_ns histogram\n");
        for h in spans {
            let path = &h.name["span:".len()..];
            push_histogram(
                &mut out,
                "qwm_span_latency_ns",
                Some(("path", path)),
                h.bounds,
                &h.buckets,
                h.sum,
                h.count,
            );
        }
    }

    let mut plain: Vec<&Hist> = hists
        .iter()
        .filter(|h| !h.name.starts_with("span:"))
        .collect();
    plain.sort_by_key(|h| h.name);
    for h in plain {
        let fam = sanitize(h.name);
        out.push_str(&format!("# TYPE {fam} histogram\n"));
        push_histogram(&mut out, &fam, None, h.bounds, &h.buckets, h.sum, h.count);
    }
    out
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Splits `name{labels}` into the name and the raw label body (without
/// braces), validating label syntax (`k="v"`, comma-separated).
fn split_labels(sample: &str) -> Result<&str, String> {
    let Some(open) = sample.find('{') else {
        return Ok(sample);
    };
    if !sample.ends_with('}') {
        return Err(format!("unterminated label set in `{sample}`"));
    }
    let body = &sample[open + 1..sample.len() - 1];
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without `=` in `{{{body}}}`"))?;
        let key = &rest[..eq];
        if !valid_label_name(key) {
            return Err(format!("bad label name `{key}`"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("label `{key}` value is not quoted"));
        }
        // Scan the quoted value, honouring backslash escapes.
        let bytes = after.as_bytes();
        let mut i = 1;
        let mut closed = None;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    closed = Some(i);
                    break;
                }
                _ => i += 1,
            }
        }
        let Some(end) = closed else {
            return Err(format!("unterminated value for label `{key}`"));
        };
        rest = &after[end + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return Err(format!("expected `,` between labels in `{{{body}}}`"));
        }
    }
    Ok(&sample[..open])
}

/// Validates Prometheus text-exposition lines: every `# TYPE`/`# HELP`
/// comment is well-formed, every sample is `name[{labels}] value`, and
/// every sample belongs to a family announced by a preceding `# TYPE`.
///
/// # Errors
///
/// Returns the first offending line with a reason.
pub fn check_exposition(text: &str) -> Result<(), String> {
    let mut families: Vec<String> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let ctx = |why: String| format!("line {}: {why}", ln + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            let kw = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            let tail = parts.next().unwrap_or("");
            match kw {
                "TYPE" => {
                    if !valid_metric_name(name) {
                        return Err(ctx(format!("bad TYPE metric name `{name}`")));
                    }
                    if !matches!(
                        tail,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(ctx(format!("bad TYPE kind `{tail}`")));
                    }
                    families.push(name.to_string());
                }
                "HELP" => {
                    if !valid_metric_name(name) {
                        return Err(ctx(format!("bad HELP metric name `{name}`")));
                    }
                }
                _ => return Err(ctx(format!("unknown comment keyword `{kw}`"))),
            }
            continue;
        }
        let Some(sp) = line.rfind(' ') else {
            return Err(ctx("sample line without a value".to_string()));
        };
        let (sample, value) = (&line[..sp], &line[sp + 1..]);
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(ctx(format!("bad sample value `{value}`")));
        }
        let name = split_labels(sample).map_err(ctx)?;
        if !valid_metric_name(name) {
            return Err(ctx(format!("bad sample metric name `{name}`")));
        }
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if !families.iter().any(|f| f == family || f == name) {
            return Err(ctx(format!("sample `{name}` precedes its # TYPE header")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_dots_to_underscores() {
        assert_eq!(sanitize("sta.arc.cache_hits"), "qwm_sta_arc_cache_hits");
    }

    #[test]
    fn checker_accepts_canonical_exposition() {
        let text = "# TYPE a_total counter\na_total 3\n\
                    # TYPE b histogram\nb_bucket{le=\"10\"} 1\nb_bucket{le=\"+Inf\"} 2\nb_sum 11\nb_count 2\n";
        check_exposition(text).unwrap();
    }

    #[test]
    fn checker_rejects_malformed_lines() {
        assert!(check_exposition("no_type_header 1\n").is_err());
        assert!(check_exposition("# TYPE x counter\nx\n").is_err());
        assert!(check_exposition("# TYPE x counter\nx notanumber\n").is_err());
        assert!(check_exposition("# TYPE 9bad counter\n").is_err());
        assert!(check_exposition("# TYPE x counter\nx{le=\"1} 2\n").is_err());
        assert!(check_exposition("# BOGUS x counter\n").is_err());
    }
}
