//! Loud, unified environment-variable parsing.
//!
//! Every `QWM_*` knob in the workspace reads its variable through this
//! module so that a malformed value is **never** a silent fallback: the
//! caller either gets a hard [`EnvParseError`] (via [`read_env`]) or the
//! process emits a structured warn event *and* an unconditional stderr
//! line before the documented default applies (via [`parse_or_warn`]).

use crate::warn;

/// A named, structured description of a malformed environment variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvParseError {
    /// Variable name, e.g. `QWM_THREADS`.
    pub name: String,
    /// The raw value found in the environment.
    pub raw: String,
    /// Why it failed to parse.
    pub reason: String,
}

impl std::fmt::Display for EnvParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed {}={:?}: {}", self.name, self.raw, self.reason)
    }
}

impl std::error::Error for EnvParseError {}

/// Reads `name` and parses it with `parse`.
///
/// - unset (or set to the empty string) → `Ok(None)`
/// - parses cleanly → `Ok(Some(value))`
/// - anything else → `Err(EnvParseError)` — the hard-error path for
///   call sites that can propagate failure.
pub fn read_env<T>(
    name: &str,
    parse: impl FnOnce(&str) -> Result<T, String>,
) -> Result<Option<T>, EnvParseError> {
    let raw = match std::env::var(name) {
        Ok(v) => v,
        Err(_) => return Ok(None),
    };
    if raw.is_empty() {
        return Ok(None);
    }
    match parse(&raw) {
        Ok(v) => Ok(Some(v)),
        Err(reason) => Err(EnvParseError {
            name: name.to_string(),
            raw,
            reason,
        }),
    }
}

/// Reads `name` with `parse`; on a malformed value, reports it loudly
/// (see [`report_malformed`]) and returns `None` so the caller applies
/// `default_desc` — the documented default it must name.
pub fn parse_or_warn<T>(
    name: &str,
    default_desc: &str,
    parse: impl FnOnce(&str) -> Result<T, String>,
) -> Option<T> {
    match read_env(name, parse) {
        Ok(v) => v,
        Err(e) => {
            report_malformed(&e, default_desc);
            None
        }
    }
}

/// Emits the never-silent malformed-variable report: a structured warn
/// event (when the obs layer is collecting) plus an unconditional
/// stderr line (so the report survives even with `QWM_OBS=off`).
pub fn report_malformed(e: &EnvParseError, default_desc: &str) {
    warn("env.malformed")
        .field("name", &e.name)
        .field("raw", &e.raw)
        .field("reason", &e.reason)
        .field("default", default_desc)
        .emit();
    eprintln!("qwm: {e}; using default ({default_desc})");
}

/// Parser for strictly positive integers (`QWM_THREADS`-style knobs).
pub fn positive_usize(s: &str) -> Result<usize, String> {
    match s.trim().parse::<usize>() {
        Ok(0) => Err("must be a positive integer, got 0".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err("must be a positive integer".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global; serialize these tests.
    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unset_and_empty_are_none() {
        let _g = env_lock();
        std::env::remove_var("QWM_TEST_ENV_A");
        assert_eq!(read_env("QWM_TEST_ENV_A", positive_usize), Ok(None));
        std::env::set_var("QWM_TEST_ENV_A", "");
        assert_eq!(read_env("QWM_TEST_ENV_A", positive_usize), Ok(None));
        std::env::remove_var("QWM_TEST_ENV_A");
    }

    #[test]
    fn valid_value_parses() {
        let _g = env_lock();
        std::env::set_var("QWM_TEST_ENV_B", " 7 ");
        assert_eq!(read_env("QWM_TEST_ENV_B", positive_usize), Ok(Some(7)));
        std::env::remove_var("QWM_TEST_ENV_B");
    }

    #[test]
    fn malformed_value_is_a_named_error() {
        let _g = env_lock();
        for bad in ["zero", "0", "-3", "4.5"] {
            std::env::set_var("QWM_TEST_ENV_C", bad);
            let err = read_env("QWM_TEST_ENV_C", positive_usize).unwrap_err();
            assert_eq!(err.name, "QWM_TEST_ENV_C");
            assert_eq!(err.raw, bad);
            assert!(err.to_string().contains("QWM_TEST_ENV_C"), "{err}");
        }
        std::env::remove_var("QWM_TEST_ENV_C");
    }

    #[test]
    fn parse_or_warn_returns_none_and_reports() {
        let _g = env_lock();
        std::env::set_var("QWM_TEST_ENV_D", "not-a-number");
        assert_eq!(
            parse_or_warn("QWM_TEST_ENV_D", "default of 4", positive_usize),
            None
        );
        std::env::remove_var("QWM_TEST_ENV_D");
    }
}
