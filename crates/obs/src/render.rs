//! Rendering the registry: a human-readable table or line-oriented
//! JSON.

use crate::{registry, ObsMode};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Field values that look like finite numbers are emitted bare; all
/// other values are quoted strings.
pub(crate) fn json_number(v: &str) -> String {
    let numeric = v.parse::<f64>().map(|x| x.is_finite()).unwrap_or(false)
        && v.starts_with(|c: char| c.is_ascii_digit() || c == '-');
    if numeric {
        v.to_string()
    } else {
        format!("\"{}\"", json_escape(v))
    }
}

fn ns_fmt(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the registry in the given mode ([`ObsMode::Off`] renders an
/// empty string).
pub fn render(mode: ObsMode) -> String {
    match mode {
        ObsMode::Off => String::new(),
        ObsMode::Summary => render_summary(),
        ObsMode::Json => render_json(),
    }
}

fn render_summary() -> String {
    let reg = registry();
    let mut out = String::new();
    out.push_str("=== qwm-obs telemetry ===\n");

    let mut counters: Vec<(&'static str, u64)> = reg
        .counters
        .lock()
        .expect("obs registry")
        .iter()
        .map(|c| (c.name, c.value.load(Ordering::Relaxed)))
        .filter(|&(_, v)| v > 0)
        .collect();
    counters.sort_by_key(|&(n, _)| n);
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in counters {
            let _ = writeln!(out, "  {name:<48} {v:>12}");
        }
    }

    let mut gauges: Vec<(&'static str, u64)> = reg
        .gauges
        .lock()
        .expect("obs registry")
        .iter()
        .map(|g| (g.name, g.value.load(Ordering::Relaxed)))
        .filter(|&(_, v)| v > 0)
        .collect();
    gauges.sort_by_key(|&(n, _)| n);
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in gauges {
            let _ = writeln!(out, "  {name:<48} {v:>12}");
        }
    }

    let mut hists: Vec<_> = reg
        .histograms
        .lock()
        .expect("obs registry")
        .iter()
        .filter(|h| !h.name.starts_with("span:"))
        .filter_map(|h| h.summary().map(|s| (h.name, s)))
        .collect();
    hists.sort_by_key(|&(n, _)| n);
    if !hists.is_empty() {
        let _ = writeln!(
            out,
            "{:<50} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "histograms:", "count", "mean", "p50", "p95", "p99", "max"
        );
        for (name, s) in hists {
            let _ = writeln!(
                out,
                "  {name:<48} {:>9} {:>9.1} {:>9} {:>9} {:>9} {:>9}",
                s.count, s.mean, s.p50, s.p95, s.p99, s.max
            );
        }
    }

    let mut spans: Vec<_> = reg
        .spans
        .lock()
        .expect("obs registry")
        .iter()
        .map(|s| (s.path.clone(), s.stats()))
        .filter(|(_, s)| s.count > 0)
        .collect();
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    if !spans.is_empty() {
        let _ = writeln!(
            out,
            "{:<50} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "spans:", "count", "total", "p50", "p95", "max"
        );
        for (path, s) in spans {
            let _ = writeln!(
                out,
                "  {path:<48} {:>9} {:>9} {:>9} {:>9} {:>9}",
                s.count,
                ns_fmt(s.total_ns),
                ns_fmt(s.p50_ns),
                ns_fmt(s.p95_ns),
                ns_fmt(s.max_ns)
            );
        }
    }

    let events = reg.events.lock().expect("obs registry");
    if !events.is_empty() {
        let _ = writeln!(out, "events (last {}):", events.len());
        for e in events.iter() {
            let fields: Vec<String> = e.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(
                out,
                "  [{}] {} {}",
                e.level.label(),
                e.what,
                fields.join(" ")
            );
        }
    }
    out
}

fn render_json() -> String {
    let reg = registry();
    let mut out = String::new();
    let mut counters: Vec<(&'static str, u64)> = reg
        .counters
        .lock()
        .expect("obs registry")
        .iter()
        .map(|c| (c.name, c.value.load(Ordering::Relaxed)))
        .collect();
    counters.sort_by_key(|&(n, _)| n);
    for (name, v) in counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
            json_escape(name)
        );
    }
    let mut gauges: Vec<(&'static str, u64)> = reg
        .gauges
        .lock()
        .expect("obs registry")
        .iter()
        .map(|g| (g.name, g.value.load(Ordering::Relaxed)))
        .collect();
    gauges.sort_by_key(|&(n, _)| n);
    for (name, v) in gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{v}}}",
            json_escape(name)
        );
    }
    let mut hists: Vec<_> = reg
        .histograms
        .lock()
        .expect("obs registry")
        .iter()
        .filter(|h| !h.name.starts_with("span:"))
        .map(|h| (h.name, h.summary().unwrap_or_default()))
        .collect();
    hists.sort_by_key(|&(n, _)| n);
    for (name, s) in hists {
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"mean\":{:.3},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
            json_escape(name),
            s.count,
            s.mean,
            s.p50,
            s.p95,
            s.p99,
            s.max
        );
    }
    let mut spans: Vec<_> = reg
        .spans
        .lock()
        .expect("obs registry")
        .iter()
        .map(|s| (s.path.clone(), s.stats()))
        .collect();
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    for (path, s) in spans {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"path\":\"{}\",\"count\":{},\"total_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"max_ns\":{}}}",
            json_escape(&path),
            s.count,
            s.total_ns,
            s.p50_ns,
            s.p95_ns,
            s.max_ns
        );
    }
    for e in reg.events.lock().expect("obs registry").iter() {
        let _ = writeln!(out, "{}", e.to_json());
    }
    out
}

/// Prints the telemetry report for the active mode to stdout (nothing
/// when off). The standard "telemetry appendix" call for binaries.
pub fn emit() {
    let mode = crate::mode();
    let text = render(mode);
    if !text.is_empty() {
        print!("{text}");
    }
}
