//! Self-contained HTML reports from dumped trace/metrics JSON.
//!
//! The input is the line-oriented JSON the rest of this crate emits:
//! `render(ObsMode::Json)` lines (`counter`, `histogram`, `span`,
//! `event`) plus `TraceTree::render_json` lines (`trace`). The output
//! is one HTML string with inline CSS only — no scripts, no network
//! assets — so a dump taken on a server can be opened anywhere.
//!
//! The module carries its own tiny JSON parser ([`parse_json`]) so the
//! workspace stays dependency-free; it doubles as the validity checker
//! behind `qwm obs-report --check-only` and the CI stage that asserts
//! every emitted telemetry line is well-formed JSON.

use std::collections::HashMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (None for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn field_str(&self, key: &str) -> String {
        match self.get(key) {
            Some(Json::Str(s)) => s.clone(),
            Some(Json::Num(n)) => fmt_num(*n),
            Some(Json::Bool(b)) => b.to_string(),
            _ => String::new(),
        }
    }

    fn field_f64(&self, key: &str) -> f64 {
        self.get(key).and_then(Json::as_f64).unwrap_or(0.0)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, why: &str) -> String {
        format!("byte {}: {}", self.pos, why)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Combine surrogate pairs; lone surrogates
                            // are rejected (our emitters never produce
                            // them).
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        c => return Err(self.err(&format!("bad escape `\\{}`", c as char))),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }
}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns a byte-offset description of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after JSON value"));
    }
    Ok(v)
}

/// Validates that every non-empty line of `text` is a complete JSON
/// document; returns how many lines were checked.
///
/// # Errors
///
/// Returns `line N: <reason>` for the first malformed line.
pub fn validate_json_lines(text: &str) -> Result<usize, String> {
    let mut n = 0;
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        parse_json(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
        n += 1;
    }
    Ok(n)
}

fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n:.3}")
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

struct TraceRow {
    id: u64,
    parent: u64,
    kind: String,
    name: String,
    detail: String,
    start_ns: f64,
    dur_ns: f64,
}

fn flame_section(out: &mut String, traces: &[TraceRow]) {
    let ids: HashMap<u64, &TraceRow> = traces.iter().map(|t| (t.id, t)).collect();
    let mut children: HashMap<u64, Vec<&TraceRow>> = HashMap::new();
    for t in traces {
        children.entry(t.parent).or_default().push(t);
    }
    for c in children.values_mut() {
        c.sort_by(|a, b| a.start_ns.total_cmp(&b.start_ns).then(a.id.cmp(&b.id)));
    }
    let mut roots: Vec<&TraceRow> = traces
        .iter()
        .filter(|t| !ids.contains_key(&t.parent))
        .collect();
    roots.sort_by(|a, b| a.start_ns.total_cmp(&b.start_ns).then(a.id.cmp(&b.id)));

    out.push_str("<h2>Trace</h2>\n");
    for root in roots {
        // Collect (depth, node) rows via DFS.
        let mut lanes: Vec<Vec<&TraceRow>> = Vec::new();
        let mut stack = vec![(0usize, root)];
        while let Some((depth, node)) = stack.pop() {
            if lanes.len() <= depth {
                lanes.resize_with(depth + 1, Vec::new);
            }
            lanes[depth].push(node);
            if let Some(kids) = children.get(&node.id) {
                for k in kids.iter().rev() {
                    stack.push((depth + 1, k));
                }
            }
        }
        let span_ns = root.dur_ns.max(1.0);
        let _ = writeln!(
            out,
            "<div class=\"flame\"><div class=\"flame-title\">{} &mdash; {}</div>",
            html_escape(&root.name),
            fmt_ns(root.dur_ns)
        );
        for lane in lanes {
            out.push_str("<div class=\"lane\">");
            for n in lane {
                let left = ((n.start_ns - root.start_ns) / span_ns * 100.0).clamp(0.0, 100.0);
                let width = (n.dur_ns / span_ns * 100.0).clamp(0.15, 100.0 - left);
                let label = if n.detail.is_empty() {
                    n.name.clone()
                } else {
                    format!("{} [{}]", n.name, n.detail)
                };
                let _ = write!(
                    out,
                    "<div class=\"span k-{}\" style=\"left:{left:.3}%;width:{width:.3}%\" \
                     title=\"{} &middot; {}\">{}</div>",
                    html_escape(&n.kind),
                    html_escape(&label),
                    fmt_ns(n.dur_ns),
                    html_escape(&label)
                );
            }
            out.push_str("</div>\n");
        }
        out.push_str("</div>\n");
    }
}

/// Builds a self-contained HTML report (inline CSS, no scripts, no
/// external assets) from line-oriented telemetry JSON: `counter`,
/// `histogram`, `span`, `event` and `trace` records.
///
/// # Errors
///
/// Returns `line N: <reason>` if any non-empty line is not valid JSON.
pub fn html_report(title: &str, text: &str) -> Result<String, String> {
    let mut counters: Vec<(String, f64)> = Vec::new();
    let mut hists: Vec<Json> = Vec::new();
    let mut spans: Vec<Json> = Vec::new();
    let mut events: Vec<Json> = Vec::new();
    let mut traces: Vec<TraceRow> = Vec::new();

    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
        match v.get("type").and_then(Json::as_str) {
            Some("counter") => counters.push((v.field_str("name"), v.field_f64("value"))),
            Some("histogram") => hists.push(v),
            Some("span") => spans.push(v),
            Some("event") => events.push(v),
            Some("trace") => traces.push(TraceRow {
                id: v.field_f64("id") as u64,
                parent: v.field_f64("parent") as u64,
                kind: v.field_str("kind"),
                name: if v.field_str("kind") == "stage" {
                    format!("stage {}", fmt_num(v.field_f64("m0")))
                } else {
                    v.field_str("name")
                },
                detail: v.field_str("detail"),
                start_ns: v.field_f64("start_ns"),
                dur_ns: v.field_f64("dur_ns"),
            }),
            _ => {} // unknown record types pass through silently
        }
    }

    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n");
    let _ = writeln!(out, "<title>{}</title>", html_escape(title));
    out.push_str(
        "<style>\n\
         body{font-family:monospace;margin:1.5em;background:#fafafa;color:#222}\n\
         h1{font-size:1.3em}h2{font-size:1.1em;margin-top:1.4em;border-bottom:1px solid #ccc}\n\
         table{border-collapse:collapse;margin:.5em 0}\n\
         td,th{border:1px solid #ddd;padding:2px 8px;text-align:right}\n\
         td:first-child,th:first-child{text-align:left}\n\
         .flame{margin:1em 0;border:1px solid #ddd;background:#fff;padding:6px}\n\
         .flame-title{font-weight:bold;margin-bottom:4px}\n\
         .lane{position:relative;height:20px;margin-bottom:2px}\n\
         .span{position:absolute;top:0;height:18px;overflow:hidden;white-space:nowrap;\n\
           font-size:11px;line-height:18px;padding-left:2px;box-sizing:border-box;\n\
           border:1px solid rgba(0,0,0,.25)}\n\
         .k-span{background:#9ecae1}.k-stage{background:#a1d99b}.k-arc{background:#fdae6b}\n\
         .bar{display:inline-block;height:9px;background:#6baed6}\n\
         .ev-warn{color:#a60}.ev-error{color:#c00}\n\
         </style></head><body>\n",
    );
    let _ = writeln!(out, "<h1>{}</h1>", html_escape(title));

    if !traces.is_empty() {
        flame_section(&mut out, &traces);
    }

    if !hists.is_empty() {
        out.push_str(
            "<h2>Latency histograms</h2>\n<table><tr><th>name</th><th>count</th>\
                      <th>mean</th><th>p50</th><th>p95</th><th>p99</th><th>max</th>\
                      <th></th></tr>\n",
        );
        let global_max = hists
            .iter()
            .map(|h| h.field_f64("max"))
            .fold(1.0_f64, f64::max);
        for h in &hists {
            let bar = (h.field_f64("p95") / global_max * 220.0).clamp(1.0, 220.0);
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
                 <td>{}</td><td><span class=\"bar\" style=\"width:{bar:.0}px\"></span></td></tr>",
                html_escape(&h.field_str("name")),
                fmt_num(h.field_f64("count")),
                fmt_num(h.field_f64("mean")),
                fmt_num(h.field_f64("p50")),
                fmt_num(h.field_f64("p95")),
                fmt_num(h.field_f64("p99")),
                fmt_num(h.field_f64("max")),
            );
        }
        out.push_str("</table>\n");
    }

    if !spans.is_empty() {
        out.push_str(
            "<h2>Span aggregates</h2>\n<table><tr><th>path</th><th>count</th>\
             <th>total</th><th>p50</th><th>p95</th><th>max</th></tr>\n",
        );
        for s in &spans {
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                html_escape(&s.field_str("path")),
                fmt_num(s.field_f64("count")),
                fmt_ns(s.field_f64("total_ns")),
                fmt_ns(s.field_f64("p50_ns")),
                fmt_ns(s.field_f64("p95_ns")),
                fmt_ns(s.field_f64("max_ns")),
            );
        }
        out.push_str("</table>\n");
    }

    if !counters.is_empty() {
        out.push_str("<h2>Counters</h2>\n<table><tr><th>name</th><th>value</th></tr>\n");
        for (name, v) in &counters {
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{}</td></tr>",
                html_escape(name),
                fmt_num(*v)
            );
        }
        out.push_str("</table>\n");
    }

    if !events.is_empty() {
        out.push_str("<h2>Events</h2>\n<ul>\n");
        for e in &events {
            let level = e.field_str("level");
            let mut fields = String::new();
            if let Json::Obj(kvs) = e {
                for (k, v) in kvs {
                    if matches!(k.as_str(), "type" | "level" | "what") {
                        continue;
                    }
                    let _ = write!(
                        fields,
                        " {}={}",
                        k,
                        match v {
                            Json::Str(s) => s.clone(),
                            Json::Num(n) => fmt_num(*n),
                            other => format!("{other:?}"),
                        }
                    );
                }
            }
            let _ = writeln!(
                out,
                "<li class=\"ev-{level}\">[{level}] {}{}</li>",
                html_escape(&e.field_str("what")),
                html_escape(&fields)
            );
        }
        out.push_str("</ul>\n");
    }

    out.push_str("</body></html>\n");
    Ok(out)
}

/// Builds a self-contained HTML capacity report (inline CSS, no
/// scripts, no external assets) from a `BENCH_capacity_server.json`
/// document (`schema: "qwm.capacity.*"`): one section per workload
/// with its ramp/search rounds, achieved-rps bars, latency percentiles,
/// the queue-wait vs solve split, and the tripped stop thresholds.
///
/// # Errors
///
/// Returns a diagnostic if `text` is not valid JSON or lacks the
/// capacity schema tag / `workloads` array. Unknown fields are ignored
/// so newer schema revisions still render.
pub fn capacity_html(title: &str, text: &str) -> Result<String, String> {
    let doc = parse_json(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\" field")?;
    if !schema.starts_with("qwm.capacity.") {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let Some(Json::Arr(workloads)) = doc.get("workloads") else {
        return Err("missing \"workloads\" array".to_string());
    };

    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n");
    let _ = writeln!(out, "<title>{}</title>", html_escape(title));
    out.push_str(
        "<style>\n\
         body{font-family:monospace;margin:1.5em;background:#fafafa;color:#222}\n\
         h1{font-size:1.3em}h2{font-size:1.1em;margin-top:1.4em;border-bottom:1px solid #ccc}\n\
         table{border-collapse:collapse;margin:.5em 0}\n\
         td,th{border:1px solid #ddd;padding:2px 8px;text-align:right}\n\
         td:first-child,th:first-child{text-align:left}\n\
         .bar{display:inline-block;height:9px;background:#6baed6}\n\
         .max{font-size:1.05em;font-weight:bold;margin:.4em 0}\n\
         tr.bad td{background:#fde3e3}\n\
         .stop{color:#c00;text-align:left}\n\
         .meta{color:#666;margin:.2em 0}\n\
         </style></head><body>\n",
    );
    let _ = writeln!(out, "<h1>{}</h1>", html_escape(title));
    let _ = writeln!(
        out,
        "<div class=\"meta\">schema {} &middot; seed {}</div>",
        html_escape(schema),
        fmt_num(doc.field_f64("seed"))
    );

    for w in workloads {
        let name = w.field_str("name");
        let _ = writeln!(out, "<h2>workload {}</h2>", html_escape(&name));
        let saturated = matches!(w.get("saturated"), Some(Json::Bool(true)));
        let _ = writeln!(
            out,
            "<div class=\"max\">max sustainable: {} rps{}</div>",
            fmt_num(w.field_f64("max_sustainable_rps")),
            if saturated {
                ""
            } else {
                " (never saturated &mdash; raise max_rps)"
            }
        );
        let thresholds = w.get("thresholds");
        let threshold = |key: &str| thresholds.map_or(0.0, |t| t.field_f64(key));
        let _ = writeln!(
            out,
            "<div class=\"meta\">deck {} &middot; {} sessions &middot; {} connections \
             &middot; ramp {}+{} up to {} rps &middot; {} ms rounds &middot; stop at \
             fail_rate &gt; {}, median &gt; {} ms, rejects &gt; {}</div>",
            html_escape(&w.field_str("deck")),
            fmt_num(w.field_f64("sessions")),
            fmt_num(w.field_f64("connections")),
            fmt_num(w.field_f64("initial_rps")),
            fmt_num(w.field_f64("increment_rps")),
            fmt_num(w.field_f64("max_rps")),
            fmt_num(w.field_f64("round_ms")),
            fmt_num(threshold("fail_rate")),
            fmt_num(threshold("median_ms")),
            fmt_num(threshold("reject_fraction")),
        );
        let Some(Json::Arr(rounds)) = w.get("rounds") else {
            out.push_str("<p>(no rounds recorded)</p>\n");
            continue;
        };
        out.push_str(
            "<table><tr><th>phase</th><th>target rps</th><th>achieved</th><th></th>\
             <th>ok</th><th>fail</th><th>429</th><th>p50</th><th>p95</th>\
             <th>wait p50</th><th>solve p50</th><th>stop</th></tr>\n",
        );
        let rps_max = rounds
            .iter()
            .map(|r| r.field_f64("achieved_rps"))
            .fold(1.0_f64, f64::max);
        for r in rounds {
            let good = matches!(r.get("good"), Some(Json::Bool(true)));
            let bar = (r.field_f64("achieved_rps") / rps_max * 180.0).clamp(1.0, 180.0);
            let _ = writeln!(
                out,
                "<tr{}><td>{}</td><td>{}</td><td>{:.1}</td>\
                 <td><span class=\"bar\" style=\"width:{bar:.0}px\"></span></td>\
                 <td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
                 <td>{}</td><td>{}</td><td class=\"stop\">{}</td></tr>",
                if good { "" } else { " class=\"bad\"" },
                html_escape(&r.field_str("phase")),
                fmt_num(r.field_f64("target_rps")),
                r.field_f64("achieved_rps"),
                fmt_num(r.field_f64("ok")),
                fmt_num(r.field_f64("failures")),
                fmt_num(r.field_f64("rejected")),
                fmt_ns(r.field_f64("p50_us") * 1e3),
                fmt_ns(r.field_f64("p95_us") * 1e3),
                fmt_ns(r.field_f64("wait_p50_us") * 1e3),
                fmt_ns(r.field_f64("solve_p50_us") * 1e3),
                html_escape(&r.field_str("stop")),
            );
        }
        out.push_str("</table>\n");
    }

    out.push_str("</body></html>\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_our_line_formats() {
        let lines = [
            r#"{"type":"counter","name":"sta.arc.evaluations","value":7}"#,
            r#"{"type":"histogram","name":"server.request.latency_ns.run","count":2,"mean":1.5,"p50":1,"p95":2,"p99":2,"max":2}"#,
            r#"{"type":"span","path":"sta.run/stage","count":1,"total_ns":10,"p50_ns":10,"p95_ns":10,"max_ns":10}"#,
            r#"{"type":"event","level":"warn","what":"x.y","stage":3,"err":"q \"esc\" z"}"#,
            r#"{"type":"trace","id":1,"parent":0,"kind":"span","name":"server.run","detail":"","start_ns":5,"dur_ns":100,"m0":0,"m1":0,"m2":0}"#,
        ];
        for line in lines {
            let v = parse_json(line).unwrap();
            assert!(v.get("type").is_some(), "{line}");
        }
        assert_eq!(validate_json_lines(&lines.join("\n")).unwrap(), 5);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":1}x",
            "\"unterminated",
            "{\"a\":01e}",
            "{'single':1}",
        ] {
            assert!(parse_json(bad).is_err(), "accepted: {bad}");
        }
        assert!(validate_json_lines("{\"ok\":1}\nnot json\n").is_err());
    }

    #[test]
    fn html_report_is_self_contained() {
        let dump = r#"{"type":"counter","name":"a.b.c","value":3}
{"type":"histogram","name":"h.one","count":4,"mean":2.0,"p50":2,"p95":3,"p99":3,"max":3}
{"type":"trace","id":1,"parent":0,"kind":"span","name":"server.run","detail":"","start_ns":0,"dur_ns":1000,"m0":0,"m1":0,"m2":0}
{"type":"trace","id":2,"parent":1,"kind":"arc","name":"sta.arc","detail":"qwm","start_ns":100,"dur_ns":500,"m0":3,"m1":20,"m2":0}"#;
        let html = html_report("t<est>", dump).unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("t&lt;est&gt;"));
        assert!(html.contains("class=\"flame\""), "flame view missing");
        assert!(html.contains("qwm"), "rung label missing");
        // Self-contained: no external fetches of any kind.
        for needle in ["http://", "https://", "<script", "src=", "@import"] {
            assert!(!html.contains(needle), "external asset: {needle}");
        }
        // Every line we feed must be checked: malformed input is an error.
        assert!(html_report("x", "{bad").is_err());
    }
}
