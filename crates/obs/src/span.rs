//! Hierarchical timing spans with thread-safe aggregation.
//!
//! `span!("name")` returns a guard; while it lives, child spans nest
//! under it (per thread), and on drop the elapsed monotonic time is
//! folded into the aggregate for the full path (`"sta.run/stage_eval"`).
//! Aggregates are atomics plus a fixed log-bucket nanosecond histogram,
//! so concurrent threads fold in without coordination once the path is
//! interned.

use crate::metrics::{Histogram, NS_BOUNDS};
use crate::{enabled, registry};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

pub(crate) struct SpanStatInner {
    pub(crate) path: String,
    pub(crate) count: AtomicU64,
    pub(crate) total_ns: AtomicU64,
    pub(crate) max_ns: AtomicU64,
    pub(crate) hist: Histogram,
}

impl SpanStatInner {
    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        // The histogram lives in the histogram registry and is reset
        // there; nothing extra to do here.
    }

    pub(crate) fn stats(&self) -> SpanStats {
        // A registered-but-unrecorded span reports zeros here (count 0
        // already says "no data"); the Option contract lives on the
        // histogram API.
        let summary = self.hist.summary().unwrap_or_default();
        SpanStats {
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            p50_ns: summary.p50,
            p95_ns: summary.p95,
        }
    }
}

/// Point-in-time aggregate for one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans.
    pub count: u64,
    /// Total time across all completions \[ns\].
    pub total_ns: u64,
    /// Longest single completion \[ns\].
    pub max_ns: u64,
    /// Median completion (bucket-resolved) \[ns\].
    pub p50_ns: u64,
    /// 95th-percentile completion (bucket-resolved) \[ns\].
    pub p95_ns: u64,
}

fn intern_path(path: &str) -> &'static SpanStatInner {
    let mut spans = registry().spans.lock().expect("obs registry");
    if let Some(s) = spans.iter().find(|s| s.path == path) {
        return s;
    }
    // Span latency histograms share the histogram registry so reset()
    // and rendering treat them uniformly.
    let hist_name: &'static str = Box::leak(format!("span:{path}").into_boxed_str());
    let inner: &'static SpanStatInner = Box::leak(Box::new(SpanStatInner {
        path: path.to_string(),
        count: AtomicU64::new(0),
        total_ns: AtomicU64::new(0),
        max_ns: AtomicU64::new(0),
        hist: Histogram::register(hist_name, NS_BOUNDS),
    }));
    spans.push(inner);
    inner
}

/// RAII guard produced by [`span!`]. Inert (no clock read, no
/// allocation) while the layer is disabled.
pub struct SpanGuard {
    active: Option<(Instant, &'static str)>,
}

impl SpanGuard {
    /// Enters the span `name` (callers normally use the [`span!`]
    /// macro).
    pub fn enter(name: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard { active: None };
        }
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        SpanGuard {
            active: Some((Instant::now(), name)),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((start, name)) = self.active.take() else {
            return;
        };
        let elapsed_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop our own frame (guards drop in LIFO order per thread,
            // but be defensive about leaked guards).
            if stack.last() == Some(&name) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|&n| n == name) {
                stack.truncate(pos);
            }
            if stack.is_empty() {
                name.to_string()
            } else {
                let mut p = stack.join("/");
                p.push('/');
                p.push_str(name);
                p
            }
        });
        let stat = intern_path(&path);
        stat.count.fetch_add(1, Ordering::Relaxed);
        stat.total_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
        stat.max_ns.fetch_max(elapsed_ns, Ordering::Relaxed);
        stat.hist.record_always(elapsed_ns);
    }
}

/// Opens a hierarchical timing span; the returned guard records on
/// drop. Bind it (`let _span = span!("x");`) so it lives to scope end.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}
