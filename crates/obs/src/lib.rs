//! Zero-dependency observability for the QWM/SPICE/STA pipeline.
//!
//! Every engine in the workspace reports into one process-global
//! registry: named monotonic [`Counter`]s, fixed-bucket [`Histogram`]s
//! with percentile summaries, hierarchical timing [`span!`]s and
//! structured warn/error [`event`]s. The registry renders either a
//! human-readable table or a line-oriented JSON dump.
//!
//! The whole layer is **off by default** and costs a single relaxed
//! atomic load per call site when disabled — no allocation, no locks,
//! no clock reads on the hot path. It is switched on by the `QWM_OBS`
//! environment variable (or programmatically via [`set_mode`]):
//!
//! ```text
//! QWM_OBS=off      # default: everything is a no-op (aliases: "", "0")
//! QWM_OBS=summary  # collect, render a human-readable table on emit()
//! QWM_OBS=json     # collect, render line-oriented JSON on emit()
//! ```
//!
//! Any other value is *not* a silent fallback: it is reported through
//! [`env::report_malformed`] (warn event + stderr line) and then the
//! documented default `off` applies. All `QWM_*` variables in the
//! workspace parse through the [`env`] module with the same contract.
//!
//! Typical instrumentation:
//!
//! ```
//! qwm_obs::set_mode(qwm_obs::ObsMode::Summary);
//! {
//!     let _span = qwm_obs::span!("stage_eval");
//!     qwm_obs::counter!("qwm.solver.nr_iterations").add(17);
//!     qwm_obs::histogram!("qwm.region.iterations", qwm_obs::ITER_BOUNDS).record(4);
//! }
//! let text = qwm_obs::render(qwm_obs::ObsMode::Summary);
//! assert!(text.contains("qwm.solver.nr_iterations"));
//! # qwm_obs::set_mode(qwm_obs::ObsMode::Off);
//! # qwm_obs::reset();
//! ```
//!
//! The parallel scheduler (`qwm-exec`) reports through the same
//! registry: counters `exec.pool.submitted`, `exec.pool.steals`,
//! `exec.pool.panics` and `exec.dag.steals`, plus histograms
//! `exec.pool.queue_depth`, `exec.dag.queue_depth`,
//! `exec.dag.level_width` (stage-DAG parallelism profile) and
//! `exec.dag.worker_busy_ns` (per-worker busy time per `run_dag`
//! invocation). The full metric inventory lives in DESIGN.md §9.
//!
//! Beyond the aggregate layer, the [`trace`] module records per-query
//! hierarchical span trees with hot-arc attribution (off by default,
//! one relaxed atomic load when off), [`prom`] renders the registry as
//! Prometheus text exposition, and [`report`] turns dumped JSON
//! telemetry into a self-contained HTML report.

pub mod env;
mod event;
mod metrics;
pub mod prom;
mod render;
pub mod report;
mod span;
pub mod trace;

pub use event::{error, warn, Event, EventBuilder, Level};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, ITER_BOUNDS, NS_BOUNDS, SIZE_BOUNDS,
};
pub use render::{emit, render};
pub use span::{SpanGuard, SpanStats};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Output/collection mode of the observability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsMode {
    /// Everything is a no-op (the default).
    Off,
    /// Collect; [`emit`] prints a human-readable table.
    Summary,
    /// Collect; [`emit`] prints line-oriented JSON.
    Json,
}

const MODE_UNSET: u8 = u8::MAX;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

/// The active mode, reading `QWM_OBS` on first use.
pub fn mode() -> ObsMode {
    match MODE.load(Ordering::Relaxed) {
        0 => ObsMode::Off,
        1 => ObsMode::Summary,
        2 => ObsMode::Json,
        _ => {
            let (m, malformed) = match std::env::var("QWM_OBS") {
                Err(_) => (ObsMode::Off, None),
                Ok(raw) => match raw.as_str() {
                    "" | "off" | "0" => (ObsMode::Off, None),
                    "summary" => (ObsMode::Summary, None),
                    "json" => (ObsMode::Json, None),
                    _ => (ObsMode::Off, Some(raw)),
                },
            };
            // Store before reporting: the warn path re-enters `enabled()`,
            // which must not recurse back into this env read.
            MODE.store(m as u8, Ordering::Relaxed);
            if let Some(raw) = malformed {
                env::report_malformed(
                    &env::EnvParseError {
                        name: "QWM_OBS".to_string(),
                        raw,
                        reason: "expected off|summary|json".to_string(),
                    },
                    "off",
                );
            }
            m
        }
    }
}

/// Overrides the mode (e.g. from a `--obs` command-line flag).
pub fn set_mode(m: ObsMode) {
    MODE.store(m as u8, Ordering::Relaxed);
}

/// True when the layer is collecting. This is the fast-path gate: one
/// relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    // Fast path: the common initialized states avoid the env lookup.
    match MODE.load(Ordering::Relaxed) {
        0 => false,
        MODE_UNSET => mode() != ObsMode::Off,
        _ => true,
    }
}

/// The process-global registry behind every metric handle.
pub(crate) struct Registry {
    pub(crate) counters: Mutex<Vec<&'static metrics::CounterInner>>,
    pub(crate) gauges: Mutex<Vec<&'static metrics::GaugeInner>>,
    pub(crate) histograms: Mutex<Vec<&'static metrics::HistogramInner>>,
    pub(crate) spans: Mutex<Vec<&'static span::SpanStatInner>>,
    pub(crate) events: Mutex<std::collections::VecDeque<Event>>,
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        spans: Mutex::new(Vec::new()),
        events: Mutex::new(std::collections::VecDeque::new()),
    })
}

/// Zeroes every registered counter, histogram, span aggregate, drops
/// buffered events and buffered trace records. Registration (names,
/// bucket bounds) survives; only the collected values are cleared.
/// Intended for tests and for bench binaries that want a per-phase
/// appendix.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().expect("obs registry").iter() {
        c.value.store(0, Ordering::Relaxed);
    }
    for g in reg.gauges.lock().expect("obs registry").iter() {
        g.value.store(0, Ordering::Relaxed);
    }
    for h in reg.histograms.lock().expect("obs registry").iter() {
        h.reset();
    }
    for s in reg.spans.lock().expect("obs registry").iter() {
        s.reset();
    }
    reg.events.lock().expect("obs registry").clear();
    trace::clear();
}

/// Looks up a counter's current value by name (`None` when never
/// registered). Intended for tests and report plumbing.
pub fn counter_value(name: &str) -> Option<u64> {
    registry()
        .counters
        .lock()
        .expect("obs registry")
        .iter()
        .find(|c| c.name == name)
        .map(|c| c.value.load(Ordering::Relaxed))
}

/// Looks up a gauge's current value by name (`None` when never
/// registered). Intended for tests and report plumbing.
pub fn gauge_value(name: &str) -> Option<u64> {
    registry()
        .gauges
        .lock()
        .expect("obs registry")
        .iter()
        .find(|g| g.name == name)
        .map(|g| g.value.load(Ordering::Relaxed))
}

/// Looks up a histogram summary by name (`None` when never registered
/// or when the histogram holds no samples).
pub fn histogram_summary(name: &str) -> Option<HistogramSummary> {
    registry()
        .histograms
        .lock()
        .expect("obs registry")
        .iter()
        .find(|h| h.name == name)
        .and_then(|h| h.summary())
}

/// Looks up a span aggregate by path.
pub fn span_stats(path: &str) -> Option<SpanStats> {
    registry()
        .spans
        .lock()
        .expect("obs registry")
        .iter()
        .find(|s| s.path == path)
        .map(|s| s.stats())
}

/// Recently buffered events, oldest first (bounded ring; see
/// [`event::EVENT_BUFFER_CAP`]).
pub fn recent_events() -> Vec<Event> {
    registry()
        .events
        .lock()
        .expect("obs registry")
        .iter()
        .cloned()
        .collect()
}
