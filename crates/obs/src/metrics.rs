//! Named counters and fixed-bucket histograms.
//!
//! Handles are `Copy` references into leaked registry entries, so a
//! call site pays one `OnceLock` read (via the [`counter!`] /
//! [`histogram!`] macros) plus one relaxed atomic op — and nothing at
//! all while the layer is disabled.

use crate::{enabled, registry};
use std::sync::atomic::{AtomicU64, Ordering};

/// Log-spaced nanosecond bounds for latency histograms: 1 µs … 10 s.
pub const NS_BOUNDS: &[u64] = &[
    1_000,
    3_000,
    10_000,
    30_000,
    100_000,
    300_000,
    1_000_000,
    3_000_000,
    10_000_000,
    30_000_000,
    100_000_000,
    300_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Small linear bounds for per-solve iteration counts.
pub const ITER_BOUNDS: &[u64] = &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 128];

/// Coarse log bounds for sizes/counts (regions per evaluation, nodes
/// per chain, …).
pub const SIZE_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 1024];

pub(crate) struct CounterInner {
    pub(crate) name: &'static str,
    pub(crate) value: AtomicU64,
}

/// A named monotonic counter.
#[derive(Clone, Copy)]
pub struct Counter(&'static CounterInner);

impl Counter {
    /// Registers (or finds) the counter `name`. Call sites should cache
    /// the handle via the [`counter!`] macro rather than re-registering
    /// per use.
    pub fn register(name: &'static str) -> Counter {
        let mut counters = registry().counters.lock().expect("obs registry");
        if let Some(c) = counters.iter().find(|c| c.name == name) {
            return Counter(c);
        }
        let inner: &'static CounterInner = Box::leak(Box::new(CounterInner {
            name,
            value: AtomicU64::new(0),
        }));
        counters.push(inner);
        Counter(inner)
    }

    /// Adds `n` (no-op while disabled).
    #[inline]
    pub fn add(self, n: u64) {
        if enabled() {
            self.0.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 (no-op while disabled).
    #[inline]
    pub fn incr(self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Counter name.
    pub fn name(self) -> &'static str {
        self.0.name
    }
}

/// Registers and returns a cached [`Counter`] handle for this call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __QWM_OBS_COUNTER: std::sync::OnceLock<$crate::Counter> = std::sync::OnceLock::new();
        *__QWM_OBS_COUNTER.get_or_init(|| $crate::Counter::register($name))
    }};
}

pub(crate) struct GaugeInner {
    pub(crate) name: &'static str,
    pub(crate) value: AtomicU64,
}

/// A named point-in-time gauge (last-write-wins, unlike the monotonic
/// [`Counter`]): log sizes, resident memory, live session counts.
#[derive(Clone, Copy)]
pub struct Gauge(&'static GaugeInner);

impl Gauge {
    /// Registers (or finds) the gauge `name`. Call sites should cache
    /// the handle via the [`gauge!`] macro rather than re-registering
    /// per use.
    pub fn register(name: &'static str) -> Gauge {
        let mut gauges = registry().gauges.lock().expect("obs registry");
        if let Some(g) = gauges.iter().find(|g| g.name == name) {
            return Gauge(g);
        }
        let inner: &'static GaugeInner = Box::leak(Box::new(GaugeInner {
            name,
            value: AtomicU64::new(0),
        }));
        gauges.push(inner);
        Gauge(inner)
    }

    /// Sets the current value (no-op while disabled).
    #[inline]
    pub fn set(self, v: u64) {
        if enabled() {
            self.0.value.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Gauge name.
    pub fn name(self) -> &'static str {
        self.0.name
    }
}

/// Registers and returns a cached [`Gauge`] handle for this call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __QWM_OBS_GAUGE: std::sync::OnceLock<$crate::Gauge> = std::sync::OnceLock::new();
        *__QWM_OBS_GAUGE.get_or_init(|| $crate::Gauge::register($name))
    }};
}

pub(crate) struct HistogramInner {
    pub(crate) name: &'static str,
    pub(crate) bounds: &'static [u64],
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl HistogramInner {
    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    pub(crate) fn summary(&self) -> Option<HistogramSummary> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            // An empty histogram has no percentiles: the caller gets
            // `None`, never a fabricated all-zero summary.
            return None;
        }
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            // Rank of the q-th value (1-based, nearest-rank).
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Report the bucket's upper bound; the overflow
                    // bucket reports the observed max.
                    return if i < self.bounds.len() {
                        self.bounds[i].min(max)
                    } else {
                        max
                    };
                }
            }
            max
        };
        Some(HistogramSummary {
            count,
            sum,
            mean: sum as f64 / count as f64,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            max,
        })
    }
}

/// A fixed-bucket histogram over `u64` values (nanoseconds, iteration
/// counts, sizes — the recorder defines the unit).
#[derive(Clone, Copy)]
pub struct Histogram(&'static HistogramInner);

impl Histogram {
    /// Registers (or finds) the histogram `name` with the given bucket
    /// upper bounds (must be strictly increasing). On a name collision
    /// the first registration's bounds win.
    pub fn register(name: &'static str, bounds: &'static [u64]) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must increase"
        );
        let mut histograms = registry().histograms.lock().expect("obs registry");
        if let Some(h) = histograms.iter().find(|h| h.name == name) {
            return Histogram(h);
        }
        let inner: &'static HistogramInner = Box::leak(Box::new(HistogramInner {
            name,
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }));
        histograms.push(inner);
        Histogram(inner)
    }

    /// Records one observation (no-op while disabled).
    #[inline]
    pub fn record(self, v: u64) {
        if !enabled() {
            return;
        }
        self.record_always(v);
    }

    /// Records regardless of mode — used by span aggregation, which has
    /// already paid the enabled check.
    pub(crate) fn record_always(self, v: u64) {
        let idx = self.0.bounds.partition_point(|&b| b < v);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Current summary (count, mean, p50/p95/p99, max); `None` while
    /// the histogram holds no samples.
    pub fn summary(self) -> Option<HistogramSummary> {
        self.0.summary()
    }

    /// Histogram name.
    pub fn name(self) -> &'static str {
        self.0.name
    }
}

/// Registers and returns a cached [`Histogram`] handle for this call
/// site.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr) => {{
        static __QWM_OBS_HISTOGRAM: std::sync::OnceLock<$crate::Histogram> =
            std::sync::OnceLock::new();
        *__QWM_OBS_HISTOGRAM.get_or_init(|| $crate::Histogram::register($name, $bounds))
    }};
}

/// Point-in-time summary of a non-empty [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Mean observation.
    pub mean: f64,
    /// Nearest-rank median, resolved to a bucket upper bound.
    pub p50: u64,
    /// Nearest-rank 95th percentile, resolved to a bucket upper bound.
    pub p95: u64,
    /// Nearest-rank 99th percentile, resolved to a bucket upper bound.
    pub p99: u64,
    /// Exact observed maximum.
    pub max: u64,
}
