//! Tests for the qwm-obs layer.
//!
//! The registry and mode are process-global, so every test takes the
//! shared lock, resets collected values, and uses metric names unique
//! to itself (registration is append-only across the process).

use qwm_obs::{counter, histogram, span, ObsMode};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    qwm_obs::set_mode(ObsMode::Summary);
    qwm_obs::reset();
    guard
}

#[test]
fn counter_accumulates_and_reads_back() {
    let _g = obs_lock();
    let c = counter!("test.counter.basic");
    c.incr();
    c.add(41);
    assert_eq!(c.value(), 42);
    assert_eq!(qwm_obs::counter_value("test.counter.basic"), Some(42));
    assert_eq!(qwm_obs::counter_value("test.counter.never"), None);
}

#[test]
fn histogram_bucket_boundaries() {
    let _g = obs_lock();
    static BOUNDS: &[u64] = &[10, 20, 40];
    let h = histogram!("test.hist.bounds", BOUNDS);
    // A value equal to an upper bound lands in that bucket (bounds are
    // inclusive upper limits), one past it lands in the next.
    h.record(10);
    let s = h.summary().expect("non-empty");
    assert_eq!((s.count, s.p50, s.max), (1, 10, 10));

    qwm_obs::reset();
    h.record(11);
    let s = h.summary().expect("non-empty");
    // Resolved to the bucket's upper bound, clamped by the observed max.
    assert_eq!((s.p50, s.max), (11, 11));

    qwm_obs::reset();
    h.record(1000); // overflow bucket reports the observed max
    let s = h.summary().expect("non-empty");
    assert_eq!((s.p50, s.p95, s.max), (1000, 1000, 1000));
}

#[test]
fn histogram_percentile_math() {
    let _g = obs_lock();
    static BOUNDS: &[u64] = &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
    let h = histogram!("test.hist.pct", BOUNDS);
    for v in 1..=10 {
        h.record(v);
    }
    let s = h.summary().expect("non-empty");
    assert_eq!(s.count, 10);
    assert_eq!(s.sum, 55);
    assert!((s.mean - 5.5).abs() < 1e-12);
    // Nearest-rank: p50 is the 5th of 10 values, p95 and p99 the 10th.
    assert_eq!(s.p50, 5);
    assert_eq!(s.p95, 10);
    assert_eq!(s.p99, 10);
    assert_eq!(s.max, 10);

    qwm_obs::reset();
    for _ in 0..99 {
        h.record(2);
    }
    h.record(9);
    let s = h.summary().expect("non-empty");
    assert_eq!(s.p50, 2);
    assert_eq!(s.p95, 2); // rank 95 of 100 still falls in the 2-bucket
    assert_eq!(s.p99, 2); // rank 99 likewise
    assert_eq!(s.max, 9);

    // The tail value is only visible from rank 100 up: p99 of 1000
    // observations (rank 990) must see the slow outliers.
    qwm_obs::reset();
    for _ in 0..980 {
        h.record(2);
    }
    for _ in 0..20 {
        h.record(9);
    }
    let s = h.summary().expect("non-empty");
    assert_eq!(s.p50, 2);
    assert_eq!(s.p95, 2);
    assert_eq!(s.p99, 9);
    assert_eq!(s.max, 9);
}

#[test]
fn histogram_percentiles_against_uniform_1_to_1000() {
    let _g = obs_lock();
    // 50-wide buckets resolve nearest-rank percentiles of a uniform
    // 1..=1000 distribution exactly to their true values.
    static BOUNDS: &[u64] = &[
        50, 100, 150, 200, 250, 300, 350, 400, 450, 500, 550, 600, 650, 700, 750, 800, 850, 900,
        950, 1000,
    ];
    let h = histogram!("test.hist.uniform1000", BOUNDS);
    for v in 1..=1000 {
        h.record(v);
    }
    let s = h.summary().expect("non-empty");
    assert_eq!(s.count, 1000);
    assert_eq!(s.sum, 500_500);
    assert!((s.mean - 500.5).abs() < 1e-9);
    assert_eq!(s.p50, 500); // rank 500 → bucket (451..=500]
    assert_eq!(s.p95, 950); // rank 950 → bucket (901..=950]
    assert_eq!(s.p99, 1000); // rank 990 → bucket (951..=1000]
    assert_eq!(s.max, 1000);
}

#[test]
fn single_sample_percentiles_collapse_to_the_sample() {
    let _g = obs_lock();
    static BOUNDS: &[u64] = &[10, 100];
    let h = histogram!("test.hist.single", BOUNDS);
    h.record(7);
    let s = h.summary().expect("non-empty");
    assert_eq!(s.count, 1);
    assert_eq!(s.p50, 7);
    assert_eq!(s.p95, 7);
    assert_eq!(s.p99, 7);
    assert_eq!(s.max, 7);
}

#[test]
fn empty_histogram_summary_is_none() {
    let _g = obs_lock();
    static BOUNDS: &[u64] = &[1, 2];
    let h = histogram!("test.hist.empty", BOUNDS);
    assert!(h.summary().is_none());
    // The by-name lookup agrees: registered-but-empty reads as None.
    assert!(qwm_obs::histogram_summary("test.hist.empty").is_none());
    h.record(1);
    assert!(h.summary().is_some());
    qwm_obs::reset();
    assert!(
        h.summary().is_none(),
        "reset returns the histogram to empty"
    );
}

#[test]
fn span_nesting_builds_hierarchical_paths() {
    let _g = obs_lock();
    {
        let _outer = span!("test_outer");
        {
            let _inner = span!("test_inner");
        }
    }
    let outer = qwm_obs::span_stats("test_outer").expect("outer span recorded");
    let inner = qwm_obs::span_stats("test_outer/test_inner").expect("nested path recorded");
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 1);
    assert!(outer.total_ns >= inner.total_ns);
    // The bare inner name must not exist as a root path.
    assert!(qwm_obs::span_stats("test_inner").is_none());
}

#[test]
fn span_aggregation_under_concurrent_threads() {
    let _g = obs_lock();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    let _outer = span!("test_mt_outer");
                    let _inner = span!("test_mt_inner");
                }
            });
        }
    });
    let outer = qwm_obs::span_stats("test_mt_outer").expect("outer recorded");
    let inner = qwm_obs::span_stats("test_mt_outer/test_mt_inner").expect("inner recorded");
    assert_eq!(outer.count, THREADS as u64 * PER_THREAD);
    assert_eq!(inner.count, THREADS as u64 * PER_THREAD);
    assert!(outer.max_ns <= outer.total_ns);
}

#[test]
fn off_mode_is_a_no_op() {
    let _g = obs_lock();
    qwm_obs::set_mode(ObsMode::Off);
    let c = counter!("test.off.counter");
    static BOUNDS: &[u64] = &[1, 2];
    let h = histogram!("test.off.hist", BOUNDS);
    c.add(5);
    h.record(1);
    {
        let _s = span!("test_off_span");
    }
    qwm_obs::warn("test.off.event").field("k", 1).emit();
    assert_eq!(c.value(), 0);
    assert!(h.summary().is_none());
    assert!(qwm_obs::span_stats("test_off_span").is_none());
    assert!(qwm_obs::recent_events().is_empty());
    assert_eq!(qwm_obs::render(ObsMode::Off), "");
}

#[test]
fn events_are_buffered_with_fields() {
    let _g = obs_lock();
    qwm_obs::warn("test.evt.warn")
        .field("stage", "inv1")
        .field("t", 1.5e-9)
        .emit();
    qwm_obs::error("test.evt.error").emit();
    let events = qwm_obs::recent_events();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].what, "test.evt.warn");
    assert_eq!(events[0].fields[0], ("stage", "inv1".to_string()));
    assert_eq!(events[1].level, qwm_obs::Level::Error);
    assert_eq!(qwm_obs::counter_value("obs.events.warn"), Some(1));
    assert_eq!(qwm_obs::counter_value("obs.events.error"), Some(1));
}

#[test]
fn json_rendering_golden() {
    let _g = obs_lock();
    counter!("test.golden.counter").add(7);
    static BOUNDS: &[u64] = &[10, 100];
    let h = histogram!("test.golden.hist", BOUNDS);
    h.record(4);
    h.record(8);
    qwm_obs::warn("test.golden.event")
        .field("node", "n\"1")
        .field("count", 3)
        .emit();

    let text = qwm_obs::render(ObsMode::Json);
    // The registry is shared with other tests, so compare only this
    // test's uniquely-prefixed lines.
    let lines: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("test.golden."))
        .collect();
    assert_eq!(
        lines,
        vec![
            "{\"type\":\"counter\",\"name\":\"test.golden.counter\",\"value\":7}",
            "{\"type\":\"histogram\",\"name\":\"test.golden.hist\",\"count\":2,\"mean\":6.000,\"p50\":8,\"p95\":8,\"p99\":8,\"max\":8}",
            "{\"type\":\"event\",\"level\":\"warn\",\"what\":\"test.golden.event\",\"node\":\"n\\\"1\",\"count\":3}",
        ]
    );
}

#[test]
fn summary_rendering_lists_active_metrics() {
    let _g = obs_lock();
    counter!("test.render.counter").add(3);
    {
        let _s = span!("test_render_span");
    }
    let text = qwm_obs::render(ObsMode::Summary);
    assert!(text.contains("qwm-obs telemetry"));
    assert!(text.contains("test.render.counter"));
    assert!(text.contains("test_render_span"));
    // Zero-valued entries from other tests' registrations are skipped.
    assert!(!text.contains("test.off.counter"));
}

#[test]
fn rendering_is_lexicographically_sorted() {
    let _g = obs_lock();
    // Register deliberately out of order; both render modes must sort.
    counter!("test.sorted.zz").incr();
    counter!("test.sorted.aa").incr();
    counter!("test.sorted.mm").incr();
    static BOUNDS: &[u64] = &[1, 2];
    histogram!("test.sortedh.zz", BOUNDS).record(1);
    histogram!("test.sortedh.aa", BOUNDS).record(1);
    for text in [
        qwm_obs::render(ObsMode::Summary),
        qwm_obs::render(ObsMode::Json),
    ] {
        let positions: Vec<usize> = ["test.sorted.aa", "test.sorted.mm", "test.sorted.zz"]
            .iter()
            .map(|n| text.find(n).unwrap_or_else(|| panic!("{n} missing")))
            .collect();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "counters unsorted"
        );
        let ha = text.find("test.sortedh.aa").expect("hist aa");
        let hz = text.find("test.sortedh.zz").expect("hist zz");
        assert!(ha < hz, "histograms unsorted");
    }
}

#[test]
fn prom_exposition_renders_and_validates() {
    let _g = obs_lock();
    counter!("test.prom.counter").add(5);
    static BOUNDS: &[u64] = &[10, 100];
    histogram!("test.prom.hist", BOUNDS).record(42);
    {
        let _s = span!("test_prom_span");
    }
    let text = qwm_obs::prom::render_prom();
    qwm_obs::prom::check_exposition(&text).expect("valid exposition");
    assert!(text.contains("# TYPE qwm_test_prom_counter_total counter"));
    assert!(text.contains("qwm_test_prom_counter_total 5"));
    assert!(text.contains("# TYPE qwm_test_prom_hist histogram"));
    assert!(text.contains("qwm_test_prom_hist_bucket{le=\"10\"} 0"));
    assert!(text.contains("qwm_test_prom_hist_bucket{le=\"100\"} 1"));
    assert!(text.contains("qwm_test_prom_hist_bucket{le=\"+Inf\"} 1"));
    assert!(text.contains("qwm_test_prom_hist_sum 42"));
    assert!(text.contains("qwm_test_prom_hist_count 1"));
    // Flat spans export under one family with a path label.
    assert!(text.contains("qwm_span_latency_ns_bucket{path=\"test_prom_span\",le=\"+Inf\"} 1"));
}

#[test]
fn gauges_render_in_every_mode() {
    let _g = obs_lock();
    let g = qwm_obs::gauge!("test.gauge.bytes");
    g.set(1234);
    g.set(4096); // last write wins
    assert_eq!(qwm_obs::gauge_value("test.gauge.bytes"), Some(4096));

    let summary = qwm_obs::render(ObsMode::Summary);
    assert!(summary.contains("gauges:"));
    assert!(summary.contains("test.gauge.bytes"));

    let json = qwm_obs::render(ObsMode::Json);
    assert!(json.contains("{\"type\":\"gauge\",\"name\":\"test.gauge.bytes\",\"value\":4096}"));

    let prom = qwm_obs::prom::render_prom();
    qwm_obs::prom::check_exposition(&prom).expect("valid exposition");
    assert!(prom.contains("# TYPE qwm_test_gauge_bytes gauge"));
    assert!(prom.contains("qwm_test_gauge_bytes 4096"));

    // Off mode: set() is a no-op, reset() zeroes the stored value.
    qwm_obs::reset();
    qwm_obs::set_mode(ObsMode::Off);
    g.set(77);
    assert_eq!(g.value(), 0);
    qwm_obs::set_mode(ObsMode::Summary);
}

#[test]
fn reset_clears_values_but_keeps_registration() {
    let _g = obs_lock();
    let c = counter!("test.reset.counter");
    c.add(9);
    qwm_obs::reset();
    assert_eq!(qwm_obs::counter_value("test.reset.counter"), Some(0));
    c.add(2);
    assert_eq!(c.value(), 2);
}
