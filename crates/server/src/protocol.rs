//! Wire protocol for `qwm-serve`: line-delimited commands with
//! length-prefixed payloads.
//!
//! # Grammar
//!
//! Every request is one ASCII line (LF-terminated, whitespace-split
//! tokens). Commands that carry a body (`load`, `edit`) state the exact
//! byte count on the command line; the body follows immediately, raw:
//!
//! ```text
//! ping
//! load <sid> <nbytes> [dir=fall|rise]      then <nbytes> raw deck bytes
//! edit <sid> <nbytes>                      then <nbytes> raw edit-script bytes
//! run <sid> [qwm|elmore|spice|fallback] [slew_ps=<f>] [deadline_ms=<n>] [corners=<list>]
//! report <sid>
//! stats <sid>
//! budget <sid> [retries=<n>] [wall_ms=<n>|off]
//! trace <sid> on|off|last [json]
//! profile top [k]
//! metrics [prom]
//! store status
//! sleep <ms>
//! close <sid>
//! shutdown
//! quit
//! ```
//!
//! `run ... corners=ss,tt,ff` evaluates the session's circuit at every
//! named corner in one batched sweep (PVT names `ss|tt|ff|sf|fs` plus
//! `mc:<seed>:<n>` Monte Carlo expansion — see
//! `qwm_device::parse_corner_list`); the reply names the worst corner
//! and `report` returns the multi-corner golden snapshot with per-net
//! corner provenance.
//!
//! `store status` reports the durable design store's counters (log
//! size, records, snapshots, restores, torn tails truncated at boot)
//! when the server runs with `--store <dir>`; without a store it
//! answers `404`.
//!
//! `trace <sid> on` switches the process-wide trace recorder on and
//! marks the session so its next `run` captures a per-query span tree;
//! `trace <sid> last` replays that tree as indented text (`json` for
//! line-oriented JSON). `profile top [k]` aggregates every arc record
//! still in the trace window into the hot-arc table. `metrics prom`
//! renders the registry as Prometheus text exposition instead of JSON.
//!
//! Every reply is one status line `<code> <text...>`; when the reply
//! carries a payload the line's *last* token is `len=<n>` and exactly
//! `n` raw bytes follow. Status codes:
//!
//! | code | meaning |
//! |------|---------|
//! | 200  | ok |
//! | 400  | malformed command, deck, or edit script (parse errors carry line/col) |
//! | 404  | unknown session / no report yet |
//! | 408  | deadline exceeded (in queue, mid-run via the fallback budget, or post-run) |
//! | 429  | admission control: too many requests in flight |
//! | 500  | evaluator or internal error |
//! | 503  | server is draining |

use std::time::Duration;

/// Largest accepted `load`/`edit` body. Protects the server from a
/// nonsense length prefix; real decks in this repo are a few KiB.
pub const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

/// Longest accepted session id (charset `[A-Za-z0-9_.-]`).
pub const MAX_SESSION_ID: usize = 64;

/// Per-stage evaluator selected by `run`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalKind {
    Qwm,
    Elmore,
    Spice,
    Fallback,
}

impl EvalKind {
    pub fn name(self) -> &'static str {
        match self {
            EvalKind::Qwm => "qwm",
            EvalKind::Elmore => "elmore",
            EvalKind::Spice => "spice",
            EvalKind::Fallback => "fallback",
        }
    }
}

/// What a `trace <sid> ...` request does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceAction {
    /// Enable the recorder and mark the session for capture.
    On,
    /// Disable the process-wide recorder.
    Off,
    /// Replay the session's last captured tree.
    Last {
        /// Line-oriented JSON instead of indented text.
        json: bool,
    },
}

/// One parsed request line. Payload bytes (for `Load`/`Edit`) are read
/// separately by the connection loop.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Ping,
    Load {
        sid: String,
        nbytes: usize,
        rise: bool,
    },
    Edit {
        sid: String,
        nbytes: usize,
    },
    Run {
        sid: String,
        eval: EvalKind,
        slew_ps: Option<f64>,
        deadline: Option<Duration>,
        /// Batched corner sweep (`corners=ss,tt,ff`); empty means the
        /// classic single-corner run at the session's base models.
        corners: Vec<qwm_device::Corner>,
    },
    Report {
        sid: String,
    },
    Stats {
        sid: String,
    },
    Budget {
        sid: String,
        retries: Option<usize>,
        /// `Some(None)` clears the wall, `Some(Some(d))` sets it.
        wall: Option<Option<Duration>>,
    },
    Trace {
        sid: String,
        action: TraceAction,
    },
    Profile {
        /// Top-k rows of the hot-arc table.
        k: usize,
    },
    Metrics {
        /// Prometheus text exposition instead of line-oriented JSON.
        prom: bool,
    },
    /// `store status`: durable-store counters (404 without a store).
    Store,
    Sleep {
        ms: u64,
    },
    Close {
        sid: String,
    },
    Shutdown,
    Quit,
}

impl Command {
    /// Static label used for per-command metrics
    /// (`server.request.latency_ns.<label>`).
    pub fn label(&self) -> &'static str {
        match self {
            Command::Ping => "ping",
            Command::Load { .. } => "load",
            Command::Edit { .. } => "edit",
            Command::Run { .. } => "run",
            Command::Report { .. } => "report",
            Command::Stats { .. } => "stats",
            Command::Budget { .. } => "budget",
            Command::Trace { .. } => "trace",
            Command::Profile { .. } => "profile",
            Command::Metrics { .. } => "metrics",
            Command::Store => "store",
            Command::Sleep { .. } => "sleep",
            Command::Close { .. } => "close",
            Command::Shutdown => "shutdown",
            Command::Quit => "quit",
        }
    }

    /// Commands dispatched through admission control and the pool.
    pub fn is_heavy(&self) -> bool {
        matches!(
            self,
            Command::Load { .. } | Command::Run { .. } | Command::Sleep { .. }
        )
    }
}

fn session_id(tok: &str) -> Result<String, String> {
    if tok.is_empty() || tok.len() > MAX_SESSION_ID {
        return Err(format!(
            "session id must be 1..={MAX_SESSION_ID} characters"
        ));
    }
    if !tok
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'))
    {
        return Err(format!(
            "session id {tok:?} has characters outside [A-Za-z0-9_.-]"
        ));
    }
    Ok(tok.to_string())
}

fn payload_len(tok: &str) -> Result<usize, String> {
    let n: usize = tok.parse().map_err(|_| format!("bad byte count {tok:?}"))?;
    if n > MAX_PAYLOAD {
        return Err(format!("payload of {n} bytes exceeds {MAX_PAYLOAD}"));
    }
    Ok(n)
}

/// Parses one request line. Errors are single-line human messages,
/// returned to the client as `400`.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let verb = *toks.first().ok_or("empty command")?;
    let need = |n: usize, usage: &str| -> Result<(), String> {
        if toks.len() < n {
            Err(format!("usage: {usage}"))
        } else {
            Ok(())
        }
    };
    match verb {
        "ping" => Ok(Command::Ping),
        "load" => {
            need(3, "load <sid> <nbytes> [dir=fall|rise]")?;
            let sid = session_id(toks[1])?;
            let nbytes = payload_len(toks[2])?;
            let mut rise = false;
            for t in &toks[3..] {
                match *t {
                    "dir=fall" => rise = false,
                    "dir=rise" => rise = true,
                    other => return Err(format!("unknown load option {other:?}")),
                }
            }
            Ok(Command::Load { sid, nbytes, rise })
        }
        "edit" => {
            need(3, "edit <sid> <nbytes>")?;
            Ok(Command::Edit {
                sid: session_id(toks[1])?,
                nbytes: payload_len(toks[2])?,
            })
        }
        "run" => {
            need(
                2,
                "run <sid> [qwm|elmore|spice|fallback] [slew_ps=<f>] [deadline_ms=<n>] \
                 [corners=<list>]",
            )?;
            let sid = session_id(toks[1])?;
            let mut eval = EvalKind::Qwm;
            let mut slew_ps = None;
            let mut deadline = None;
            let mut corners = Vec::new();
            for t in &toks[2..] {
                if let Some(v) = t.strip_prefix("slew_ps=") {
                    let ps: f64 = v.parse().map_err(|_| format!("bad slew_ps {v:?}"))?;
                    if !ps.is_finite() || ps < 0.0 {
                        return Err(format!("slew_ps must be finite and >= 0, got {v:?}"));
                    }
                    slew_ps = Some(ps);
                } else if let Some(v) = t.strip_prefix("deadline_ms=") {
                    let ms: u64 = v.parse().map_err(|_| format!("bad deadline_ms {v:?}"))?;
                    deadline = Some(Duration::from_millis(ms));
                } else if let Some(v) = t.strip_prefix("corners=") {
                    corners = qwm_device::parse_corner_list(v)
                        .map_err(|e| format!("bad corners {v:?}: {e}"))?;
                } else {
                    eval = match *t {
                        "qwm" => EvalKind::Qwm,
                        "elmore" => EvalKind::Elmore,
                        "spice" => EvalKind::Spice,
                        "fallback" => EvalKind::Fallback,
                        other => return Err(format!("unknown evaluator {other:?}")),
                    };
                }
            }
            Ok(Command::Run {
                sid,
                eval,
                slew_ps,
                deadline,
                corners,
            })
        }
        "report" => {
            need(2, "report <sid>")?;
            Ok(Command::Report {
                sid: session_id(toks[1])?,
            })
        }
        "stats" => {
            need(2, "stats <sid>")?;
            Ok(Command::Stats {
                sid: session_id(toks[1])?,
            })
        }
        "budget" => {
            need(2, "budget <sid> [retries=<n>] [wall_ms=<n>|off]")?;
            let sid = session_id(toks[1])?;
            let mut retries = None;
            let mut wall = None;
            for t in &toks[2..] {
                if let Some(v) = t.strip_prefix("retries=") {
                    retries = Some(v.parse().map_err(|_| format!("bad retries {v:?}"))?);
                } else if let Some(v) = t.strip_prefix("wall_ms=") {
                    wall = Some(if v == "off" {
                        None
                    } else {
                        let ms: u64 = v.parse().map_err(|_| format!("bad wall_ms {v:?}"))?;
                        Some(Duration::from_millis(ms))
                    });
                } else {
                    return Err(format!("unknown budget option {t:?}"));
                }
            }
            Ok(Command::Budget { sid, retries, wall })
        }
        "trace" => {
            need(3, "trace <sid> on|off|last [json]")?;
            let sid = session_id(toks[1])?;
            let action = match toks[2] {
                "on" => TraceAction::On,
                "off" => TraceAction::Off,
                "last" => {
                    let mut json = false;
                    for t in &toks[3..] {
                        match *t {
                            "json" => json = true,
                            other => return Err(format!("unknown trace option {other:?}")),
                        }
                    }
                    TraceAction::Last { json }
                }
                other => return Err(format!("unknown trace action {other:?}")),
            };
            Ok(Command::Trace { sid, action })
        }
        "profile" => {
            need(2, "profile top [k]")?;
            if toks[1] != "top" {
                return Err("usage: profile top [k]".to_string());
            }
            let k = match toks.get(2) {
                None => 10,
                Some(v) => v.parse().map_err(|_| format!("bad top count {v:?}"))?,
            };
            if k == 0 || k > 1000 {
                return Err("profile top count must be 1..=1000".to_string());
            }
            Ok(Command::Profile { k })
        }
        "metrics" => {
            let mut prom = false;
            for t in &toks[1..] {
                match *t {
                    "prom" => prom = true,
                    other => return Err(format!("unknown metrics option {other:?}")),
                }
            }
            Ok(Command::Metrics { prom })
        }
        "store" => {
            need(2, "store status")?;
            if toks[1] != "status" || toks.len() > 2 {
                return Err("usage: store status".to_string());
            }
            Ok(Command::Store)
        }
        "sleep" => {
            need(2, "sleep <ms>")?;
            let ms: u64 = toks[1]
                .parse()
                .map_err(|_| format!("bad sleep {:?}", toks[1]))?;
            if ms > 10_000 {
                return Err("sleep is capped at 10000 ms".to_string());
            }
            Ok(Command::Sleep { ms })
        }
        "close" => {
            need(2, "close <sid>")?;
            Ok(Command::Close {
                sid: session_id(toks[1])?,
            })
        }
        "shutdown" => Ok(Command::Shutdown),
        "quit" => Ok(Command::Quit),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Flattens a message onto one line so it can never corrupt the framing.
pub fn one_line(msg: &str) -> String {
    msg.replace(['\n', '\r'], "; ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        assert_eq!(parse_command("ping").unwrap(), Command::Ping);
        assert_eq!(
            parse_command("load s1 42 dir=rise").unwrap(),
            Command::Load {
                sid: "s1".into(),
                nbytes: 42,
                rise: true
            }
        );
        assert_eq!(
            parse_command("run s1 fallback slew_ps=20 deadline_ms=50").unwrap(),
            Command::Run {
                sid: "s1".into(),
                eval: EvalKind::Fallback,
                slew_ps: Some(20.0),
                deadline: Some(Duration::from_millis(50)),
                corners: vec![],
            }
        );
        let Command::Run { corners, eval, .. } =
            parse_command("run s1 qwm corners=ss,tt,ff slew_ps=30").unwrap()
        else {
            panic!("run should parse")
        };
        assert_eq!(eval, EvalKind::Qwm);
        assert_eq!(
            corners.iter().map(|c| c.name()).collect::<Vec<_>>(),
            ["ss", "tt", "ff"]
        );
        let Command::Run { corners, .. } = parse_command("run s1 corners=mc:7:3").unwrap() else {
            panic!("run should parse")
        };
        assert_eq!(corners.len(), 3);
        assert!(corners[0].name().starts_with("mc7_"));
        assert_eq!(
            parse_command("budget s1 retries=2 wall_ms=off").unwrap(),
            Command::Budget {
                sid: "s1".into(),
                retries: Some(2),
                wall: Some(None),
            }
        );
        assert_eq!(
            parse_command("trace s1 last json").unwrap(),
            Command::Trace {
                sid: "s1".into(),
                action: TraceAction::Last { json: true },
            }
        );
        assert_eq!(
            parse_command("trace s1 on").unwrap(),
            Command::Trace {
                sid: "s1".into(),
                action: TraceAction::On,
            }
        );
        assert_eq!(
            parse_command("profile top").unwrap(),
            Command::Profile { k: 10 }
        );
        assert_eq!(
            parse_command("profile top 3").unwrap(),
            Command::Profile { k: 3 }
        );
        assert_eq!(
            parse_command("metrics").unwrap(),
            Command::Metrics { prom: false }
        );
        assert_eq!(
            parse_command("metrics prom").unwrap(),
            Command::Metrics { prom: true }
        );
        assert_eq!(parse_command("store status").unwrap(), Command::Store);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "frobnicate",
            "load s1",
            "load s1 nope",
            "load bad/sid 4",
            "run s1 verilog",
            "run s1 slew_ps=-3",
            "run s1 corners=",
            "run s1 corners=tt,weird",
            "run s1 corners=tt,tt",
            "run s1 corners=mc:7:0",
            "run s1 corners=mc:7:65",
            "run s1 corners=mc:x:3",
            "sleep 999999",
            "budget s1 wall_ms=fast",
            "trace s1",
            "trace s1 maybe",
            "trace s1 last yaml",
            "profile bottom",
            "profile top 0",
            "profile top many",
            "metrics xml",
            "store",
            "store compact",
            "store status extra",
        ] {
            assert!(parse_command(bad).is_err(), "{bad:?} should be rejected");
        }
        let long = format!("report {}", "x".repeat(65));
        assert!(parse_command(&long).is_err());
    }

    #[test]
    fn heavy_commands_are_the_pool_dispatched_ones() {
        assert!(parse_command("load s 1").unwrap().is_heavy());
        assert!(parse_command("run s").unwrap().is_heavy());
        assert!(parse_command("sleep 5").unwrap().is_heavy());
        assert!(!parse_command("report s").unwrap().is_heavy());
        assert!(!parse_command("metrics").unwrap().is_heavy());
    }
}
