//! Session state: one parsed netlist + persistent [`StaEngine`] per
//! session id, shared device models, idle-time eviction.
//!
//! A session is the unit of isolation. Each owns its own engine (and
//! therefore its own committed incremental caches and fallback budget);
//! a panicking or degrading query in one session never touches
//! another's state. The characterized device tables are immutable and
//! expensive to build, so all sessions share one process-wide
//! [`ModelSet`] built on first use.

use qwm_device::{tabular_models_cached, ModelSet, Technology};
use qwm_sta::evaluator::FallbackBudget;
use qwm_sta::StaEngine;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Characterized device tables shared by every session, built once per
/// process. Characterization is the dominant cold-start cost; paying it
/// once is the point of a persistent server.
pub fn shared_models() -> Result<&'static ModelSet, String> {
    static MODELS: OnceLock<Result<ModelSet, String>> = OnceLock::new();
    MODELS
        .get_or_init(|| {
            tabular_models_cached(&Technology::cmosp35())
                .map_err(|e| format!("characterization: {e}"))
        })
        .as_ref()
        .map_err(Clone::clone)
}

/// Characterized device tables for one corner, leaked process-wide so
/// sessions can evaluate batched sweeps against `'static` model
/// references. The nominal corner is served from [`shared_models`]
/// untouched (so a single-corner `tt` sweep is bitwise the classic
/// run); every other corner characterizes once per process.
pub fn corner_static_models(corner: &qwm_device::Corner) -> Result<&'static ModelSet, String> {
    qwm_device::corner::static_tabular_models(shared_models()?, &Technology::cmosp35(), corner)
}

/// One client-visible timing session.
pub struct Session {
    /// Engine with persistent committed caches; `'static` because it
    /// borrows [`shared_models`].
    pub engine: StaEngine<'static>,
    /// Fallback-ladder budget applied to `run <sid> fallback`.
    pub budget: FallbackBudget,
    /// Golden report from the most recent successful `run`.
    pub last_report: Option<String>,
    /// Successful `run` count.
    pub runs: u64,
    /// Last touch, for idle eviction.
    pub last_used: Instant,
    /// When set (via `trace <sid> on`), each `run` captures a per-query
    /// span tree into [`Session::last_trace`].
    pub trace_on: bool,
    /// Span tree captured by the most recent traced `run`.
    pub last_trace: Option<qwm_obs::trace::TraceTree>,
    /// Edit scripts appended to the store since the last snapshot;
    /// drives the `--snapshot-every` cadence. Meaningless without a
    /// configured store.
    pub edits_since_snapshot: usize,
    /// Whether the store holds a snapshot of this session (a session
    /// becomes durable at its first committed run).
    pub has_snapshot: bool,
}

impl Session {
    pub fn new(engine: StaEngine<'static>) -> Session {
        Session {
            engine,
            budget: FallbackBudget::default(),
            last_report: None,
            runs: 0,
            last_used: Instant::now(),
            trace_on: false,
            last_trace: None,
            edits_since_snapshot: 0,
            has_snapshot: false,
        }
    }
}

/// Concurrent session map. The store lock is held only for map
/// operations; per-session work locks the session's own mutex, so slow
/// queries in one session never block lookups or other sessions.
#[derive(Default)]
pub struct SessionStore {
    map: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
}

impl SessionStore {
    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Mutex<Session>>>> {
        // A panic inside a session query poisons only that session's
        // mutex, never the store; and even a poisoned store lock holds
        // a structurally valid map.
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get(&self, sid: &str) -> Option<Arc<Mutex<Session>>> {
        self.lock().get(sid).cloned()
    }

    /// Inserts (or replaces) a session.
    pub fn insert(&self, sid: String, session: Session) {
        self.lock().insert(sid, Arc::new(Mutex::new(session)));
    }

    /// Removes a session; returns whether it existed.
    pub fn remove(&self, sid: &str) -> bool {
        self.lock().remove(sid).is_some()
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Evicts sessions idle longer than `ttl`; returns how many were
    /// dropped. Sessions busy in a query are never evicted: an in-flight
    /// query holds the session `Arc`, so the engine is freed only after
    /// it finishes.
    pub fn evict_idle(&self, ttl: std::time::Duration) -> usize {
        let mut map = self.lock();
        let before = map.len();
        map.retain(|_, s| match s.try_lock() {
            Ok(sess) => sess.last_used.elapsed() <= ttl,
            // Locked (busy or poisoned) sessions count as in use.
            Err(_) => true,
        });
        before - map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qwm_circuit::waveform::TransitionKind;
    use qwm_sta::graph::inverter_chain;
    use std::time::Duration;

    fn session() -> Session {
        let models = shared_models().expect("models");
        let netlist = inverter_chain(&Technology::cmosp35(), 3, 10e-15);
        Session::new(StaEngine::new(netlist, models, TransitionKind::Fall).expect("engine"))
    }

    #[test]
    fn shared_models_build_once_and_are_stable() {
        let a = shared_models().expect("models") as *const ModelSet;
        let b = shared_models().expect("models") as *const ModelSet;
        assert_eq!(a, b, "one process-wide ModelSet");
    }

    #[test]
    fn store_insert_get_remove_roundtrip() {
        let store = SessionStore::default();
        assert!(store.is_empty());
        store.insert("a".into(), session());
        assert_eq!(store.len(), 1);
        assert!(store.get("a").is_some());
        assert!(store.get("b").is_none());
        assert!(store.remove("a"));
        assert!(!store.remove("a"));
        assert!(store.is_empty());
    }

    #[test]
    fn eviction_spares_fresh_and_busy_sessions() {
        let store = SessionStore::default();
        store.insert("stale".into(), session());
        store.insert("busy".into(), session());
        // Backdate the idle session far past any ttl by waiting a tick,
        // then evict with a zero ttl while holding the busy one's lock.
        std::thread::sleep(Duration::from_millis(5));
        let busy = store.get("busy").unwrap();
        let _held = busy.lock().unwrap();
        let evicted = store.evict_idle(Duration::from_millis(1));
        assert_eq!(evicted, 1);
        assert!(store.get("stale").is_none());
        assert!(store.get("busy").is_some(), "locked sessions survive");
    }
}
