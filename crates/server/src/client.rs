//! Minimal blocking client for the `qwm-serve` protocol, used by the
//! load generator, the integration tests, and scripting.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One server reply: the status line split into code + text, plus the
/// length-prefixed payload when present.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    pub status: u16,
    /// Status-line text after the code (including any trailing
    /// `len=<n>` token).
    pub head: String,
    pub payload: Option<String>,
}

impl Reply {
    pub fn ok(&self) -> bool {
        self.status == 200
    }

    /// Payload text, or `""` for payload-less replies.
    pub fn body(&self) -> &str {
        self.payload.as_deref().unwrap_or("")
    }
}

/// A blocking protocol connection. Replies are framed by the protocol
/// (one status line, then an exact-length payload), so the reader needs
/// no buffering beyond the current frame.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Maximum time to wait for each reply (`None` blocks forever).
    pub fn set_timeout(&mut self, t: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(t)
    }

    /// Sends a bodyless command line and reads the reply.
    pub fn send(&mut self, line: &str) -> io::Result<Reply> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.read_reply()
    }

    /// Sends a command followed by a raw body. The command line must
    /// already carry the body's byte count (see [`Client::load`] /
    /// [`Client::edit`] for the common cases).
    pub fn send_with_body(&mut self, line: &str, body: &str) -> io::Result<Reply> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.write_all(body.as_bytes())?;
        self.read_reply()
    }

    /// `load <sid> <nbytes>` with the deck text as body.
    pub fn load(&mut self, sid: &str, deck: &str) -> io::Result<Reply> {
        self.send_with_body(&format!("load {sid} {}", deck.len()), deck)
    }

    /// `edit <sid> <nbytes>` with the edit script as body.
    pub fn edit(&mut self, sid: &str, script: &str) -> io::Result<Reply> {
        self.send_with_body(&format!("edit {sid} {}", script.len()), script)
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            if self.stream.read(&mut byte)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if byte[0] == b'\n' {
                break;
            }
            line.push(byte[0]);
        }
        Ok(String::from_utf8_lossy(&line)
            .trim_end_matches('\r')
            .to_string())
    }

    fn read_exact_n(&mut self, n: usize) -> io::Result<Vec<u8>> {
        let mut out = vec![0u8; n];
        self.stream.read_exact(&mut out)?;
        Ok(out)
    }

    fn read_reply(&mut self) -> io::Result<Reply> {
        let line = self.read_line()?;
        let (code, rest) = line.split_once(' ').unwrap_or((line.as_str(), ""));
        let status: u16 = code.parse().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {line:?}"),
            )
        })?;
        let head = rest.to_string();
        let payload = match head.rsplit(' ').next().and_then(|t| t.strip_prefix("len=")) {
            Some(n) => {
                let n: usize = n.parse().map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad len token in {line:?}"),
                    )
                })?;
                let bytes = self.read_exact_n(n)?;
                Some(String::from_utf8_lossy(&bytes).into_owned())
            }
            None => None,
        };
        Ok(Reply {
            status,
            head,
            payload,
        })
    }
}
